#include "nphard/reduction.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace harmony::nphard {

using core::Pack;
using core::PackList;

bool Feasible(const SchedulingInstance& instance, const PackList& packs) {
  for (const Pack& p : packs) {
    int64_t size = 0;
    for (int l = p.lo; l <= p.hi; ++l) size += instance.sizes[l];
    if (size > instance.memory) return false;
  }
  return true;
}

double Makespan(const SchedulingInstance& instance, const PackList& packs) {
  HARMONY_CHECK(!packs.empty());
  HARMONY_CHECK_EQ(packs.front().lo, 0);
  HARMONY_CHECK_EQ(packs.back().hi, instance.num_layers() - 1);
  const int B = instance.num_microbatches;
  const int G = instance.num_gpus;
  std::vector<double> gpu_free(G, 0.0);
  // prev_done[b] = completion time of microbatch b on the previous pack.
  std::vector<double> prev_done(B, 0.0);
  for (size_t j = 0; j < packs.size(); ++j) {
    double duration = 0.0;
    for (int l = packs[j].lo; l <= packs[j].hi; ++l) {
      duration += instance.times[l];
    }
    const int gpu = static_cast<int>(j) % G;
    std::vector<double> done(B);
    for (int b = 0; b < B; ++b) {
      const double ready = j == 0 ? 0.0 : prev_done[b];
      const double start = std::max(gpu_free[gpu], ready);
      done[b] = start + duration;
      gpu_free[gpu] = done[b];
    }
    prev_done = std::move(done);
  }
  double makespan = 0.0;
  for (double t : gpu_free) makespan = std::max(makespan, t);
  return makespan;
}

SchedulingInstance ReduceFromPartition(const std::vector<int64_t>& a) {
  SchedulingInstance inst;
  inst.num_microbatches = 3;
  inst.num_gpus = 2;
  inst.memory = 7;
  const int64_t sum = std::accumulate(a.begin(), a.end(), int64_t{0});
  const double big = 6.0 * static_cast<double>(sum);  // A
  auto add = [&inst](double p, int64_t m) {
    inst.times.push_back(p);
    inst.sizes.push_back(m);
  };
  add(8 * big, 6);
  add(8 * big, 6);
  for (int64_t ai : a) {
    add(5 * big, 4);
    add(static_cast<double>(ai), 2);
    add(5 * big, 4);
  }
  add(8 * big, 6);
  add(8 * big, 6);
  return inst;
}

double TargetMakespan(const SchedulingInstance& instance) {
  const double total =
      std::accumulate(instance.times.begin(), instance.times.end(), 0.0);
  return (instance.num_microbatches * total + instance.times.front() +
          instance.times.back()) /
         instance.num_gpus;
}

double BruteForceOptimalMakespan(const SchedulingInstance& instance,
                                 PackList* best) {
  const int R = instance.num_layers();
  HARMONY_CHECK_LE(R, 24) << "brute force limited to small instances";
  double best_makespan = std::numeric_limits<double>::infinity();
  // Enumerate all 2^(R-1) contiguous partitions via boundary bitmasks.
  for (uint32_t mask = 0; mask < (1u << (R - 1)); ++mask) {
    PackList packs;
    int lo = 0;
    for (int l = 0; l < R - 1; ++l) {
      if (mask & (1u << l)) {
        packs.push_back(Pack{lo, l});
        lo = l + 1;
      }
    }
    packs.push_back(Pack{lo, R - 1});
    if (!Feasible(instance, packs)) continue;
    const double m = Makespan(instance, packs);
    if (m < best_makespan) {
      best_makespan = m;
      if (best) *best = packs;
    }
  }
  return best_makespan;
}

bool PartitionFeasible(const std::vector<int64_t>& a) {
  const int64_t sum = std::accumulate(a.begin(), a.end(), int64_t{0});
  if (sum % 2 != 0) return false;
  const int64_t target = sum / 2;
  std::vector<bool> reachable(target + 1, false);
  reachable[0] = true;
  for (int64_t ai : a) {
    for (int64_t s = target; s >= ai; --s) {
      if (reachable[s - ai]) reachable[s] = true;
    }
  }
  return reachable[target];
}

}  // namespace harmony::nphard
