#ifndef HARMONY_NPHARD_REDUCTION_H_
#define HARMONY_NPHARD_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/config.h"

namespace harmony::nphard {

/// The simplified Harmony scheduling problem of Appendix A (Definition A.1):
/// contiguous layer packs, round-robin GPU assignment, per-pack memory
/// constraint, pipelined execution over B microbatches.
struct SchedulingInstance {
  int num_microbatches = 3;  // B
  int num_gpus = 2;          // G
  int64_t memory = 7;        // M
  std::vector<double> times;   // p_i
  std::vector<int64_t> sizes;  // m_i

  int num_layers() const { return static_cast<int>(times.size()); }
};

/// True iff every pack's weights fit in GPU memory.
bool Feasible(const SchedulingInstance& instance, const core::PackList& packs);

/// Exact makespan of executing `packs` round-robin over the instance's
/// microbatches (Definition A.1's cost): pack j runs on GPU (j mod G);
/// microbatch b of pack j starts when that GPU is idle and microbatch b of
/// pack j-1 finished.
double Makespan(const SchedulingInstance& instance, const core::PackList& packs);

/// The Appendix A reduction: produces the scheduling instance for a
/// Partition input a_1..a_n (Table 2), with A = 6 * sum(a).
SchedulingInstance ReduceFromPartition(const std::vector<int64_t>& a);

/// The target makespan T = (B * sum(p) + p_first + p_last) / G of the proof.
double TargetMakespan(const SchedulingInstance& instance);

/// Exhaustive search over all feasible contiguous packings (exponential in
/// the layer count; for tests). Returns the optimal makespan and, if
/// `best` != nullptr, an optimal packing.
double BruteForceOptimalMakespan(const SchedulingInstance& instance,
                                 core::PackList* best = nullptr);

/// Direct exponential/DP solver for the Partition problem (test oracle).
bool PartitionFeasible(const std::vector<int64_t>& a);

}  // namespace harmony::nphard

#endif  // HARMONY_NPHARD_REDUCTION_H_
