#ifndef HARMONY_BASELINES_BASELINES_H_
#define HARMONY_BASELINES_BASELINES_H_

#include "core/config.h"
#include "core/task_graph.h"
#include "hw/machine.h"
#include "model/layer.h"
#include "profile/profiler.h"

namespace harmony::baselines {

/// The per-GPU-swap baselines of Sec 5.1, lowered to the same TaskGraph IR
/// the Harmony Runtime executes. All of them model per-GPU memory
/// virtualization a la IBM-LMS: eviction always transfers (no clean drops),
/// no input-batch grouping, weight updates at iteration end on the GPU.

/// Conventional data parallelism with gradient accumulation (per-microbatch
/// forward+backward over the whole model) and LMS virtualization.
core::TaskGraph DpSwap(const profile::ProfileDb& profiles, int num_devices,
                       int minibatch, int microbatch);

/// GPipe: N compute-balanced stages pinned to GPUs; all microbatch forwards,
/// then all backwards (pipeline flush), update at the end. `recompute`
/// selects the "(R)" variant that checkpoints stage inputs instead of
/// stashing every layer's activations.
core::TaskGraph GpipeSwap(const profile::ProfileDb& profiles, int num_devices,
                          int minibatch, int microbatch, bool recompute);

/// PipeDream-2BW: same stages but a 1F1B interleaved schedule (bounded stash
/// depth, no mid-iteration flush) at the cost of a second resident weight
/// version per stage.
core::TaskGraph PipeDream2bwSwap(const profile::ProfileDb& profiles,
                                 int num_devices, int minibatch, int microbatch,
                                 bool recompute);

/// ZeRO-Infinity-style enhanced data parallelism: model and optimizer state
/// live in host memory, each layer's weights stream in per microbatch on
/// every GPU (no input-batch grouping), gradients push to host per
/// microbatch, and the optimizer runs on the CPU. Shares Harmony's
/// configuration (microbatch size and recompute pack sizes), per Sec 5.3.
core::TaskGraph ZeroInfinity(const profile::ProfileDb& profiles,
                             const core::Configuration& harmony_config,
                             int num_devices, int minibatch);

/// Host-memory overhead of ZeRO-Infinity's pinned staging buffers
/// (contiguous parameter + gradient staging), used for the Fig 15 host-OOM
/// experiment.
Bytes ZeroInfinityHostOverhead(const model::SequentialModel& model);

/// Splits layers into exactly `num_stages` contiguous stages minimizing the
/// maximum per-stage compute time (fwd+bwd at microbatch u) — the classic
/// compute-balanced pipeline partition (exposed for tests).
core::PackList BalancedStages(int num_stages, int microbatch,
                              const profile::ProfileDb& profiles);

/// Largest microbatch size (capped at `cap`) whose per-layer working set
/// leaves headroom on the GPU *and* whose in-flight activation stash fits in
/// host memory across `concurrent_stash_replicas` simultaneous holders (N
/// for data-parallel schemes); the baselines' per-GPU batch size.
int MaxFeasibleMicrobatch(const profile::ProfileDb& profiles,
                          const hw::MachineSpec& machine, bool recompute,
                          int concurrent_stash_replicas = 1, int cap = 32);

}  // namespace harmony::baselines

#endif  // HARMONY_BASELINES_BASELINES_H_
