#include "baselines/baselines.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace harmony::baselines {

using core::Configuration;
using core::HarmonyMode;
using core::MbPiece;
using core::OptimizationFlags;
using core::Pack;
using core::PackList;
using core::SplitMicrobatches;
using core::Task;
using core::TaskGraph;
using core::TaskType;

namespace {

/// LMS-style virtualization flags shared by the per-GPU-swap baselines.
OptimizationFlags LmsFlags() {
  OptimizationFlags f;
  f.input_batch_grouping = false;
  f.jit_update = false;
  f.jit_compute = false;
  f.p2p_transfers = true;  // pipeline baselines move activations over NCCL p2p
  // LMS virtualizes memory with demand paging: a miss blocks the stream until
  // the tensor arrives, so fetches serialize with compute instead of being
  // prefetched ahead (the "excessive swapping overhead" of Sec 1).
  f.prefetch = false;
  f.cpu_optimizer = false;
  f.smart_eviction = false;  // LMS always transfers evicted tensors
  f.use_recompute = false;
  return f;
}

/// Builds the per-stage pipeline tasks shared by GpipeSwap and
/// PipeDream2bwSwap; `one_f_one_b` selects the interleaved 1F1B order.
TaskGraph BuildPipeline(const std::string& name,
                        const profile::ProfileDb& profiles, int num_devices,
                        int minibatch, int microbatch, bool recompute,
                        bool one_f_one_b) {
  HARMONY_CHECK_GE(num_devices, 1);
  const int R = profiles.num_layers();
  const PackList stages = BalancedStages(num_devices, microbatch, profiles);
  const auto pieces = SplitMicrobatches(minibatch, microbatch);
  const int m = static_cast<int>(pieces.size());

  TaskGraph g;
  g.name = name;
  g.flags = LmsFlags();
  g.flags.use_recompute = recompute;
  // Baselines are global-policy by construction: all-recompute ("R"
  // variants) or all-keep (full-stash variants, LMS-style demand paging).
  g.stash_policy = core::PolicyTable::Legacy(R, recompute);
  g.num_devices = num_devices;
  g.num_replicas = 1;
  g.num_layers = R;
  g.minibatch = minibatch;
  g.u_fwd = microbatch;
  g.u_bwd = microbatch;
  g.device_reserved_bytes.assign(num_devices, 0);

  auto add_task = [&g](Task t) {
    t.id = g.num_tasks();
    g.tasks.push_back(std::move(t));
    return g.tasks.back().id;
  };

  // fwd_ids[stage][mb], bwd_ids[stage][mb]
  std::vector<std::vector<int>> fwd_ids(num_devices), bwd_ids(num_devices);
  for (int s = 0; s < num_devices; ++s) {
    for (int k = 0; k < m; ++k) {
      Task t;
      t.type = TaskType::kForward;
      t.pack = stages[s];
      t.device = s;
      t.group = {pieces[k]};
      if (recompute && stages[s].lo > 0) {
        t.checkpoint_boundaries.push_back(stages[s].lo);
      }
      fwd_ids[s].push_back(add_task(std::move(t)));
    }
  }
  for (int s = num_devices - 1; s >= 0; --s) {
    for (int k = 0; k < m; ++k) {
      Task t;
      t.type = TaskType::kBackward;
      t.pack = stages[s];
      t.device = s;
      t.group = {pieces[k]};
      t.reads_checkpoint = recompute && stages[s].lo > 0;
      bwd_ids[s].push_back(add_task(std::move(t)));
    }
  }
  // Weight update at iteration end, on the GPU owning the stage.
  for (int s = 0; s < num_devices; ++s) {
    Task t;
    t.type = TaskType::kUpdate;
    t.pack = stages[s];
    t.device = s;
    t.on_cpu = false;
    t.replica = 0;
    add_task(std::move(t));
  }

  // Per-device execution order.
  g.device_order.assign(num_devices, {});
  g.cpu_order.assign(num_devices, {});
  for (int s = 0; s < num_devices; ++s) {
    auto& order = g.device_order[s];
    if (!one_f_one_b) {
      // GPipe: all forwards, flush, all backwards.
      for (int k = 0; k < m; ++k) order.push_back(fwd_ids[s][k]);
      for (int k = 0; k < m; ++k) order.push_back(bwd_ids[s][k]);
    } else {
      // 1F1B: warm up with (num_devices - s) forwards, then alternate.
      const int warmup = std::min(m, num_devices - s);
      for (int k = 0; k < warmup; ++k) order.push_back(fwd_ids[s][k]);
      for (int k = 0; k < m; ++k) {
        order.push_back(bwd_ids[s][k]);
        if (warmup + k < m) order.push_back(fwd_ids[s][warmup + k]);
      }
    }
  }
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kUpdate) g.device_order[t.device].push_back(t.id);
  }

  if (one_f_one_b) {
    // PipeDream-2BW keeps a second weight version resident per stage.
    for (int s = 0; s < num_devices; ++s) {
      g.device_reserved_bytes[s] =
          profiles.PackParamBytes(stages[s].lo, stages[s].hi);
    }
  }

  core::ValidateTaskGraph(g);
  return g;
}

}  // namespace

PackList BalancedStages(int num_stages, int microbatch,
                        const profile::ProfileDb& profiles) {
  const int R = profiles.num_layers();
  HARMONY_CHECK_GE(num_stages, 1);
  HARMONY_CHECK_LE(num_stages, R);
  std::vector<double> prefix(R + 1, 0.0);
  for (int l = 0; l < R; ++l) {
    prefix[l + 1] = prefix[l] + profiles.FwdTime(l, microbatch) +
                    profiles.BwdTime(l, microbatch);
  }
  // Linear partition DP: cost[s][j] = min over i of max(cost[s-1][i],
  // prefix[j]-prefix[i]).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> cost(num_stages + 1,
                                        std::vector<double>(R + 1, kInf));
  std::vector<std::vector<int>> split(num_stages + 1, std::vector<int>(R + 1, 0));
  cost[0][0] = 0.0;
  for (int s = 1; s <= num_stages; ++s) {
    for (int j = s; j <= R; ++j) {
      for (int i = s - 1; i < j; ++i) {
        if (cost[s - 1][i] == kInf) continue;
        const double c = std::max(cost[s - 1][i], prefix[j] - prefix[i]);
        if (c < cost[s][j]) {
          cost[s][j] = c;
          split[s][j] = i;
        }
      }
    }
  }
  PackList stages(num_stages);
  int j = R;
  for (int s = num_stages; s >= 1; --s) {
    const int i = split[s][j];
    stages[s - 1] = Pack{i, j - 1};
    j = i;
  }
  return stages;
}

TaskGraph DpSwap(const profile::ProfileDb& profiles, int num_devices,
                 int minibatch, int microbatch) {
  // Expressed through the shared generator: a single fused pack covering the
  // whole model yields per-microbatch forward+backward (gradient
  // accumulation); LMS flags disable every Harmony optimization.
  Configuration config;
  config.u_fwd = microbatch;
  config.u_bwd = microbatch;
  config.bwd_packs = {Pack{0, profiles.num_layers() - 1}};
  OptimizationFlags flags = LmsFlags();
  flags.jit_compute = true;  // fused per-microbatch fwd+bwd = vanilla autograd
  flags.p2p_transfers = false;  // DP GPUs exchange nothing but gradients
  TaskGraph g = core::GenerateHarmonyTaskGraph(
      config, HarmonyMode::kDataParallel, num_devices, minibatch, flags,
      profiles);
  g.name = "DP Swap";
  return g;
}

TaskGraph GpipeSwap(const profile::ProfileDb& profiles, int num_devices,
                    int minibatch, int microbatch, bool recompute) {
  return BuildPipeline(recompute ? "GP Swap (R)" : "GP Swap", profiles,
                       num_devices, minibatch, microbatch, recompute,
                       /*one_f_one_b=*/false);
}

TaskGraph PipeDream2bwSwap(const profile::ProfileDb& profiles, int num_devices,
                           int minibatch, int microbatch, bool recompute) {
  return BuildPipeline(recompute ? "2BW Swap (R)" : "2BW Swap", profiles,
                       num_devices, minibatch, microbatch, recompute,
                       /*one_f_one_b=*/true);
}

TaskGraph ZeroInfinity(const profile::ProfileDb& profiles,
                       const Configuration& harmony_config, int num_devices,
                       int minibatch) {
  // ZeRO-Infinity shares Harmony's configuration (Sec 5.3) and its CPU
  // optimizer + recompute, but lacks input-batch grouping: weights stream in
  // per layer per microbatch, partial gradients push to host per microbatch.
  OptimizationFlags flags;
  flags.input_batch_grouping = false;
  flags.jit_update = true;       // ZeRO updates as gradient buckets arrive
  flags.jit_compute = true;
  flags.p2p_transfers = false;   // state moves via host staging buffers
  flags.prefetch = true;         // overlap-centric design
  flags.cpu_optimizer = true;    // optimizer offloaded to CPU
  flags.smart_eviction = true;   // gathered weights are freed, not written back
  flags.use_recompute = true;
  TaskGraph g = core::GenerateHarmonyTaskGraph(harmony_config,
                                               HarmonyMode::kDataParallel,
                                               num_devices, minibatch, flags,
                                               profiles);
  g.name = "ZeRO-Infinity";
  return g;
}

Bytes ZeroInfinityHostOverhead(const model::SequentialModel& model) {
  // Pinned contiguous staging for parameter gather + gradient reduce.
  return 2 * model.total_param_bytes();
}

int MaxFeasibleMicrobatch(const profile::ProfileDb& profiles,
                          const hw::MachineSpec& machine, bool recompute,
                          int concurrent_stash_replicas, int cap) {
  // Half of usable memory: the live working set of adjacent layers (plus
  // double-buffered prefetch) must fit even when everything else swaps.
  const Bytes budget = static_cast<Bytes>(
      static_cast<double>(machine.gpu.usable_memory()) * 0.5);
  (void)recompute;  // stash transits through memory either way

  Bytes params = 0, stash_per_sample = 0;
  for (int l = 0; l < profiles.num_layers(); ++l) {
    params += profiles.layer(l).param_bytes;
    stash_per_sample += profiles.layer(l).stash_bytes_per_sample;
  }
  // Host budget for spilled in-flight stash: everything beyond master
  // weights + optimizer state (+ safety margin).
  const Bytes host_budget = static_cast<Bytes>(
      0.85 * static_cast<double>(machine.host_memory - 4 * params));

  int best = 1;
  for (int u = 1; u <= cap; ++u) {
    Bytes worst = 0;
    for (int l = 0; l < profiles.num_layers(); ++l) {
      const profile::LayerProfile& p = profiles.layer(l);
      const Bytes working =
          2 * p.param_bytes + p.workspace_bytes +
          static_cast<Bytes>(u) * (2 * p.input_bytes_per_sample +
                                   2 * p.output_bytes_per_sample +
                                   2 * p.stash_bytes_per_sample);
      worst = std::max(worst, working);
    }
    if (worst > budget) break;
    const Bytes host_stash = static_cast<Bytes>(u) * stash_per_sample *
                             std::max(1, concurrent_stash_replicas);
    if (host_stash > host_budget) break;
    best = u;
  }
  return best;
}

}  // namespace harmony::baselines
