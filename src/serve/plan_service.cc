#include "serve/plan_service.h"

#include <thread>
#include <utility>

#include "common/logging.h"
#include "core/task_graph.h"
#include "model/layer.h"
#include "runtime/runtime.h"

namespace harmony::serve {

namespace {

using Clock = std::chrono::steady_clock;

TimeSec Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

int64_t Nanos(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace

PlanService::PlanService(ServeOptions options)
    : options_(options),
      cache_(options.enable_cache ? options.cache_bytes : 0,
             options.cache_shards),
      pool_(options.num_workers),
      epoch_(Clock::now()) {}

PlanService::~PlanService() { Shutdown(/*cancel_inflight=*/false); }

TimeSec PlanService::Now() const { return Seconds(Clock::now() - epoch_); }

void PlanService::EmitEvent(trace::EventKind kind, int request_id,
                            int64_t latency_ns) {
  if (options_.bus == nullptr || !options_.bus->active()) return;
  trace::Event e;
  e.kind = kind;
  e.lane = trace::Lane::kServe;
  e.device = -1;
  e.time = Now();
  e.task = request_id;
  e.bytes = latency_ns;
  std::lock_guard<std::mutex> lock(trace_mu_);
  options_.bus->Emit(e);
}

std::shared_future<PlanResponse> PlanService::Submit(
    const PlanRequest& request) {
  auto state = std::make_shared<std::promise<PlanResponse>>();
  std::shared_future<PlanResponse> future = state->get_future().share();
  SubmitAsync(request, [state = std::move(state)](PlanResponse response) {
    state->set_value(std::move(response));
  });
  return future;
}

void PlanService::SubmitAsync(const PlanRequest& request, PlanCallback done) {
  const auto admit_time = Clock::now();
  // Hash once from the canonical bytes and keep the preimage: cache lookups
  // and single-flight attachment verify the bytes, never the hash alone.
  std::string canonical = CanonicalRequestJson(request);
  const uint64_t fingerprint = json::Fnv1a(canonical);
  // This request's absolute deadline (time_since_epoch count; 0 = none),
  // fixed up front so admission control and the worker agree on it.
  const Clock::time_point deadline =
      request.deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(request.deadline_ms)
          : Clock::time_point{};
  const int64_t deadline_count =
      request.deadline_ms > 0 ? deadline.time_since_epoch().count() : 0;

  auto immediate = [&](PlanResponse response) {
    response.fingerprint = fingerprint;
    response.latency_seconds = Seconds(Clock::now() - admit_time);
    done(std::move(response));
  };

  // Fast path: content-addressed hit, no service lock taken.
  if (options_.enable_cache && !request.bypass_cache) {
    if (std::shared_ptr<const CachedPlan> plan =
            cache_.Lookup(fingerprint, canonical)) {
      PlanResponse response;
      response.cache_hit = true;
      response.config = plan->config;
      response.estimate = plan->estimate;
      response.configs_explored = plan->configs_explored;
      response.configs_feasible = plan->configs_feasible;
      response.search_seconds = plan->search_seconds;
      response.has_metrics = plan->has_metrics;
      if (plan->has_metrics) response.metrics = plan->metrics;
      int id;
      {
        std::lock_guard<std::mutex> lock(mu_);
        id = next_request_id_++;
        ++stats_.cache_hits;
        ++stats_.completed;
      }
      EmitEvent(trace::EventKind::kServeCacheHit, id,
                Nanos(Clock::now() - admit_time));
      immediate(std::move(response));
      return;
    }
  }

  std::shared_ptr<Inflight> inflight;
  int id;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_) {
      id = next_request_id_++;
      ++stats_.rejected;
      lock.unlock();
      EmitEvent(trace::EventKind::kServeReject, id, 0);
      PlanResponse response;
      response.status = Status::Unavailable("plan service is shutting down");
      immediate(std::move(response));
      return;
    }

    // Single-flight: identical request already being searched — attach.
    // "Identical" means the canonical bytes match (a fingerprint collision
    // must not share a search), and the in-flight deadline is no earlier
    // than ours: attaching to a shorter-deadline search would hand this
    // caller someone else's DeadlineExceeded. Otherwise admit separately;
    // the new entry replaces the map slot so later arrivals coalesce onto
    // the longer-lived search.
    if (!request.bypass_cache) {
      auto it = inflight_.find(fingerprint);
      if (it != inflight_.end() && it->second->canonical == canonical) {
        const int64_t theirs = it->second->cancel->deadline_count();
        const bool deadline_compatible =
            theirs == 0 || (deadline_count != 0 && theirs >= deadline_count);
        if (deadline_compatible) {
          ++stats_.coalesced;
          it->second->callbacks.push_back(std::move(done));
          return;
        }
      }
    }

    // Admission control: explicit load-shedding over unbounded queueing.
    if (pending_ >= options_.max_pending) {
      id = next_request_id_++;
      ++stats_.rejected;
      lock.unlock();
      EmitEvent(trace::EventKind::kServeReject, id, 0);
      PlanResponse response;
      response.status = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_pending) +
          " pending)");
      response.retry_after_ms = options_.retry_after_ms;
      immediate(std::move(response));
      return;
    }

    id = next_request_id_++;
    ++stats_.admitted;
    ++pending_;
    inflight = std::make_shared<Inflight>();
    inflight->callbacks.push_back(std::move(done));
    inflight->cancel = std::make_shared<common::CancelToken>();
    inflight->canonical = canonical;
    if (deadline_count != 0) inflight->cancel->SetDeadline(deadline);
    if (!request.bypass_cache) inflight_[fingerprint] = inflight;
  }

  EmitEvent(trace::EventKind::kServeAdmit, id, 0);
  pool_.Submit([this, request, fingerprint, id, admit_time,
                inflight = std::move(inflight)]() mutable {
    std::shared_ptr<common::CancelToken> cancel = inflight->cancel;
    RunRequest(std::move(request), fingerprint, id, std::move(cancel),
               admit_time, std::move(inflight));
  });
}

Result<std::shared_ptr<const PlanService::ProfiledModel>>
PlanService::ResolveModel(const ModelSpec& spec, const hw::GpuSpec& gpu) {
  // Key the memo by the canonical spec bytes: the profile is a pure function
  // of (model builder inputs, GPU), so two requests that hash alike share one
  // profiling run — and two that differ (even by usable_fraction) never mix.
  json::Value key = json::Value::Object();
  key.Set("model", ModelSpecToJson(spec));
  json::Value g = json::Value::Object();
  g.Set("name", gpu.name);
  g.Set("memory_capacity", gpu.memory_capacity);
  g.Set("peak_flops", gpu.peak_flops);
  g.Set("usable_fraction", gpu.usable_fraction);
  key.Set("gpu", std::move(g));
  const uint64_t fp = json::Fnv1a(key.Dump());

  {
    std::lock_guard<std::mutex> lock(profile_mu_);
    auto it = profiles_.find(fp);
    if (it != profiles_.end()) return it->second;
  }
  auto graph = BuildModel(spec);
  HARMONY_RETURN_IF_ERROR(graph.status());
  model::SequentialModel seq = model::Sequentialize(graph.value());
  const profile::Profiler profiler(gpu, profile::ProfilerOptions{});
  profile::ProfileDb db = profiler.Profile(seq);
  auto entry = std::make_shared<const ProfiledModel>(
      std::move(seq), std::move(db), DefaultOptimizer(spec));
  std::lock_guard<std::mutex> lock(profile_mu_);
  // A racing resolver may have inserted first; keep the existing entry so
  // outstanding references stay unique per key.
  return profiles_.emplace(fp, std::move(entry)).first->second;
}

PlanResponse PlanService::ComputePlan(const PlanRequest& request,
                                      uint64_t fingerprint,
                                      const common::CancelToken* cancel) {
  PlanResponse response;
  response.fingerprint = fingerprint;

  auto resolved = ResolveModel(request.model, request.machine.PlanningGpu());
  if (!resolved.ok()) {
    response.status = resolved.status();
    return response;
  }
  const ProfiledModel& pm = *resolved.value();

  core::SearchOptions search = request.options;
  search.cancel = cancel;
  auto found = core::SearchConfiguration(pm.profiles, request.machine,
                                         request.mode, request.minibatch,
                                         request.flags, search);
  if (!found.ok()) {
    response.status = found.status();
    return response;
  }
  const core::SearchResult& result = found.value();
  response.config = result.best;
  response.estimate = result.best_estimate;
  response.configs_explored = result.configs_explored;
  response.configs_feasible = result.configs_feasible;
  response.search_seconds = result.search_wall_seconds;

  if (request.run_iteration) {
    const core::TaskGraph graph = core::GenerateHarmonyTaskGraph(
        response.config, request.mode, request.machine.num_gpus,
        request.minibatch, request.flags, pm.profiles);
    const runtime::Runtime rt(request.machine, pm.model);
    runtime::RuntimeOptions run_opts;
    run_opts.optimizer = pm.optimizer;
    auto metrics = rt.Execute(graph, run_opts);
    if (!metrics.ok()) {
      response.status = metrics.status();
      return response;
    }
    response.metrics = metrics.value();
    response.has_metrics = true;
  }
  return response;
}

void PlanService::RunRequest(PlanRequest request, uint64_t fingerprint,
                             int request_id,
                             std::shared_ptr<common::CancelToken> cancel,
                             Clock::time_point admit_time,
                             std::shared_ptr<Inflight> inflight) {
  if (options_.stall_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.stall_for_test));
  }

  PlanResponse response;
  bool searched = false;
  if (cancel->Cancelled()) {
    // Sat in the queue past its deadline (or the service is aborting):
    // don't start a search that would be thrown away.
    response.fingerprint = fingerprint;
    response.status = cancel->DeadlinePassed()
                          ? Status::DeadlineExceeded(
                                "request expired before the search started")
                          : Status::Cancelled("request cancelled");
  } else {
    // Tier fill: a local miss asks the disk store / owner peer for the plan
    // before burning a search. Runs here (on a worker, after single-flight
    // admission) so a stampede of identical requests performs one fill, and
    // the potentially blocking disk/peer I/O never runs on a caller thread.
    std::shared_ptr<const CachedPlan> filled;
    std::string fill_source;
    if (options_.fill != nullptr && !request.bypass_cache) {
      filled = options_.fill->TryFill(fingerprint, inflight->canonical,
                                      request, &fill_source);
    }
    if (filled != nullptr) {
      response.fingerprint = fingerprint;
      response.filled_from = fill_source;
      response.config = filled->config;
      response.estimate = filled->estimate;
      response.configs_explored = filled->configs_explored;
      response.configs_feasible = filled->configs_feasible;
      response.search_seconds = filled->search_seconds;
      response.has_metrics = filled->has_metrics;
      if (filled->has_metrics) response.metrics = filled->metrics;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.filled;
    } else {
      EmitEvent(trace::EventKind::kServeSearchBegin, request_id, 0);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.searches;
      }
      searched = true;
      response = ComputePlan(request, fingerprint, cancel.get());
    }
  }
  response.latency_seconds = Seconds(Clock::now() - admit_time);

  if (response.status.ok() && options_.enable_cache && !request.bypass_cache) {
    auto plan = std::make_shared<CachedPlan>();
    plan->canonical_request = inflight->canonical;
    plan->config = response.config;
    plan->estimate = response.estimate;
    plan->configs_explored = response.configs_explored;
    plan->configs_feasible = response.configs_feasible;
    plan->search_seconds = response.search_seconds;
    plan->has_metrics = response.has_metrics;
    if (response.has_metrics) plan->metrics = response.metrics;
    // Fresh local searches are offered to the warm store; tier fills are
    // not — TryFill already persisted what it fetched (and a disk revival
    // must not rewrite its own file).
    if (searched && options_.fill != nullptr) {
      options_.fill->StoreCompleted(fingerprint, plan);
    }
    cache_.Insert(fingerprint, std::move(plan));
  }

  EmitEvent(trace::EventKind::kServeComplete, request_id,
            Nanos(Clock::now() - admit_time));
  // Detach the waiter list under the lock *as* the entry leaves the map: a
  // racing Submit either finds the entry and appends its callback before
  // this move, or finds the cache already populated (Insert above precedes
  // this block). Invoking after unlock keeps callbacks free to re-enter the
  // service.
  std::vector<PlanCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(fingerprint);
    if (it != inflight_.end() && it->second == inflight) inflight_.erase(it);
    callbacks = std::move(inflight->callbacks);
    --pending_;
    ++stats_.completed;
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  drained_.notify_all();
  for (size_t i = 0; i + 1 < callbacks.size(); ++i) callbacks[i](response);
  if (!callbacks.empty()) callbacks.back()(std::move(response));
}

void PlanService::Shutdown(bool cancel_inflight) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (cancel_inflight) {
      for (auto& [fp, inflight] : inflight_) inflight->cancel->Cancel();
    }
    drained_.wait(lock, [this]() { return pending_ == 0; });
  }
  pool_.Shutdown();
}

ServiceStats PlanService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace harmony::serve
