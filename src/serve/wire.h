#ifndef HARMONY_SERVE_WIRE_H_
#define HARMONY_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "core/config.h"
#include "core/search.h"
#include "hw/machine.h"
#include "model/memory.h"
#include "model/models.h"
#include "runtime/runtime.h"

namespace harmony::serve {

/// The wire format of the planning service (DESIGN.md §9): canonical JSON
/// encodings of the planner's request and response types, plus the FNV-1a
/// request fingerprint the PlanCache is addressed by.
///
/// Canonicality contract: every `*ToJson` writer emits members in a fixed
/// order with json::Value's canonical number/string rendering, so
/// serialize -> parse -> serialize is byte-identical and the fingerprint of
/// a request is stable across processes and releases. wire_test pins
/// fingerprints for BERT96/GPT-2 requests; changing any writer breaks those
/// goldens loudly instead of silently splitting the cache.

/// What model to plan for. Models are described by *specs* (builder
/// parameters), not serialized layer graphs: a spec is a few bytes, fully
/// determines the LayerGraph (builders are deterministic), and is therefore
/// the natural content-address component.
struct ModelSpec {
  enum class Kind : uint8_t {
    kBuiltin,      // one of the paper's evaluation models, by name
    kGpt2Custom,   // GPT2 scaled to `billions` parameters (Sec 5.7)
    kTransformer,  // fully custom transformer (model::TransformerConfig)
  };
  Kind kind = Kind::kBuiltin;
  /// Builtin name ("GPT2", "BERT96", ...) or display name for custom kinds.
  std::string name;
  double billions = 0;  // kGpt2Custom only
  model::TransformerConfig transformer;  // kTransformer only

  /// Parses the CLI model grammar shared with harmony_plan: builtin names
  /// plus "GPT2-<N>B".
  static Result<ModelSpec> FromName(const std::string& name);
};

/// Materializes the spec's layer graph (InvalidArgument for unknown names).
Result<model::LayerGraph> BuildModel(const ModelSpec& spec);

/// The optimizer the paper trains this model family with (Sec 5.1): SGD
/// with momentum for the CNNs, Adam for the transformers.
model::Optimizer DefaultOptimizer(const ModelSpec& spec);

/// A planning request: everything Algorithm 1 needs, plus execution hints.
struct PlanRequest {
  ModelSpec model;
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  core::HarmonyMode mode = core::HarmonyMode::kPipelineParallel;
  int minibatch = 1;
  core::OptimizationFlags flags;
  core::SearchOptions options;
  /// Also execute one simulated iteration of the chosen plan and attach its
  /// RunMetrics to the response. Fingerprinted (the response differs).
  bool run_iteration = false;

  // --- execution hints: affect *how* the request runs, never the plan, and
  // --- are therefore excluded from the fingerprint.
  int deadline_ms = 0;       // 0 = no deadline
  bool bypass_cache = false; // force a fresh search (cold-path debugging)
};

/// A planning response. `status` uses the serving codes for load-shedding
/// (ResourceExhausted + retry_after_ms), deadlines (DeadlineExceeded) and
/// drain (Unavailable) in addition to search failures.
struct PlanResponse {
  Status status = Status::Ok();
  uint64_t fingerprint = 0;
  bool cache_hit = false;
  /// How the cluster tier resolved a local miss without a search: "" (a
  /// normal hit or a locally searched plan), "peer" (fetched from the
  /// fingerprint's owner daemon), or "disk" (revived from the warm store).
  std::string filled_from;
  int retry_after_ms = 0;        // set when status is ResourceExhausted
  double latency_seconds = 0;    // service-side end-to-end latency

  core::Configuration config;
  core::Estimate estimate;
  int configs_explored = 0;
  int configs_feasible = 0;
  double search_seconds = 0;     // wall time of the (cold) search

  bool has_metrics = false;
  runtime::RunMetrics metrics;   // when the request asked to run_iteration
};

// --- per-type JSON writers/readers (fixed member order; see contract) -----
json::Value ModelSpecToJson(const ModelSpec& spec);
Result<ModelSpec> ModelSpecFromJson(const json::Value& v);

json::Value MachineSpecToJson(const hw::MachineSpec& machine);
Result<hw::MachineSpec> MachineSpecFromJson(const json::Value& v);

json::Value SearchOptionsToJson(const core::SearchOptions& options);
Result<core::SearchOptions> SearchOptionsFromJson(const json::Value& v);

json::Value OptimizationFlagsToJson(const core::OptimizationFlags& flags);
Result<core::OptimizationFlags> OptimizationFlagsFromJson(const json::Value& v);

json::Value ConfigurationToJson(const core::Configuration& config);
Result<core::Configuration> ConfigurationFromJson(const json::Value& v);

json::Value EstimateToJson(const core::Estimate& estimate);
Result<core::Estimate> EstimateFromJson(const json::Value& v);

json::Value RunMetricsToJson(const runtime::RunMetrics& metrics);
Result<runtime::RunMetrics> RunMetricsFromJson(const json::Value& v);

json::Value PlanRequestToJson(const PlanRequest& request);
Result<PlanRequest> PlanRequestFromJson(const json::Value& v);

json::Value PlanResponseToJson(const PlanResponse& response);
Result<PlanResponse> PlanResponseFromJson(const json::Value& v);

/// The cluster tier's peer-fill probe (DESIGN.md §13): a daemon that missed
/// its PlanCache asks the fingerprint's owner whether *it* holds the plan.
/// Lookup-only on the owner side — a cache_get never starts a search and
/// never forwards, so a tier-wide stampede can't recurse. The canonical
/// request bytes ride along so the owner verifies them exactly like a local
/// Lookup does: a fingerprint collision degrades to a miss across the wire
/// too.
struct CacheGetRequest {
  uint64_t fingerprint = 0;
  std::string canonical_request;
};

/// Full {"type":"cache_get",...} envelope (fixed member order; the frame
/// bytes are part of the wire contract and pinned in wire_test).
json::Value CacheGetRequestToJson(const CacheGetRequest& request);
Result<CacheGetRequest> CacheGetRequestFromJson(const json::Value& v);

/// Canonical byte string the fingerprint hashes: the request's semantic
/// fields only (model, machine, mode, minibatch, flags, the four semantic
/// search knobs, run_iteration). Execution hints (deadline, cache bypass)
/// and result-identical knobs (num_threads, keep_explored — the search is
/// bit-identical at any thread count) are deliberately excluded, so a
/// retried request with a longer deadline still hits the cache.
std::string CanonicalRequestJson(const PlanRequest& request);

/// FNV-1a over CanonicalRequestJson — the plan cache's content address.
uint64_t RequestFingerprint(const PlanRequest& request);

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_WIRE_H_
