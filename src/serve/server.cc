#include "serve/server.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "serve/wire.h"

namespace harmony::serve {

namespace {

// The loop currently running on this thread. A PlanService completion
// callback fired inline (cache hit, load shed) compares against it to skip
// the eventfd round-trip and deliver the response directly.
thread_local void* g_current_loop = nullptr;

json::Value ServiceStatsToJson(const ServiceStats& s) {
  json::Value v = json::Value::Object();
  v.Set("admitted", static_cast<int64_t>(s.admitted));
  v.Set("coalesced", static_cast<int64_t>(s.coalesced));
  v.Set("cache_hits", static_cast<int64_t>(s.cache_hits));
  v.Set("filled", static_cast<int64_t>(s.filled));
  v.Set("searches", static_cast<int64_t>(s.searches));
  v.Set("completed", static_cast<int64_t>(s.completed));
  v.Set("rejected", static_cast<int64_t>(s.rejected));
  v.Set("deadline_exceeded", static_cast<int64_t>(s.deadline_exceeded));
  return v;
}

json::Value CacheStatsToJson(const CacheStats& s) {
  json::Value v = json::Value::Object();
  v.Set("hits", static_cast<int64_t>(s.hits));
  v.Set("misses", static_cast<int64_t>(s.misses));
  v.Set("insertions", static_cast<int64_t>(s.insertions));
  v.Set("evictions", static_cast<int64_t>(s.evictions));
  v.Set("entries", static_cast<int64_t>(s.entries));
  v.Set("bytes", static_cast<int64_t>(s.bytes));
  return v;
}

json::Value FrontendStatsToJson(const FrontendStats& s) {
  json::Value v = json::Value::Object();
  v.Set("connections_live", s.connections_live);
  v.Set("connections_accepted", s.connections_accepted);
  v.Set("connections_rejected", s.connections_rejected);
  v.Set("connections_reaped_idle", s.connections_reaped_idle);
  v.Set("connections_reaped_deadline", s.connections_reaped_deadline);
  v.Set("connections_closed", s.connections_closed);
  v.Set("frames_received", s.frames_received);
  v.Set("frames_in_flight", s.frames_in_flight);
  v.Set("epoll_wakeups", s.epoll_wakeups);
  v.Set("bytes_buffered", s.bytes_buffered);
  v.Set("fastpath_hits", s.fastpath_hits);
  return v;
}

std::string ErrorPayload(const std::string& message) {
  json::Value v = json::Value::Object();
  v.Set("type", "error");
  v.Set("error", message);
  return v.Dump();
}

}  // namespace

PlanServer::PlanServer(PlanService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.loop_threads < 1) options_.loop_threads = 1;
  if (options_.max_pipeline_frames < 1) options_.max_pipeline_frames = 1;
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Listen() {
  if (!options_.unix_path.empty()) {
    auto fd = net::ListenUnix(options_.unix_path);
    HARMONY_RETURN_IF_ERROR(fd.status());
    listen_fd_ = fd.value();
  } else if (options_.use_tcp) {
    auto fd = net::ListenTcp(options_.tcp_port);
    HARMONY_RETURN_IF_ERROR(fd.status());
    listen_fd_ = fd.value();
    auto port = net::BoundPort(listen_fd_);
    HARMONY_RETURN_IF_ERROR(port.status());
    bound_port_ = port.value();
  } else {
    return Status::InvalidArgument(
        "ServerOptions names no endpoint (set unix_path or use_tcp)");
  }
  return net::SetNonBlocking(listen_fd_);
}

void PlanServer::Start() {
  HARMONY_CHECK_GE(listen_fd_, 0) << "Start() before a successful Listen()";
  const int n = options_.loop_threads;
  loops_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    HARMONY_CHECK_GE(loop->epoll_fd, 0) << "epoll_create1 failed";
    auto efd = net::CreateEventFd();
    HARMONY_CHECK(efd.ok()) << efd.status();
    loop->event_fd = efd.value();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->event_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    if (i == 0) {
      // Loop 0 owns the listener: accepted connections are assigned to
      // loops round-robin (self directly, peers via their incoming queue).
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw]() { LoopMain(raw); });
  }
}

void PlanServer::LoopMain(Loop* loop) {
  g_current_loop = loop;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    // A 100ms tick bounds how stale the idle/partial-frame reaper can run;
    // everything latency-sensitive arrives as an epoll event or an eventfd
    // signal, never waits for the tick.
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      HARMONY_LOG(Warning) << "epoll_wait failed: errno=" << errno;
      break;
    }
    if (n > 0) epoll_wakeups_.fetch_add(1, std::memory_order_relaxed);
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      const int fd = ev.data.fd;
      if (fd == loop->event_fd) {
        net::DrainEventFd(fd);
        continue;
      }
      if (loop->index == 0 && fd == listen_fd_) {
        // Defer accepts past the connection events: a connection closed in
        // this batch may release its fd number, and adopting a new tenant
        // before the batch ends would let a stale queued event hit it.
        accept_ready = true;
        continue;
      }
      auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      if ((ev.events & (EPOLLHUP | EPOLLERR)) && !(ev.events & EPOLLIN)) {
        CloseConn(loop, conn, "hangup");
        continue;
      }
      if (ev.events & EPOLLIN) HandleReadable(loop, conn);
      if (!conn->dead && (ev.events & EPOLLOUT)) FlushConn(loop, conn);
    }
    DrainCompletions(loop);
    DrainIncoming(loop);
    if (accept_ready) HandleAccepts(loop);
    ReapTimeouts(loop);
    loop->dying.clear();
  }
  // Teardown: one best-effort flush (an already-queued shutdown "ok" should
  // still reach the client), then close everything this loop owns.
  for (auto& [fd, conn] : loop->conns) {
    (void)conn->writer.Flush(fd);
    bytes_buffered_.fetch_sub(
        static_cast<int64_t>(conn->writer.pending_bytes()),
        std::memory_order_relaxed);
    net::CloseFd(fd);
    connections_live_.fetch_sub(1, std::memory_order_relaxed);
    connections_closed_.fetch_add(1, std::memory_order_relaxed);
    EmitConnEvent(trace::EventKind::kServeConnClose, loop->index, fd,
                  "server-stop", 0);
  }
  loop->conns.clear();
  loop->dying.clear();
  g_current_loop = nullptr;
}

void PlanServer::HandleAccepts(Loop* loop) {
  for (;;) {
    auto accepted = net::AcceptNonBlocking(listen_fd_);
    if (!accepted.ok()) {
      if (accepted.status().code() != StatusCode::kUnavailable &&
          !stopping_.load(std::memory_order_relaxed)) {
        HARMONY_LOG(Warning) << "accept failed: " << accepted.status();
      }
      return;
    }
    const int fd = accepted.value();
    if (options_.use_tcp) net::SetTcpNoDelay(fd);
    if (connections_live_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Explicit refusal, not a hang: the frame is tiny, so a single
      // non-blocking flush into the fresh socket's empty buffer delivers it.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      net::FrameWriter writer;
      writer.QueueFrame(
          ErrorPayload("server at connection capacity, retry later"));
      (void)writer.Flush(fd);
      net::CloseFd(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_live_.fetch_add(1, std::memory_order_relaxed);
    Loop* target = loops_[accept_rr_++ % loops_.size()].get();
    if (target == loop) {
      AdoptConnection(loop, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(target->mu);
        target->incoming.push_back(fd);
      }
      net::SignalEventFd(target->event_fd);
    }
  }
}

void PlanServer::AdoptConnection(Loop* loop, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->gen = loop->next_gen++;
  conn->decoder = net::FrameDecoder(options_.max_frame_bytes);
  conn->last_activity = Clock::now();
  conn->events = EPOLLIN;
  epoll_event ev{};
  ev.events = conn->events;
  ev.data.fd = fd;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  EmitConnEvent(trace::EventKind::kServeConnOpen, loop->index, fd, "", 0);
  loop->conns.emplace(fd, std::move(conn));
}

void PlanServer::HandleReadable(Loop* loop, Conn* conn) {
  char buf[64 * 1024];
  // Bounded reads per wakeup so one fire-hosing connection can't starve the
  // rest of the loop; level-triggered epoll re-reports the remainder.
  for (int round = 0; round < 16; ++round) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(loop, conn, "read-error");
      return;
    }
    if (n == 0) {
      // Clean EOF. Responses for frames still in flight have nowhere to go;
      // their completions are dropped by the generation check.
      CloseConn(loop, conn, "eof");
      return;
    }
    conn->last_activity = Clock::now();
    const bool was_mid = conn->mid_frame;
    const Status fed = conn->decoder.Feed(buf, static_cast<size_t>(n));
    conn->mid_frame = conn->decoder.mid_frame();
    if (conn->mid_frame && !was_mid) conn->frame_start = conn->last_activity;
    if (!fed.ok()) {
      // Oversized length prefix: the stream can no longer be framed. Answer
      // frames that completed before the poison, then an error frame, then
      // close once everything queued has flushed.
      ProcessFrames(loop, conn);
      if (conn->dead) return;
      // stop_reading is set BEFORE delivering, so the flush underneath the
      // delivery sees it and closes the moment the error frame drains.
      conn->stop_reading = true;
      DeliverError(loop, conn, conn->next_seq++,
                   "frame rejected: " + fed.ToString());
      break;
    }
    ProcessFrames(loop, conn);
    if (conn->dead) return;
    if (conn->stop_reading) break;
    if (n < static_cast<ssize_t>(sizeof(buf))) break;  // socket drained
  }
  if (!conn->dead) UpdateInterest(loop, conn);
}

void PlanServer::ProcessFrames(Loop* loop, Conn* conn) {
  while (!conn->dead && !conn->stop_reading && conn->decoder.HasFrame()) {
    if (conn->service_inflight >= options_.max_pipeline_frames) break;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    DispatchFrame(loop, conn, conn->decoder.PopFrame());
  }
}

void PlanServer::DispatchFrame(Loop* loop, Conn* conn, std::string payload) {
  const uint64_t seq = conn->next_seq++;

  // Warm fast path: a byte-identical request already answered from the plan
  // cache replays the memoized response without parsing a byte of JSON.
  if (options_.response_memo_entries > 0) {
    const uint64_t h = json::Fnv1a(payload);
    auto it = loop->memo.find(h);
    if (it != loop->memo.end() && it->second.request == payload) {
      fastpath_hits_.fetch_add(1, std::memory_order_relaxed);
      EmitConnEvent(trace::EventKind::kServeFastPath, loop->index, conn->fd,
                    "", static_cast<int64_t>(it->second.response->size()));
      DeliverResponse(loop, conn, seq, std::string(*it->second.response));
      return;
    }
  }

  auto parsed = json::Parse(payload);
  if (!parsed.ok()) {
    // The framing is intact — only this payload is garbage. Answer with an
    // error frame and keep the connection usable.
    DeliverError(loop, conn, seq, "bad frame: " + parsed.status().ToString());
    return;
  }
  const json::Value& envelope = parsed.value();
  std::string type;
  if (!envelope.is_object() ||
      !json::ReadString(envelope, "type", &type).ok()) {
    DeliverError(loop, conn, seq, "envelope missing \"type\"");
    return;
  }

  if (type == "ping") {
    json::Value reply = json::Value::Object();
    reply.Set("type", "pong");
    DeliverResponse(loop, conn, seq, reply.Dump());
    return;
  }

  if (type == "stats") {
    DeliverResponse(loop, conn, seq, BuildStatsPayload());
    return;
  }

  if (type == "shutdown") {
    json::Value reply = json::Value::Object();
    reply.Set("type", "ok");
    // Stop() joins the loop threads — including this one — so the teardown
    // must run in the owner thread (Wait() observes the request). The "ok"
    // still honors pipelining order: it flushes after every response ahead
    // of it, then the connection closes (stop_reading is set before the
    // delivery so the flush underneath it performs the close).
    conn->stop_reading = true;
    DeliverResponse(loop, conn, seq, reply.Dump());
    RequestStop();
    return;
  }

  if (type == "plan") {
    const json::Value* req = envelope.Find("request");
    if (req == nullptr) {
      DeliverError(loop, conn, seq, "plan envelope missing \"request\"");
      return;
    }
    auto request = PlanRequestFromJson(*req);
    if (!request.ok()) {
      DeliverError(loop, conn, seq,
                   "bad plan request: " + request.status().ToString());
      return;
    }
    conn->service_inflight++;
    frames_in_flight_.fetch_add(1, std::memory_order_relaxed);
    const int conn_fd = conn->fd;
    const uint64_t conn_gen = conn->gen;
    const bool memoizable = options_.response_memo_entries > 0;
    // Load-shed / cache-hit outcomes run this callback inline on the loop
    // thread; searches run it on a PlanService worker, which serializes the
    // envelope off-loop and posts the bytes through the completion queue.
    service_->SubmitAsync(
        request.value(),
        [this, loop, conn_fd, conn_gen, seq, memoizable,
         request_bytes = std::move(payload)](PlanResponse response) mutable {
          json::Value reply = json::Value::Object();
          reply.Set("type", "plan");
          reply.Set("response", PlanResponseToJson(response));
          Completion c;
          c.fd = conn_fd;
          c.gen = conn_gen;
          c.seq = seq;
          c.payload = reply.Dump();
          // Only plan-cache hits are memoized: the cached bytes must carry
          // cache_hit=true, exactly what a real service round-trip would say.
          if (memoizable && response.status.ok() && response.cache_hit) {
            c.memo_key = std::move(request_bytes);
          }
          if (g_current_loop == loop) {
            ConsumeCompletion(loop, std::move(c));
          } else {
            PostCompletion(loop, std::move(c));
          }
        });
    return;
  }

  // Extension envelopes (the cluster tier's "cache_get"): lookup-only
  // handlers answer inline on the loop thread; an empty reply means the
  // type is unknown to the extension too.
  if (options_.extension) {
    std::string reply = options_.extension(type, envelope);
    if (!reply.empty()) {
      DeliverResponse(loop, conn, seq, std::move(reply));
      return;
    }
  }

  DeliverError(loop, conn, seq, "unknown envelope type \"" + type + "\"");
}

void PlanServer::DeliverError(Loop* loop, Conn* conn, uint64_t seq,
                              const std::string& message) {
  DeliverResponse(loop, conn, seq, ErrorPayload(message));
}

void PlanServer::DeliverResponse(Loop* loop, Conn* conn, uint64_t seq,
                                 std::string payload) {
  if (conn->dead) return;
  if (seq != conn->next_to_send) {
    // Completed out of request order; park until the gap before it closes.
    conn->out_of_order.emplace(seq, std::move(payload));
    return;
  }
  bytes_buffered_.fetch_add(static_cast<int64_t>(payload.size()) + 4,
                            std::memory_order_relaxed);
  conn->writer.QueueFrame(payload);
  ++conn->next_to_send;
  for (auto it = conn->out_of_order.find(conn->next_to_send);
       it != conn->out_of_order.end();
       it = conn->out_of_order.find(conn->next_to_send)) {
    bytes_buffered_.fetch_add(static_cast<int64_t>(it->second.size()) + 4,
                              std::memory_order_relaxed);
    conn->writer.QueueFrame(it->second);
    conn->out_of_order.erase(it);
    ++conn->next_to_send;
  }
  FlushConn(loop, conn);
}

void PlanServer::FlushConn(Loop* loop, Conn* conn) {
  if (conn->dead) return;
  const size_t before = conn->writer.pending_bytes();
  const Status st = conn->writer.Flush(conn->fd);
  bytes_buffered_.fetch_sub(
      static_cast<int64_t>(before - conn->writer.pending_bytes()),
      std::memory_order_relaxed);
  if (!st.ok()) {
    CloseConn(loop, conn, "peer-closed");
    return;
  }
  if (conn->stop_reading && conn->service_inflight == 0 &&
      conn->out_of_order.empty() && conn->writer.pending_bytes() == 0) {
    CloseConn(loop, conn, "closed-after-flush");
    return;
  }
  UpdateInterest(loop, conn);
}

void PlanServer::UpdateInterest(Loop* loop, Conn* conn) {
  uint32_t want = 0;
  // EPOLLIN comes off while the pipelining window is full (level-triggered
  // epoll would otherwise spin on the unread bytes) and once the connection
  // is draining toward close.
  if (!conn->stop_reading &&
      conn->service_inflight < options_.max_pipeline_frames) {
    want |= EPOLLIN;
  }
  if (conn->writer.pending_bytes() > 0) want |= EPOLLOUT;
  if (want == conn->events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->events = want;
}

void PlanServer::CloseConn(Loop* loop, Conn* conn, const char* reason) {
  if (conn->dead) return;
  conn->dead = true;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  bytes_buffered_.fetch_sub(static_cast<int64_t>(conn->writer.pending_bytes()),
                            std::memory_order_relaxed);
  net::CloseFd(conn->fd);
  connections_live_.fetch_sub(1, std::memory_order_relaxed);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  EmitConnEvent(trace::EventKind::kServeConnClose, loop->index, conn->fd,
                reason, 0);
  // The Conn object must survive until the current loop iteration finishes
  // (callers up the stack still hold the pointer); park it in the graveyard.
  auto node = loop->conns.extract(conn->fd);
  if (!node.empty()) loop->dying.push_back(std::move(node.mapped()));
}

void PlanServer::DrainCompletions(Loop* loop) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    batch.swap(loop->completions);
  }
  for (auto& c : batch) ConsumeCompletion(loop, std::move(c));
}

void PlanServer::DrainIncoming(Loop* loop) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    fds.swap(loop->incoming);
  }
  for (int fd : fds) AdoptConnection(loop, fd);
}

void PlanServer::ConsumeCompletion(Loop* loop, Completion c) {
  frames_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (!c.memo_key.empty()) {
    MemoInsert(loop, std::move(c.memo_key), c.payload);
  }
  auto it = loop->conns.find(c.fd);
  if (it == loop->conns.end() || it->second->gen != c.gen ||
      it->second->dead) {
    return;  // the connection died while the request was in flight
  }
  Conn* conn = it->second.get();
  conn->service_inflight--;
  DeliverResponse(loop, conn, c.seq, std::move(c.payload));
  if (conn->dead) return;
  // Draining below the pipelining window may unblock frames the throttle
  // left sitting in the decoder — and re-arms EPOLLIN for the socket.
  ProcessFrames(loop, conn);
  if (!conn->dead) UpdateInterest(loop, conn);
}

void PlanServer::PostCompletion(Loop* loop, Completion c) {
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->completions.push_back(std::move(c));
  }
  net::SignalEventFd(loop->event_fd);
}

void PlanServer::MemoInsert(Loop* loop, std::string key, std::string payload) {
  auto& memo = loop->memo;
  if (memo.size() >= static_cast<size_t>(options_.response_memo_entries)) {
    // Epoch flush: the memo refills from plan-cache hits within a few
    // round-trips, and wholesale clearing keeps the structure allocation-
    // and scan-free on the hot path.
    memo.clear();
  }
  const uint64_t h = json::Fnv1a(key);
  MemoEntry entry;
  entry.request = std::move(key);
  entry.response = std::make_shared<const std::string>(std::move(payload));
  memo[h] = std::move(entry);
}

void PlanServer::ReapTimeouts(Loop* loop) {
  if (options_.idle_timeout_ms <= 0 && options_.frame_deadline_ms <= 0) return;
  const Clock::time_point now = Clock::now();
  std::vector<Conn*> idle, stalled;
  for (auto& [fd, conn] : loop->conns) {
    const auto since_activity = std::chrono::duration_cast<
        std::chrono::milliseconds>(now - conn->last_activity).count();
    if (options_.frame_deadline_ms > 0 && conn->mid_frame) {
      const auto mid_for = std::chrono::duration_cast<
          std::chrono::milliseconds>(now - conn->frame_start).count();
      if (mid_for > options_.frame_deadline_ms) {
        stalled.push_back(conn.get());
        continue;
      }
    }
    // Idle means *fully* idle: nothing half-read, nothing in flight, nothing
    // waiting to flush. A connection blocked on a long cold search is live.
    if (options_.idle_timeout_ms > 0 && !conn->mid_frame &&
        conn->service_inflight == 0 && conn->writer.pending_bytes() == 0 &&
        since_activity > options_.idle_timeout_ms) {
      idle.push_back(conn.get());
    }
  }
  for (Conn* conn : stalled) {
    connections_reaped_deadline_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, conn, "frame-deadline");
  }
  for (Conn* conn : idle) {
    connections_reaped_idle_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, conn, "idle-timeout");
  }
}

std::string PlanServer::BuildStatsPayload() {
  json::Value reply = json::Value::Object();
  reply.Set("type", "stats");
  reply.Set("service", ServiceStatsToJson(service_->stats()));
  reply.Set("cache", CacheStatsToJson(service_->cache_stats()));
  reply.Set("frontend", FrontendStatsToJson(frontend_stats()));
  if (options_.stats_extension) reply.Set("cluster", options_.stats_extension());
  return reply.Dump();
}

FrontendStats PlanServer::frontend_stats() const {
  FrontendStats s;
  s.connections_live = connections_live_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.connections_reaped_idle =
      connections_reaped_idle_.load(std::memory_order_relaxed);
  s.connections_reaped_deadline =
      connections_reaped_deadline_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_in_flight = frames_in_flight_.load(std::memory_order_relaxed);
  s.epoll_wakeups = epoll_wakeups_.load(std::memory_order_relaxed);
  s.bytes_buffered = bytes_buffered_.load(std::memory_order_relaxed);
  s.fastpath_hits = fastpath_hits_.load(std::memory_order_relaxed);
  return s;
}

void PlanServer::EmitConnEvent(trace::EventKind kind, int loop_index, int fd,
                               const char* detail, int64_t bytes) {
  trace::TraceBus* bus = options_.bus;
  if (bus == nullptr || !bus->active()) return;
  trace::Event e;
  e.kind = kind;
  e.lane = trace::Lane::kServe;
  e.device = loop_index;
  e.task = fd;
  e.detail = detail;
  e.bytes = bytes;
  e.time = std::chrono::duration<double>(Clock::now() - epoch_).count();
  std::lock_guard<std::mutex> lock(trace_mu_);
  bus->Emit(e);
}

void PlanServer::Stop() {
  RequestStop();
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is stopping; wait for it to finish so Stop() always
    // returns with the server fully down.
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopped_cv_.wait(lock, [this]() { return stopped_; });
    return;
  }
  // Wake every loop; they observe stopping_ and exit, closing their
  // connections on the way out (after a best-effort final flush).
  for (auto& loop : loops_) {
    if (loop->event_fd >= 0) net::SignalEventFd(loop->event_fd);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain the service with the loops down but their eventfds still open:
  // in-flight completion callbacks post into the (now unread) queues
  // harmlessly instead of racing a closed fd.
  service_->Shutdown(/*cancel_inflight=*/false);
  for (auto& loop : loops_) {
    if (loop->event_fd >= 0) net::CloseFd(loop->event_fd);
    if (loop->epoll_fd >= 0) net::CloseFd(loop->epoll_fd);
    loop->event_fd = -1;
    loop->epoll_fd = -1;
  }
  // Notify while holding the lock: a waiter in Wait()/Stop() may destroy
  // this object as soon as it observes stopped_, so the notify must not
  // still be touching the condition variable afterwards.
  std::lock_guard<std::mutex> lock(stop_mu_);
  stopped_ = true;
  stopped_cv_.notify_all();
}

void PlanServer::RequestStop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_requested_.store(true, std::memory_order_relaxed);
  stopped_cv_.notify_all();
}

void PlanServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopped_cv_.wait(lock, [this]() {
      return stopped_ || stop_requested_.load(std::memory_order_relaxed);
    });
  }
  // The shutdown frame only *requests* the stop (a loop thread cannot join
  // itself); the owner thread performs the teardown here.
  Stop();
}

}  // namespace harmony::serve
