#include "serve/server.h"

#include <poll.h>

#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "serve/wire.h"

namespace harmony::serve {

namespace {

json::Value ServiceStatsToJson(const ServiceStats& s) {
  json::Value v = json::Value::Object();
  v.Set("admitted", static_cast<int64_t>(s.admitted));
  v.Set("coalesced", static_cast<int64_t>(s.coalesced));
  v.Set("cache_hits", static_cast<int64_t>(s.cache_hits));
  v.Set("searches", static_cast<int64_t>(s.searches));
  v.Set("completed", static_cast<int64_t>(s.completed));
  v.Set("rejected", static_cast<int64_t>(s.rejected));
  v.Set("deadline_exceeded", static_cast<int64_t>(s.deadline_exceeded));
  return v;
}

json::Value CacheStatsToJson(const CacheStats& s) {
  json::Value v = json::Value::Object();
  v.Set("hits", static_cast<int64_t>(s.hits));
  v.Set("misses", static_cast<int64_t>(s.misses));
  v.Set("insertions", static_cast<int64_t>(s.insertions));
  v.Set("evictions", static_cast<int64_t>(s.evictions));
  v.Set("entries", static_cast<int64_t>(s.entries));
  v.Set("bytes", static_cast<int64_t>(s.bytes));
  return v;
}

Status SendJson(int fd, const json::Value& v) {
  return net::SendFrame(fd, v.Dump());
}

Status SendError(int fd, const std::string& message) {
  json::Value v = json::Value::Object();
  v.Set("type", "error");
  v.Set("error", message);
  return SendJson(fd, v);
}

}  // namespace

PlanServer::PlanServer(PlanService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Listen() {
  if (!options_.unix_path.empty()) {
    auto fd = net::ListenUnix(options_.unix_path);
    HARMONY_RETURN_IF_ERROR(fd.status());
    listen_fd_ = fd.value();
    return Status::Ok();
  }
  if (!options_.use_tcp) {
    return Status::InvalidArgument(
        "ServerOptions names no endpoint (set unix_path or use_tcp)");
  }
  auto fd = net::ListenTcp(options_.tcp_port);
  HARMONY_RETURN_IF_ERROR(fd.status());
  listen_fd_ = fd.value();
  auto port = net::BoundPort(listen_fd_);
  HARMONY_RETURN_IF_ERROR(port.status());
  bound_port_ = port.value();
  return Status::Ok();
}

void PlanServer::Start() {
  HARMONY_CHECK_GE(listen_fd_, 0) << "Start() before a successful Listen()";
  acceptor_ = std::thread([this]() { AcceptLoop(); });
}

void PlanServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Poll with a timeout instead of blocking in accept(2), so Stop() is
    // observed within one tick even if no connection ever arrives.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    auto conn = net::Accept(listen_fd_);
    if (!conn.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      HARMONY_LOG(Warning) << "accept failed: " << conn.status();
      continue;
    }
    const int fd = conn.value();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      net::CloseFd(fd);
      break;
    }
    // Reap finished connection threads on every accept, so a long-running
    // daemon serving many short-lived connections never accumulates
    // unjoined handles; the survivors also give an accurate live count for
    // the cap below.
    ReapFinishedLocked();
    if (connections_.size() >= static_cast<size_t>(options_.max_connections)) {
      SendError(fd, "server at connection capacity, retry later");
      net::CloseFd(fd);
      continue;
    }
    connections_.push_back(std::make_unique<Connection>());
    Connection* entry = connections_.back().get();
    entry->thread = std::thread([this, fd, entry]() {
      HandleConnection(fd);
      entry->done.store(true, std::memory_order_release);
    });
  }
}

void PlanServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();  // already past its last statement: returns fast
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanServer::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Same poll-then-read discipline as the acceptor: a connection idling
    // between frames re-checks stopping_ every tick, so Stop() never hangs
    // on a client that forgot to disconnect.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    auto frame = net::RecvFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      // NotFound is the peer hanging up between frames — the normal end of
      // a connection. Anything else is worth a log line.
      if (frame.status().code() != StatusCode::kNotFound) {
        HARMONY_LOG(Warning) << "connection error: " << frame.status();
      }
      break;
    }
    if (!HandleFrame(fd, frame.value())) break;
  }
  net::CloseFd(fd);
}

bool PlanServer::HandleFrame(int fd, const std::string& payload) {
  auto parsed = json::Parse(payload);
  if (!parsed.ok()) {
    SendError(fd, "bad frame: " + parsed.status().ToString());
    return false;
  }
  const json::Value& envelope = parsed.value();
  std::string type;
  if (!envelope.is_object() ||
      !json::ReadString(envelope, "type", &type).ok()) {
    SendError(fd, "envelope missing \"type\"");
    return false;
  }

  if (type == "ping") {
    json::Value reply = json::Value::Object();
    reply.Set("type", "pong");
    return SendJson(fd, reply).ok();
  }

  if (type == "stats") {
    json::Value reply = json::Value::Object();
    reply.Set("type", "stats");
    reply.Set("service", ServiceStatsToJson(service_->stats()));
    reply.Set("cache", CacheStatsToJson(service_->cache_stats()));
    return SendJson(fd, reply).ok();
  }

  if (type == "shutdown") {
    json::Value reply = json::Value::Object();
    reply.Set("type", "ok");
    SendJson(fd, reply);
    // Stop() joins connection threads — including this one — so the actual
    // teardown must run in the owner thread. Flag the request (Wait() and
    // the daemon loop observe it) and close this connection.
    RequestStop();
    return false;
  }

  if (type == "plan") {
    const json::Value* req = envelope.Find("request");
    if (req == nullptr) {
      SendError(fd, "plan envelope missing \"request\"");
      return false;
    }
    auto request = PlanRequestFromJson(*req);
    if (!request.ok()) {
      SendError(fd, "bad plan request: " + request.status().ToString());
      return false;
    }
    // Blocks this connection thread until the plan is ready; load-shedding
    // is inside the service, so a full queue returns quickly with
    // ResourceExhausted rather than stalling here.
    PlanResponse response = service_->Plan(request.value());
    json::Value reply = json::Value::Object();
    reply.Set("type", "plan");
    reply.Set("response", PlanResponseToJson(response));
    return SendJson(fd, reply).ok();
  }

  SendError(fd, "unknown envelope type \"" + type + "\"");
  return false;
}

void PlanServer::Stop() {
  RequestStop();
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is stopping; wait for it to finish so Stop() always
    // returns with the server fully down.
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopped_cv_.wait(lock, [this]() { return stopped_; });
    return;
  }
  // Closing the listener makes the acceptor's poll/accept fail fast; the
  // fd member itself is only reset after the join, once no thread reads it.
  if (listen_fd_ >= 0) net::CloseFd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  std::list<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& c : conns) c->thread.join();
  service_->Shutdown(/*cancel_inflight=*/false);
  // Notify while holding the lock: a waiter in Wait()/Stop() may destroy
  // this object as soon as it observes stopped_, so the notify must not
  // still be touching the condition variable afterwards.
  std::lock_guard<std::mutex> lock(stop_mu_);
  stopped_ = true;
  stopped_cv_.notify_all();
}

void PlanServer::RequestStop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_requested_.store(true, std::memory_order_relaxed);
  stopped_cv_.notify_all();
}

void PlanServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopped_cv_.wait(lock, [this]() {
      return stopped_ || stop_requested_.load(std::memory_order_relaxed);
    });
  }
  // The shutdown frame only *requests* the stop (its connection thread
  // cannot join itself); the owner thread performs the teardown here.
  Stop();
}

}  // namespace harmony::serve
