#ifndef HARMONY_SERVE_SERVER_H_
#define HARMONY_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/socket.h"
#include "serve/plan_service.h"

namespace harmony::serve {

/// Where the daemon listens. Exactly one of `unix_path` / `tcp` is used;
/// a non-empty `unix_path` wins.
struct ServerOptions {
  std::string unix_path;
  int tcp_port = 0;      // 0 = pick a free loopback port (see bound_port())
  bool use_tcp = false;
  /// Maximum accepted frame payload (a corrupt peer can't balloon memory).
  size_t max_frame_bytes = 64ull << 20;
  /// Maximum live connections (each owns a thread). Beyond it the acceptor
  /// answers with an error frame and closes — explicit refusal, not a hang.
  int max_connections = 256;
};

/// The socket front-end of PlanService: accepts connections on a Unix-domain
/// or loopback TCP listener and speaks the length-prefixed JSON protocol of
/// DESIGN.md §9. Envelopes:
///
///   {"type":"plan","request":{...}}  -> {"type":"plan","response":{...}}
///   {"type":"stats"}                 -> {"type":"stats","service":{...},"cache":{...}}
///   {"type":"ping"}                  -> {"type":"pong"}
///   {"type":"shutdown"}              -> {"type":"ok"}, then the server stops
///   anything malformed               -> {"type":"error","error":"..."}
///
/// Threading: one acceptor thread (poll(2) with a timeout, so Stop() is
/// noticed promptly) plus one thread per live connection. A connection
/// processes its frames sequentially — concurrency across requests comes
/// from clients opening multiple connections, which maps one-to-one onto
/// PlanService's admission bound. Backpressure therefore reaches the client
/// as an explicit ResourceExhausted response, never as an opaque stall.
class PlanServer {
 public:
  /// Borrows `service`, which must outlive the server.
  PlanServer(PlanService* service, ServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds the listener. Call before Start(); fails if the endpoint is taken.
  Status Listen();

  /// Spawns the acceptor thread. Listen() must have succeeded.
  void Start();

  /// Stops accepting, closes the listener, joins connection threads, and
  /// drains the underlying PlanService. Idempotent; concurrent callers block
  /// until the teardown completes. Never call from a connection thread —
  /// Stop() joins them (a {"type":"shutdown"} frame therefore only
  /// *requests* the stop; see Wait()).
  void Stop();

  /// Asks the owner thread to run Stop(): sets the request flag Wait() and
  /// stop_requested() observe. Safe from any thread, including connection
  /// handlers.
  void RequestStop();

  /// True once a shutdown has been requested (signal loop integration).
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Blocks until a stop is requested (a {"type":"shutdown"} frame or
  /// RequestStop() from e.g. a signal handler thread), then performs the
  /// Stop() in the calling thread and returns once the server is down.
  void Wait();

  /// The TCP port actually bound (for tcp_port = 0). Valid after Listen().
  int bound_port() const { return bound_port_; }

  /// True once Stop() has fully completed (e.g. a client sent "shutdown").
  bool stopped() const {
    std::lock_guard<std::mutex> lock(stop_mu_);
    return stopped_;
  }

 private:
  /// One live connection. `done` is set by the handler thread as its last
  /// action, letting the acceptor reap (join + erase) finished entries
  /// without blocking on live ones — a long-lived daemon serving short-lived
  /// connections must not accumulate unjoined thread handles.
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Dispatches one envelope; returns false when the connection should close.
  bool HandleFrame(int fd, const std::string& payload);
  /// Joins and erases finished connections. Caller holds conn_mu_.
  void ReapFinishedLocked();

  PlanService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stop_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_SERVER_H_
