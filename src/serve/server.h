#ifndef HARMONY_SERVE_SERVER_H_
#define HARMONY_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.h"
#include "serve/plan_service.h"
#include "trace/trace.h"

namespace harmony::serve {

/// Where the daemon listens and how the reactor is shaped. Exactly one of
/// `unix_path` / `tcp` is used; a non-empty `unix_path` wins.
struct ServerOptions {
  std::string unix_path;
  int tcp_port = 0;      // 0 = pick a free loopback port (see bound_port())
  bool use_tcp = false;
  /// Maximum accepted frame payload (a corrupt peer can't balloon memory).
  size_t max_frame_bytes = 64ull << 20;
  /// Maximum live connections across all loops. Beyond it the acceptor
  /// answers with an error frame and closes — explicit refusal, not a hang.
  int max_connections = 256;
  /// Event-loop threads. One loop drives thousands of connections; more
  /// loops only help when frame parsing itself saturates a core.
  int loop_threads = 1;
  /// Idle-connection timeout: a connection with no inbound bytes, no frames
  /// in flight and nothing buffered to write for this long is reaped.
  /// 0 disables (embedded/test servers); the daemon defaults it on.
  int idle_timeout_ms = 0;
  /// Partial-frame ("slow loris") deadline: once the first byte of a frame
  /// arrives, the rest must follow within this window or the connection is
  /// reaped. Bounds how long a stalled peer can pin per-connection buffers.
  int frame_deadline_ms = 30000;
  /// Per-connection pipelining window: frames admitted but not yet answered.
  /// At the cap the loop stops reading that connection (EPOLLIN off) until
  /// responses drain — flow control, not an error.
  int max_pipeline_frames = 128;
  /// Warm-path byte memo: exact request-frame bytes -> exact response-frame
  /// bytes, filled only from plan-cache hits. A memo hit skips JSON parsing
  /// entirely, which is what lets one pipelined connection push past the
  /// thread-per-connection throughput plateau. 0 disables.
  int response_memo_entries = 1024;
  /// Optional observer (borrowed) for reactor lifecycle events
  /// (kServeConnOpen/kServeConnClose/kServeFastPath). Emissions are
  /// serialized; event times are wall-clock seconds since server start.
  trace::TraceBus* bus = nullptr;
  /// Envelope extension hook (the cluster tier's "cache_get" handler plugs
  /// in here). Consulted for envelope types the reactor itself doesn't
  /// know; returns the serialized reply payload, or "" to fall through to
  /// the unknown-type error. Called on loop threads — must be thread-safe
  /// and must not block (extension handlers are lookup-only by contract).
  std::function<std::string(const std::string& type,
                            const json::Value& envelope)>
      extension;
  /// Extra member for the {"type":"stats"} reply: when set, its result is
  /// attached as the "cluster" block next to service/cache/frontend.
  std::function<json::Value()> stats_extension;
};

/// Frontend (reactor) counters, surfaced in the {"type":"stats"} envelope
/// next to the service and cache blocks.
struct FrontendStats {
  int64_t connections_live = 0;
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;       // refused at max_connections
  int64_t connections_reaped_idle = 0;    // idle-timeout reaps
  int64_t connections_reaped_deadline = 0;  // partial-frame deadline reaps
  int64_t connections_closed = 0;         // total closed, any reason
  int64_t frames_received = 0;            // complete frames dispatched
  int64_t frames_in_flight = 0;           // submitted, response not delivered
  int64_t epoll_wakeups = 0;              // epoll_wait returns with events
  int64_t bytes_buffered = 0;             // current output backlog, all conns
  int64_t fastpath_hits = 0;              // answered from the byte memo
};

/// The socket front-end of PlanService: an epoll-based reactor speaking the
/// length-prefixed JSON protocol of DESIGN.md §9 on a Unix-domain or
/// loopback TCP listener. Envelopes:
///
///   {"type":"plan","request":{...}}  -> {"type":"plan","response":{...}}
///   {"type":"stats"}                 -> {"type":"stats","service":{...},
///                                        "cache":{...},"frontend":{...}}
///   {"type":"ping"}                  -> {"type":"pong"}
///   {"type":"shutdown"}              -> {"type":"ok"}, then the server stops
///   anything malformed               -> {"type":"error","error":"..."}
///
/// Threading: `loop_threads` event-loop threads own all connections (each
/// connection is pinned to one loop, so its state is single-threaded by
/// construction). Loops do level-triggered non-blocking reads/writes with
/// per-connection frame state machines; complete plan requests are handed to
/// PlanService's worker pool, and responses come back through an eventfd
/// completion queue to the owning loop. Connections may *pipeline*: many
/// frames in flight, responses always delivered in request order. Bounded
/// admission still reaches the client as an explicit ResourceExhausted
/// response, never a stall; a frame whose payload is garbage JSON gets an
/// error frame and the connection stays usable (length-prefix framing is
/// self-synchronizing) — only framing-level violations (an oversized length
/// prefix) close it.
class PlanServer {
 public:
  /// Borrows `service`, which must outlive the server.
  PlanServer(PlanService* service, ServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds the listener. Call before Start(); fails if the endpoint is taken.
  Status Listen();

  /// Spawns the event-loop threads. Listen() must have succeeded.
  void Start();

  /// Stops the loops (closing every connection), closes the listener, joins
  /// loop threads, and drains the underlying PlanService. Idempotent;
  /// concurrent callers block until the teardown completes. Never call from
  /// a loop thread — Stop() joins them (a {"type":"shutdown"} frame
  /// therefore only *requests* the stop; see Wait()).
  void Stop();

  /// Asks the owner thread to run Stop(): sets the request flag Wait() and
  /// stop_requested() observe. Safe from any thread, including loop threads.
  void RequestStop();

  /// True once a shutdown has been requested (signal loop integration).
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Blocks until a stop is requested (a {"type":"shutdown"} frame or
  /// RequestStop() from e.g. a signal handler thread), then performs the
  /// Stop() in the calling thread and returns once the server is down.
  void Wait();

  /// The TCP port actually bound (for tcp_port = 0). Valid after Listen().
  int bound_port() const { return bound_port_; }

  /// True once Stop() has fully completed (e.g. a client sent "shutdown").
  bool stopped() const {
    std::lock_guard<std::mutex> lock(stop_mu_);
    return stopped_;
  }

  /// Snapshot of the reactor counters (what the stats envelope reports).
  FrontendStats frontend_stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One live connection, owned by exactly one loop — all mutation happens
  /// on that loop's thread. `gen` disambiguates a recycled fd number: a
  /// completion for a previous tenant of this fd must be dropped, not
  /// delivered to the new connection.
  struct Conn {
    int fd = -1;
    uint64_t gen = 0;
    net::FrameDecoder decoder;
    net::FrameWriter writer;
    uint64_t next_seq = 0;      // sequence assigned to the next inbound frame
    uint64_t next_to_send = 0;  // next sequence the writer may emit
    /// Responses that completed out of request order, parked until the gap
    /// before them closes (the pipelining ordering guarantee).
    std::map<uint64_t, std::string> out_of_order;
    int service_inflight = 0;   // frames submitted, response not delivered
    uint32_t events = 0;        // current epoll interest mask
    bool stop_reading = false;  // shutdown/oversized: drain writes, then close
    bool dead = false;          // closed; reclaimed at end of loop iteration
    bool mid_frame = false;     // decoder holds a partial frame
    Clock::time_point last_activity;
    Clock::time_point frame_start;  // when the current partial frame began
  };

  /// A response marshalled back to the owning loop by a worker thread.
  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    uint64_t seq = 0;
    std::string payload;   // serialized response envelope
    std::string memo_key;  // non-empty: memoize payload under these bytes
  };

  struct MemoEntry {
    std::string request;  // exact frame bytes (hash collisions degrade to miss)
    std::shared_ptr<const std::string> response;
  };

  /// One event-loop thread: epoll set, wakeup eventfd, completion queue,
  /// connections, and the warm-path byte memo (loop-local: no lock).
  struct Loop {
    int index = 0;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::mutex mu;  // guards completions + incoming (the only shared state)
    std::vector<Completion> completions;
    std::vector<int> incoming;  // fds assigned to this loop by the acceptor
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::vector<std::unique_ptr<Conn>> dying;  // deferred reclamation
    std::unordered_map<uint64_t, MemoEntry> memo;
    uint64_t next_gen = 1;
  };

  void LoopMain(Loop* loop);
  void HandleAccepts(Loop* loop);
  void AdoptConnection(Loop* loop, int fd);
  void HandleReadable(Loop* loop, Conn* conn);
  /// Dispatches decoded frames while under the pipelining window.
  void ProcessFrames(Loop* loop, Conn* conn);
  void DispatchFrame(Loop* loop, Conn* conn, std::string payload);
  /// Ordered delivery: queues at `seq` or parks it until the gap closes.
  void DeliverResponse(Loop* loop, Conn* conn, uint64_t seq,
                       std::string payload);
  void DeliverError(Loop* loop, Conn* conn, uint64_t seq,
                    const std::string& message);
  void FlushConn(Loop* loop, Conn* conn);
  void UpdateInterest(Loop* loop, Conn* conn);
  void CloseConn(Loop* loop, Conn* conn, const char* reason);
  void DrainCompletions(Loop* loop);
  void DrainIncoming(Loop* loop);
  void ConsumeCompletion(Loop* loop, Completion c);
  void PostCompletion(Loop* loop, Completion c);
  void MemoInsert(Loop* loop, std::string key, std::string payload);
  void ReapTimeouts(Loop* loop);
  std::string BuildStatsPayload();
  void EmitConnEvent(trace::EventKind kind, int loop_index, int fd,
                     const char* detail, int64_t bytes);

  PlanService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;

  std::vector<std::unique_ptr<Loop>> loops_;
  uint64_t accept_rr_ = 0;  // round-robin loop assignment (loop 0 only)

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};

  // Frontend counters (FrontendStats). Atomics because loops, workers and
  // stats readers touch them concurrently.
  std::atomic<int64_t> connections_live_{0};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> connections_reaped_idle_{0};
  std::atomic<int64_t> connections_reaped_deadline_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> frames_in_flight_{0};
  std::atomic<int64_t> epoll_wakeups_{0};
  std::atomic<int64_t> bytes_buffered_{0};
  std::atomic<int64_t> fastpath_hits_{0};

  const Clock::time_point epoch_ = Clock::now();
  std::mutex trace_mu_;  // serializes bus emissions

  mutable std::mutex stop_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_SERVER_H_
