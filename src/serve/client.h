#ifndef HARMONY_SERVE_CLIENT_H_
#define HARMONY_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "common/json.h"
#include "common/socket.h"
#include "serve/wire.h"

namespace harmony::serve {

/// A blocking client for one PlanServer connection. Speaks the envelope
/// protocol of server.h over the length-prefixed frame transport; used by
/// harmony_client, the serve smoke test and the e2e test.
///
/// Not thread-safe: a connection carries one request/response exchange at a
/// time. Load generators open one ServeClient per client thread — which is
/// exactly how the admission bound is meant to be exercised.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Status ConnectUnix(const std::string& path);
  Status ConnectTcp(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends a plan request and blocks for the response. Transport failures
  /// surface here; planning failures travel inside PlanResponse::status.
  Result<PlanResponse> Plan(const PlanRequest& request);

  /// Self-healing Plan: retries load-shed responses (ResourceExhausted,
  /// honoring the server's retry-after hint as a delay floor) and
  /// peer-closed frames (reconnecting to the saved endpoint first) with the
  /// shared jittered-backoff policy. Never retries past the request's
  /// deadline_ms or the retry budget — the last failure surfaces then.
  struct RetryOptions {
    int max_retries = 5;
    common::BackoffPolicy backoff{/*initial=*/0.05, /*max_delay=*/2.0,
                                  /*multiplier=*/2.0, /*jitter=*/0.5};
    uint64_t seed = 0;  // jitter seed (fix it for deterministic tests)
  };
  Result<PlanResponse> PlanWithRetry(const PlanRequest& request,
                                     const RetryOptions& retry);
  Result<PlanResponse> PlanWithRetry(const PlanRequest& request) {
    return PlanWithRetry(request, RetryOptions());
  }

  /// Retries PlanWithRetry performed on this client (reconnects + backoffs).
  int64_t retries() const { return retries_; }

  /// {"type":"stats"} — returns the reply envelope (service/cache members).
  Result<json::Value> Stats();

  /// {"type":"ping"} — liveness check.
  Status Ping();

  /// Asks the daemon to stop (it drains in-flight requests first).
  Status Shutdown();

 private:
  /// One request/response round trip; checks the reply's envelope type.
  Result<json::Value> RoundTrip(const json::Value& envelope,
                                const std::string& expect_type);
  /// Re-dials the endpoint the last Connect* call saved.
  Status Reconnect();

  enum class Endpoint { kNone, kUnix, kTcp };

  int fd_ = -1;
  Endpoint endpoint_ = Endpoint::kNone;
  std::string unix_path_;
  std::string tcp_host_;
  int tcp_port_ = 0;
  int64_t retries_ = 0;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_CLIENT_H_
