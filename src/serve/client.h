#ifndef HARMONY_SERVE_CLIENT_H_
#define HARMONY_SERVE_CLIENT_H_

#include <string>

#include "common/json.h"
#include "common/socket.h"
#include "serve/wire.h"

namespace harmony::serve {

/// A blocking client for one PlanServer connection. Speaks the envelope
/// protocol of server.h over the length-prefixed frame transport; used by
/// harmony_client, the serve smoke test and the e2e test.
///
/// Not thread-safe: a connection carries one request/response exchange at a
/// time. Load generators open one ServeClient per client thread — which is
/// exactly how the admission bound is meant to be exercised.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Status ConnectUnix(const std::string& path);
  Status ConnectTcp(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends a plan request and blocks for the response. Transport failures
  /// surface here; planning failures travel inside PlanResponse::status.
  Result<PlanResponse> Plan(const PlanRequest& request);

  /// {"type":"stats"} — returns the reply envelope (service/cache members).
  Result<json::Value> Stats();

  /// {"type":"ping"} — liveness check.
  Status Ping();

  /// Asks the daemon to stop (it drains in-flight requests first).
  Status Shutdown();

 private:
  /// One request/response round trip; checks the reply's envelope type.
  Result<json::Value> RoundTrip(const json::Value& envelope,
                                const std::string& expect_type);

  int fd_ = -1;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_CLIENT_H_
