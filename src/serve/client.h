#ifndef HARMONY_SERVE_CLIENT_H_
#define HARMONY_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "common/json.h"
#include "common/socket.h"
#include "serve/wire.h"

namespace harmony::serve {

/// A client for one PlanServer connection. Speaks the envelope protocol of
/// server.h over the length-prefixed frame transport; used by harmony_client,
/// the serve smoke test, the e2e test and the throughput bench.
///
/// Two usage modes on the same connection:
///  - blocking round trips (Plan/Stats/Ping/Shutdown), one exchange at a
///    time — the original API, unchanged;
///  - pipelining (SendNowait/Collect): many requests in flight at once. The
///    reactor answers in request order, so the k-th Collect() returns the
///    response to the k-th SendNowait() — no correlation ids needed.
///
/// Not thread-safe: one thread drives a connection. Load generators open one
/// ServeClient per client thread — which is exactly how the admission bound
/// is meant to be exercised.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Status ConnectUnix(const std::string& path);
  Status ConnectTcp(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends a plan request and blocks for the response. Transport failures
  /// surface here; planning failures travel inside PlanResponse::status.
  Result<PlanResponse> Plan(const PlanRequest& request);

  /// Self-healing Plan: retries load-shed responses (ResourceExhausted,
  /// honoring the server's retry-after hint as a delay floor) and
  /// peer-closed frames (reconnecting to the saved endpoint first) with the
  /// shared jittered-backoff policy. Never retries past the request's
  /// deadline_ms or the retry budget — the last failure surfaces then.
  struct RetryOptions {
    int max_retries = 5;
    common::BackoffPolicy backoff = common::kPlanRetryBackoff;
    uint64_t seed = 0;  // jitter seed (fix it for deterministic tests)
  };
  Result<PlanResponse> PlanWithRetry(const PlanRequest& request,
                                     const RetryOptions& retry);
  Result<PlanResponse> PlanWithRetry(const PlanRequest& request) {
    return PlanWithRetry(request, RetryOptions());
  }

  /// Retries PlanWithRetry performed on this client (reconnects + backoffs).
  int64_t retries() const { return retries_; }

  // --- pipelined API ------------------------------------------------------

  /// Serializes a {"type":"plan"} envelope once. Feed it back through
  /// SendEncodedNowait to keep JSON encoding off a load generator's hot loop
  /// (the server's warm fast path is byte-addressed, so replaying identical
  /// bytes is also what makes it hit).
  static std::string EncodePlanEnvelope(const PlanRequest& request);

  /// Queues one plan request without waiting for its response. Bounded by
  /// the server's pipelining window (ServerOptions::max_pipeline_frames):
  /// keep fewer frames in flight than that, or the server stops reading
  /// while this side keeps a blocking send — mutual stall by design of the
  /// flow control, so the window contract is the caller's to respect.
  Status SendNowait(const PlanRequest& request);
  Status SendEncodedNowait(const std::string& envelope_bytes);

  /// Blocks for the oldest in-flight response (responses arrive in
  /// SendNowait order). Transport failures surface here; planning failures
  /// travel inside PlanResponse::status.
  Result<PlanResponse> Collect();

  /// Collect without parsing: the raw response envelope bytes. The bench's
  /// hot path — decode selectively, off the clock.
  Result<std::string> CollectRaw();

  /// Requests sent but not yet collected on this connection.
  int in_flight() const { return in_flight_; }

  /// {"type":"stats"} — returns the reply envelope (service/cache/frontend
  /// members).
  Result<json::Value> Stats();

  /// Generic blocking exchange of a pre-encoded envelope whose reply is
  /// expected to carry `expect_type` (the cluster tier's cache_get path
  /// uses this; extension envelope types don't need client methods each).
  /// "error" replies surface as Internal, like every other round trip.
  Result<json::Value> RoundTripEncoded(const std::string& envelope_bytes,
                                       const std::string& expect_type);

  /// {"type":"ping"} — liveness check.
  Status Ping();

  /// Asks the daemon to stop (it drains in-flight requests first).
  Status Shutdown();

  /// Human-readable target address ("unix:/run/h.sock", "tcp:host:port").
  /// Every connect/transport failure this client returns names it, so a
  /// multi-daemon deployment's errors are never ambiguous about which
  /// daemon misbehaved.
  std::string endpoint_description() const;

 private:
  /// Appends the endpoint description to a failed Status's message while
  /// preserving its code — PlanWithRetry and callers branch on codes
  /// (kNotFound = peer closed, kResourceExhausted = shed), so annotation
  /// must never rewrite them.
  Status AnnotateTransport(Status s) const;
  /// One request/response round trip; checks the reply's envelope type.
  Result<json::Value> RoundTrip(const json::Value& envelope,
                                const std::string& expect_type);
  /// Re-dials the endpoint the last Connect* call saved.
  Status Reconnect();

  enum class Endpoint { kNone, kUnix, kTcp };

  int fd_ = -1;
  Endpoint endpoint_ = Endpoint::kNone;
  std::string unix_path_;
  std::string tcp_host_;
  int tcp_port_ = 0;
  int64_t retries_ = 0;
  int in_flight_ = 0;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_CLIENT_H_
