#include "serve/plan_cache.h"

#include <utility>

#include "common/logging.h"

namespace harmony::serve {

size_t CachedPlan::ApproxBytes() const {
  size_t bytes = sizeof(CachedPlan);
  bytes += canonical_request.capacity();
  bytes += (config.fwd_packs.capacity() + config.bwd_packs.capacity()) *
           sizeof(core::Pack);
  if (has_metrics) {
    bytes += (metrics.swap_in_bytes.capacity() +
              metrics.swap_out_bytes.capacity() +
              metrics.p2p_bytes.capacity() +
              metrics.peak_device_bytes.capacity()) * sizeof(Bytes);
    bytes += metrics.compute_busy.capacity() * sizeof(TimeSec);
  }
  return bytes;
}

PlanCache::PlanCache(size_t byte_budget, int num_shards)
    : shards_(static_cast<size_t>(num_shards)) {
  HARMONY_CHECK_GT(num_shards, 0);
  HARMONY_CHECK_EQ(num_shards & (num_shards - 1), 0)
      << "num_shards must be a power of two";
  per_shard_budget_ = byte_budget / static_cast<size_t>(num_shards);
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t fingerprint, std::string_view canonical_request) {
  Shard& shard = ShardOf(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(fingerprint);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second.plan->canonical_request != canonical_request) {
    // 64-bit fingerprint collision between distinct requests: FNV-1a is not
    // cryptographic, so a hash match alone must never serve another
    // request's plan. Degrade to a miss (the first entry keeps its slot).
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.plan;
}

void PlanCache::Insert(uint64_t fingerprint,
                       std::shared_ptr<const CachedPlan> plan) {
  const size_t cost = plan->ApproxBytes();
  Shard& shard = ShardOf(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(fingerprint) != 0) return;  // lost race: identical plan
  if (cost > per_shard_budget_) return;           // larger than the shard: skip
  while (shard.bytes + cost > per_shard_budget_ && !shard.lru.empty()) {
    const uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.map.find(victim);
    shard.bytes -= vit->second.bytes;
    shard.map.erase(vit);
    ++shard.evictions;
  }
  shard.lru.push_front(fingerprint);
  Entry entry;
  entry.plan = std::move(plan);
  entry.bytes = cost;
  entry.lru_pos = shard.lru.begin();
  shard.map.emplace(fingerprint, std::move(entry));
  shard.bytes += cost;
  ++shard.insertions;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

CacheStats PlanCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.map.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace harmony::serve
