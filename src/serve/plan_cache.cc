#include "serve/plan_cache.h"

#include <utility>

#include "common/logging.h"

namespace harmony::serve {

size_t CachedPlan::ApproxBytes() const {
  size_t bytes = sizeof(CachedPlan);
  bytes += canonical_request.capacity();
  bytes += (config.fwd_packs.capacity() + config.bwd_packs.capacity()) *
           sizeof(core::Pack);
  if (has_metrics) {
    bytes += (metrics.swap_in_bytes.capacity() +
              metrics.swap_out_bytes.capacity() +
              metrics.p2p_bytes.capacity() +
              metrics.peak_device_bytes.capacity()) * sizeof(Bytes);
    bytes += metrics.compute_busy.capacity() * sizeof(TimeSec);
  }
  return bytes;
}

json::Value CachedPlanToJson(const CachedPlan& plan) {
  json::Value v = json::Value::Object();
  v.Set("canonical_request", plan.canonical_request);
  v.Set("config", ConfigurationToJson(plan.config));
  v.Set("estimate", EstimateToJson(plan.estimate));
  v.Set("configs_explored", plan.configs_explored);
  v.Set("configs_feasible", plan.configs_feasible);
  v.Set("search_seconds", plan.search_seconds);
  if (plan.has_metrics) v.Set("metrics", RunMetricsToJson(plan.metrics));
  return v;
}

Result<CachedPlan> CachedPlanFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("plan: not an object");
  CachedPlan p;
  HARMONY_RETURN_IF_ERROR(
      json::ReadString(v, "canonical_request", &p.canonical_request));
  const json::Value* config = v.Find("config");
  if (config == nullptr) return Status::InvalidArgument("plan: missing 'config'");
  auto c = ConfigurationFromJson(*config);
  HARMONY_RETURN_IF_ERROR(c.status());
  p.config = std::move(c).value();
  const json::Value* estimate = v.Find("estimate");
  if (estimate == nullptr) {
    return Status::InvalidArgument("plan: missing 'estimate'");
  }
  auto e = EstimateFromJson(*estimate);
  HARMONY_RETURN_IF_ERROR(e.status());
  p.estimate = e.value();
  HARMONY_RETURN_IF_ERROR(
      json::ReadInt(v, "configs_explored", &p.configs_explored));
  HARMONY_RETURN_IF_ERROR(
      json::ReadInt(v, "configs_feasible", &p.configs_feasible));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "search_seconds", &p.search_seconds));
  if (const json::Value* metrics = v.Find("metrics"); metrics != nullptr) {
    auto m = RunMetricsFromJson(*metrics);
    HARMONY_RETURN_IF_ERROR(m.status());
    p.metrics = std::move(m).value();
    p.has_metrics = true;
  }
  return p;
}

PlanCache::PlanCache(size_t byte_budget, int num_shards)
    : shards_(static_cast<size_t>(num_shards)) {
  HARMONY_CHECK_GT(num_shards, 0);
  HARMONY_CHECK_EQ(num_shards & (num_shards - 1), 0)
      << "num_shards must be a power of two";
  per_shard_budget_ = byte_budget / static_cast<size_t>(num_shards);
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t fingerprint, std::string_view canonical_request) {
  Shard& shard = ShardOf(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(fingerprint);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second.plan->canonical_request != canonical_request) {
    // 64-bit fingerprint collision between distinct requests: FNV-1a is not
    // cryptographic, so a hash match alone must never serve another
    // request's plan. Degrade to a miss (the first entry keeps its slot).
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.plan;
}

std::shared_ptr<const CachedPlan> PlanCache::Peek(
    uint64_t fingerprint, std::string_view canonical_request) const {
  const Shard& shard = ShardOf(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(fingerprint);
  if (it == shard.map.end()) return nullptr;
  if (it->second.plan->canonical_request != canonical_request) return nullptr;
  return it->second.plan;
}

void PlanCache::Insert(uint64_t fingerprint,
                       std::shared_ptr<const CachedPlan> plan) {
  const size_t cost = plan->ApproxBytes();
  Shard& shard = ShardOf(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(fingerprint) != 0) return;  // lost race: identical plan
  if (cost > per_shard_budget_) return;           // larger than the shard: skip
  while (shard.bytes + cost > per_shard_budget_ && !shard.lru.empty()) {
    const uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.map.find(victim);
    shard.bytes -= vit->second.bytes;
    shard.map.erase(vit);
    ++shard.evictions;
  }
  shard.lru.push_front(fingerprint);
  Entry entry;
  entry.plan = std::move(plan);
  entry.bytes = cost;
  entry.lru_pos = shard.lru.begin();
  shard.map.emplace(fingerprint, std::move(entry));
  shard.bytes += cost;
  ++shard.insertions;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

CacheStats PlanCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.map.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace harmony::serve
