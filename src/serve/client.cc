#include "serve/client.h"

namespace harmony::serve {

Status ServeClient::ConnectUnix(const std::string& path) {
  Close();
  auto fd = net::ConnectUnix(path);
  HARMONY_RETURN_IF_ERROR(fd.status());
  fd_ = fd.value();
  return Status::Ok();
}

Status ServeClient::ConnectTcp(const std::string& host, int port) {
  Close();
  auto fd = net::ConnectTcp(host, port);
  HARMONY_RETURN_IF_ERROR(fd.status());
  fd_ = fd.value();
  return Status::Ok();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    net::CloseFd(fd_);
    fd_ = -1;
  }
}

Result<json::Value> ServeClient::RoundTrip(const json::Value& envelope,
                                           const std::string& expect_type) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  HARMONY_RETURN_IF_ERROR(net::SendFrame(fd_, envelope.Dump()));
  auto frame = net::RecvFrame(fd_);
  HARMONY_RETURN_IF_ERROR(frame.status());
  auto reply = json::Parse(frame.value());
  HARMONY_RETURN_IF_ERROR(reply.status());
  std::string type;
  HARMONY_RETURN_IF_ERROR(json::ReadString(reply.value(), "type", &type));
  if (type == "error") {
    std::string error = "(no detail)";
    (void)json::ReadString(reply.value(), "error", &error);
    return Status::Internal("server error: " + error);
  }
  if (type != expect_type) {
    return Status::Internal("unexpected reply type \"" + type +
                            "\" (wanted \"" + expect_type + "\")");
  }
  return std::move(reply).value();
}

Result<PlanResponse> ServeClient::Plan(const PlanRequest& request) {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "plan");
  envelope.Set("request", PlanRequestToJson(request));
  auto reply = RoundTrip(envelope, "plan");
  HARMONY_RETURN_IF_ERROR(reply.status());
  const json::Value* response = reply.value().Find("response");
  if (response == nullptr) {
    return Status::Internal("plan reply missing \"response\"");
  }
  return PlanResponseFromJson(*response);
}

Result<json::Value> ServeClient::Stats() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "stats");
  return RoundTrip(envelope, "stats");
}

Status ServeClient::Ping() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "ping");
  return RoundTrip(envelope, "pong").status();
}

Status ServeClient::Shutdown() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "shutdown");
  return RoundTrip(envelope, "ok").status();
}

}  // namespace harmony::serve
