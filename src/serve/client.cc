#include "serve/client.h"

#include <chrono>
#include <thread>

#include "common/rng.h"

namespace harmony::serve {

Status ServeClient::ConnectUnix(const std::string& path) {
  Close();
  endpoint_ = Endpoint::kUnix;
  unix_path_ = path;
  auto fd = net::ConnectUnix(path);
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(fd.status()));
  fd_ = fd.value();
  return Status::Ok();
}

Status ServeClient::ConnectTcp(const std::string& host, int port) {
  Close();
  endpoint_ = Endpoint::kTcp;
  tcp_host_ = host;
  tcp_port_ = port;
  auto fd = net::ConnectTcp(host, port);
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(fd.status()));
  fd_ = fd.value();
  return Status::Ok();
}

std::string ServeClient::endpoint_description() const {
  switch (endpoint_) {
    case Endpoint::kUnix:
      return "unix:" + unix_path_;
    case Endpoint::kTcp:
      return "tcp:" + tcp_host_ + ":" + std::to_string(tcp_port_);
    case Endpoint::kNone:
      break;
  }
  return "(not connected)";
}

Status ServeClient::AnnotateTransport(Status s) const {
  if (s.ok()) return s;
  return Status(s.code(),
                s.message() + " [endpoint " + endpoint_description() + "]");
}

Status ServeClient::Reconnect() {
  switch (endpoint_) {
    case Endpoint::kUnix:
      return ConnectUnix(std::string(unix_path_));
    case Endpoint::kTcp:
      return ConnectTcp(std::string(tcp_host_), tcp_port_);
    case Endpoint::kNone:
      break;
  }
  return Status::FailedPrecondition("client was never connected");
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    net::CloseFd(fd_);
    fd_ = -1;
  }
  in_flight_ = 0;
}

Result<json::Value> ServeClient::RoundTrip(const json::Value& envelope,
                                           const std::string& expect_type) {
  return RoundTripEncoded(envelope.Dump(), expect_type);
}

Result<json::Value> ServeClient::RoundTripEncoded(
    const std::string& envelope_bytes, const std::string& expect_type) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  if (in_flight_ > 0) {
    // A blocking round trip would swallow the oldest pipelined response.
    return Status::FailedPrecondition(
        "Collect() in-flight responses before a blocking round trip");
  }
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(net::SendFrame(fd_, envelope_bytes)));
  auto frame = net::RecvFrame(fd_);
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(frame.status()));
  auto reply = json::Parse(frame.value());
  HARMONY_RETURN_IF_ERROR(reply.status());
  std::string type;
  HARMONY_RETURN_IF_ERROR(json::ReadString(reply.value(), "type", &type));
  if (type == "error") {
    std::string error = "(no detail)";
    (void)json::ReadString(reply.value(), "error", &error);
    return Status::Internal("server error: " + error);
  }
  if (type != expect_type) {
    return Status::Internal("unexpected reply type \"" + type +
                            "\" (wanted \"" + expect_type + "\")");
  }
  return std::move(reply).value();
}

Result<PlanResponse> ServeClient::Plan(const PlanRequest& request) {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "plan");
  envelope.Set("request", PlanRequestToJson(request));
  auto reply = RoundTrip(envelope, "plan");
  HARMONY_RETURN_IF_ERROR(reply.status());
  const json::Value* response = reply.value().Find("response");
  if (response == nullptr) {
    return Status::Internal("plan reply missing \"response\"");
  }
  return PlanResponseFromJson(*response);
}

Result<PlanResponse> ServeClient::PlanWithRetry(const PlanRequest& request,
                                                const RetryOptions& retry) {
  using Clock = std::chrono::steady_clock;
  Rng rng(retry.seed);
  const auto deadline =
      request.deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(request.deadline_ms)
          : Clock::time_point::max();
  for (int attempt = 0;; ++attempt) {
    auto result = Plan(request);

    // Decide whether this outcome is retryable, and with what delay floor.
    // Give-up paths return `result` as-is, preserving its shape: a shed
    // response stays an in-band ResourceExhausted, a closed peer stays a
    // transport Status.
    bool reconnect = false;
    double floor_seconds = 0.0;
    if (!result.ok()) {
      if (result.status().code() != StatusCode::kNotFound) {
        return result;  // a real transport/protocol error, not a clean close
      }
      // Peer closed the connection (restart, drain, LIFO shed): re-dial the
      // saved endpoint before the next attempt.
      reconnect = true;
    } else if (result.value().status.code() ==
               StatusCode::kResourceExhausted) {
      // Load-shed by admission control: the server's hint is a delay floor
      // under the shared backoff curve.
      floor_seconds = result.value().retry_after_ms / 1000.0;
    } else {
      return result;  // success, or a non-retryable planning failure
    }

    if (attempt >= retry.max_retries) return result;
    double delay = retry.backoff.DelayFor(attempt, &rng);
    delay = std::max(delay, floor_seconds);
    // Never retry past the request deadline: surface the last failure while
    // the caller still has time to act on it.
    if (Clock::now() + std::chrono::duration<double>(delay) >= deadline) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    ++retries_;
    if (reconnect) {
      Status rc = Reconnect();
      if (!rc.ok()) return rc;
    }
  }
}

std::string ServeClient::EncodePlanEnvelope(const PlanRequest& request) {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "plan");
  envelope.Set("request", PlanRequestToJson(request));
  return envelope.Dump();
}

Status ServeClient::SendNowait(const PlanRequest& request) {
  return SendEncodedNowait(EncodePlanEnvelope(request));
}

Status ServeClient::SendEncodedNowait(const std::string& envelope_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(net::SendFrame(fd_, envelope_bytes)));
  ++in_flight_;
  return Status::Ok();
}

Result<std::string> ServeClient::CollectRaw() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  if (in_flight_ <= 0) {
    return Status::FailedPrecondition("no requests in flight to collect");
  }
  auto frame = net::RecvFrame(fd_);
  HARMONY_RETURN_IF_ERROR(AnnotateTransport(frame.status()));
  --in_flight_;
  return std::move(frame).value();
}

Result<PlanResponse> ServeClient::Collect() {
  auto raw = CollectRaw();
  HARMONY_RETURN_IF_ERROR(raw.status());
  auto reply = json::Parse(raw.value());
  HARMONY_RETURN_IF_ERROR(reply.status());
  std::string type;
  HARMONY_RETURN_IF_ERROR(json::ReadString(reply.value(), "type", &type));
  if (type == "error") {
    std::string error = "(no detail)";
    (void)json::ReadString(reply.value(), "error", &error);
    return Status::Internal("server error: " + error);
  }
  if (type != "plan") {
    return Status::Internal("unexpected reply type \"" + type +
                            "\" (wanted \"plan\")");
  }
  const json::Value* response = reply.value().Find("response");
  if (response == nullptr) {
    return Status::Internal("plan reply missing \"response\"");
  }
  return PlanResponseFromJson(*response);
}

Result<json::Value> ServeClient::Stats() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "stats");
  return RoundTrip(envelope, "stats");
}

Status ServeClient::Ping() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "ping");
  return RoundTrip(envelope, "pong").status();
}

Status ServeClient::Shutdown() {
  json::Value envelope = json::Value::Object();
  envelope.Set("type", "shutdown");
  return RoundTrip(envelope, "ok").status();
}

}  // namespace harmony::serve
