#include "serve/wire.h"

#include <cstdlib>
#include <utility>

namespace harmony::serve {

namespace {

const char* ModeWireName(core::HarmonyMode mode) {
  return mode == core::HarmonyMode::kPipelineParallel ? "pp" : "dp";
}

Result<core::HarmonyMode> ModeFromWireName(const std::string& s) {
  if (s == "pp") return core::HarmonyMode::kPipelineParallel;
  if (s == "dp") return core::HarmonyMode::kDataParallel;
  return Status::InvalidArgument("unknown mode '" + s + "' (want dp|pp)");
}

Result<StatusCode> StatusCodeFromName(const std::string& s) {
  if (s == "OK") return StatusCode::kOk;
  if (s == "INVALID_ARGUMENT") return StatusCode::kInvalidArgument;
  if (s == "NOT_FOUND") return StatusCode::kNotFound;
  if (s == "OUT_OF_MEMORY") return StatusCode::kOutOfMemory;
  if (s == "FAILED_PRECONDITION") return StatusCode::kFailedPrecondition;
  if (s == "UNIMPLEMENTED") return StatusCode::kUnimplemented;
  if (s == "INTERNAL") return StatusCode::kInternal;
  if (s == "CANCELLED") return StatusCode::kCancelled;
  if (s == "DEADLINE_EXCEEDED") return StatusCode::kDeadlineExceeded;
  if (s == "RESOURCE_EXHAUSTED") return StatusCode::kResourceExhausted;
  if (s == "UNAVAILABLE") return StatusCode::kUnavailable;
  return Status::InvalidArgument("unknown status code '" + s + "'");
}

json::Value PackListToJson(const core::PackList& packs) {
  json::Value arr = json::Value::Array();
  for (const core::Pack& p : packs) {
    json::Value pair = json::Value::Array();
    pair.Append(json::Value::Int(p.lo));
    pair.Append(json::Value::Int(p.hi));
    arr.Append(std::move(pair));
  }
  return arr;
}

Result<core::PackList> PackListFromJson(const json::Value& v,
                                        std::string_view what) {
  if (!v.is_array()) {
    return Status::InvalidArgument(std::string(what) + ": not an array");
  }
  core::PackList packs;
  packs.reserve(v.size());
  for (const json::Value& item : v.items()) {
    if (!item.is_array() || item.size() != 2 || !item.at(0).is_number() ||
        !item.at(1).is_number()) {
      return Status::InvalidArgument(std::string(what) +
                                     ": pack must be [lo,hi]");
    }
    packs.push_back(core::Pack{static_cast<int>(item.at(0).AsInt()),
                               static_cast<int>(item.at(1).AsInt())});
  }
  return packs;
}

json::Value BytesArrayToJson(const std::vector<Bytes>& xs) {
  json::Value arr = json::Value::Array();
  for (Bytes b : xs) arr.Append(json::Value::Int(b));
  return arr;
}

json::Value TimesArrayToJson(const std::vector<TimeSec>& xs) {
  json::Value arr = json::Value::Array();
  for (TimeSec t : xs) arr.Append(json::Value::Number(t));
  return arr;
}

Status NumberArrayFromJson(const json::Value& obj, std::string_view key,
                           std::vector<double>* out) {
  const json::Value* v = obj.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' missing or not an array");
  }
  out->clear();
  for (const json::Value& item : v->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("field '" + std::string(key) +
                                     "' has a non-numeric element");
    }
    out->push_back(item.AsDouble());
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// ModelSpec
// ---------------------------------------------------------------------------

Result<ModelSpec> ModelSpec::FromName(const std::string& name) {
  ModelSpec spec;
  spec.name = name;
  static const char* kBuiltins[] = {"BERT-Large", "BERT96",  "GPT2",
                                    "GPT2-Medium", "VGG416", "ResNet1K"};
  for (const char* b : kBuiltins) {
    if (name == b) return spec;
  }
  if (name.rfind("GPT2-", 0) == 0 && name.size() > 6 && name.back() == 'B') {
    char* end = nullptr;
    const double billions = std::strtod(name.c_str() + 5, &end);
    if (end == name.c_str() + name.size() - 1 && billions > 0) {
      spec.kind = Kind::kGpt2Custom;
      spec.billions = billions;
      return spec;
    }
  }
  return Status::InvalidArgument(
      "unknown model '" + name +
      "' (want BERT-Large|BERT96|GPT2|GPT2-Medium|VGG416|ResNet1K|GPT2-<N>B)");
}

Result<model::LayerGraph> BuildModel(const ModelSpec& spec) {
  switch (spec.kind) {
    case ModelSpec::Kind::kBuiltin:
      if (spec.name == "BERT-Large") return model::BertLarge();
      if (spec.name == "BERT96") return model::Bert96();
      if (spec.name == "GPT2") return model::Gpt2();
      if (spec.name == "GPT2-Medium") return model::Gpt2Medium();
      if (spec.name == "VGG416") return model::Vgg416();
      if (spec.name == "ResNet1K") return model::ResNet1K();
      return Status::InvalidArgument("unknown builtin model '" + spec.name + "'");
    case ModelSpec::Kind::kGpt2Custom:
      if (spec.billions <= 0) {
        return Status::InvalidArgument("gpt2-custom: billions must be > 0");
      }
      return model::Gpt2Custom(spec.billions);
    case ModelSpec::Kind::kTransformer: {
      if (spec.transformer.num_blocks < 1 || spec.transformer.hidden < 1 ||
          spec.transformer.seq_len < 1 || spec.transformer.heads < 1 ||
          spec.transformer.vocab < 1) {
        return Status::InvalidArgument("transformer: all dimensions must be >= 1");
      }
      return model::BuildTransformer(spec.transformer);
    }
  }
  return Status::Internal("corrupt ModelSpec kind");
}

model::Optimizer DefaultOptimizer(const ModelSpec& spec) {
  if (spec.kind == ModelSpec::Kind::kBuiltin &&
      (spec.name == "VGG416" || spec.name == "ResNet1K")) {
    return model::Optimizer::kSgdMomentum;
  }
  return model::Optimizer::kAdam;
}

json::Value ModelSpecToJson(const ModelSpec& spec) {
  json::Value v = json::Value::Object();
  switch (spec.kind) {
    case ModelSpec::Kind::kBuiltin:
      v.Set("kind", "builtin");
      v.Set("name", spec.name);
      break;
    case ModelSpec::Kind::kGpt2Custom:
      v.Set("kind", "gpt2-custom");
      v.Set("name", spec.name);
      v.Set("billions", spec.billions);
      break;
    case ModelSpec::Kind::kTransformer:
      v.Set("kind", "transformer");
      v.Set("name", spec.transformer.name);
      v.Set("blocks", spec.transformer.num_blocks);
      v.Set("hidden", spec.transformer.hidden);
      v.Set("seq_len", spec.transformer.seq_len);
      v.Set("heads", spec.transformer.heads);
      v.Set("vocab", spec.transformer.vocab);
      v.Set("is_bert", spec.transformer.is_bert);
      break;
  }
  return v;
}

Result<ModelSpec> ModelSpecFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("model: not an object");
  std::string kind;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "kind", &kind));
  ModelSpec spec;
  if (kind == "builtin") {
    spec.kind = ModelSpec::Kind::kBuiltin;
    HARMONY_RETURN_IF_ERROR(json::ReadString(v, "name", &spec.name));
  } else if (kind == "gpt2-custom") {
    spec.kind = ModelSpec::Kind::kGpt2Custom;
    HARMONY_RETURN_IF_ERROR(json::ReadString(v, "name", &spec.name));
    HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "billions", &spec.billions));
  } else if (kind == "transformer") {
    spec.kind = ModelSpec::Kind::kTransformer;
    HARMONY_RETURN_IF_ERROR(json::ReadString(v, "name", &spec.transformer.name));
    spec.name = spec.transformer.name;
    HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "blocks", &spec.transformer.num_blocks));
    HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "hidden", &spec.transformer.hidden));
    HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "seq_len", &spec.transformer.seq_len));
    HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "heads", &spec.transformer.heads));
    HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "vocab", &spec.transformer.vocab));
    HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "is_bert", &spec.transformer.is_bert));
  } else {
    return Status::InvalidArgument("model: unknown kind '" + kind + "'");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// MachineSpec
// ---------------------------------------------------------------------------

json::Value MachineSpecToJson(const hw::MachineSpec& machine) {
  json::Value v = json::Value::Object();
  v.Set("name", machine.name);
  json::Value gpu = json::Value::Object();
  gpu.Set("name", machine.gpu.name);
  gpu.Set("memory_capacity", machine.gpu.memory_capacity);
  gpu.Set("peak_flops", machine.gpu.peak_flops);
  gpu.Set("usable_fraction", machine.gpu.usable_fraction);
  v.Set("gpu", std::move(gpu));
  v.Set("num_gpus", machine.num_gpus);
  v.Set("num_switches", machine.num_switches);
  json::Value topo = json::Value::Array();
  for (int s : machine.gpu_to_switch) topo.Append(json::Value::Int(s));
  v.Set("gpu_to_switch", std::move(topo));
  v.Set("pcie_bw", machine.pcie_bw);
  v.Set("uplink_bw", machine.uplink_bw);
  v.Set("host_mem_bw", machine.host_mem_bw);
  v.Set("nvlink_bw", machine.nvlink_bw);
  v.Set("host_memory", machine.host_memory);
  v.Set("cpu_update_bw", machine.cpu_update_bw);
  // Heterogeneous-fleet fields: emitted only when present, so homogeneous
  // machines keep their historical canonical bytes (and cache fingerprints).
  if (!machine.per_gpu.empty()) {
    json::Value per = json::Value::Array();
    for (const hw::GpuSpec& g : machine.per_gpu) {
      json::Value pg = json::Value::Object();
      pg.Set("name", g.name);
      pg.Set("memory_capacity", g.memory_capacity);
      pg.Set("peak_flops", g.peak_flops);
      pg.Set("usable_fraction", g.usable_fraction);
      per.Append(std::move(pg));
    }
    v.Set("per_gpu", std::move(per));
  }
  if (!machine.link_bw_scale.empty()) {
    json::Value scales = json::Value::Array();
    for (double s : machine.link_bw_scale) scales.Append(json::Value::Number(s));
    v.Set("link_bw_scale", std::move(scales));
  }
  return v;
}

Result<hw::MachineSpec> MachineSpecFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("machine: not an object");
  hw::MachineSpec m;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "name", &m.name));
  const json::Value* gpu = v.Find("gpu");
  if (gpu == nullptr || !gpu->is_object()) {
    return Status::InvalidArgument("machine: 'gpu' missing or not an object");
  }
  HARMONY_RETURN_IF_ERROR(json::ReadString(*gpu, "name", &m.gpu.name));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(*gpu, "memory_capacity", &m.gpu.memory_capacity));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(*gpu, "peak_flops", &m.gpu.peak_flops));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(*gpu, "usable_fraction", &m.gpu.usable_fraction));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "num_gpus", &m.num_gpus));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "num_switches", &m.num_switches));
  std::vector<double> topo;
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "gpu_to_switch", &topo));
  m.gpu_to_switch.assign(topo.begin(), topo.end());
  if (static_cast<int>(m.gpu_to_switch.size()) != m.num_gpus) {
    return Status::InvalidArgument("machine: gpu_to_switch size != num_gpus");
  }
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "pcie_bw", &m.pcie_bw));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "uplink_bw", &m.uplink_bw));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "host_mem_bw", &m.host_mem_bw));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "nvlink_bw", &m.nvlink_bw));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "host_memory", &m.host_memory));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "cpu_update_bw", &m.cpu_update_bw));
  if (m.num_gpus < 1) return Status::InvalidArgument("machine: num_gpus < 1");
  // Optional heterogeneous-fleet fields (absent from homogeneous peers).
  if (const json::Value* per = v.Find("per_gpu"); per != nullptr) {
    if (!per->is_array()) {
      return Status::InvalidArgument("machine: per_gpu is not an array");
    }
    for (size_t i = 0; i < per->size(); ++i) {
      const json::Value& pg = per->at(i);
      if (!pg.is_object()) {
        return Status::InvalidArgument("machine: per_gpu entry not an object");
      }
      hw::GpuSpec g;
      HARMONY_RETURN_IF_ERROR(json::ReadString(pg, "name", &g.name));
      HARMONY_RETURN_IF_ERROR(
          json::ReadInt64(pg, "memory_capacity", &g.memory_capacity));
      HARMONY_RETURN_IF_ERROR(json::ReadDouble(pg, "peak_flops", &g.peak_flops));
      HARMONY_RETURN_IF_ERROR(
          json::ReadDouble(pg, "usable_fraction", &g.usable_fraction));
      m.per_gpu.push_back(std::move(g));
    }
  }
  if (v.Find("link_bw_scale") != nullptr) {
    HARMONY_RETURN_IF_ERROR(
        NumberArrayFromJson(v, "link_bw_scale", &m.link_bw_scale));
  }
  HARMONY_RETURN_IF_ERROR(m.Validate());
  return m;
}

// ---------------------------------------------------------------------------
// SearchOptions / OptimizationFlags
// ---------------------------------------------------------------------------

json::Value SearchOptionsToJson(const core::SearchOptions& options) {
  json::Value v = json::Value::Object();
  v.Set("u_fwd_max", options.u_fwd_max);
  v.Set("u_bwd_max", options.u_bwd_max);
  v.Set("capacity_fraction", options.capacity_fraction);
  v.Set("equi_fb", options.equi_fb);
  v.Set("num_threads", options.num_threads);
  v.Set("keep_explored", options.keep_explored);
  v.Set("policy_mode", std::string(core::PolicyModeName(options.policy_mode)));
  return v;
}

Result<core::SearchOptions> SearchOptionsFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("options: not an object");
  core::SearchOptions o;
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "u_fwd_max", &o.u_fwd_max));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "u_bwd_max", &o.u_bwd_max));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "capacity_fraction", &o.capacity_fraction));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "equi_fb", &o.equi_fb));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "num_threads", &o.num_threads));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "keep_explored", &o.keep_explored));
  // Residency-policy knob: absent from pre-policy peers, so default to legacy.
  std::string policy_mode = "legacy";
  (void)json::ReadString(v, "policy_mode", &policy_mode);
  auto pm = core::PolicyModeFromName(policy_mode);
  HARMONY_RETURN_IF_ERROR(pm.status());
  o.policy_mode = pm.value();
  return o;
}

json::Value OptimizationFlagsToJson(const core::OptimizationFlags& flags) {
  json::Value v = json::Value::Object();
  v.Set("input_batch_grouping", flags.input_batch_grouping);
  v.Set("jit_update", flags.jit_update);
  v.Set("jit_compute", flags.jit_compute);
  v.Set("p2p_transfers", flags.p2p_transfers);
  v.Set("prefetch", flags.prefetch);
  v.Set("cpu_optimizer", flags.cpu_optimizer);
  v.Set("smart_eviction", flags.smart_eviction);
  v.Set("use_recompute", flags.use_recompute);
  return v;
}

Result<core::OptimizationFlags> OptimizationFlagsFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("flags: not an object");
  core::OptimizationFlags f;
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "input_batch_grouping", &f.input_batch_grouping));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "jit_update", &f.jit_update));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "jit_compute", &f.jit_compute));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "p2p_transfers", &f.p2p_transfers));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "prefetch", &f.prefetch));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "cpu_optimizer", &f.cpu_optimizer));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "smart_eviction", &f.smart_eviction));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "use_recompute", &f.use_recompute));
  return f;
}

// ---------------------------------------------------------------------------
// Configuration / Estimate / RunMetrics
// ---------------------------------------------------------------------------

json::Value ConfigurationToJson(const core::Configuration& config) {
  json::Value v = json::Value::Object();
  v.Set("u_fwd", config.u_fwd);
  v.Set("u_bwd", config.u_bwd);
  v.Set("fwd_packs", PackListToJson(config.fwd_packs));
  v.Set("bwd_packs", PackListToJson(config.bwd_packs));
  v.Set("policy", config.policy.ToString());
  return v;
}

Result<core::Configuration> ConfigurationFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("config: not an object");
  core::Configuration c;
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "u_fwd", &c.u_fwd));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "u_bwd", &c.u_bwd));
  const json::Value* fwd = v.Find("fwd_packs");
  const json::Value* bwd = v.Find("bwd_packs");
  if (fwd == nullptr || bwd == nullptr) {
    return Status::InvalidArgument("config: missing pack lists");
  }
  auto f = PackListFromJson(*fwd, "fwd_packs");
  HARMONY_RETURN_IF_ERROR(f.status());
  auto b = PackListFromJson(*bwd, "bwd_packs");
  HARMONY_RETURN_IF_ERROR(b.status());
  c.fwd_packs = std::move(f).value();
  c.bwd_packs = std::move(b).value();
  // Residency policy: absent from pre-policy peers ⇒ empty table (legacy).
  std::string policy;
  (void)json::ReadString(v, "policy", &policy);
  auto table = model::PolicyTable::FromString(policy);
  HARMONY_RETURN_IF_ERROR(table.status());
  c.policy = std::move(table).value();
  return c;
}

json::Value EstimateToJson(const core::Estimate& estimate) {
  json::Value v = json::Value::Object();
  v.Set("iteration_time", estimate.iteration_time);
  v.Set("swap_bytes", estimate.swap_bytes);
  v.Set("p2p_bytes", estimate.p2p_bytes);
  return v;
}

Result<core::Estimate> EstimateFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("estimate: not an object");
  core::Estimate e;
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "iteration_time", &e.iteration_time));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "swap_bytes", &e.swap_bytes));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "p2p_bytes", &e.p2p_bytes));
  return e;
}

json::Value RunMetricsToJson(const runtime::RunMetrics& metrics) {
  json::Value v = json::Value::Object();
  v.Set("iteration_time", metrics.iteration_time);
  v.Set("swap_in_bytes", BytesArrayToJson(metrics.swap_in_bytes));
  v.Set("swap_out_bytes", BytesArrayToJson(metrics.swap_out_bytes));
  v.Set("p2p_bytes", BytesArrayToJson(metrics.p2p_bytes));
  v.Set("compute_busy", TimesArrayToJson(metrics.compute_busy));
  v.Set("peak_device_bytes", BytesArrayToJson(metrics.peak_device_bytes));
  v.Set("peak_host_bytes", metrics.peak_host_bytes);
  v.Set("evictions", metrics.evictions);
  v.Set("clean_drops", metrics.clean_drops);
  v.Set("faults_injected", metrics.faults_injected);
  v.Set("faults_recovered", metrics.faults_recovered);
  v.Set("recovery_bytes", metrics.recovery_bytes);
  return v;
}

Result<runtime::RunMetrics> RunMetricsFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("metrics: not an object");
  runtime::RunMetrics m;
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "iteration_time", &m.iteration_time));
  std::vector<double> tmp;
  auto as_bytes = [&tmp](std::vector<Bytes>* out) {
    out->assign(tmp.begin(), tmp.end());
  };
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "swap_in_bytes", &tmp));
  as_bytes(&m.swap_in_bytes);
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "swap_out_bytes", &tmp));
  as_bytes(&m.swap_out_bytes);
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "p2p_bytes", &tmp));
  as_bytes(&m.p2p_bytes);
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "compute_busy", &tmp));
  m.compute_busy.assign(tmp.begin(), tmp.end());
  HARMONY_RETURN_IF_ERROR(NumberArrayFromJson(v, "peak_device_bytes", &tmp));
  as_bytes(&m.peak_device_bytes);
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "peak_host_bytes", &m.peak_host_bytes));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "evictions", &m.evictions));
  HARMONY_RETURN_IF_ERROR(json::ReadInt64(v, "clean_drops", &m.clean_drops));
  // Chaos accounting: absent from pre-fault peers, so default to zero.
  (void)json::ReadInt64(v, "faults_injected", &m.faults_injected);
  (void)json::ReadInt64(v, "faults_recovered", &m.faults_recovered);
  (void)json::ReadInt64(v, "recovery_bytes", &m.recovery_bytes);
  return m;
}

// ---------------------------------------------------------------------------
// PlanRequest / PlanResponse
// ---------------------------------------------------------------------------

namespace {

/// Shared by the wire writer and the canonical fingerprint string: the
/// semantic prefix every encoding of a request starts with.
void AppendSemanticFields(const PlanRequest& request, bool canonical,
                          json::Value* v) {
  v->Set("model", ModelSpecToJson(request.model));
  v->Set("machine", MachineSpecToJson(request.machine));
  v->Set("mode", ModeWireName(request.mode));
  v->Set("minibatch", request.minibatch);
  v->Set("flags", OptimizationFlagsToJson(request.flags));
  if (canonical) {
    // Only the five knobs that change the chosen plan.
    json::Value o = json::Value::Object();
    o.Set("u_fwd_max", request.options.u_fwd_max);
    o.Set("u_bwd_max", request.options.u_bwd_max);
    o.Set("capacity_fraction", request.options.capacity_fraction);
    o.Set("equi_fb", request.options.equi_fb);
    o.Set("policy_mode",
          std::string(core::PolicyModeName(request.options.policy_mode)));
    v->Set("options", std::move(o));
  } else {
    v->Set("options", SearchOptionsToJson(request.options));
  }
  v->Set("run_iteration", request.run_iteration);
}

}  // namespace

json::Value PlanRequestToJson(const PlanRequest& request) {
  json::Value v = json::Value::Object();
  AppendSemanticFields(request, /*canonical=*/false, &v);
  v.Set("deadline_ms", request.deadline_ms);
  v.Set("bypass_cache", request.bypass_cache);
  return v;
}

Result<PlanRequest> PlanRequestFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("request: not an object");
  PlanRequest r;
  const json::Value* model = v.Find("model");
  if (model == nullptr) return Status::InvalidArgument("request: missing 'model'");
  auto m = ModelSpecFromJson(*model);
  HARMONY_RETURN_IF_ERROR(m.status());
  r.model = std::move(m).value();
  const json::Value* machine = v.Find("machine");
  if (machine == nullptr) return Status::InvalidArgument("request: missing 'machine'");
  auto mach = MachineSpecFromJson(*machine);
  HARMONY_RETURN_IF_ERROR(mach.status());
  r.machine = std::move(mach).value();
  std::string mode;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "mode", &mode));
  auto md = ModeFromWireName(mode);
  HARMONY_RETURN_IF_ERROR(md.status());
  r.mode = md.value();
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "minibatch", &r.minibatch));
  if (r.minibatch < 1) return Status::InvalidArgument("request: minibatch < 1");
  const json::Value* flags = v.Find("flags");
  if (flags == nullptr) return Status::InvalidArgument("request: missing 'flags'");
  auto f = OptimizationFlagsFromJson(*flags);
  HARMONY_RETURN_IF_ERROR(f.status());
  r.flags = f.value();
  const json::Value* options = v.Find("options");
  if (options == nullptr) return Status::InvalidArgument("request: missing 'options'");
  auto o = SearchOptionsFromJson(*options);
  HARMONY_RETURN_IF_ERROR(o.status());
  r.options = o.value();
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "run_iteration", &r.run_iteration));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "deadline_ms", &r.deadline_ms));
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "bypass_cache", &r.bypass_cache));
  return r;
}

json::Value PlanResponseToJson(const PlanResponse& response) {
  json::Value v = json::Value::Object();
  v.Set("status", Status(response.status.code(), "").ToString());
  v.Set("message", response.status.message());
  v.Set("fingerprint", json::FingerprintHex(response.fingerprint));
  v.Set("cache_hit", response.cache_hit);
  v.Set("filled_from", response.filled_from);
  v.Set("retry_after_ms", response.retry_after_ms);
  v.Set("latency_seconds", response.latency_seconds);
  if (response.status.ok()) {
    v.Set("config", ConfigurationToJson(response.config));
    v.Set("estimate", EstimateToJson(response.estimate));
    v.Set("configs_explored", response.configs_explored);
    v.Set("configs_feasible", response.configs_feasible);
    v.Set("search_seconds", response.search_seconds);
    if (response.has_metrics) {
      v.Set("metrics", RunMetricsToJson(response.metrics));
    }
  }
  return v;
}

Result<PlanResponse> PlanResponseFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("response: not an object");
  PlanResponse r;
  std::string code_name, message, fp_hex;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "status", &code_name));
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "message", &message));
  auto code = StatusCodeFromName(code_name);
  HARMONY_RETURN_IF_ERROR(code.status());
  r.status = Status(code.value(), std::move(message));
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "fingerprint", &fp_hex));
  r.fingerprint = std::strtoull(fp_hex.c_str(), nullptr, 16);
  HARMONY_RETURN_IF_ERROR(json::ReadBool(v, "cache_hit", &r.cache_hit));
  // Tier provenance: absent from pre-cluster peers, so default to "".
  (void)json::ReadString(v, "filled_from", &r.filled_from);
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "retry_after_ms", &r.retry_after_ms));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "latency_seconds", &r.latency_seconds));
  if (!r.status.ok()) return r;
  const json::Value* config = v.Find("config");
  if (config == nullptr) return Status::InvalidArgument("response: missing 'config'");
  auto c = ConfigurationFromJson(*config);
  HARMONY_RETURN_IF_ERROR(c.status());
  r.config = std::move(c).value();
  const json::Value* estimate = v.Find("estimate");
  if (estimate == nullptr) return Status::InvalidArgument("response: missing 'estimate'");
  auto e = EstimateFromJson(*estimate);
  HARMONY_RETURN_IF_ERROR(e.status());
  r.estimate = e.value();
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "configs_explored", &r.configs_explored));
  HARMONY_RETURN_IF_ERROR(json::ReadInt(v, "configs_feasible", &r.configs_feasible));
  HARMONY_RETURN_IF_ERROR(json::ReadDouble(v, "search_seconds", &r.search_seconds));
  if (const json::Value* metrics = v.Find("metrics"); metrics != nullptr) {
    auto m = RunMetricsFromJson(*metrics);
    HARMONY_RETURN_IF_ERROR(m.status());
    r.metrics = std::move(m).value();
    r.has_metrics = true;
  }
  return r;
}

json::Value CacheGetRequestToJson(const CacheGetRequest& request) {
  json::Value v = json::Value::Object();
  v.Set("type", "cache_get");
  v.Set("fingerprint", json::FingerprintHex(request.fingerprint));
  v.Set("canonical", request.canonical_request);
  return v;
}

Result<CacheGetRequest> CacheGetRequestFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::InvalidArgument("cache_get: not an object");
  std::string type;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "type", &type));
  if (type != "cache_get") {
    return Status::InvalidArgument("cache_get: envelope type is '" + type + "'");
  }
  CacheGetRequest r;
  std::string fp_hex;
  HARMONY_RETURN_IF_ERROR(json::ReadString(v, "fingerprint", &fp_hex));
  r.fingerprint = std::strtoull(fp_hex.c_str(), nullptr, 16);
  HARMONY_RETURN_IF_ERROR(
      json::ReadString(v, "canonical", &r.canonical_request));
  return r;
}

std::string CanonicalRequestJson(const PlanRequest& request) {
  json::Value v = json::Value::Object();
  AppendSemanticFields(request, /*canonical=*/true, &v);
  return v.Dump();
}

uint64_t RequestFingerprint(const PlanRequest& request) {
  return json::Fnv1a(CanonicalRequestJson(request));
}

}  // namespace harmony::serve
