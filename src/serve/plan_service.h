#ifndef HARMONY_SERVE_PLAN_SERVICE_H_
#define HARMONY_SERVE_PLAN_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "profile/profiler.h"
#include "serve/plan_cache.h"
#include "serve/wire.h"
#include "trace/trace.h"

namespace harmony::serve {

/// The cluster tier's hook into the request pipeline, implemented by
/// cluster::ClusterNode (serve stays a leaf: it defines the interface, the
/// cluster library implements it and links against serve). A worker that
/// misses the local PlanCache calls TryFill before burning a search — the
/// implementation consults its disk store and the fingerprint's owner peer.
/// After a *local* search completes, StoreCompleted offers the fresh plan
/// for persistence (fills handle their own persistence inside TryFill, so
/// the service never re-writes a plan that just came *from* the store).
///
/// Both calls run on PlanService worker threads and must be thread-safe;
/// TryFill may block (disk read, peer round trip with retries).
class PlanFillSource {
 public:
  virtual ~PlanFillSource() = default;

  /// Returns a plan whose canonical_request equals `canonical`, or nullptr.
  /// On success `*source` names where it came from ("disk" or "peer") — it
  /// travels to the client as PlanResponse::filled_from.
  virtual std::shared_ptr<const CachedPlan> TryFill(
      uint64_t fingerprint, const std::string& canonical,
      const PlanRequest& request, std::string* source) = 0;

  /// A local search for `fingerprint` just completed with `plan`.
  virtual void StoreCompleted(
      uint64_t fingerprint, const std::shared_ptr<const CachedPlan>& plan) = 0;
};

struct ServeOptions {
  /// Worker threads running searches. Each search itself honours its
  /// request's SearchOptions::num_threads; for a serving workload the useful
  /// parallelism is across requests, so requests default to serial searches.
  int num_workers = 2;
  /// Plan cache byte budget (0 with enable_cache=false for a pure planner).
  size_t cache_bytes = 64ull << 20;
  int cache_shards = 16;
  bool enable_cache = true;
  /// Admission bound: maximum requests admitted but not yet completed
  /// (queued + running). Beyond it, Submit load-sheds with an explicit
  /// ResourceExhausted + retry_after_ms response instead of queueing without
  /// bound — a closed feedback loop rather than an OOM three minutes later.
  int max_pending = 64;
  int retry_after_ms = 50;
  /// Optional observer (borrowed). The service serializes its emissions, so
  /// single-threaded sinks (ChromeTraceSink, MetricsSink) work unchanged;
  /// event times are wall-clock seconds since service construction.
  trace::TraceBus* bus = nullptr;
  /// Test hook: every search worker sleeps this long before searching,
  /// letting tests fill the admission queue / observe in-flight state
  /// deterministically. Zero in production.
  TimeSec stall_for_test = 0;
  /// Optional cluster fill source (borrowed; must outlive the service).
  /// Consulted on a cache miss before a search starts; see PlanFillSource.
  PlanFillSource* fill = nullptr;
};

struct ServiceStats {
  uint64_t admitted = 0;        // entered the search pipeline
  uint64_t coalesced = 0;       // single-flight: attached to a running search
  uint64_t cache_hits = 0;      // served straight from the plan cache
  uint64_t filled = 0;          // resolved by the cluster tier (disk or peer)
  uint64_t searches = 0;        // searches actually started
  uint64_t completed = 0;       // responses delivered (any status)
  uint64_t rejected = 0;        // load-shed or refused while draining
  uint64_t deadline_exceeded = 0;
};

/// The plan-as-a-service engine: resolves profiles, runs Algorithm 1 on a
/// worker pool, and fronts everything with the content-addressed PlanCache.
///
/// Request lifecycle (each step emits a typed trace event):
///   Submit -> cache hit -> ready future                     [serve-cache-hit]
///          -> single-flight attach to identical in-flight request
///          -> queue full / draining -> explicit rejection   [serve-reject]
///          -> admitted [serve-admit] -> worker searches     [serve-search-begin]
///          -> response (plan | error), cache insert         [serve-complete]
///
/// Deadlines & cancellation: a request's deadline arms a CancelToken polled
/// by the search between candidates; Shutdown(cancel_inflight=true) trips
/// every token. A cancelled search *never* yields a partial plan — callers
/// see DeadlineExceeded/Cancelled, and nothing is cached.
///
/// Thread-safe throughout; futures may be waited on from any thread.
class PlanService {
 public:
  explicit PlanService(ServeOptions options);
  /// Graceful drain (equivalent to Shutdown(false)).
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Asynchronous entry point. The returned future is always eventually
  /// satisfied — rejections and failures travel as PlanResponse::status,
  /// never as exceptions.
  std::shared_future<PlanResponse> Submit(const PlanRequest& request);

  /// Completion-callback submission: `done` is invoked exactly once with the
  /// response — *inline on the calling thread* for immediate outcomes (cache
  /// hit, load-shed, draining), on a worker thread otherwise. This is the
  /// reactor's entry point: an event loop must never block on a future, so
  /// the callback marshals the response back to the owning loop instead.
  /// `done` must not throw and must tolerate either calling context.
  using PlanCallback = std::function<void(PlanResponse)>;
  void SubmitAsync(const PlanRequest& request, PlanCallback done);

  /// Synchronous convenience wrapper.
  PlanResponse Plan(const PlanRequest& request) { return Submit(request).get(); }

  /// Stops admitting (new Submits get Unavailable), waits for every admitted
  /// request to complete, then joins the pool. Idempotent and safe to race.
  /// `cancel_inflight` additionally trips the in-flight searches' tokens so
  /// the drain is prompt; their callers see Cancelled.
  void Shutdown(bool cancel_inflight = false);

  CacheStats cache_stats() const { return cache_.stats(); }
  ServiceStats stats() const;

  /// Side-effect-free cache probe for the cluster tier's owner-side
  /// cache_get handler: answers a peer's lookup without perturbing local
  /// hit/miss counters or LRU order. Returns nullptr when caching is off.
  std::shared_ptr<const CachedPlan> PeekCache(
      uint64_t fingerprint, std::string_view canonical_request) const {
    if (!options_.enable_cache) return nullptr;
    return cache_.Peek(fingerprint, canonical_request);
  }

  /// Seconds since service construction (the timebase of emitted events).
  TimeSec Now() const;

 private:
  struct Inflight {
    /// Everyone waiting on this search: the admitting caller plus every
    /// coalesced attacher. Invoked (in attach order) by the worker after the
    /// response is finalized and bookkeeping is done; appended to only under
    /// mu_ while the entry is still in inflight_.
    std::vector<PlanCallback> callbacks;
    std::shared_ptr<common::CancelToken> cancel;
    /// Canonical request bytes (the fingerprint preimage): coalescing
    /// verifies them so a fingerprint collision never attaches a request to
    /// a different request's search.
    std::string canonical;
  };

  /// Profiles are pure functions of (model spec, GPU spec) and expensive
  /// enough to amortize across requests — the profile-DB sharing that vDNN
  /// observes pays off across runs. Entries are immutable once built.
  struct ProfiledModel {
    model::SequentialModel model;
    profile::ProfileDb profiles;
    model::Optimizer optimizer;
    ProfiledModel(model::SequentialModel m, profile::ProfileDb p,
                  model::Optimizer o)
        : model(std::move(m)), profiles(std::move(p)), optimizer(o) {}
  };

  Result<std::shared_ptr<const ProfiledModel>> ResolveModel(
      const ModelSpec& spec, const hw::GpuSpec& gpu);

  /// Runs on a pool worker: search (+ optional iteration), cache insert,
  /// bookkeeping, promise fulfilment.
  void RunRequest(PlanRequest request, uint64_t fingerprint, int request_id,
                  std::shared_ptr<common::CancelToken> cancel,
                  std::chrono::steady_clock::time_point admit_time,
                  std::shared_ptr<Inflight> inflight);

  PlanResponse ComputePlan(const PlanRequest& request, uint64_t fingerprint,
                           const common::CancelToken* cancel);

  void EmitEvent(trace::EventKind kind, int request_id, int64_t latency_ns);

  ServeOptions options_;
  PlanCache cache_;
  common::ThreadPool pool_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::unordered_map<uint64_t, std::shared_ptr<Inflight>> inflight_;
  int pending_ = 0;
  bool draining_ = false;
  int next_request_id_ = 0;
  ServiceStats stats_;

  std::mutex profile_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const ProfiledModel>> profiles_;

  std::mutex trace_mu_;  // serializes bus emissions from worker threads
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_PLAN_SERVICE_H_
