#ifndef HARMONY_SERVE_PLAN_CACHE_H_
#define HARMONY_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/wire.h"

namespace harmony::serve {

/// A completed plan as the cache stores it: the search outcome stripped of
/// per-request envelope fields (latency, cache_hit — those are stamped per
/// response). Immutable once inserted; shared by pointer so a hit never
/// copies pack lists under the shard lock.
struct CachedPlan {
  /// The canonical request JSON (wire.h) this plan answers. Lookup compares
  /// it byte-for-byte, so a 64-bit fingerprint collision can never silently
  /// alias one request's plan to another.
  std::string canonical_request;
  core::Configuration config;
  core::Estimate estimate;
  int configs_explored = 0;
  int configs_feasible = 0;
  double search_seconds = 0;  // wall time of the search that produced it
  bool has_metrics = false;
  runtime::RunMetrics metrics;

  /// Approximate heap footprint, used against the cache's byte budget.
  size_t ApproxBytes() const;
};

/// Canonical JSON envelope of a cached plan — the payload the cluster tier
/// moves between daemons (peer-fill replies) and persists in the disk store.
/// Fixed member order, so serialize -> parse -> serialize is byte-identical
/// and a revived plan is bit-identical to the original search's output.
json::Value CachedPlanToJson(const CachedPlan& plan);
Result<CachedPlan> CachedPlanFromJson(const json::Value& v);

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;   // LRU entries displaced by the byte budget
  uint64_t entries = 0;     // currently cached plans
  uint64_t bytes = 0;       // current ApproxBytes total
};

/// Sharded, LRU-bounded, content-addressed plan store. Keys are the FNV-1a
/// fingerprints of canonical request JSON (wire.h), so "the same plan" is
/// decided by request *content*, never by connection or arrival order. The
/// 64-bit hash alone is never trusted: a hit additionally compares the full
/// canonical request bytes, so a crafted (or unlucky) fingerprint collision
/// degrades to a miss instead of returning another request's plan.
///
/// Concurrency: the key's shard is picked by fingerprint bits; each shard
/// has its own mutex, LRU list and map, so concurrent lookups of different
/// requests contend 1/num_shards of the time. The byte budget is enforced
/// per shard (budget/num_shards each) — global-budget precision is not worth
/// a global lock on the hit path.
///
/// Semantics: Lookup refreshes LRU recency. Insert displaces least-recently
/// used entries of its shard until the new entry fits; a plan larger than a
/// whole shard's budget is not cached (the search still served the caller —
/// caching is an optimization, never a requirement). Re-inserting an
/// existing key (a lost single-flight race upstream) keeps the first entry:
/// searches are deterministic, both copies are identical.
class PlanCache {
 public:
  /// `byte_budget` bounds the summed ApproxBytes across all shards;
  /// `num_shards` must be a power of two.
  explicit PlanCache(size_t byte_budget, int num_shards = 16);

  /// Returns the cached plan or nullptr; counts a hit/miss either way. The
  /// entry's stored canonical_request must equal `canonical_request` for a
  /// hit — a fingerprint match with different bytes is a collision and
  /// counts as a miss.
  std::shared_ptr<const CachedPlan> Lookup(uint64_t fingerprint,
                                           std::string_view canonical_request);

  /// `plan->canonical_request` must be the bytes `fingerprint` was hashed
  /// from; Lookup verifies against it.
  void Insert(uint64_t fingerprint, std::shared_ptr<const CachedPlan> plan);

  /// Side-effect-free Lookup for the cluster tier's peer cache_get path:
  /// byte-verifies like Lookup but never counts a hit/miss and never
  /// refreshes LRU recency — a peer probing this daemon must not perturb its
  /// local eviction order or hit-rate accounting.
  std::shared_ptr<const CachedPlan> Peek(
      uint64_t fingerprint, std::string_view canonical_request) const;

  /// Drops every entry (stats counters survive).
  void Clear();

  /// Aggregated over shards; counters are monotonic, entries/bytes current.
  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    size_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;  // into Shard::lru
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
    std::list<uint64_t> lru;  // front = most recent
    size_t bytes = 0;
    uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& ShardOf(uint64_t fingerprint) {
    // High bits: FNV-1a mixes the low bits last, the high bits spread well.
    return shards_[(fingerprint >> 48) & (shards_.size() - 1)];
  }
  const Shard& ShardOf(uint64_t fingerprint) const {
    return shards_[(fingerprint >> 48) & (shards_.size() - 1)];
  }

  size_t per_shard_budget_;
  std::vector<Shard> shards_;
};

}  // namespace harmony::serve

#endif  // HARMONY_SERVE_PLAN_CACHE_H_
