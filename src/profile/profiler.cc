#include "profile/profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace harmony::profile {

ProfileDb::ProfileDb(std::string model_name, std::vector<LayerProfile> layers)
    : model_name_(std::move(model_name)), layers_(std::move(layers)) {}

TimeSec ProfileDb::FwdTime(int layer, int u) const {
  return layers_.at(layer).fwd_time.Predict(u);
}

TimeSec ProfileDb::BwdTime(int layer, int u) const {
  return layers_.at(layer).bwd_time.Predict(u);
}

TimeSec ProfileDb::PackFwdTime(int lo, int hi, int u) const {
  TimeSec t = 0;
  for (int l = lo; l <= hi; ++l) t += FwdTime(l, u);
  return t;
}

TimeSec ProfileDb::PackBwdTime(int lo, int hi, int u) const {
  TimeSec t = 0;
  for (int l = lo; l <= hi; ++l) t += BwdTime(l, u);
  return t;
}

Bytes ProfileDb::PackParamBytes(int lo, int hi) const {
  Bytes b = 0;
  for (int l = lo; l <= hi; ++l) b += layers_.at(l).param_bytes;
  return b;
}

Bytes ProfileDb::FwdTaskBytes(int lo, int hi, int u) const {
  Bytes params = 0, max_boundary = 0, max_ws = 0;
  for (int l = lo; l <= hi; ++l) {
    const LayerProfile& p = layers_.at(l);
    params += p.param_bytes;
    max_boundary = std::max(
        max_boundary, p.input_bytes_per_sample + p.output_bytes_per_sample);
    max_ws = std::max(max_ws, p.workspace_bytes);
  }
  const Bytes checkpoint = layers_.at(lo).input_bytes_per_sample;
  return params + static_cast<Bytes>(u) * (checkpoint + max_boundary) + max_ws;
}

Bytes ProfileDb::BwdTaskBytes(int lo, int hi, int u) const {
  Bytes params = 0, stash_sum = 0, max_boundary = 0, max_ws = 0;
  for (int l = lo; l <= hi; ++l) {
    const LayerProfile& p = layers_.at(l);
    params += p.param_bytes;
    stash_sum += p.stash_bytes_per_sample;
    max_boundary = std::max(
        max_boundary, 2 * (p.input_bytes_per_sample + p.output_bytes_per_sample));
    max_ws = std::max(max_ws, p.workspace_bytes);
  }
  // Weights + gradient buffer + rematerialized pack stash + activation
  // gradients + workspace.
  return 2 * params + static_cast<Bytes>(u) * (stash_sum + max_boundary) + max_ws;
}

Profiler::Profiler(const hw::GpuSpec& gpu, ProfilerOptions options)
    : gpu_(gpu), options_(std::move(options)) {
  HARMONY_CHECK(!options_.sample_sizes.empty());
}

ProfileDb Profiler::Profile(const model::SequentialModel& m) const {
  const model::CostModel cost(gpu_);
  Rng rng(options_.seed);
  std::vector<LayerProfile> out;
  out.reserve(m.layers.size());
  for (int i = 0; i < m.num_layers(); ++i) {
    const model::SeqLayer& layer = m.layers[i];
    Rng layer_rng = rng.Split(out.size() + 1);
    std::vector<double> us, fwd, bwd;
    for (int u : options_.sample_sizes) {
      // "Measure" the layer: ground-truth cost model + measurement noise.
      const double noise_f = 1.0 + options_.noise_frac * layer_rng.NextGaussian();
      const double noise_b = 1.0 + options_.noise_frac * layer_rng.NextGaussian();
      us.push_back(u);
      fwd.push_back(cost.FwdTime(layer.spec, u) * std::max(0.5, noise_f));
      bwd.push_back(cost.BwdTime(layer.spec, u) * std::max(0.5, noise_b));
    }
    LayerProfile p;
    p.fwd_time = LinearRegression::Fit(us, fwd);
    p.bwd_time = LinearRegression::Fit(us, bwd);
    p.param_bytes = layer.spec.param_bytes;
    // Incoming payload = the previous boundary's relay load rides along with
    // the layer's own input tensor (Fig 6).
    const Bytes relay_in = i > 0 ? m.layers[i - 1].relay_bytes_per_sample : 0;
    p.input_bytes_per_sample = layer.spec.input_bytes_per_sample + relay_in;
    p.output_bytes_per_sample = layer.boundary_out_bytes();
    p.stash_bytes_per_sample =
        layer.spec.stash_bytes_per_sample + layer.relay_bytes_per_sample;
    p.workspace_bytes = layer.spec.workspace_bytes;
    p.gpu_update_time = cost.GpuUpdateTime(layer.spec);
    out.push_back(p);
  }
  return ProfileDb(m.model_name, std::move(out));
}

TimeSec Profiler::ProfilingCost(const model::SequentialModel& m) const {
  const model::CostModel cost(gpu_);
  TimeSec total = 0;
  for (const auto& layer : m.layers) {
    for (int u : options_.sample_sizes) {
      total += cost.FwdTime(layer.spec, u) + cost.BwdTime(layer.spec, u);
    }
  }
  return total;
}

}  // namespace harmony::profile
