#ifndef HARMONY_PROFILE_PROFILER_H_
#define HARMONY_PROFILE_PROFILER_H_

#include <vector>

#include "common/regression.h"
#include "common/units.h"
#include "hw/machine.h"
#include "model/cost_model.h"
#include "model/layer.h"

namespace harmony::profile {

/// Per-layer profile record (Sec 4.2): compute time, memory footprint and
/// tensor sizes, with time-vs-microbatch interpolated by linear regression
/// from the sampled microbatch sizes.
struct LayerProfile {
  LinearRegression fwd_time;  // seconds vs microbatch size
  LinearRegression bwd_time;

  Bytes param_bytes = 0;
  Bytes input_bytes_per_sample = 0;   // includes relayed branch payloads
  Bytes output_bytes_per_sample = 0;  // includes relayed branch payloads
  Bytes stash_bytes_per_sample = 0;
  Bytes workspace_bytes = 0;
  TimeSec gpu_update_time = 0;
};

/// The profile database handed to the Scheduler: per-layer profiles plus
/// derived pack-level queries.
class ProfileDb {
 public:
  ProfileDb(std::string model_name, std::vector<LayerProfile> layers);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerProfile& layer(int i) const { return layers_.at(i); }
  const std::string& model_name() const { return model_name_; }

  TimeSec FwdTime(int layer, int u) const;
  TimeSec BwdTime(int layer, int u) const;

  /// Sum of per-layer forward (resp. backward) times over pack [lo, hi].
  TimeSec PackFwdTime(int lo, int hi, int u) const;
  TimeSec PackBwdTime(int lo, int hi, int u) const;

  Bytes PackParamBytes(int lo, int hi) const;

  /// Peak resident bytes of a forward task over pack [lo, hi] at microbatch u
  /// under Harmony's always-recompute policy: weights + pack-input checkpoint
  /// + the largest live layer boundary + workspace.
  Bytes FwdTaskBytes(int lo, int hi, int u) const;

  /// Peak resident bytes of a backward task: weights + gradient buffer +
  /// rematerialized intermediate stash of the whole pack + gradient
  /// activations + workspace.
  Bytes BwdTaskBytes(int lo, int hi, int u) const;

 private:
  std::string model_name_;
  std::vector<LayerProfile> layers_;
};

struct ProfilerOptions {
  /// Microbatch sizes to measure (others are interpolated); mirrors the
  /// paper's sampled-profiling design.
  std::vector<int> sample_sizes = {1, 2, 4, 8, 16, 32};
  /// Relative measurement noise (std dev) applied to timings; deterministic
  /// given `seed`.
  double noise_frac = 0.01;
  uint64_t seed = 0x5eedf00d;
};

/// Runs each layer of the sequentialized model at the sampled microbatch
/// sizes on (a model of) a single deployment GPU and fits the regressions.
/// Also returns the simulated wall time profiling took (layers x samples).
class Profiler {
 public:
  Profiler(const hw::GpuSpec& gpu, ProfilerOptions options);

  ProfileDb Profile(const model::SequentialModel& model) const;

  /// Simulated wall-clock seconds the profiling runs themselves take.
  TimeSec ProfilingCost(const model::SequentialModel& model) const;

 private:
  hw::GpuSpec gpu_;
  ProfilerOptions options_;
};

}  // namespace harmony::profile

#endif  // HARMONY_PROFILE_PROFILER_H_
