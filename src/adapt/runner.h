#ifndef HARMONY_ADAPT_RUNNER_H_
#define HARMONY_ADAPT_RUNNER_H_

#include <vector>

#include "adapt/health.h"
#include "adapt/planner.h"
#include "common/status.h"
#include "core/config.h"
#include "hw/machine.h"
#include "runtime/runtime.h"
#include "serve/wire.h"
#include "trace/trace.h"

namespace harmony::adapt {

/// Knobs for the degradation-aware training loop.
struct AdaptOptions {
  /// Training iterations to drive (each is one Runtime::Execute).
  int iterations = 4;
  /// Master switch: when false the loop is bit-for-bit a plain sequence of
  /// executions — no monitor verdicts are acted on, no events are emitted.
  bool replan = true;
  /// Minimum fractional improvement of the candidate plan's estimated
  /// iteration time over the old plan's (both estimated on the degraded
  /// machine) required to switch. Negative accepts any candidate.
  double replan_margin = 0.03;
  /// Wall-clock bound for the in-process fallback search.
  TimeSec replan_deadline_seconds = 5.0;
  /// Degradation detector knobs.
  HealthOptions health;
  /// When positive, how long (in simulated time) a degradation must persist
  /// before a re-plan fires; converted to whole iterations of hysteresis
  /// using the initial plan's estimated iteration time (the CLI's
  /// --health-window-ms). Zero keeps `health.hysteresis_iterations` as-is.
  TimeSec health_window_seconds = 0;
  /// Primary planner (serve daemon / cluster tier); nullptr, or any failure
  /// it returns, falls back to the bounded in-process search. Borrowed.
  Planner* planner = nullptr;
  /// Observers attached to every execution's trace bus and to the replan
  /// lifecycle events (borrowed; null entries ignored).
  std::vector<trace::TraceSink*> trace_sinks;
  /// Fault schedule, replayed inside every iteration (simulated time
  /// restarts each Execute). After a switchover the persistent degradations
  /// are stripped — their effect lives in the degraded MachineSpec then.
  fault::FaultPlan fault_plan;
};

/// One replan decision, made at an iteration boundary.
struct ReplanDecision {
  int iteration = -1;           // boundary after this iteration index
  bool applied = false;         // false = rejected
  const char* reason = "";      // trigger ("link-degrade") or "below-margin"
  double old_estimate_seconds = 0;  // old plan estimated on degraded machine
  double new_estimate_seconds = 0;  // candidate plan's estimate
  const char* planner = "";     // which planner produced the candidate
  // Switchover reconciliation accounting (applied decisions only): orphaned
  // persistent tensors the new program no longer places on a device, and new
  // placements to prefetch, with the modeled drain+fill downtime.
  Bytes orphan_evict_bytes = 0;
  Bytes prefetch_bytes = 0;
  TimeSec switchover_seconds = 0;
};

/// The loop's full story, for tests and the CLI.
struct AdaptResult {
  std::vector<runtime::RunMetrics> iterations;
  std::vector<ReplanDecision> decisions;
  int replans_triggered = 0;
  bool switched = false;
  int switch_iteration = -1;  // first iteration index run under the new plan
  hw::MachineSpec machine;    // final machine descriptor (degraded if switched)
  core::Configuration config; // final configuration
};

/// The degradation-aware training loop (DESIGN.md §14): drives N iterations
/// of one workload, watching the typed trace bus through a HealthMonitor.
/// When sustained degradation crosses the hysteresis bar it synthesizes the
/// degraded MachineSpec, requests a re-plan (primary planner, then the
/// bounded local search), estimates the *old* plan on the degraded machine
/// for an honest comparison, and — if the candidate clears the gain margin —
/// switches over at the iteration boundary: reconciliation accounting
/// (orphan evictions + new prefetches), the persistent faults stripped from
/// the chaos plan (their effect now lives in the machine descriptor), and
/// kReplanTriggered / kReplanApplied / kReplanRejected published to the
/// attached sinks. Everything is deterministic from the fault plan's seed.
class AdaptiveRunner {
 public:
  AdaptiveRunner(hw::MachineSpec machine, serve::ModelSpec model,
                 core::HarmonyMode mode, int minibatch,
                 core::OptimizationFlags flags = {},
                 core::SearchOptions search = {}, AdaptOptions options = {});

  Result<AdaptResult> Run();

 private:
  void EmitReplanEvent(trace::EventKind kind, int iteration, TimeSec at,
                       double estimate_seconds, const char* detail);

  hw::MachineSpec machine_;
  serve::ModelSpec model_spec_;
  core::HarmonyMode mode_;
  int minibatch_;
  core::OptimizationFlags flags_;
  core::SearchOptions search_;
  AdaptOptions options_;
};

}  // namespace harmony::adapt

#endif  // HARMONY_ADAPT_RUNNER_H_
