#include "adapt/runner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "core/estimator.h"
#include "core/scheduler.h"
#include "model/layer.h"
#include "profile/profiler.h"
#include "runtime/step.h"
#include "runtime/step_compiler.h"
#include "runtime/tensor.h"

namespace harmony::adapt {

namespace {

/// Per-device persistent-tensor placement of a program: every weight and
/// optimizer-state tensor a device's steps need, keyed by the tensor's
/// catalog key string (stable across programs, unlike the dense ids).
using PlacementMap = std::map<std::pair<int, std::string>, Bytes>;

PlacementMap PersistentPlacements(const runtime::StepProgram& program) {
  PlacementMap out;
  for (size_t d = 0; d < program.steps.size(); ++d) {
    for (const runtime::Step& s : program.steps[d]) {
      for (const runtime::NeedSpec& n : s.needs) {
        const runtime::TensorKey& key = program.tensors.key(n.id);
        if (key.kind != runtime::TensorKind::kWeight &&
            key.kind != runtime::TensorKind::kOptState) {
          continue;
        }
        out[{static_cast<int>(d), key.ToString()}] = n.bytes;
      }
    }
  }
  return out;
}

int64_t EstimateNanos(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e9));
}

}  // namespace

AdaptiveRunner::AdaptiveRunner(hw::MachineSpec machine, serve::ModelSpec model,
                               core::HarmonyMode mode, int minibatch,
                               core::OptimizationFlags flags,
                               core::SearchOptions search, AdaptOptions options)
    : machine_(std::move(machine)),
      model_spec_(std::move(model)),
      mode_(mode),
      minibatch_(minibatch),
      flags_(flags),
      search_(search),
      options_(std::move(options)) {}

void AdaptiveRunner::EmitReplanEvent(trace::EventKind kind, int iteration,
                                     TimeSec at, double estimate_seconds,
                                     const char* detail) {
  trace::Event e;
  e.kind = kind;
  e.lane = trace::Lane::kNet;
  e.device = -1;
  e.time = at;
  e.bytes = EstimateNanos(estimate_seconds);
  e.task = iteration;
  e.detail = detail;
  for (trace::TraceSink* sink : options_.trace_sinks) {
    if (sink != nullptr) sink->OnEvent(e);
  }
}

Result<AdaptResult> AdaptiveRunner::Run() {
  HARMONY_RETURN_IF_ERROR(machine_.Validate());
  auto layer_graph = serve::BuildModel(model_spec_);
  HARMONY_RETURN_IF_ERROR(layer_graph.status());
  const model::SequentialModel model = model::Sequentialize(layer_graph.value());
  const model::Optimizer optimizer = serve::DefaultOptimizer(model_spec_);

  // Initial plan on the nominal machine.
  auto initial = core::Scheduler(machine_).Schedule(model, mode_, minibatch_,
                                                    flags_, search_);
  HARMONY_RETURN_IF_ERROR(initial.status());

  AdaptResult result;
  result.machine = machine_;
  result.config = initial.value().search.best;
  core::TaskGraph graph = std::move(initial.value().graph);
  double current_estimate = initial.value().search.best_estimate.iteration_time;
  fault::FaultPlan active_faults = options_.fault_plan;

  HealthOptions health = options_.health;
  if (options_.health_window_seconds > 0 && current_estimate > 0) {
    health.hysteresis_iterations = std::max(
        1, static_cast<int>(
               std::ceil(options_.health_window_seconds / current_estimate)));
  }
  HealthMonitor monitor(machine_, health);
  bool decided = false;      // one replan decision per run
  TimeSec clock = 0;         // cumulative simulated time across iterations

  for (int i = 0; i < options_.iterations; ++i) {
    const runtime::Runtime rt(result.machine, model);
    runtime::RuntimeOptions ro;
    ro.optimizer = optimizer;
    ro.fault_plan = active_faults;
    ro.trace_sinks = options_.trace_sinks;
    // The monitor only rides along when re-planning is armed: with --replan
    // off the loop is exactly a plain sequence of executions.
    if (options_.replan) ro.trace_sinks.push_back(&monitor);
    auto metrics = rt.Execute(graph, ro);
    HARMONY_RETURN_IF_ERROR(metrics.status());
    clock += metrics.value().iteration_time;
    result.iterations.push_back(std::move(metrics).value());

    if (!options_.replan) continue;
    const HealthAssessment assessment = monitor.EndIteration();
    if (decided || !assessment.replan || i + 1 >= options_.iterations) {
      continue;
    }
    decided = true;
    ++result.replans_triggered;
    EmitReplanEvent(trace::EventKind::kReplanTriggered, i, clock,
                    current_estimate, assessment.reason);

    ReplanDecision decision;
    decision.iteration = i;
    decision.reason = assessment.reason;

    // The degraded machine, exactly as the trace implies it.
    hw::MachineSpec degraded = monitor.SynthesizeSpec();
    if (Status v = degraded.Validate(); !v.ok()) {
      decision.reason = "invalid-machine";
      EmitReplanEvent(trace::EventKind::kReplanRejected, i, clock, 0,
                      decision.reason);
      result.decisions.push_back(decision);
      continue;
    }

    // Re-plan on the degraded descriptor: primary planner first (a serve
    // daemon or the cluster tier — the wire round-trips the heterogeneous
    // fields), then the bounded in-process search.
    serve::PlanRequest request;
    request.model = model_spec_;
    request.machine = degraded;
    request.mode = mode_;
    request.minibatch = minibatch_;
    request.flags = flags_;
    request.options = search_;
    LocalSearchPlanner local(options_.replan_deadline_seconds);
    Planner* planner = options_.planner != nullptr ? options_.planner : &local;
    auto candidate = planner->Plan(request);
    if (!candidate.ok() && planner != &local) {
      planner = &local;
      candidate = local.Plan(request);
    }
    if (!candidate.ok()) {
      decision.planner = planner->name();
      decision.reason = "plan-failed";
      EmitReplanEvent(trace::EventKind::kReplanRejected, i, clock, 0,
                      decision.reason);
      result.decisions.push_back(decision);
      continue;
    }
    decision.planner = planner->name();
    decision.new_estimate_seconds = candidate.value().estimate.iteration_time;

    // Honest comparison: the *old* configuration re-estimated on the
    // *degraded* machine — its nominal estimate undersells the damage.
    const profile::Profiler profiler(degraded.PlanningGpu(),
                                     profile::ProfilerOptions{});
    profile::ProfileDb degraded_profiles = profiler.Profile(model);
    const core::Scheduler degraded_scheduler(degraded);
    const core::TaskGraph old_graph_on_degraded = degraded_scheduler.BuildGraph(
        degraded_profiles, result.config, mode_, minibatch_, flags_);
    const core::RuntimeEstimator estimator(degraded_profiles, degraded);
    decision.old_estimate_seconds =
        estimator.EstimateIteration(old_graph_on_degraded).iteration_time;

    const double gain =
        decision.old_estimate_seconds > 0
            ? (decision.old_estimate_seconds - decision.new_estimate_seconds) /
                  decision.old_estimate_seconds
            : 0.0;
    if (gain < options_.replan_margin) {
      decision.reason = "below-margin";
      EmitReplanEvent(trace::EventKind::kReplanRejected, i, clock,
                      decision.new_estimate_seconds, decision.reason);
      result.decisions.push_back(decision);
      continue;
    }

    // Switchover at the boundary: reconcile the persistent-tensor placement
    // of the old program against the new one. Orphans drain to host, new
    // placements prefetch back in; both ride the degraded swap path, which
    // is the modeled downtime of the switch.
    core::TaskGraph new_graph = degraded_scheduler.BuildGraph(
        degraded_profiles, candidate.value().config, mode_, minibatch_, flags_);
    const PlacementMap old_placement = PersistentPlacements(
        runtime::StepCompiler(result.machine, model, graph, optimizer)
            .Compile());
    const PlacementMap new_placement = PersistentPlacements(
        runtime::StepCompiler(degraded, model, new_graph, optimizer).Compile());
    for (const auto& [key, bytes] : old_placement) {
      if (new_placement.find(key) == new_placement.end()) {
        decision.orphan_evict_bytes += bytes;
      }
    }
    for (const auto& [key, bytes] : new_placement) {
      if (old_placement.find(key) == old_placement.end()) {
        decision.prefetch_bytes += bytes;
      }
    }
    const BytesPerSec swap_bw = degraded.EffectiveSwapBw(degraded.num_gpus);
    decision.switchover_seconds =
        swap_bw > 0 ? (static_cast<double>(decision.orphan_evict_bytes) +
                       static_cast<double>(decision.prefetch_bytes)) /
                          swap_bw
                    : 0.0;
    decision.applied = true;
    clock += decision.switchover_seconds;

    result.machine = degraded;
    result.config = candidate.value().config;
    graph = std::move(new_graph);
    current_estimate = decision.new_estimate_seconds;
    // The degradation now lives in the machine descriptor; injecting it
    // again next iteration would double-count the damage.
    active_faults = active_faults.WithoutPersistent();
    result.switched = true;
    result.switch_iteration = i + 1;
    EmitReplanEvent(trace::EventKind::kReplanApplied, i, clock,
                    decision.new_estimate_seconds, decision.reason);
    result.decisions.push_back(decision);
  }
  return result;
}

}  // namespace harmony::adapt
