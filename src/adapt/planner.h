#ifndef HARMONY_ADAPT_PLANNER_H_
#define HARMONY_ADAPT_PLANNER_H_

#include <string>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/config.h"
#include "core/estimator.h"
#include "serve/client.h"
#include "serve/wire.h"

namespace harmony::adapt {

/// What a re-plan produced: the chosen configuration and the planner's
/// estimate of one iteration under it on the request's (degraded) machine.
struct PlanOutcome {
  core::Configuration config;
  core::Estimate estimate;
  double search_seconds = 0;
};

/// Where the adaptive runner gets a plan from. The request always carries
/// the full (possibly degraded, heterogeneous) MachineSpec — the wire format
/// round-trips the per-GPU overrides and link scale factors, so a remote
/// daemon plans on exactly the descriptor the health monitor synthesized,
/// and its cache fingerprints the degraded machine distinctly from the
/// nominal one.
class Planner {
 public:
  virtual ~Planner() = default;
  virtual Result<PlanOutcome> Plan(const serve::PlanRequest& request) = 0;
  virtual const char* name() const = 0;
};

/// Bounded in-process Algorithm 1 — the fallback that needs no daemon. The
/// deadline arms a CancelToken shared with the search, so a re-plan can
/// never wedge the training loop it is trying to rescue.
class LocalSearchPlanner : public Planner {
 public:
  explicit LocalSearchPlanner(TimeSec deadline_seconds = 0)
      : deadline_seconds_(deadline_seconds) {}

  Result<PlanOutcome> Plan(const serve::PlanRequest& request) override;
  const char* name() const override { return "local-search"; }

 private:
  TimeSec deadline_seconds_;
};

/// Daemon-backed planning through ServeClient::PlanWithRetry: shed responses
/// back off under the server's retry-after floor, peer restarts reconnect.
/// The client is borrowed and must outlive the planner.
class ServePlanner : public Planner {
 public:
  explicit ServePlanner(serve::ServeClient* client,
                        serve::ServeClient::RetryOptions retry = {})
      : client_(client), retry_(retry) {}

  Result<PlanOutcome> Plan(const serve::PlanRequest& request) override;
  const char* name() const override { return "serve"; }

 private:
  serve::ServeClient* client_;
  serve::ServeClient::RetryOptions retry_;
};

/// Cluster-tier planning through TierClient: owner-routed with failover down
/// the rendezvous ranking. The tier is borrowed and must outlive the planner.
class TierPlanner : public Planner {
 public:
  explicit TierPlanner(cluster::TierClient* tier) : tier_(tier) {}

  Result<PlanOutcome> Plan(const serve::PlanRequest& request) override;
  const char* name() const override { return "tier"; }

 private:
  cluster::TierClient* tier_;
};

}  // namespace harmony::adapt

#endif  // HARMONY_ADAPT_PLANNER_H_
