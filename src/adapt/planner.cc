#include "adapt/planner.h"

#include <chrono>
#include <utility>

#include "common/cancel.h"
#include "core/scheduler.h"
#include "model/layer.h"

namespace harmony::adapt {

namespace {

PlanOutcome FromResponse(const serve::PlanResponse& r) {
  PlanOutcome out;
  out.config = r.config;
  out.estimate = r.estimate;
  out.search_seconds = r.search_seconds;
  return out;
}

}  // namespace

Result<PlanOutcome> LocalSearchPlanner::Plan(const serve::PlanRequest& request) {
  auto graph = serve::BuildModel(request.model);
  HARMONY_RETURN_IF_ERROR(graph.status());
  const model::SequentialModel model = model::Sequentialize(graph.value());

  common::CancelToken deadline;
  core::SearchOptions options = request.options;
  if (deadline_seconds_ > 0) {
    deadline.SetDeadlineAfter(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(deadline_seconds_)));
    options.cancel = &deadline;
  }

  const core::Scheduler scheduler(request.machine);
  auto outcome = scheduler.Schedule(model, request.mode, request.minibatch,
                                    request.flags, options);
  HARMONY_RETURN_IF_ERROR(outcome.status());
  PlanOutcome out;
  out.config = outcome.value().search.best;
  out.estimate = outcome.value().search.best_estimate;
  out.search_seconds = outcome.value().search.search_wall_seconds;
  return out;
}

Result<PlanOutcome> ServePlanner::Plan(const serve::PlanRequest& request) {
  auto response = client_->PlanWithRetry(request, retry_);
  HARMONY_RETURN_IF_ERROR(response.status());
  HARMONY_RETURN_IF_ERROR(response.value().status);
  return FromResponse(response.value());
}

Result<PlanOutcome> TierPlanner::Plan(const serve::PlanRequest& request) {
  auto response = tier_->Plan(request);
  HARMONY_RETURN_IF_ERROR(response.status());
  HARMONY_RETURN_IF_ERROR(response.value().status);
  return FromResponse(response.value());
}

}  // namespace harmony::adapt
