#ifndef HARMONY_ADAPT_HEALTH_H_
#define HARMONY_ADAPT_HEALTH_H_

#include <vector>

#include "hw/machine.h"
#include "trace/trace.h"

namespace harmony::adapt {

/// Knobs for the degradation detector. The EWMA and hysteresis decide *when*
/// to re-plan; they never shape *what* the degraded machine looks like — the
/// synthesized spec snaps to the exact last-observed fault parameters, so the
/// descriptor handed to Algorithm 1 is bit-reproducible from the chaos seed
/// regardless of how these knobs are tuned.
struct HealthOptions {
  /// Weight of the newest end-of-iteration sample in the EWMA.
  double ewma_alpha = 0.5;
  /// Fractional deviation from nominal that counts as degraded: a link EWMA
  /// below (1 - threshold), or a memory EWMA above threshold of usable.
  double deviation_threshold = 0.05;
  /// Consecutive degraded iteration ends required before recommending a
  /// re-plan (rides out flaps that straddle one iteration boundary).
  int hysteresis_iterations = 2;
};

/// What the monitor concluded at an iteration boundary.
struct HealthAssessment {
  /// Sustained degradation crossed the hysteresis bar: request a re-plan.
  bool replan = false;
  /// Any residual deviation right now (pre-hysteresis).
  bool degraded = false;
  /// Dominant cause when degraded ("link-degrade" or "mem-shrink").
  const char* reason = "";
  int consecutive_degraded = 0;
};

/// Subscribes to the runtime's typed trace bus and folds fault events into
/// per-link bandwidth factors and per-GPU stolen-memory estimates. Each
/// Runtime::Execute is one fresh simulated iteration; the monitor persists
/// across them (the adaptive runner attaches it to every execution), so a
/// *persistent* degradation shows up as a fault that is injected but never
/// recovered by the end of an iteration — exactly the residual this class
/// keys on. Self-healing flaps and pressure spikes inject and recover within
/// the iteration and leave no residual.
///
/// Wire encoding it consumes (see fault/fault.h): a kLinkDegrade injection
/// carries the link id in Event::task and the capacity factor ppt-encoded in
/// Event::bytes; a kMemPressure injection carries the victim device and the
/// stolen bytes. Recoveries restore nominal.
class HealthMonitor : public trace::TraceSink {
 public:
  explicit HealthMonitor(const hw::MachineSpec& nominal,
                         HealthOptions options = {});

  // --- trace::TraceSink ----------------------------------------------------
  void OnEvent(const trace::Event& event) override;

  /// Folds the iteration's end state into the EWMAs, advances the hysteresis
  /// counter, and returns the verdict. Call exactly once per completed
  /// Runtime::Execute.
  HealthAssessment EndIteration();

  /// The degraded machine descriptor implied by the last observed samples:
  /// the nominal spec with per-link bandwidth scale factors for every link
  /// still below nominal, and per-GPU memory overrides shrunk by the stolen
  /// bytes (expressed so GpuSpec::usable_memory() drops by exactly the
  /// stolen amount). Exact — no EWMA smoothing leaks into the descriptor.
  hw::MachineSpec SynthesizeSpec() const;

  /// Current residual state (diagnostics / tests).
  double link_factor(int link) const { return link_factor_[link]; }
  Bytes device_pressure(int d) const { return pressure_bytes_[d]; }
  int64_t faults_seen() const { return faults_seen_; }

 private:
  hw::MachineSpec nominal_;
  HealthOptions options_;

  // Residual state, updated event by event.
  std::vector<double> link_factor_;   // current capacity multiplier per link
  std::vector<Bytes> pressure_bytes_; // current stolen bytes per device
  int64_t faults_seen_ = 0;

  // Boundary state, updated by EndIteration().
  std::vector<double> ewma_link_;
  std::vector<double> ewma_mem_fraction_;
  int consecutive_degraded_ = 0;
};

}  // namespace harmony::adapt

#endif  // HARMONY_ADAPT_HEALTH_H_
