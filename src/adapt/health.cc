#include "adapt/health.h"

#include <cstring>

#include "common/logging.h"
#include "fault/fault.h"

namespace harmony::adapt {

HealthMonitor::HealthMonitor(const hw::MachineSpec& nominal,
                             HealthOptions options)
    : nominal_(nominal),
      options_(options),
      link_factor_(static_cast<size_t>(nominal.NumLinks()), 1.0),
      pressure_bytes_(static_cast<size_t>(nominal.num_gpus), 0),
      ewma_link_(static_cast<size_t>(nominal.NumLinks()), 1.0),
      ewma_mem_fraction_(static_cast<size_t>(nominal.num_gpus), 0.0) {}

void HealthMonitor::OnEvent(const trace::Event& e) {
  const bool injected = e.kind == trace::EventKind::kFaultInjected;
  const bool recovered = e.kind == trace::EventKind::kFaultRecovered;
  if (!injected && !recovered) return;
  ++faults_seen_;
  if (std::strcmp(e.detail,
                  fault::FaultKindName(fault::FaultKind::kLinkDegrade)) == 0) {
    // Older emitters published flaps without a link identity; those events
    // still count as faults but cannot update the per-link model.
    if (e.task < 0 || e.task >= static_cast<int>(link_factor_.size())) return;
    link_factor_[e.task] = injected ? fault::DecodeFactorPpt(e.bytes) : 1.0;
  } else if (std::strcmp(e.detail, fault::FaultKindName(
                                       fault::FaultKind::kMemPressure)) == 0) {
    if (e.device < 0 || e.device >= static_cast<int>(pressure_bytes_.size())) {
      return;
    }
    // One pressure slice per device at a time (Residency's contract), so the
    // injected bytes are the absolute stolen amount, not a delta.
    pressure_bytes_[e.device] = injected ? e.bytes : 0;
  }
}

HealthAssessment HealthMonitor::EndIteration() {
  const double a = options_.ewma_alpha;
  bool link_degraded = false;
  bool mem_degraded = false;
  for (size_t l = 0; l < link_factor_.size(); ++l) {
    ewma_link_[l] = a * link_factor_[l] + (1.0 - a) * ewma_link_[l];
    if (ewma_link_[l] < 1.0 - options_.deviation_threshold) {
      link_degraded = true;
    }
  }
  for (size_t d = 0; d < pressure_bytes_.size(); ++d) {
    const double usable =
        static_cast<double>(nominal_.GpuAt(static_cast<int>(d)).usable_memory());
    const double frac =
        usable > 0 ? static_cast<double>(pressure_bytes_[d]) / usable : 0.0;
    ewma_mem_fraction_[d] = a * frac + (1.0 - a) * ewma_mem_fraction_[d];
    if (ewma_mem_fraction_[d] > options_.deviation_threshold) {
      mem_degraded = true;
    }
  }

  HealthAssessment out;
  out.degraded = link_degraded || mem_degraded;
  // Link loss dominates the label when both are present: it is the one that
  // changes the plan shape (swap bandwidth) rather than just the budget.
  out.reason = link_degraded ? "link-degrade" : mem_degraded ? "mem-shrink" : "";
  consecutive_degraded_ = out.degraded ? consecutive_degraded_ + 1 : 0;
  out.consecutive_degraded = consecutive_degraded_;
  out.replan = consecutive_degraded_ >= options_.hysteresis_iterations;
  return out;
}

hw::MachineSpec HealthMonitor::SynthesizeSpec() const {
  hw::MachineSpec spec = nominal_;
  for (size_t l = 0; l < link_factor_.size(); ++l) {
    if (link_factor_[l] != 1.0) {
      spec = spec.WithLinkScale(static_cast<int>(l), link_factor_[l]);
    }
  }
  for (size_t d = 0; d < pressure_bytes_.size(); ++d) {
    if (pressure_bytes_[d] <= 0) continue;
    const int g = static_cast<int>(d);
    hw::GpuSpec shrunk = nominal_.GpuAt(g);
    // Express the loss so usable_memory() drops by exactly the stolen bytes:
    // capacity' = usable - stolen at fraction 1.0 keeps the arithmetic in
    // integers, so a fresh run on this descriptor sees bit-identical budgets
    // to the degraded run it replaces.
    const Bytes usable = shrunk.usable_memory();
    HARMONY_CHECK_GT(usable, pressure_bytes_[d]);
    shrunk.name += "-shrunk";
    shrunk.memory_capacity = usable - pressure_bytes_[d];
    shrunk.usable_fraction = 1.0;
    spec = spec.WithGpuOverride(g, shrunk);
  }
  return spec;
}

}  // namespace harmony::adapt
