#include "core/packing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace harmony::core {
namespace {

/// Additive (per-layer summable) memory contribution used only to derive
/// S_min, the smallest pack count worth trying; the actual feasibility check
/// below uses the precise pack-level model.
Bytes AdditiveLayerBytes(PassType pass, int layer, int u,
                         const profile::ProfileDb& profiles) {
  const profile::LayerProfile& p = profiles.layer(layer);
  if (pass == PassType::kForward) {
    return p.param_bytes;
  }
  return 2 * p.param_bytes + static_cast<Bytes>(u) * p.stash_bytes_per_sample;
}

}  // namespace

Bytes PackTaskBytes(PassType pass, const Pack& p, int u,
                    const profile::ProfileDb& profiles) {
  return pass == PassType::kForward ? profiles.FwdTaskBytes(p.lo, p.hi, u)
                                    : profiles.BwdTaskBytes(p.lo, p.hi, u);
}

TimeSec PackTaskTime(PassType pass, const Pack& p, int u,
                     const profile::ProfileDb& profiles) {
  if (pass == PassType::kForward) {
    return profiles.PackFwdTime(p.lo, p.hi, u);
  }
  // Backward tasks first rematerialize the pack interior from the checkpoint
  // (the Harmony default policy is recompute-everywhere, Sec 4.3.1), then run
  // the backward compute. Packing deliberately assumes that worst case even
  // when the residency policy keeps or swaps some layers' stash: packs sized
  // for the recompute cost stay feasible under every PolicyTable, and the
  // estimator — not the packer — arbitrates the per-layer policy choice.
  // The fused jit-compute task has the same cost: its forward is real rather
  // than re-computed.
  return profiles.PackFwdTime(p.lo, p.hi, u) + profiles.PackBwdTime(p.lo, p.hi, u);
}

Result<PackList> BalancedTimePacking(PassType pass, int microbatch_size,
                                     int num_layers,
                                     const profile::ProfileDb& profiles,
                                     const PackingOptions& options) {
  HARMONY_CHECK_GE(microbatch_size, 1);
  HARMONY_CHECK_GE(num_layers, 1);
  HARMONY_CHECK_LE(num_layers, profiles.num_layers());
  HARMONY_CHECK_GT(options.capacity, 0);
  const int R = num_layers;
  const int u = microbatch_size;

  // Quick infeasibility check: every single-layer pack must fit.
  for (int l = 0; l < R; ++l) {
    if (PackTaskBytes(pass, Pack{l, l}, u, profiles) > options.capacity) {
      return Status::InvalidArgument(
          "layer " + std::to_string(l) + " alone exceeds GPU capacity at u=" +
          std::to_string(u));
    }
  }

  // Per-layer times and prefix sums.
  std::vector<double> t(R);
  for (int l = 0; l < R; ++l) {
    t[l] = PackTaskTime(pass, Pack{l, l}, u, profiles);
  }
  std::vector<double> prefix(R + 1, 0.0);
  for (int l = 0; l < R; ++l) prefix[l + 1] = prefix[l] + t[l];
  const double total_time = prefix[R];

  Bytes additive_sum = 0;
  for (int l = 0; l < R; ++l) {
    additive_sum += AdditiveLayerBytes(pass, l, u, profiles);
  }
  int s_min = static_cast<int>(
      std::ceil(static_cast<double>(additive_sum) /
                static_cast<double>(options.capacity)));
  s_min = std::max(s_min, options.min_packs);
  s_min = std::max(1, std::min(s_min, R));

  for (int S = s_min; S <= R; ++S) {
    // Target cumulative times c' = [c, 2c, ..., (S-1)c] and split the prefix
    // sums at their insertion points (Algorithm 2 lines 7-11).
    const double c = total_time / S;
    std::vector<int> boundaries;  // exclusive end index of each pack but last
    boundaries.reserve(S - 1);
    int prev = 0;
    bool degenerate = false;
    for (int k = 1; k < S; ++k) {
      const double target = c * k;
      int idx = static_cast<int>(
          std::lower_bound(prefix.begin(), prefix.end(), target) -
          prefix.begin());
      // Round to the nearer boundary of the two straddling the target.
      if (idx > 0 && idx <= R &&
          std::abs(prefix[idx - 1] - target) < std::abs(prefix[idx] - target)) {
        --idx;
      }
      // Keep packs non-empty: strictly after the previous boundary, and leave
      // room for the remaining S-k packs.
      idx = std::max(idx, prev + 1);
      idx = std::min(idx, R - (S - k));
      if (idx <= prev || idx >= R) {
        degenerate = true;
        break;
      }
      boundaries.push_back(idx);
      prev = idx;
    }
    if (degenerate) continue;

    PackList packs;
    packs.reserve(S);
    int lo = 0;
    for (int b : boundaries) {
      packs.push_back(Pack{lo, b - 1});
      lo = b;
    }
    packs.push_back(Pack{lo, R - 1});

    bool fits = true;
    for (const Pack& p : packs) {
      if (PackTaskBytes(pass, p, u, profiles) > options.capacity) {
        fits = false;
        break;
      }
    }
    if (fits) return packs;  // balanced times with the largest pack sizes
  }
  return Status::InvalidArgument("no feasible packing found (capacity too small)");
}

Result<PackList> BackwardPacks(int u_bwd, const profile::ProfileDb& profiles,
                               const PackingOptions& options) {
  return BalancedTimePacking(PassType::kBackward, u_bwd, profiles.num_layers(),
                             profiles, options);
}

Result<PackList> ForwardPacks(int u_fwd, const PackList& bwd_packs,
                              const profile::ProfileDb& profiles,
                              const PackingOptions& options) {
  HARMONY_CHECK(!bwd_packs.empty());
  // jit-compute: the last backward pack's forward runs inside the backward
  // task, so forward packs only cover the preceding layers (Alg 2 line 2).
  const int fwd_layers = bwd_packs.back().lo;
  if (fwd_layers == 0) return PackList{};  // single fused pack covers everything
  return BalancedTimePacking(PassType::kForward, u_fwd, fwd_layers, profiles,
                             options);
}

}  // namespace harmony::core
