#ifndef HARMONY_CORE_ESTIMATOR_H_
#define HARMONY_CORE_ESTIMATOR_H_

#include <memory>

#include "core/task_graph.h"
#include "hw/machine.h"
#include "profile/profiler.h"
#include "trace/trace.h"

namespace harmony::core {

/// Reusable working memory for RuntimeEstimator::EstimateIteration. One
/// estimate allocates ~10 vectors (lanes, dependency lists, ready queue);
/// the configuration search runs thousands of estimates per second across
/// worker threads, so each worker holds one of these and the vectors are
/// cleared — capacity retained — instead of reallocated per call.
///
/// Not thread-safe: one scratch per concurrent caller. The contents carry no
/// state between calls; passing a fresh or a reused scratch yields identical
/// estimates.
class EstimatorScratch {
 public:
  EstimatorScratch();
  ~EstimatorScratch();
  EstimatorScratch(EstimatorScratch&&) noexcept;
  EstimatorScratch& operator=(EstimatorScratch&&) noexcept;

 private:
  friend class RuntimeEstimator;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Result of estimating one training iteration.
struct Estimate {
  TimeSec iteration_time = 0;
  /// Aggregate CPU<->GPU traffic the estimate assumed (diagnostics).
  Bytes swap_bytes = 0;
  /// Aggregate GPU<->GPU traffic assumed.
  Bytes p2p_bytes = 0;
};

/// The Scheduler's Runtime Estimator (Algorithm 1 line 11): an event-driven
/// simulation of a single iteration over the profiled per-layer costs,
/// capturing compute, swap and transfer times and their overlap — but *not*
/// the full runtime machinery (memory-manager eviction, time-varying link
/// contention), which is what Fig 14 compares it against.
///
/// Works at (task, microbatch piece) granularity: each device executes its
/// order list sequentially; a piece starts when the device is free, its
/// producers' pieces have arrived (plus transfer time), and the task's
/// weights are fetched (overlapped with the previous task when prefetch is
/// on).
class RuntimeEstimator {
 public:
  RuntimeEstimator(const profile::ProfileDb& profiles,
                   const hw::MachineSpec& machine);

  /// Estimates one iteration. When `trace` is given, the predicted schedule
  /// is replayed onto it as kOpBegin/kOpEnd spans (compute lanes per GPU,
  /// CPU lanes per process), so a predicted timeline can be diffed against
  /// the runtime's traced one (Fig 14's error, event by event).
  ///
  /// `scratch` optionally supplies reusable working memory (one per caller
  /// thread); without it a transient arena is allocated for this call.
  Estimate EstimateIteration(const TaskGraph& graph,
                             trace::TraceBus* trace = nullptr,
                             EstimatorScratch* scratch = nullptr) const;

 private:
  const profile::ProfileDb& profiles_;
  hw::MachineSpec machine_;
};

}  // namespace harmony::core

#endif  // HARMONY_CORE_ESTIMATOR_H_
