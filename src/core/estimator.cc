#include "core/estimator.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace harmony::core {
namespace {

/// Clears the first-level entries while keeping every inner vector's
/// capacity. Entries past `n` are cleared too (a smaller graph after a
/// larger one must not see stale data); callers only index [0, n).
template <typename T>
void ResetNested(std::vector<std::vector<T>>& v, size_t n) {
  for (auto& inner : v) inner.clear();
  if (v.size() < n) v.resize(n);
}

}  // namespace

/// Schedule units are stored structure-of-arrays, indexed by flat unit id
/// (uid = lane_base[lane] + position within lane, lanes concatenated in
/// order). The hot scheduling loop then reads producer end times and lane
/// predecessors as direct unit_end[p] loads — no per-edge binary search,
/// and the completion scans stride dense double arrays.
struct EstimatorScratch::Impl {
  std::vector<int32_t> unit_task;
  std::vector<int32_t> unit_piece;  // -1 for update tasks (no group)
  std::vector<int32_t> unit_lane;
  std::vector<double> unit_start;   // -1 = not yet scheduled
  std::vector<double> unit_end;
  std::vector<std::vector<int>> locate;  // task -> uid per piece
  std::vector<int> lane_base;
  // Producer lists in CSR form: unit uid's producers are
  // data[off[uid] .. off[uid + 1]). Built in uid order, so offsets are
  // recorded as the data arrays grow — one pass, no per-unit vectors.
  std::vector<int> grad_off, grad_data;
  std::vector<int> rigid_off, rigid_data;
  std::vector<int> stream_off;
  std::vector<std::pair<int, int>> stream_data;  // (producer uid, task id)
  std::vector<int> dep_count;
  // Dependents in CSR form (count pass + fill pass over the same edge
  // enumeration).
  std::vector<int> dep_off, dep_data, dep_cursor;
  std::vector<int> ready;
  // Per-task residency-policy summary, hoisted out of the per-unit loop: the
  // policy is a task-level invariant, so the per-layer scans run once per
  // task here instead of once per microbatch unit. Legacy and uniform tables
  // then skip the per-layer work in the hot loop entirely.
  std::vector<Bytes> task_swap_per_sample;  // Σ stash bytes over kSwap layers
  std::vector<int32_t> task_remat_layers;   // # kRecompute layers in the pack
  // Layer prefix sums behind the two arrays above: one O(R) policy scan per
  // estimate, then each task's summary is two subtractions.
  std::vector<Bytes> prefix_swap;
  std::vector<int32_t> prefix_remat;
};

EstimatorScratch::EstimatorScratch() : impl_(std::make_unique<Impl>()) {}
EstimatorScratch::~EstimatorScratch() = default;
EstimatorScratch::EstimatorScratch(EstimatorScratch&&) noexcept = default;
EstimatorScratch& EstimatorScratch::operator=(EstimatorScratch&&) noexcept =
    default;

RuntimeEstimator::RuntimeEstimator(const profile::ProfileDb& profiles,
                                   const hw::MachineSpec& machine)
    : profiles_(profiles), machine_(machine) {}

Estimate RuntimeEstimator::EstimateIteration(const TaskGraph& graph,
                                             trace::TraceBus* trace,
                                             EstimatorScratch* scratch) const {
  std::unique_ptr<EstimatorScratch> transient;
  if (scratch == nullptr) {
    transient = std::make_unique<EstimatorScratch>();
    scratch = transient.get();
  }
  EstimatorScratch::Impl& sc = *scratch->impl_;

  const DepResolver deps(graph);
  const int N = graph.num_devices;
  // Effective per-GPU swap bandwidth: the host link is shared by all GPUs
  // (the estimator's static approximation of contention).
  const double swap_bw = machine_.EffectiveSwapBw(N);
  const double p2p_bw = machine_.EffectiveP2pBw();

  Bytes swap_bytes = 0, p2p_bytes = 0;

  auto pack_params = [&](const Pack& p) {
    return profiles_.PackParamBytes(p.lo, p.hi);
  };
  auto boundary_in_bytes = [&](int b) -> Bytes {
    if (b <= 0 || b >= graph.num_layers) return 0;
    return profiles_.layer(b).input_bytes_per_sample;
  };

  // Pass 1 — lane sizes: per GPU compute lane + per process CPU lane.
  auto& lane_base = sc.lane_base;
  lane_base.assign(2 * N + 1, 0);
  for (int d = 0; d < N; ++d) {
    int count = 0;
    for (int id : graph.device_order[d]) {
      const Task& t = graph.task(id);
      count += t.type == TaskType::kUpdate ? 1 : static_cast<int>(t.group.size());
    }
    lane_base[d + 1] = count;
    if (static_cast<size_t>(d) < graph.cpu_order.size()) {
      lane_base[N + d + 1] = static_cast<int>(graph.cpu_order[d].size());
    }
  }
  for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
    lane_base[lane_id + 1] += lane_base[lane_id];
  }
  const int total_units = lane_base[2 * N];

  // Pass 2 — fill the flat unit arrays lane by lane; `locate` maps
  // (task, piece) straight to a uid.
  sc.unit_task.assign(total_units, -1);
  sc.unit_piece.assign(total_units, -1);
  sc.unit_lane.assign(total_units, -1);
  sc.unit_start.assign(total_units, -1.0);
  sc.unit_end.assign(total_units, -1.0);
  int32_t* const unit_task = sc.unit_task.data();
  int32_t* const unit_piece = sc.unit_piece.data();
  int32_t* const unit_lane = sc.unit_lane.data();
  double* const unit_start = sc.unit_start.data();
  double* const unit_end = sc.unit_end.data();
  auto& locate = sc.locate;
  ResetNested(locate, graph.num_tasks());
  for (int d = 0; d < N; ++d) {
    int uid = lane_base[d];
    for (int id : graph.device_order[d]) {
      const Task& t = graph.task(id);
      if (t.type == TaskType::kUpdate) {
        locate[id].assign(1, uid);
        unit_task[uid] = id;
        unit_lane[uid] = d;
        ++uid;
        continue;
      }
      locate[id].resize(t.group.size());
      for (int k = 0; k < static_cast<int>(t.group.size()); ++k) {
        locate[id][k] = uid;
        unit_task[uid] = id;
        unit_piece[uid] = k;
        unit_lane[uid] = d;
        ++uid;
      }
    }
    if (static_cast<size_t>(d) < graph.cpu_order.size()) {
      uid = lane_base[N + d];
      for (int id : graph.cpu_order[d]) {
        locate[id].assign(1, uid);
        unit_task[uid] = id;
        unit_lane[uid] = N + d;
        ++uid;
      }
    }
  }

  auto uid_of = [&](int task, int piece) -> int {
    const auto& locs = locate[task];
    HARMONY_CHECK(!locs.empty());
    const int idx = piece >= 0 && piece < static_cast<int>(locs.size()) ? piece : 0;
    return locs[idx];
  };

  // Pass 2b — per-task policy summary (see Impl). Integer stash bytes
  // distribute exactly over the microbatch size, so charging
  // usize * Σ per-sample bytes in the hot loop is bit-identical to the
  // per-layer sum it replaces. One O(R) policy scan builds prefix sums;
  // each task then reads its pack's range in O(1).
  sc.prefix_swap.assign(graph.num_layers + 1, 0);
  sc.prefix_remat.assign(graph.num_layers + 1, 0);
  for (int l = 0; l < graph.num_layers; ++l) {
    const StashPolicy p = graph.policy_at(l);
    sc.prefix_swap[l + 1] =
        sc.prefix_swap[l] +
        (p == StashPolicy::kSwap ? profiles_.layer(l).stash_bytes_per_sample
                                 : 0);
    sc.prefix_remat[l + 1] =
        sc.prefix_remat[l] + (p == StashPolicy::kRecompute ? 1 : 0);
  }
  sc.task_swap_per_sample.assign(graph.num_tasks(), 0);
  sc.task_remat_layers.assign(graph.num_tasks(), 0);
  for (int id = 0; id < graph.num_tasks(); ++id) {
    const Task& t = graph.task(id);
    if (t.type == TaskType::kUpdate) continue;
    sc.task_swap_per_sample[id] =
        sc.prefix_swap[t.pack.hi + 1] - sc.prefix_swap[t.pack.lo];
    sc.task_remat_layers[id] =
        sc.prefix_remat[t.pack.hi + 1] - sc.prefix_remat[t.pack.lo];
  }
  const Bytes* const task_swap_per_sample = sc.task_swap_per_sample.data();
  const int32_t* const task_remat_layers = sc.task_remat_layers.data();

  // Precompute each unit's producers (cross-lane dependencies), CSR-packed in
  // uid order. Updates keep their gradient producers separate from the
  // rigid-scheduling extras, since only the former enter the traffic model.
  sc.grad_off.assign(total_units + 1, 0);
  sc.rigid_off.assign(total_units + 1, 0);
  sc.stream_off.assign(total_units + 1, 0);
  sc.grad_data.clear();
  sc.rigid_data.clear();
  sc.stream_data.clear();

  for (int uid = 0; uid < total_units; ++uid) {
    const Task& t = graph.task(unit_task[uid]);
    if (t.type == TaskType::kUpdate) {
      for (int pid : deps.BackwardTasksForPack(t.pack, t.replica)) {
        const Task& p = graph.task(pid);
        sc.grad_data.push_back(
            uid_of(pid, static_cast<int>(p.group.size()) - 1));
      }
      if (!graph.flags.jit_update) {
        // Rigid scheduling: updates wait for the entire backward pass.
        for (int r = 0; r < graph.num_replicas; ++r) {
          if (t.replica >= 0 && r != t.replica) continue;
          for (int pid : deps.AllBackwardTasks(r)) {
            const Task& p = graph.task(pid);
            sc.rigid_data.push_back(
                uid_of(pid, static_cast<int>(p.group.size()) - 1));
          }
        }
      }
    } else {
      const MbPiece piece = t.group[unit_piece[uid]];
      const bool wants_act = t.type == TaskType::kForward || t.fused_forward;
      const int in_boundary = wants_act ? t.pack.lo : t.pack.hi + 1;
      const auto producers =
          wants_act ? deps.ActivationProducers(in_boundary, piece, t.replica)
                    : deps.GradientProducers(in_boundary, piece, t.replica);
      for (const auto& [pid, pk] : producers) {
        sc.stream_data.emplace_back(uid_of(pid, pk), pid);
      }
    }
    sc.grad_off[uid + 1] = static_cast<int>(sc.grad_data.size());
    sc.rigid_off[uid + 1] = static_cast<int>(sc.rigid_data.size());
    sc.stream_off[uid + 1] = static_cast<int>(sc.stream_data.size());
  }
  const int* const grad_off = sc.grad_off.data();
  const int* const grad_data = sc.grad_data.data();
  const int* const rigid_off = sc.rigid_off.data();
  const int* const rigid_data = sc.rigid_data.data();
  const int* const stream_off = sc.stream_off.data();
  const std::pair<int, int>* const stream_data = sc.stream_data.data();

  // Dependency-counted ready queue (Kahn): a unit becomes ready when its lane
  // predecessor and every producer unit have finished. Duplicate edges are
  // fine — each one both increments the count and appears in the dependents
  // list. Any pop order yields the same schedule: a unit's times depend only
  // on its (finished) producers, and the byte counters are order-free sums.
  //
  // Dependents are CSR too: a count pass sizes each unit's out-list, a fill
  // pass walks the identical edge enumeration into the reserved spans.
  auto& dep_count = sc.dep_count;
  dep_count.assign(total_units, 0);
  sc.dep_off.assign(total_units + 1, 0);
  auto for_each_edge = [&](auto&& edge) {
    for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
      for (int uid = lane_base[lane_id] + 1; uid < lane_base[lane_id + 1];
           ++uid) {
        edge(uid - 1, uid);
      }
    }
    for (int uid = 0; uid < total_units; ++uid) {
      for (int e = grad_off[uid]; e < grad_off[uid + 1]; ++e) {
        edge(grad_data[e], uid);
      }
      for (int e = rigid_off[uid]; e < rigid_off[uid + 1]; ++e) {
        edge(rigid_data[e], uid);
      }
      for (int e = stream_off[uid]; e < stream_off[uid + 1]; ++e) {
        edge(stream_data[e].first, uid);
      }
    }
  };
  for_each_edge([&](int from, int to) {
    if (from == to) return;  // a task is never its own producer
    ++dep_count[to];
    ++sc.dep_off[from + 1];
  });
  for (int uid = 0; uid < total_units; ++uid) {
    sc.dep_off[uid + 1] += sc.dep_off[uid];
  }
  sc.dep_data.resize(sc.dep_off[total_units]);
  sc.dep_cursor.assign(sc.dep_off.begin(), sc.dep_off.end() - 1);
  for_each_edge([&](int from, int to) {
    if (from == to) return;
    sc.dep_data[sc.dep_cursor[from]++] = to;
  });
  const int* const dep_off = sc.dep_off.data();
  const int* const dep_data = sc.dep_data.data();

  auto& ready = sc.ready;
  ready.clear();
  ready.reserve(total_units);
  for (int uid = 0; uid < total_units; ++uid) {
    if (dep_count[uid] == 0) ready.push_back(uid);
  }

  int64_t scheduled = 0;
  while (!ready.empty()) {
    const int uid = ready.back();
    ready.pop_back();
    const int lane_id = unit_lane[uid];
    const int pos = uid - lane_base[lane_id];
    const Task& t = graph.task(unit_task[uid]);
    const TimeSec lane_free = pos == 0 ? 0.0 : unit_end[uid - 1];

    TimeSec ready_time = lane_free;
    TimeSec duration = 0.0;

    if (t.type == TaskType::kUpdate) {
      const Bytes params = pack_params(t.pack);
      const int nrep = grad_off[uid + 1] - grad_off[uid];
      TimeSec grads_ready = 0.0;
      for (int e = grad_off[uid]; e < grad_off[uid + 1]; ++e) {
        const TimeSec done = unit_end[grad_data[e]];
        HARMONY_DCHECK_GE(done, 0.0);
        grads_ready = std::max(grads_ready, done);
      }
      for (int e = rigid_off[uid]; e < rigid_off[uid + 1]; ++e) {
        const TimeSec done = unit_end[rigid_data[e]];
        HARMONY_DCHECK_GE(done, 0.0);
        grads_ready = std::max(grads_ready, done);
      }
      if (t.on_cpu) {
        // Gradient swap-out from each producing GPU, then CPU reduce +
        // Adam update on host-resident master state.
        grads_ready += static_cast<double>(params) / swap_bw;
        swap_bytes += params * nrep;
        duration = static_cast<double>(params) * (2.0 + nrep) /
                   machine_.cpu_update_bw;
      } else {
        // On-GPU update: W in+out, optimizer state in+out, compute.
        const Bytes traffic = 2 * params + 4 * params;
        swap_bytes += traffic + (graph.grad_reduce_via_host ? 2 * params : 0);
        TimeSec compute = 0;
        for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
          compute += profiles_.layer(l).gpu_update_time;
        }
        duration = static_cast<double>(traffic) / swap_bw + compute;
      }
      ready_time = std::max(ready_time, grads_ready);
    } else {
      const MbPiece piece = t.group[unit_piece[uid]];
      const int usize = piece.size;
      if (t.type == TaskType::kForward) {
        duration = profiles_.PackFwdTime(t.pack.lo, t.pack.hi, usize);
        // Swapped-out stash (kSwap layers): the write overlaps compute on
        // the swap-out stream, so only the volume counts.
        swap_bytes +=
            static_cast<Bytes>(usize) * task_swap_per_sample[unit_task[uid]];
      } else {
        duration = profiles_.PackBwdTime(t.pack.lo, t.pack.hi, usize);
        if (t.fused_forward) {
          duration += profiles_.PackFwdTime(t.pack.lo, t.pack.hi, usize);
        } else {
          const int remat_layers = task_remat_layers[unit_task[uid]];
          if (remat_layers == t.pack.num_layers()) {
            // Whole-pack rematerialization: one PackFwdTime call, not a
            // per-layer sum — preserves the FP summation order of the
            // pre-policy estimator so legacy goldens stay bit-identical.
            duration += profiles_.PackFwdTime(t.pack.lo, t.pack.hi, usize);
          } else if (remat_layers > 0) {
            for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
              if (graph.policy_at(l) == StashPolicy::kRecompute) {
                duration += profiles_.FwdTime(l, usize);
              }
            }
          }
          // Swapped stash read-back: charged like the checkpoint read
          // (host -> device on the critical path; kKeep stays free). The
          // stall stays a per-layer FP sum — only the guard is hoisted.
          if (task_swap_per_sample[unit_task[uid]] > 0) {
            for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
              if (graph.policy_at(l) != StashPolicy::kSwap) continue;
              const Bytes st = static_cast<Bytes>(usize) *
                               profiles_.layer(l).stash_bytes_per_sample;
              if (st == 0) continue;
              duration += static_cast<double>(st) / swap_bw;
              swap_bytes += st;
            }
          }
        }
      }

      // Streaming input: activations (forward / fused) or boundary
      // gradient (backward).
      const bool wants_act = t.type == TaskType::kForward || t.fused_forward;
      const int in_boundary = wants_act ? t.pack.lo : t.pack.hi + 1;
      for (int e = stream_off[uid]; e < stream_off[uid + 1]; ++e) {
        const auto& [p, pid] = stream_data[e];
        const TimeSec done = unit_end[p];
        HARMONY_DCHECK_GE(done, 0.0);
        const Task& prod = graph.task(pid);
        const Bytes bytes =
            static_cast<Bytes>(usize) * boundary_in_bytes(in_boundary);
        TimeSec xfer = 0.0;
        if (prod.device != t.device && bytes > 0) {
          if (graph.flags.p2p_transfers) {
            xfer = static_cast<double>(bytes) / p2p_bw;
            p2p_bytes += bytes;
          } else {
            xfer = 2.0 * static_cast<double>(bytes) / swap_bw;
            swap_bytes += 2 * bytes;
          }
        }
        ready_time = std::max(ready_time, done + xfer);
      }

      // Checkpoint read for backward tasks (message passing via host).
      if (t.type == TaskType::kBackward && t.reads_checkpoint) {
        const Bytes ck =
            static_cast<Bytes>(usize) * boundary_in_bytes(t.pack.lo);
        duration += static_cast<double>(ck) / swap_bw;
        swap_bytes += ck;
      }
      // Checkpoint writes (forward): overlapped on the swap-out stream;
      // count volume only.
      for (int b : t.checkpoint_boundaries) {
        swap_bytes += static_cast<Bytes>(usize) * boundary_in_bytes(b);
      }

      // Weight fetch at the first piece of a task; prefetch overlaps it
      // with the previous task on the device.
      if (unit_piece[uid] == 0) {
        const Bytes params = pack_params(t.pack);
        const TimeSec fetch = static_cast<double>(params) / swap_bw;
        swap_bytes += params;
        if (graph.flags.prefetch && pos > 0) {
          const TimeSec prev_span = unit_end[uid - 1] - unit_start[uid - 1];
          ready_time =
              std::max(ready_time, lane_free + std::max(0.0, fetch - prev_span));
        } else {
          ready_time = std::max(ready_time, lane_free + fetch);
        }
      }
    }

    unit_start[uid] = ready_time;
    unit_end[uid] = ready_time + duration;
    ++scheduled;
    for (int e = dep_off[uid]; e < dep_off[uid + 1]; ++e) {
      const int dep = dep_data[e];
      if (--dep_count[dep] == 0) ready.push_back(dep);
    }
  }
  HARMONY_CHECK_EQ(scheduled, total_units)
      << "estimator deadlock: schedule has cyclic waits in graph '"
      << graph.name << "'";

  // Replay the predicted schedule onto the trace bus: one compute lane per
  // GPU, one CPU lane per process, in start-time order (lane order is
  // schedule order, and units within a lane never overlap).
  if (trace != nullptr && trace->active()) {
    for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
      const bool cpu_lane = lane_id >= N;
      for (int uid = lane_base[lane_id]; uid < lane_base[lane_id + 1]; ++uid) {
        trace::Event begin;
        begin.kind = trace::EventKind::kOpBegin;
        begin.lane = cpu_lane ? trace::Lane::kCpu : trace::Lane::kCompute;
        begin.device = cpu_lane ? lane_id - N : lane_id;
        begin.time = unit_start[uid];
        begin.task = unit_task[uid];
        if (trace->detailed()) {
          begin.name = "t" + std::to_string(unit_task[uid]);
          if (unit_piece[uid] >= 0) {
            begin.name += " p" + std::to_string(unit_piece[uid]);
          }
        }
        trace::Event end = begin;
        end.kind = trace::EventKind::kOpEnd;
        end.time = unit_end[uid];
        end.name.clear();
        trace->Emit(begin);
        trace->Emit(end);
      }
    }
  }

  Estimate e;
  for (int uid = 0; uid < total_units; ++uid) {
    e.iteration_time = std::max(e.iteration_time, unit_end[uid]);
  }
  e.swap_bytes = swap_bytes;
  e.p2p_bytes = p2p_bytes;
  return e;
}

}  // namespace harmony::core
