#include "core/estimator.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace harmony::core {
namespace {

struct Unit {
  int task = -1;
  int piece = -1;          // -1 for update tasks (no group)
  TimeSec start = -1.0;    // -1 = not yet scheduled
  TimeSec end = -1.0;
};

/// Clears the first-level entries while keeping every inner vector's
/// capacity. Entries past `n` are cleared too (a smaller graph after a
/// larger one must not see stale data); callers only index [0, n).
template <typename T>
void ResetNested(std::vector<std::vector<T>>& v, size_t n) {
  for (auto& inner : v) inner.clear();
  if (v.size() < n) v.resize(n);
}

}  // namespace

struct EstimatorScratch::Impl {
  std::vector<std::vector<Unit>> lanes;
  std::vector<std::vector<std::pair<int, int>>> locate;
  std::vector<int> lane_base;
  std::vector<std::vector<int>> grad_units;
  std::vector<std::vector<int>> rigid_units;
  std::vector<std::vector<std::pair<int, int>>> stream_units;
  std::vector<int> dep_count;
  std::vector<std::vector<int>> dependents;
  std::vector<int> ready;
};

EstimatorScratch::EstimatorScratch() : impl_(std::make_unique<Impl>()) {}
EstimatorScratch::~EstimatorScratch() = default;
EstimatorScratch::EstimatorScratch(EstimatorScratch&&) noexcept = default;
EstimatorScratch& EstimatorScratch::operator=(EstimatorScratch&&) noexcept =
    default;

RuntimeEstimator::RuntimeEstimator(const profile::ProfileDb& profiles,
                                   const hw::MachineSpec& machine)
    : profiles_(profiles), machine_(machine) {}

Estimate RuntimeEstimator::EstimateIteration(const TaskGraph& graph,
                                             trace::TraceBus* trace,
                                             EstimatorScratch* scratch) const {
  std::unique_ptr<EstimatorScratch> transient;
  if (scratch == nullptr) {
    transient = std::make_unique<EstimatorScratch>();
    scratch = transient.get();
  }
  EstimatorScratch::Impl& sc = *scratch->impl_;

  const DepResolver deps(graph);
  const int N = graph.num_devices;
  // Effective per-GPU swap bandwidth: the host link is shared by all GPUs
  // (the estimator's static approximation of contention).
  const double swap_bw =
      std::min(machine_.pcie_bw, machine_.host_mem_bw / std::max(1, N));
  const double p2p_bw = machine_.pcie_bw;

  Bytes swap_bytes = 0, p2p_bytes = 0;

  auto pack_params = [&](const Pack& p) {
    return profiles_.PackParamBytes(p.lo, p.hi);
  };
  auto boundary_in_bytes = [&](int b) -> Bytes {
    if (b <= 0 || b >= graph.num_layers) return 0;
    return profiles_.layer(b).input_bytes_per_sample;
  };

  // Build sequential unit lists: per GPU compute lane + per process CPU lane.
  auto& lanes = sc.lanes;
  ResetNested(lanes, 2 * N);
  // (task, piece) -> (lane, unit index) for dependency lookups.
  auto& locate = sc.locate;
  ResetNested(locate, graph.num_tasks());
  for (int d = 0; d < N; ++d) {
    for (int id : graph.device_order[d]) {
      const Task& t = graph.task(id);
      if (t.type == TaskType::kUpdate) {
        locate[id].assign(1, {d, static_cast<int>(lanes[d].size())});
        lanes[d].push_back(Unit{id, -1, -1.0, -1.0});
        continue;
      }
      locate[id].resize(t.group.size());
      for (int k = 0; k < static_cast<int>(t.group.size()); ++k) {
        locate[id][k] = {d, static_cast<int>(lanes[d].size())};
        lanes[d].push_back(Unit{id, k, -1.0, -1.0});
      }
    }
    if (static_cast<size_t>(d) < graph.cpu_order.size()) {
      for (int id : graph.cpu_order[d]) {
        locate[id].assign(1, {N + d, static_cast<int>(lanes[N + d].size())});
        lanes[N + d].push_back(Unit{id, -1, -1.0, -1.0});
      }
    }
  }

  // Flat unit ids: uid = lane_base[lane] + position.
  auto& lane_base = sc.lane_base;
  lane_base.assign(2 * N + 1, 0);
  for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
    lane_base[lane_id + 1] =
        lane_base[lane_id] + static_cast<int>(lanes[lane_id].size());
  }
  const int total_units = lane_base[2 * N];
  auto unit_at = [&](int uid) -> Unit& {
    const int lane_id = static_cast<int>(
        std::upper_bound(lane_base.begin(), lane_base.end(), uid) -
        lane_base.begin() - 1);
    return lanes[lane_id][uid - lane_base[lane_id]];
  };
  auto uid_of = [&](int task, int piece) -> int {
    const auto& locs = locate[task];
    HARMONY_CHECK(!locs.empty());
    const int idx = piece >= 0 && piece < static_cast<int>(locs.size()) ? piece : 0;
    const auto& [lane, pos] = locs[idx];
    return lane_base[lane] + pos;
  };

  // Precompute each unit's producers (cross-lane dependencies). Updates keep
  // their gradient producers separate from the rigid-scheduling extras, since
  // only the former enter the traffic model.
  auto& grad_units = sc.grad_units;
  ResetNested(grad_units, total_units);
  auto& rigid_units = sc.rigid_units;
  ResetNested(rigid_units, total_units);
  // Streaming producers of a compute unit: (producer unit, producer task).
  auto& stream_units = sc.stream_units;
  ResetNested(stream_units, total_units);

  for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
    for (int pos = 0; pos < static_cast<int>(lanes[lane_id].size()); ++pos) {
      const int uid = lane_base[lane_id] + pos;
      const Unit& u = lanes[lane_id][pos];
      const Task& t = graph.task(u.task);
      if (t.type == TaskType::kUpdate) {
        for (int pid : deps.BackwardTasksForPack(t.pack, t.replica)) {
          const Task& p = graph.task(pid);
          grad_units[uid].push_back(
              uid_of(pid, static_cast<int>(p.group.size()) - 1));
        }
        if (!graph.flags.jit_update) {
          // Rigid scheduling: updates wait for the entire backward pass.
          for (int r = 0; r < graph.num_replicas; ++r) {
            if (t.replica >= 0 && r != t.replica) continue;
            for (int pid : deps.AllBackwardTasks(r)) {
              const Task& p = graph.task(pid);
              rigid_units[uid].push_back(
                  uid_of(pid, static_cast<int>(p.group.size()) - 1));
            }
          }
        }
      } else {
        const MbPiece piece = t.group[u.piece];
        const bool wants_act = t.type == TaskType::kForward || t.fused_forward;
        const int in_boundary = wants_act ? t.pack.lo : t.pack.hi + 1;
        const auto producers =
            wants_act ? deps.ActivationProducers(in_boundary, piece, t.replica)
                      : deps.GradientProducers(in_boundary, piece, t.replica);
        for (const auto& [pid, pk] : producers) {
          stream_units[uid].emplace_back(uid_of(pid, pk), pid);
        }
      }
    }
  }

  // Dependency-counted ready queue (Kahn): a unit becomes ready when its lane
  // predecessor and every producer unit have finished. Duplicate edges are
  // fine — each one both increments the count and appears in the dependents
  // list. Any pop order yields the same schedule: a unit's times depend only
  // on its (finished) producers, and the byte counters are order-free sums.
  auto& dep_count = sc.dep_count;
  dep_count.assign(total_units, 0);
  auto& dependents = sc.dependents;
  ResetNested(dependents, total_units);
  auto add_edge = [&](int from, int to) {
    if (from == to) return;  // a task is never its own producer
    ++dep_count[to];
    dependents[from].push_back(to);
  };
  for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
    for (int pos = 1; pos < static_cast<int>(lanes[lane_id].size()); ++pos) {
      add_edge(lane_base[lane_id] + pos - 1, lane_base[lane_id] + pos);
    }
  }
  for (int uid = 0; uid < total_units; ++uid) {
    for (int p : grad_units[uid]) add_edge(p, uid);
    for (int p : rigid_units[uid]) add_edge(p, uid);
    for (const auto& edge : stream_units[uid]) add_edge(edge.first, uid);
  }

  auto& ready = sc.ready;
  ready.clear();
  ready.reserve(total_units);
  for (int uid = 0; uid < total_units; ++uid) {
    if (dep_count[uid] == 0) ready.push_back(uid);
  }

  int64_t scheduled = 0;
  while (!ready.empty()) {
    const int uid = ready.back();
    ready.pop_back();
    const int lane_id = static_cast<int>(
        std::upper_bound(lane_base.begin(), lane_base.end(), uid) -
        lane_base.begin() - 1);
    auto& lane = lanes[lane_id];
    const int pos = uid - lane_base[lane_id];
    Unit& u = lane[pos];
    const Task& t = graph.task(u.task);
    const TimeSec lane_free = pos == 0 ? 0.0 : lane[pos - 1].end;

    TimeSec ready_time = lane_free;
    TimeSec duration = 0.0;

    if (t.type == TaskType::kUpdate) {
      const Bytes params = pack_params(t.pack);
      const int nrep = static_cast<int>(grad_units[uid].size());
      TimeSec grads_ready = 0.0;
      for (int p : grad_units[uid]) {
        const TimeSec done = unit_at(p).end;
        HARMONY_CHECK_GE(done, 0.0);
        grads_ready = std::max(grads_ready, done);
      }
      for (int p : rigid_units[uid]) {
        const TimeSec done = unit_at(p).end;
        HARMONY_CHECK_GE(done, 0.0);
        grads_ready = std::max(grads_ready, done);
      }
      if (t.on_cpu) {
        // Gradient swap-out from each producing GPU, then CPU reduce +
        // Adam update on host-resident master state.
        grads_ready += static_cast<double>(params) / swap_bw;
        swap_bytes += params * nrep;
        duration = static_cast<double>(params) * (2.0 + nrep) /
                   machine_.cpu_update_bw;
      } else {
        // On-GPU update: W in+out, optimizer state in+out, compute.
        const Bytes traffic = 2 * params + 4 * params;
        swap_bytes += traffic + (graph.grad_reduce_via_host ? 2 * params : 0);
        TimeSec compute = 0;
        for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
          compute += profiles_.layer(l).gpu_update_time;
        }
        duration = static_cast<double>(traffic) / swap_bw + compute;
      }
      ready_time = std::max(ready_time, grads_ready);
    } else {
      const MbPiece piece = t.group[u.piece];
      const int usize = piece.size;
      if (t.type == TaskType::kForward) {
        duration = profiles_.PackFwdTime(t.pack.lo, t.pack.hi, usize);
      } else {
        duration = profiles_.PackBwdTime(t.pack.lo, t.pack.hi, usize);
        if (t.recompute || t.fused_forward) {
          duration += profiles_.PackFwdTime(t.pack.lo, t.pack.hi, usize);
        }
      }

      // Streaming input: activations (forward / fused) or boundary
      // gradient (backward).
      const bool wants_act = t.type == TaskType::kForward || t.fused_forward;
      const int in_boundary = wants_act ? t.pack.lo : t.pack.hi + 1;
      for (const auto& [p, pid] : stream_units[uid]) {
        const TimeSec done = unit_at(p).end;
        HARMONY_CHECK_GE(done, 0.0);
        const Task& prod = graph.task(pid);
        const Bytes bytes =
            static_cast<Bytes>(usize) * boundary_in_bytes(in_boundary);
        TimeSec xfer = 0.0;
        if (prod.device != t.device && bytes > 0) {
          if (graph.flags.p2p_transfers) {
            xfer = static_cast<double>(bytes) / p2p_bw;
            p2p_bytes += bytes;
          } else {
            xfer = 2.0 * static_cast<double>(bytes) / swap_bw;
            swap_bytes += 2 * bytes;
          }
        }
        ready_time = std::max(ready_time, done + xfer);
      }

      // Checkpoint read for backward tasks (message passing via host).
      if (t.type == TaskType::kBackward && t.reads_checkpoint) {
        const Bytes ck =
            static_cast<Bytes>(usize) * boundary_in_bytes(t.pack.lo);
        duration += static_cast<double>(ck) / swap_bw;
        swap_bytes += ck;
      }
      // Checkpoint writes (forward): overlapped on the swap-out stream;
      // count volume only.
      for (int b : t.checkpoint_boundaries) {
        swap_bytes += static_cast<Bytes>(usize) * boundary_in_bytes(b);
      }

      // Weight fetch at the first piece of a task; prefetch overlaps it
      // with the previous task on the device.
      if (u.piece == 0) {
        const Bytes params = pack_params(t.pack);
        const TimeSec fetch = static_cast<double>(params) / swap_bw;
        swap_bytes += params;
        if (graph.flags.prefetch && pos > 0) {
          const Unit& prev = lane[pos - 1];
          const TimeSec prev_span = prev.end - prev.start;
          ready_time =
              std::max(ready_time, lane_free + std::max(0.0, fetch - prev_span));
        } else {
          ready_time = std::max(ready_time, lane_free + fetch);
        }
      }
    }

    u.start = ready_time;
    u.end = ready_time + duration;
    ++scheduled;
    for (int dep : dependents[uid]) {
      if (--dep_count[dep] == 0) ready.push_back(dep);
    }
  }
  HARMONY_CHECK_EQ(scheduled, total_units)
      << "estimator deadlock: schedule has cyclic waits in graph '"
      << graph.name << "'";

  // Replay the predicted schedule onto the trace bus: one compute lane per
  // GPU, one CPU lane per process, in start-time order (lane order is
  // schedule order, and units within a lane never overlap).
  if (trace != nullptr && trace->active()) {
    for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
      const bool cpu_lane = lane_id >= N;
      for (const Unit& u : lanes[lane_id]) {
        trace::Event begin;
        begin.kind = trace::EventKind::kOpBegin;
        begin.lane = cpu_lane ? trace::Lane::kCpu : trace::Lane::kCompute;
        begin.device = cpu_lane ? lane_id - N : lane_id;
        begin.time = u.start;
        begin.task = u.task;
        if (trace->detailed()) {
          begin.name = "t" + std::to_string(u.task);
          if (u.piece >= 0) begin.name += " p" + std::to_string(u.piece);
        }
        trace::Event end = begin;
        end.kind = trace::EventKind::kOpEnd;
        end.time = u.end;
        end.name.clear();
        trace->Emit(begin);
        trace->Emit(end);
      }
    }
  }

  Estimate e;
  for (int lane_id = 0; lane_id < 2 * N; ++lane_id) {
    for (const Unit& u : lanes[lane_id]) {
      e.iteration_time = std::max(e.iteration_time, u.end);
    }
  }
  e.swap_bytes = swap_bytes;
  e.p2p_bytes = p2p_bytes;
  return e;
}

}  // namespace harmony::core
