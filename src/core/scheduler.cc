#include "core/scheduler.h"

namespace harmony::core {

Scheduler::Scheduler(hw::MachineSpec machine) : machine_(std::move(machine)) {}

Result<ScheduleOutcome> Scheduler::Schedule(const model::SequentialModel& model,
                                            HarmonyMode mode, int minibatch,
                                            const OptimizationFlags& flags,
                                            const SearchOptions& search) const {
  const profile::Profiler profiler(machine_.PlanningGpu(),
                                   profile::ProfilerOptions{});
  profile::ProfileDb profiles = profiler.Profile(model);
  Result<SearchResult> found =
      SearchConfiguration(profiles, machine_, mode, minibatch, flags, search);
  if (!found.ok()) return found.status();
  TaskGraph graph = GenerateHarmonyTaskGraph(found.value().best, mode,
                                             machine_.num_gpus, minibatch, flags,
                                             profiles);
  return ScheduleOutcome{std::move(profiles), std::move(found).value(),
                         std::move(graph)};
}

TaskGraph Scheduler::BuildGraph(const profile::ProfileDb& profiles,
                                const Configuration& config, HarmonyMode mode,
                                int minibatch,
                                const OptimizationFlags& flags) const {
  return GenerateHarmonyTaskGraph(config, mode, machine_.num_gpus, minibatch,
                                  flags, profiles);
}

}  // namespace harmony::core
