#ifndef HARMONY_CORE_PACKING_H_
#define HARMONY_CORE_PACKING_H_

#include "common/status.h"
#include "core/config.h"
#include "profile/profiler.h"

namespace harmony::core {

/// Which pass a pack list is being computed for.
enum class PassType { kForward, kBackward };

struct PackingOptions {
  /// Memory budget per pack (GPU capacity alpha in Algorithm 2). Tasks also
  /// need headroom for double-buffered prefetch; callers pass the usable
  /// budget directly.
  Bytes capacity = 0;
  /// Lower bound on the number of packs. Algorithm 2 alone maximizes pack
  /// size subject to memory, but in pipeline mode coarser packs than the GPU
  /// count starve the wrap-around pipeline (Fig 7); the Configuration Search
  /// sweeps this knob and lets the Runtime Estimator arbitrate.
  int min_packs = 1;
};

/// Algorithm 2: Balanced Time Packing.
///
/// Splits layers [0, R) into contiguous packs such that per-pack times are
/// close to equal while the number of packs is minimized (largest average
/// pack size), subject to each pack's task memory fitting `capacity`.
///
/// For the backward pass, pass `num_layers` = R and PassType::kBackward; the
/// pack memory model includes the gradient buffer and the rematerialized
/// stash. For the forward pass (PassType::kForward) the caller passes the
/// number of layers *excluding* the last backward pack (jit-compute,
/// Algorithm 2 line 2); use ForwardPacks() below for the full recipe.
///
/// Returns InvalidArgument when even single-layer packs exceed capacity.
Result<PackList> BalancedTimePacking(PassType pass, int microbatch_size,
                                     int num_layers,
                                     const profile::ProfileDb& profiles,
                                     const PackingOptions& options);

/// Algorithm 1 lines 6-9 helper: backward packs over all R layers.
Result<PackList> BackwardPacks(int u_bwd, const profile::ProfileDb& profiles,
                               const PackingOptions& options);

/// Forward packs given the backward packs: covers layers
/// [0, R - |last bwd pack|) so the last pack's forward is fused with its
/// backward task (jit-compute).
Result<PackList> ForwardPacks(int u_fwd, const PackList& bwd_packs,
                              const profile::ProfileDb& profiles,
                              const PackingOptions& options);

/// Memory footprint of the task executing pack `p` for the given pass at
/// microbatch `u` (used for the capacity check and exposed for tests).
Bytes PackTaskBytes(PassType pass, const Pack& p, int u,
                    const profile::ProfileDb& profiles);

/// Sum of per-layer compute times for the pack at microbatch `u`.
TimeSec PackTaskTime(PassType pass, const Pack& p, int u,
                     const profile::ProfileDb& profiles);

}  // namespace harmony::core

#endif  // HARMONY_CORE_PACKING_H_
