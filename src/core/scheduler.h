#ifndef HARMONY_CORE_SCHEDULER_H_
#define HARMONY_CORE_SCHEDULER_H_

#include "common/status.h"
#include "core/search.h"
#include "core/task_graph.h"
#include "hw/machine.h"
#include "model/layer.h"
#include "profile/profiler.h"

namespace harmony::core {

/// Everything the Scheduler produced for a model + deployment: the profile
/// database, the search result, and the final task graph the Runtime
/// executes (Fig 3's Profiler -> Scheduler -> Runtime flow).
struct ScheduleOutcome {
  profile::ProfileDb profiles;
  SearchResult search;
  TaskGraph graph;
};

/// End-to-end Harmony Scheduler facade: profiles the model on one deployment
/// GPU, searches the configuration space (Algorithm 1), and emits the final
/// task graph for the chosen configuration.
class Scheduler {
 public:
  explicit Scheduler(hw::MachineSpec machine);

  /// Profiles and schedules `model` for `mode` at the given minibatch size.
  Result<ScheduleOutcome> Schedule(const model::SequentialModel& model,
                                   HarmonyMode mode, int minibatch,
                                   const OptimizationFlags& flags = {},
                                   const SearchOptions& search = {}) const;

  /// Builds a task graph for an explicitly chosen configuration (used by the
  /// "expert-picked config" ablation and by tests).
  TaskGraph BuildGraph(const profile::ProfileDb& profiles,
                       const Configuration& config, HarmonyMode mode,
                       int minibatch, const OptimizationFlags& flags = {}) const;

  const hw::MachineSpec& machine() const { return machine_; }

 private:
  hw::MachineSpec machine_;
};

}  // namespace harmony::core

#endif  // HARMONY_CORE_SCHEDULER_H_
