#ifndef HARMONY_CORE_TASK_GRAPH_H_
#define HARMONY_CORE_TASK_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "profile/profiler.h"

namespace harmony::core {

/// The three task types of Sec 4.3.2 (Figure 4).
enum class TaskType { kForward, kBackward, kUpdate };

const char* TaskTypeName(TaskType type);

/// A contiguous range of samples forming one microbatch of a task's group.
/// Sample indices are replica-local (each DP replica owns samples
/// [0, replica_minibatch)).
struct MbPiece {
  int begin = 0;  // first sample index
  int size = 0;   // number of samples

  int end() const { return begin + size; }
  bool Overlaps(const MbPiece& o) const {
    return begin < o.end() && o.begin < end();
  }
};

/// Splits [0, total) into pieces of `u` samples (last may be smaller).
std::vector<MbPiece> SplitMicrobatches(int total, int u);

/// The unit of execution (Sec 4.3.2). A task runs a layer pack for a group
/// of microbatches back-to-back on one execution backend. The Runtime
/// interprets tasks layer-by-layer, so a task whose working set exceeds GPU
/// memory still executes — it just swaps (which is exactly how the per-GPU
/// virtualization baselines behave).
struct Task {
  int id = -1;
  TaskType type = TaskType::kForward;
  Pack pack;
  int device = 0;       // GPU index (kUpdate with on_cpu: the owning process)
  bool on_cpu = false;  // weight update offloaded to CPU
  std::vector<MbPiece> group;

  /// DP replica owning this task; 0 in pipeline mode (single replica).
  int replica = 0;

  /// Backward-task modifier (jit-compute): runs the pack's forward too.
  /// Per-layer stash handling otherwise lives in TaskGraph::stash_policy —
  /// what used to be the scattered `recompute` / `save_full_stash` bools.
  bool fused_forward = false;

  /// Forward tasks: boundary layers b such that the input of layer b (the
  /// output of layer b-1, which this task computes) must be checkpointed to
  /// host for a later backward task.
  std::vector<int> checkpoint_boundaries;

  /// Backward tasks: reads its pack-input checkpoint from host before
  /// recomputing (false for the fused task, whose input streams in).
  bool reads_checkpoint = false;

  bool IsBackwardLike() const { return type == TaskType::kBackward; }
};

/// A complete one-iteration schedule: tasks plus the per-device execution
/// order ("unrolled loop of a single iteration", Sec 4.3.1). Both Harmony
/// modes and all baselines lower to this IR; the Runtime and the Estimator
/// consume it uniformly. Dependencies are structural: producers/consumers
/// match on layer boundaries, sample overlap and replica (DepResolver).
struct TaskGraph {
  std::string name;
  OptimizationFlags flags;
  int num_devices = 1;
  int num_replicas = 1;  // DP replicas (1 for pipeline graphs)
  int num_layers = 0;
  int minibatch = 0;     // global minibatch D
  int u_fwd = 1;
  int u_bwd = 1;

  /// Per-layer stash residency (tentpole of the policy-axis refactor): the
  /// generator resolves Configuration::policy (or the legacy flag) into this
  /// table and lowers it into checkpoint boundaries / reads_checkpoint;
  /// StepCompiler and the estimator consult it through policy_at().
  PolicyTable stash_policy;

  std::vector<Task> tasks;
  /// Per-GPU compute-stream execution order (task ids).
  std::vector<std::vector<int>> device_order;
  /// Per-process CPU execution order (offloaded update tasks).
  std::vector<std::vector<int>> cpu_order;

  /// Gradients bounce through host for cross-replica reduction (DP modes
  /// with more than one replica).
  bool grad_reduce_via_host = false;

  /// Bytes permanently reserved per device (e.g. PipeDream-2BW's second
  /// weight version), shrinking the memory available to the manager.
  std::vector<Bytes> device_reserved_bytes;

  const Task& task(int id) const { return tasks.at(id); }
  int num_tasks() const { return static_cast<int>(tasks.size()); }

  /// Layer `l`'s stash policy. The one sanctioned compat shim: hand-built
  /// graphs (tests, ad-hoc baselines) that never filled the table fall back
  /// to the legacy flag, exactly as the old per-task bools were derived.
  StashPolicy policy_at(int l) const {
    if (stash_policy.empty()) {
      return flags.use_recompute ? StashPolicy::kRecompute : StashPolicy::kKeep;
    }
    return stash_policy.at(l);
  }
};

/// Resolves structural dependencies between tasks.
/// Boundary b denotes the tensor between layers b-1 and b: "activation at b"
/// is layer b-1's output (b=0: the data loader), "gradient at b" is the
/// gradient flowing from layer b to b-1.
class DepResolver {
 public:
  explicit DepResolver(const TaskGraph& graph);

  /// (task id, piece index) pairs producing the activation at `boundary`
  /// whose sample ranges overlap `piece`, in `replica`. Empty for b == 0.
  std::vector<std::pair<int, int>> ActivationProducers(int boundary,
                                                       const MbPiece& piece,
                                                       int replica) const;

  /// Same for the gradient flowing into `boundary` (produced by the backward
  /// task whose pack starts at `boundary`).
  std::vector<std::pair<int, int>> GradientProducers(int boundary,
                                                     const MbPiece& piece,
                                                     int replica) const;

  /// All backward tasks computing gradients for layers of `pack` in
  /// `replica` (update-task inputs); `replica` == -1 matches all replicas.
  std::vector<int> BackwardTasksForPack(const Pack& pack, int replica) const;

  /// All backward tasks of a replica (used by the no-jit-update ablation:
  /// updates wait for the full backward pass).
  const std::vector<int>& AllBackwardTasks(int replica) const;

 private:
  const TaskGraph& graph_;
  // [replica][boundary] -> tasks producing that activation / gradient.
  std::vector<std::vector<std::vector<int>>> act_producers_;
  std::vector<std::vector<std::vector<int>>> grad_producers_;
  std::vector<std::vector<int>> backward_tasks_;  // per replica
};

/// Generates the Harmony task graph for a configuration (Algorithm 3):
/// forward tasks for P_F, the fused jit-compute backward task, remaining
/// backward tasks in reverse pack order, and a weight-update task per
/// backward pack — bound to devices with the wrap-around rule
/// Task(P_FB[i]) -> GPU[i mod N] for PP, or replicated per GPU for DP.
/// Optimization flags reshape the graph (grouping off splits groups and
/// interleaves microbatch-major; jit-compute off un-fuses the last pack;
/// jit-update off defers updates to iteration end; ...).
TaskGraph GenerateHarmonyTaskGraph(const Configuration& config, HarmonyMode mode,
                                   int num_devices, int minibatch,
                                   const OptimizationFlags& flags,
                                   const profile::ProfileDb& profiles);

/// Validates structural invariants (layer coverage per pass and replica,
/// wrap-around binding, piece partitioning, order consistency). CHECK-fails
/// on violation; called by the generator and exercised directly in tests.
void ValidateTaskGraph(const TaskGraph& graph);

}  // namespace harmony::core

#endif  // HARMONY_CORE_TASK_GRAPH_H_
