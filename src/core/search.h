#ifndef HARMONY_CORE_SEARCH_H_
#define HARMONY_CORE_SEARCH_H_

#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/estimator.h"
#include "core/task_graph.h"

namespace harmony::core {

/// How Algorithm 1 treats the per-layer {keep, swap, recompute} stash axis.
enum class PolicyMode {
  /// Empty policy tables: OptimizationFlags::use_recompute decides, and the
  /// search is bit-identical to the pre-policy-axis implementation.
  kLegacy = 0,
  /// Force one uniform table on every candidate.
  kRecomputeAll,
  kKeepAll,
  kSwapAll,
  /// Greedy per-layer dominance at each candidate's U_B: recompute iff the
  /// re-forward is cheaper than the estimated swap stall, else swap
  /// (stash-free layers keep).
  kHybridGreedy,
  /// The policy axis proper: every candidate evaluates recompute-all,
  /// swap-all and the greedy hybrid table, and the estimator arbitrates.
  kSweep,
};

const char* PolicyModeName(PolicyMode mode);
/// Parses the names PolicyModeName emits ("legacy", "recompute", "keep",
/// "swap", "hybrid", "sweep"); used by the wire format and harmony_plan.
Result<PolicyMode> PolicyModeFromName(const std::string& name);

struct SearchOptions {
  /// Maximal microbatch sizes U_FMAX / U_BMAX (Algorithm 1 inputs); further
  /// capped by the per-replica minibatch.
  int u_fwd_max = 32;
  int u_bwd_max = 32;
  /// Fraction of the GPU's usable memory handed to packing as capacity alpha
  /// (the rest is headroom for double-buffered prefetch, Sec 4.4).
  double capacity_fraction = 0.85;
  /// Table 4 ablation: force the forward configuration to equal the backward
  /// one (Equi-FB) instead of searching a distinct four-tuple (Distinct-FB).
  bool equi_fb = false;
  /// Residency-policy axis (see PolicyMode). kLegacy keeps the search — and
  /// its explored/feasible counts, winner and estimate — bit-identical to
  /// the pre-policy implementation; kSweep adds {recompute-all, swap-all,
  /// greedy-hybrid} as a per-candidate Pareto dimension.
  PolicyMode policy_mode = PolicyMode::kLegacy;
  /// Worker threads for the candidate sweep. 1 runs serially in the calling
  /// thread; <= 0 selects the hardware concurrency. The result is identical
  /// for every value (see DESIGN.md "Threading model"): candidates are
  /// enumerated in a canonical order and merged with a deterministic
  /// tie-break, so threading only changes wall time.
  int num_threads = 1;
  /// Keep every explored configuration in SearchResult::explored (needed by
  /// the Fig 14 estimator-accuracy experiment). Off by default: the hot
  /// search path only needs the best configuration, and retaining the full
  /// pack lists of every candidate is pure overhead there.
  bool keep_explored = false;
  /// Optional cooperative cancellation (borrowed; may be armed from another
  /// thread). Polled between candidate evaluations; a tripped token makes
  /// the search unwind promptly and return Cancelled (or DeadlineExceeded
  /// when the token tripped on its deadline) instead of a partial result.
  /// Never affects the returned configuration: a search either completes
  /// bit-identically to an uncancelled run or fails. Used by serve's
  /// PlanService for per-request deadlines and shutdown aborts.
  const common::CancelToken* cancel = nullptr;
};

/// One explored configuration and its estimated iteration time (kept for
/// the Fig 14 estimator-accuracy experiment).
struct ExploredConfig {
  Configuration config;
  Estimate estimate;
};

struct SearchResult {
  Configuration best;
  Estimate best_estimate;
  int configs_explored = 0;
  int configs_feasible = 0;
  /// Real wall-clock seconds the search took (Table 1's "Time (s)").
  double search_wall_seconds = 0;
  /// Populated only when SearchOptions::keep_explored is set.
  std::vector<ExploredConfig> explored;
};

/// Algorithm 1: Harmony Configuration Search. Sweeps (U_B, U_F), derives
/// balanced-time packs for each, generates the task graph, estimates its
/// iteration time, and returns the fastest configuration.
///
/// The sweep is embarrassingly parallel: backward-pack groups (U_B, floor)
/// are enumerated serially (each group's packing runs once), and the
/// per-group (U_F, floor) grid fans out across SearchOptions::num_threads
/// workers. Winners merge by lowest estimated time, ties broken by
/// lexicographic (u_bwd, u_fwd, bwd_floor, fwd_floor), so any thread count
/// returns a bit-identical best configuration.
Result<SearchResult> SearchConfiguration(const profile::ProfileDb& profiles,
                                         const hw::MachineSpec& machine,
                                         HarmonyMode mode, int minibatch,
                                         const OptimizationFlags& flags,
                                         const SearchOptions& options);

}  // namespace harmony::core

#endif  // HARMONY_CORE_SEARCH_H_
