#include "core/task_graph.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "common/logging.h"

namespace harmony::core {

const char* TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kForward: return "F";
    case TaskType::kBackward: return "B";
    case TaskType::kUpdate: return "U";
  }
  return "?";
}

std::vector<MbPiece> SplitMicrobatches(int total, int u) {
  HARMONY_CHECK_GE(total, 1);
  HARMONY_CHECK_GE(u, 1);
  std::vector<MbPiece> pieces;
  for (int begin = 0; begin < total; begin += u) {
    pieces.push_back(MbPiece{begin, std::min(u, total - begin)});
  }
  return pieces;
}

// ---------------------------------------------------------------------------
// DepResolver
// ---------------------------------------------------------------------------

DepResolver::DepResolver(const TaskGraph& graph) : graph_(graph) {
  const int R = graph.num_layers;
  act_producers_.assign(graph.num_replicas,
                        std::vector<std::vector<int>>(R + 1));
  grad_producers_.assign(graph.num_replicas,
                         std::vector<std::vector<int>>(R + 1));
  backward_tasks_.assign(graph.num_replicas, {});
  for (const Task& t : graph.tasks) {
    if (t.type == TaskType::kForward || t.fused_forward) {
      // Streaming output at the pack's end boundary (the fused task consumes
      // its own forward output internally, so only pure forwards stream).
      if (t.type == TaskType::kForward) {
        act_producers_[t.replica][t.pack.hi + 1].push_back(t.id);
      }
      for (int b : t.checkpoint_boundaries) {
        if (t.type == TaskType::kForward && b == t.pack.hi + 1) continue;  // already listed
        act_producers_[t.replica][b].push_back(t.id);
      }
    }
    if (t.type == TaskType::kBackward) {
      grad_producers_[t.replica][t.pack.lo].push_back(t.id);
      backward_tasks_[t.replica].push_back(t.id);
    }
  }
}

namespace {
std::vector<std::pair<int, int>> MatchPieces(const TaskGraph& graph,
                                             const std::vector<int>& producers,
                                             const MbPiece& piece) {
  std::vector<std::pair<int, int>> out;
  for (int tid : producers) {
    const Task& p = graph.task(tid);
    for (int k = 0; k < static_cast<int>(p.group.size()); ++k) {
      if (p.group[k].Overlaps(piece)) out.emplace_back(tid, k);
    }
  }
  return out;
}
}  // namespace

std::vector<std::pair<int, int>> DepResolver::ActivationProducers(
    int boundary, const MbPiece& piece, int replica) const {
  if (boundary == 0) return {};  // data loader
  return MatchPieces(graph_, act_producers_.at(replica).at(boundary), piece);
}

std::vector<std::pair<int, int>> DepResolver::GradientProducers(
    int boundary, const MbPiece& piece, int replica) const {
  if (boundary > graph_.num_layers - 1) return {};  // loss end: no producer
  return MatchPieces(graph_, grad_producers_.at(replica).at(boundary), piece);
}

std::vector<int> DepResolver::BackwardTasksForPack(const Pack& pack,
                                                   int replica) const {
  std::vector<int> out;
  for (int r = 0; r < graph_.num_replicas; ++r) {
    if (replica >= 0 && r != replica) continue;
    for (int tid : backward_tasks_[r]) {
      const Task& t = graph_.task(tid);
      if (t.pack.lo == pack.lo && t.pack.hi == pack.hi) out.push_back(tid);
    }
  }
  return out;
}

const std::vector<int>& DepResolver::AllBackwardTasks(int replica) const {
  return backward_tasks_.at(replica);
}

// ---------------------------------------------------------------------------
// Harmony task graph generation (Algorithm 3)
// ---------------------------------------------------------------------------

namespace {

struct PendingTask {
  Task task;
  int orig_seq = 0;  // creation order, used as the grouped execution order
};

/// Shared generation machinery: also reused by the baseline generators via
/// BuildOrders (exposed through task_graph_internal.h if ever needed).
void BuildOrders(TaskGraph* graph, bool grouped) {
  graph->device_order.assign(graph->num_devices, {});
  graph->cpu_order.assign(graph->num_devices, {});
  struct Key {
    int begin;
    int seq;
    int id;
  };
  std::vector<Key> keys;
  keys.reserve(graph->tasks.size());
  for (const Task& t : graph->tasks) {
    if (t.type == TaskType::kUpdate) continue;
    const int begin = t.group.empty() ? 0 : t.group.front().begin;
    keys.push_back(Key{grouped ? 0 : begin, t.id, t.id});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.seq < b.seq;
  });
  for (const Key& k : keys) {
    graph->device_order[graph->task(k.id).device].push_back(k.id);
  }
}

/// Places update tasks into the device/cpu order lists. With jit updates and
/// grouped execution, a GPU update slots in right after its pack's backward
/// task; otherwise updates trail the iteration.
void PlaceUpdates(TaskGraph* graph, bool grouped) {
  for (const Task& t : graph->tasks) {
    if (t.type != TaskType::kUpdate) continue;
    if (t.on_cpu) {
      graph->cpu_order[t.device].push_back(t.id);
      continue;
    }
    auto& order = graph->device_order[t.device];
    if (graph->flags.jit_update && grouped) {
      // Insert after the last backward task of this pack on this device.
      int pos = static_cast<int>(order.size());
      for (int i = static_cast<int>(order.size()) - 1; i >= 0; --i) {
        const Task& o = graph->task(order[i]);
        if (o.type == TaskType::kBackward && o.pack == t.pack &&
            (graph->num_replicas == 1 || o.replica == t.replica)) {
          pos = i + 1;
          break;
        }
      }
      order.insert(order.begin() + pos, t.id);
    } else {
      order.push_back(t.id);
    }
  }
}

}  // namespace

TaskGraph GenerateHarmonyTaskGraph(const Configuration& config, HarmonyMode mode,
                                   int num_devices, int minibatch,
                                   const OptimizationFlags& flags,
                                   const profile::ProfileDb& profiles) {
  HARMONY_CHECK_GE(num_devices, 1);
  HARMONY_CHECK_GE(minibatch, 1);
  HARMONY_CHECK(!config.bwd_packs.empty());
  const int R = profiles.num_layers();
  const bool dp = mode == HarmonyMode::kDataParallel;
  const int num_replicas = dp ? num_devices : 1;

  TaskGraph g;
  g.name = std::string(HarmonyModeName(mode));
  g.flags = flags;
  g.num_devices = num_devices;
  g.num_replicas = num_replicas;
  g.num_layers = R;
  g.minibatch = minibatch;
  g.u_fwd = config.u_fwd;
  g.u_bwd = config.u_bwd;
  g.grad_reduce_via_host = dp && num_devices > 1;
  g.device_reserved_bytes.assign(num_devices, 0);

  // Effective pack lists. With jit-compute the last backward pack's forward
  // runs fused inside the backward task; without it, that pack gets a
  // regular forward task appended to P_F.
  PackList fwd_packs = config.fwd_packs;
  const Pack last_bwd = config.bwd_packs.back();
  if (!flags.jit_compute) fwd_packs.push_back(last_bwd);

  // Resolve the residency policy table (the explicit {keep, swap, recompute}
  // axis). An empty Configuration::policy lowers the legacy use_recompute
  // flag to its canonical uniform table, reproducing pre-policy graphs
  // bit-for-bit.
  PolicyTable policy = config.policy;
  if (policy.empty()) policy = PolicyTable::Legacy(R, flags.use_recompute);
  HARMONY_CHECK_EQ(policy.num_layers(), R)
      << "policy table size != model layers";
  g.stash_policy = policy;

  // Checkpoint boundaries: inputs of every backward pack whose remat chain
  // starts at the pack input — i.e. the pack's first layer is kRecompute —
  // will be read from host (fused pack's input streams in instead).
  // Boundary 0 is the data loader (already host-resident). Packs whose
  // first layer keeps or swaps its stash need no input checkpoint.
  std::vector<int> ckpt_boundaries;
  for (size_t j = 0; j < config.bwd_packs.size(); ++j) {
    const bool fused = flags.jit_compute && j + 1 == config.bwd_packs.size();
    const int b = config.bwd_packs[j].lo;
    if (!fused && b > 0 && policy.at(b) == StashPolicy::kRecompute) {
      ckpt_boundaries.push_back(b);
    }
  }

  // Per-replica minibatch shares (Alg 1 line 2: D <- D/N for DP).
  std::vector<int> shares(num_replicas, minibatch / num_replicas);
  for (int r = 0; r < minibatch % num_replicas; ++r) ++shares[r];
  for (int s : shares) HARMONY_CHECK_GE(s, 1);

  auto add_task = [&g](Task t) {
    t.id = g.num_tasks();
    g.tasks.push_back(std::move(t));
    return g.tasks.back().id;
  };

  // Forward and backward tasks, per replica.
  std::vector<std::vector<int>> bwd_ids(num_replicas);
  for (int r = 0; r < num_replicas; ++r) {
    const auto fwd_pieces = SplitMicrobatches(shares[r], config.u_fwd);
    const auto bwd_pieces = SplitMicrobatches(shares[r], config.u_bwd);
    int slot = 0;  // wrap-around slot counter (F and B tasks only)
    for (const Pack& p : fwd_packs) {
      Task t;
      t.type = TaskType::kForward;
      t.pack = p;
      t.device = dp ? r : slot % num_devices;
      t.group = fwd_pieces;
      t.replica = r;
      for (int b : ckpt_boundaries) {
        if (b - 1 >= p.lo && b - 1 <= p.hi) t.checkpoint_boundaries.push_back(b);
      }
      add_task(std::move(t));
      ++slot;
    }
    for (int j = static_cast<int>(config.bwd_packs.size()) - 1; j >= 0; --j) {
      Task t;
      t.type = TaskType::kBackward;
      t.pack = config.bwd_packs[j];
      t.device = dp ? r : slot % num_devices;
      t.group = bwd_pieces;
      t.replica = r;
      t.fused_forward =
          flags.jit_compute && j + 1 == static_cast<int>(config.bwd_packs.size());
      t.reads_checkpoint = !t.fused_forward && t.pack.lo > 0 &&
                           policy.at(t.pack.lo) == StashPolicy::kRecompute;
      bwd_ids[r].push_back(add_task(std::move(t)));
      ++slot;
    }
  }

  // Weight-update tasks, one per backward pack, in backward completion order.
  // With CPU offload (or DP) gradients from all replicas reduce into a single
  // master update; otherwise each replica updates its own copy on its GPU.
  const bool single_update_per_pack = flags.cpu_optimizer || !dp;
  for (int j = static_cast<int>(config.bwd_packs.size()) - 1; j >= 0; --j) {
    const int rev = static_cast<int>(config.bwd_packs.size()) - 1 - j;
    for (int r = 0; r < (single_update_per_pack ? 1 : num_replicas); ++r) {
      Task t;
      t.type = TaskType::kUpdate;
      t.pack = config.bwd_packs[j];
      t.on_cpu = flags.cpu_optimizer;
      t.replica = single_update_per_pack ? -1 : r;
      if (dp) {
        t.device = single_update_per_pack ? rev % num_devices : r;
      } else {
        // Same process as the backward task that produced the gradients
        // (Alg 3 line 23).
        t.device = g.task(bwd_ids[0][rev]).device;
      }
      add_task(std::move(t));
    }
  }

  BuildOrders(&g, flags.input_batch_grouping);
  PlaceUpdates(&g, flags.input_batch_grouping);

  // Without grouping, F/B tasks split into one task per microbatch so the
  // device interleaves packs microbatch-major (the pre-Harmony execution
  // style that causes repeated swaps).
  if (!flags.input_batch_grouping) {
    TaskGraph split = g;
    split.tasks.clear();
    std::vector<std::vector<int>> new_ids(g.num_tasks());
    for (const Task& t : g.tasks) {
      if (t.type == TaskType::kUpdate || t.group.size() <= 1) {
        Task copy = t;
        copy.id = split.num_tasks();
        new_ids[t.id].push_back(copy.id);
        split.tasks.push_back(std::move(copy));
        continue;
      }
      for (const MbPiece& piece : t.group) {
        Task copy = t;
        copy.id = split.num_tasks();
        copy.group = {piece};
        new_ids[t.id].push_back(copy.id);
        split.tasks.push_back(std::move(copy));
      }
    }
    // Rebuild orders microbatch-major via a dependency-respecting topological
    // order (Kahn with (piece.begin, creation) priority). A plain sort can
    // deadlock when U_F != U_B: a backward piece may need a *later-beginning*
    // forward piece that a naive microbatch-major order schedules behind it
    // on the same device.
    split.device_order.assign(split.num_devices, {});
    split.cpu_order.assign(split.num_devices, {});
    const DepResolver split_deps(split);
    std::vector<int> indegree(split.num_tasks(), 0);
    std::vector<std::vector<int>> dependents(split.num_tasks());
    std::vector<int> orig_of(split.num_tasks(), 0);
    for (int orig = 0; orig < g.num_tasks(); ++orig) {
      for (int id : new_ids[orig]) orig_of[id] = orig;
    }
    for (const Task& t : split.tasks) {
      if (t.type == TaskType::kUpdate) continue;
      const bool wants_act = t.type == TaskType::kForward || t.fused_forward;
      std::vector<std::pair<int, int>> producers;
      for (const MbPiece& piece : t.group) {
        const int b = wants_act ? t.pack.lo : t.pack.hi + 1;
        auto ps = wants_act
                      ? split_deps.ActivationProducers(b, piece, t.replica)
                      : split_deps.GradientProducers(b, piece, t.replica);
        producers.insert(producers.end(), ps.begin(), ps.end());
        if (!wants_act && t.reads_checkpoint) {
          auto cs = split_deps.ActivationProducers(t.pack.lo, piece, t.replica);
          producers.insert(producers.end(), cs.begin(), cs.end());
        }
      }
      for (const auto& [pid, piece_idx] : producers) {
        dependents[pid].push_back(t.id);
        ++indegree[t.id];
      }
    }
    struct Key {
      int begin, orig, id;
      bool operator>(const Key& o) const {
        if (begin != o.begin) return begin > o.begin;
        return orig > o.orig;
      }
    };
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ready;
    int scheduled = 0, total = 0;
    for (const Task& t : split.tasks) {
      if (t.type == TaskType::kUpdate) continue;
      ++total;
      if (indegree[t.id] == 0) {
        ready.push(Key{t.group.front().begin, orig_of[t.id], t.id});
      }
    }
    while (!ready.empty()) {
      const Key k = ready.top();
      ready.pop();
      split.device_order[split.task(k.id).device].push_back(k.id);
      ++scheduled;
      for (int dep : dependents[k.id]) {
        if (--indegree[dep] == 0) {
          ready.push(Key{split.task(dep).group.front().begin, orig_of[dep],
                         dep});
        }
      }
    }
    HARMONY_CHECK_EQ(scheduled, total) << "cyclic microbatch dependencies";
    for (const Task& t : split.tasks) {
      if (t.type != TaskType::kUpdate) continue;
      if (t.on_cpu) {
        split.cpu_order[t.device].push_back(t.id);
      } else {
        split.device_order[t.device].push_back(t.id);
      }
    }
    g = std::move(split);
  }

  // Structural validation is O(tasks x layers) with per-layer sorts — more
  // expensive than estimating the graph. Debug builds validate every graph;
  // release builds rely on explicit ValidateTaskGraph calls at the seams
  // (tests, baselines, search winners) instead of paying it per candidate in
  // the configuration-search inner loop.
#ifndef NDEBUG
  ValidateTaskGraph(g);
#endif
  return g;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void ValidateTaskGraph(const TaskGraph& graph) {
  HARMONY_CHECK_GE(graph.num_devices, 1);
  HARMONY_CHECK_GE(graph.num_layers, 1);
  HARMONY_CHECK_EQ(static_cast<int>(graph.device_order.size()), graph.num_devices);

  for (int i = 0; i < graph.num_tasks(); ++i) {
    const Task& t = graph.task(i);
    HARMONY_CHECK_EQ(t.id, i);
    HARMONY_CHECK_GE(t.pack.lo, 0);
    HARMONY_CHECK_LE(t.pack.lo, t.pack.hi);
    HARMONY_CHECK_LT(t.pack.hi, graph.num_layers);
    HARMONY_CHECK_GE(t.device, 0);
    HARMONY_CHECK_LT(t.device, graph.num_devices);
    if (t.type != TaskType::kUpdate) HARMONY_CHECK(!t.group.empty());
  }

  // Per replica: forward-like and backward coverage of (layer, sample) space
  // must each be an exact partition.
  for (int r = 0; r < graph.num_replicas; ++r) {
    // replica share = max sample end seen.
    int share = 0;
    for (const Task& t : graph.tasks) {
      if (t.replica != r || t.group.empty()) continue;
      share = std::max(share, t.group.back().end());
    }
    HARMONY_CHECK_GE(share, 1);
    // coverage[layer] accumulates covered sample counts; overlaps detected
    // via per-layer interval sort.
    auto check_partition = [&](bool backward) {
      std::vector<std::vector<MbPiece>> per_layer(graph.num_layers);
      for (const Task& t : graph.tasks) {
        if (t.replica != r) continue;
        const bool counts = backward
                                ? t.type == TaskType::kBackward
                                : (t.type == TaskType::kForward || t.fused_forward);
        if (!counts) continue;
        for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
          for (const MbPiece& p : t.group) per_layer[l].push_back(p);
        }
      }
      for (int l = 0; l < graph.num_layers; ++l) {
        auto& pieces = per_layer[l];
        std::sort(pieces.begin(), pieces.end(),
                  [](const MbPiece& a, const MbPiece& b) { return a.begin < b.begin; });
        int cursor = 0;
        for (const MbPiece& p : pieces) {
          HARMONY_CHECK_EQ(p.begin, cursor)
              << (backward ? "backward" : "forward") << " coverage gap/overlap at layer "
              << l << " replica " << r;
          cursor = p.end();
        }
        HARMONY_CHECK_EQ(cursor, share)
            << (backward ? "backward" : "forward") << " incomplete at layer " << l;
      }
    };
    check_partition(false);
    check_partition(true);
  }

  // Order lists contain each task exactly once, on the right device.
  std::vector<int> seen(graph.num_tasks(), 0);
  for (int d = 0; d < graph.num_devices; ++d) {
    for (int id : graph.device_order[d]) {
      HARMONY_CHECK_EQ(graph.task(id).device, d);
      HARMONY_CHECK(!graph.task(id).on_cpu);
      ++seen[id];
    }
    if (d < static_cast<int>(graph.cpu_order.size())) {
      for (int id : graph.cpu_order[d]) {
        HARMONY_CHECK_EQ(graph.task(id).device, d);
        HARMONY_CHECK(graph.task(id).on_cpu);
        ++seen[id];
      }
    }
  }
  for (int i = 0; i < graph.num_tasks(); ++i) {
    HARMONY_CHECK_EQ(seen[i], 1) << "task " << i << " order multiplicity";
  }
}

}  // namespace harmony::core
