#include "core/search.h"

#include <chrono>
#include <map>
#include <tuple>

#include "common/logging.h"
#include "core/packing.h"

namespace harmony::core {

Result<SearchResult> SearchConfiguration(const profile::ProfileDb& profiles,
                                         const hw::MachineSpec& machine,
                                         HarmonyMode mode, int minibatch,
                                         const OptimizationFlags& flags,
                                         const SearchOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  HARMONY_CHECK_GE(minibatch, 1);

  // Effective maximal microbatch sizes (Algorithm 1 lines 1-3).
  int d = minibatch;
  if (mode == HarmonyMode::kDataParallel) {
    d = std::max(1, minibatch / machine.num_gpus);
  }
  const int u_fwd_max = std::min(options.u_fwd_max, d);
  const int u_bwd_max = std::min(options.u_bwd_max, d);

  PackingOptions packing;
  packing.capacity = static_cast<Bytes>(
      static_cast<double>(machine.gpu.usable_memory()) * options.capacity_fraction);

  const RuntimeEstimator estimator(profiles, machine);
  const int n = machine.num_gpus;

  // Pack-count floors explored per pass. Memory alone often permits very
  // coarse packs, but the wrap-around pipeline needs enough tasks to balance
  // GPUs (Fig 7); the estimator arbitrates.
  std::vector<int> fwd_floors = {1};
  std::vector<int> bwd_floors = {1};
  if (mode == HarmonyMode::kPipelineParallel && n > 1) {
    fwd_floors = {1, n, 2 * n, 4 * n};
    bwd_floors = {1, n};
  }

  SearchResult result;
  double best_time = -1.0;
  // Forward packs depend only on (U_F, floor, #forward layers).
  std::map<std::tuple<int, int, int>, Result<PackList>> fwd_cache;

  for (int u_bwd = 1; u_bwd <= u_bwd_max; ++u_bwd) {
    for (int bwd_floor : bwd_floors) {
      PackingOptions bwd_packing = packing;
      bwd_packing.min_packs = bwd_floor;
      Result<PackList> bwd = BackwardPacks(u_bwd, profiles, bwd_packing);
      if (!bwd.ok()) continue;  // this U_B cannot fit even single-layer packs
      if (bwd_floor > 1 &&
          static_cast<int>(bwd.value().size()) <= bwd_floor / 2) {
        continue;  // floor had no effect; same packs as a smaller floor
      }

      const int fwd_layers = bwd.value().back().lo;
      for (int u_fwd = 1; u_fwd <= u_fwd_max; ++u_fwd) {
        for (int fwd_floor : fwd_floors) {
          ++result.configs_explored;
          Configuration config;
          config.u_bwd = u_bwd;
          config.bwd_packs = bwd.value();

          if (options.equi_fb) {
            // Equi-FB (Table 4): reuse the backward packs and microbatch size
            // for the forward pass (dropping the fused last pack).
            if (u_fwd != u_bwd || fwd_floor != fwd_floors.front()) continue;
            config.u_fwd = u_bwd;
            config.fwd_packs.assign(bwd.value().begin(), bwd.value().end() - 1);
          } else {
            config.u_fwd = u_fwd;
            PackingOptions fwd_packing = packing;
            fwd_packing.min_packs = std::min(fwd_floor, fwd_layers);
            auto key = std::make_tuple(u_fwd, fwd_packing.min_packs, fwd_layers);
            auto it = fwd_cache.find(key);
            if (it == fwd_cache.end()) {
              it = fwd_cache
                       .emplace(key, ForwardPacks(u_fwd, bwd.value(), profiles,
                                                  fwd_packing))
                       .first;
            }
            if (!it->second.ok()) continue;
            config.fwd_packs = it->second.value();
          }

          TaskGraph graph = GenerateHarmonyTaskGraph(config, mode,
                                                     machine.num_gpus, minibatch,
                                                     flags, profiles);
          const Estimate est = estimator.EstimateIteration(graph);
          ++result.configs_feasible;
          result.explored.push_back(ExploredConfig{config, est});
          if (best_time < 0 || est.iteration_time < best_time) {
            best_time = est.iteration_time;
            result.best = config;
            result.best_estimate = est;
          }
        }
      }
    }
  }

  result.search_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (best_time < 0) {
    return Status::InvalidArgument(
        "no feasible configuration: model layers too large for GPU memory "
        "at every microbatch size");
  }
  return result;
}

}  // namespace harmony::core
