#include "core/search.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/packing.h"
#include "sim/multirun.h"

namespace harmony::core {

const char* PolicyModeName(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kLegacy: return "legacy";
    case PolicyMode::kRecomputeAll: return "recompute";
    case PolicyMode::kKeepAll: return "keep";
    case PolicyMode::kSwapAll: return "swap";
    case PolicyMode::kHybridGreedy: return "hybrid";
    case PolicyMode::kSweep: return "sweep";
  }
  return "?";
}

Result<PolicyMode> PolicyModeFromName(const std::string& name) {
  for (PolicyMode m :
       {PolicyMode::kLegacy, PolicyMode::kRecomputeAll, PolicyMode::kKeepAll,
        PolicyMode::kSwapAll, PolicyMode::kHybridGreedy, PolicyMode::kSweep}) {
    if (name == PolicyModeName(m)) return m;
  }
  return Status::InvalidArgument("unknown policy mode '" + name + "'");
}

namespace {

/// One candidate of the four-tuple grid. Backward packs are shared across
/// the whole (U_B, floor) group; `bwd_group` indexes into the group store.
struct GridPoint {
  int u_bwd = 0;
  int bwd_floor = 0;
  int u_fwd = 0;
  int fwd_floor = 0;
  int bwd_group = -1;

  /// The deterministic merge order of the issue statement: candidates with
  /// equal estimated time resolve by this tuple, NOT by enumeration order,
  /// so serial and parallel searches agree bit-for-bit.
  std::tuple<int, int, int, int> TieBreak() const {
    return {u_bwd, u_fwd, bwd_floor, fwd_floor};
  }
};

struct EvalOutcome {
  /// Number of (candidate, policy-table) pairs that were feasible; `config`
  /// and `estimate` describe the best of them (lowest time, then lowest
  /// table index — a deterministic within-candidate tie-break).
  int feasible_count = 0;
  int best_table = 0;
  Configuration config;
  Estimate estimate;
};

/// Thread-safe memo for ForwardPacks keyed by (U_F, min_packs, fwd_layers).
/// ForwardPacks is a pure function of the key (the backward packs only enter
/// through fwd_layers), so a lost insertion race recomputes the same value;
/// the first inserted entry wins and all callers see an identical PackList.
///
/// Sharded by key hash: with one global mutex, every worker serializes on
/// the same lock for every candidate — memo lookups dominate the parallel
/// phase's critical section once ForwardPacks results are mostly cached.
/// Distinct keys now contend only 1/kShards of the time, and each shard is a
/// hash map instead of a red-black tree.
class FwdPackMemo {
 public:
  using Key = std::tuple<int, int, int>;

  const Result<PackList>& Get(const Key& key, int u_fwd, const PackList& bwd,
                              const profile::ProfileDb& profiles,
                              const PackingOptions& packing) {
    Shard& shard = shards_[ShardOf(key)];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.cache.find(key);
      if (it != shard.cache.end()) return *it->second;
    }
    // Compute outside the lock: a duplicate race wastes one recompute but
    // never blocks other shards or other keys of this shard.
    auto computed = std::make_shared<Result<PackList>>(
        ForwardPacks(u_fwd, bwd, profiles, packing));
    std::lock_guard<std::mutex> lock(shard.mu);
    return *shard.cache.emplace(key, std::move(computed)).first->second;
  }

 private:
  static constexpr size_t kShards = 16;

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // FNV-1a over the three ints; good enough to spread shards.
      size_t h = 1469598103934665603ull;
      for (int v : {std::get<0>(k), std::get<1>(k), std::get<2>(k)}) {
        h = (h ^ static_cast<size_t>(v)) * 1099511628211ull;
      }
      return h;
    }
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<Result<PackList>>, KeyHash> cache;
  };

  static size_t ShardOf(const Key& key) { return KeyHash{}(key) % kShards; }

  std::array<Shard, kShards> shards_;
};

}  // namespace

Result<SearchResult> SearchConfiguration(const profile::ProfileDb& profiles,
                                         const hw::MachineSpec& machine,
                                         HarmonyMode mode, int minibatch,
                                         const OptimizationFlags& flags,
                                         const SearchOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  HARMONY_CHECK_GE(minibatch, 1);

  // Effective maximal microbatch sizes (Algorithm 1 lines 1-3).
  int d = minibatch;
  if (mode == HarmonyMode::kDataParallel) {
    d = std::max(1, minibatch / machine.num_gpus);
  }
  const int u_fwd_max = std::min(options.u_fwd_max, d);
  const int u_bwd_max = std::min(options.u_bwd_max, d);

  PackingOptions packing;
  // Heterogeneous fleets pack for the smallest device (every GPU runs the
  // same schedule); identical to machine.gpu on homogeneous machines.
  packing.capacity = static_cast<Bytes>(
      static_cast<double>(machine.MinUsableMemory()) * options.capacity_fraction);

  const RuntimeEstimator estimator(profiles, machine);
  const int n = machine.num_gpus;
  const int R = profiles.num_layers();

  // Residency-policy axis. Tables a candidate evaluates depend only on its
  // U_B (the greedy dominance rule compares re-forward time against the
  // swap stall at backward-microbatch granularity, under the same effective
  // per-GPU swap bandwidth the estimator charges).
  const double swap_bw = machine.EffectiveSwapBw(n);
  auto greedy_table = [&](int u_bwd) {
    PolicyTable t = PolicyTable::Uniform(R, StashPolicy::kKeep);
    for (int l = 0; l < R; ++l) {
      model::LayerResidencyCost c;
      c.recompute_time = profiles.FwdTime(l, u_bwd);
      c.stash_bytes = static_cast<Bytes>(u_bwd) *
                      profiles.layer(l).stash_bytes_per_sample;
      c.swap_stall = static_cast<double>(c.stash_bytes) / swap_bw;
      t.Set(l, model::DominantPolicy(c));
    }
    return t;
  };
  auto policy_tables = [&](int u_bwd) -> std::vector<PolicyTable> {
    switch (options.policy_mode) {
      case PolicyMode::kLegacy:
        return {PolicyTable()};  // empty: flags.use_recompute decides
      case PolicyMode::kRecomputeAll:
        return {PolicyTable::Uniform(R, StashPolicy::kRecompute)};
      case PolicyMode::kKeepAll:
        return {PolicyTable::Uniform(R, StashPolicy::kKeep)};
      case PolicyMode::kSwapAll:
        return {PolicyTable::Uniform(R, StashPolicy::kSwap)};
      case PolicyMode::kHybridGreedy:
        return {greedy_table(u_bwd)};
      case PolicyMode::kSweep:
        return {PolicyTable::Uniform(R, StashPolicy::kRecompute),
                PolicyTable::Uniform(R, StashPolicy::kSwap),
                greedy_table(u_bwd)};
    }
    return {PolicyTable()};
  };
  const int tables_per_point =
      options.policy_mode == PolicyMode::kSweep ? 3 : 1;

  // Capacity gate for tables the balanced-time packing (which models the
  // legacy always-recompute working set) cannot vet: kept stash must stay
  // resident from forward to backward alongside every task's working set,
  // and swapped stash transits GPU memory before its move completes. The
  // kept term conservatively double-counts the backward pack's own stash
  // (already inside BwdTaskBytes) — a feasible-but-rejected table costs only
  // optimality, never correctness.
  const int share_per_replica =
      mode == HarmonyMode::kDataParallel
          ? (minibatch + machine.num_gpus - 1) / machine.num_gpus
          : minibatch;
  auto policy_feasible = [&](const Configuration& config,
                             const PolicyTable& table) {
    if (table.empty()) return true;  // legacy: packing already vetted it
    Bytes kept = 0;
    for (int l = 0; l < R; ++l) {
      if (table.at(l) == StashPolicy::kKeep) {
        kept += static_cast<Bytes>(share_per_replica) *
                profiles.layer(l).stash_bytes_per_sample;
      }
    }
    for (const Pack& p : config.fwd_packs) {
      Bytes transient = 0;
      for (int l = p.lo; l <= p.hi; ++l) {
        if (table.at(l) == StashPolicy::kRecompute) continue;
        transient = std::max(transient,
                             static_cast<Bytes>(config.u_fwd) *
                                 profiles.layer(l).stash_bytes_per_sample);
      }
      if (profiles.FwdTaskBytes(p.lo, p.hi, config.u_fwd) + kept + transient >
          packing.capacity) {
        return false;
      }
    }
    for (const Pack& p : config.bwd_packs) {
      if (profiles.BwdTaskBytes(p.lo, p.hi, config.u_bwd) + kept >
          packing.capacity) {
        return false;
      }
    }
    return true;
  };

  // Pack-count floors explored per pass. Memory alone often permits very
  // coarse packs, but the wrap-around pipeline needs enough tasks to balance
  // GPUs (Fig 7); the estimator arbitrates.
  std::vector<int> fwd_floors = {1};
  std::vector<int> bwd_floors = {1};
  if (mode == HarmonyMode::kPipelineParallel && n > 1) {
    fwd_floors = {1, n, 2 * n, 4 * n};
    bwd_floors = {1, n};
  }

  const common::CancelToken* cancel = options.cancel;
  auto cancelled = [cancel]() { return cancel != nullptr && cancel->Cancelled(); };

  SearchResult result;

  // Phase 1 (serial, cheap): enumerate backward-pack groups — BackwardPacks
  // runs exactly once per (U_B, floor) — and flatten the feasible four-tuple
  // grid into a canonically ordered candidate list.
  std::vector<PackList> bwd_groups;
  std::vector<GridPoint> points;
  for (int u_bwd = 1; u_bwd <= u_bwd_max && !cancelled(); ++u_bwd) {
    for (int bwd_floor : bwd_floors) {
      PackingOptions bwd_packing = packing;
      bwd_packing.min_packs = bwd_floor;
      Result<PackList> bwd = BackwardPacks(u_bwd, profiles, bwd_packing);
      if (!bwd.ok()) continue;  // this U_B cannot fit even single-layer packs
      if (bwd_floor > 1 &&
          static_cast<int>(bwd.value().size()) <= bwd_floor / 2) {
        continue;  // floor had no effect; same packs as a smaller floor
      }
      const int group = static_cast<int>(bwd_groups.size());
      bwd_groups.push_back(std::move(bwd).value());

      for (int u_fwd = 1; u_fwd <= u_fwd_max; ++u_fwd) {
        for (int fwd_floor : fwd_floors) {
          result.configs_explored += tables_per_point;
          if (options.equi_fb &&
              (u_fwd != u_bwd || fwd_floor != fwd_floors.front())) {
            continue;  // explored but outside the Equi-FB slice (Table 4)
          }
          points.push_back(GridPoint{u_bwd, bwd_floor, u_fwd, fwd_floor, group});
        }
      }
    }
  }

  // Candidate tables depend only on U_B, so build them once per microbatch
  // size instead of once per grid point (the greedy table is an O(R) scan —
  // per-point reconstruction dominated sweep-mode search time).
  std::vector<std::vector<PolicyTable>> tables_by_ubwd(u_bwd_max + 1);
  for (int u = 1; u <= u_bwd_max; ++u) tables_by_ubwd[u] = policy_tables(u);

  // Phase 2 (parallel): evaluate every candidate independently. All inputs
  // (profiles, machine, estimator, bwd_groups, tables_by_ubwd) are immutable
  // from here on; the forward-pack memo is the only shared mutable state.
  FwdPackMemo fwd_memo;
  auto evaluate = [&](const GridPoint& pt,
                      EstimatorScratch& scratch) -> EvalOutcome {
    EvalOutcome out;
    const PackList& bwd = bwd_groups[pt.bwd_group];
    Configuration config;
    config.u_bwd = pt.u_bwd;
    config.bwd_packs = bwd;

    if (options.equi_fb) {
      // Equi-FB (Table 4): reuse the backward packs and microbatch size
      // for the forward pass (dropping the fused last pack).
      config.u_fwd = pt.u_bwd;
      config.fwd_packs.assign(bwd.begin(), bwd.end() - 1);
    } else {
      config.u_fwd = pt.u_fwd;
      const int fwd_layers = bwd.back().lo;
      PackingOptions fwd_packing = packing;
      fwd_packing.min_packs = std::min(pt.fwd_floor, fwd_layers);
      const Result<PackList>& fwd = fwd_memo.Get(
          {pt.u_fwd, fwd_packing.min_packs, fwd_layers}, pt.u_fwd, bwd,
          profiles, fwd_packing);
      if (!fwd.ok()) return out;
      config.fwd_packs = fwd.value();
    }

    // Policy axis: evaluate each candidate table on this four-tuple and keep
    // the best (lowest time, then lowest table index). With kLegacy this is
    // one empty table and reproduces the pre-policy evaluation exactly.
    const std::vector<PolicyTable>& tables = tables_by_ubwd[pt.u_bwd];
    for (int ti = 0; ti < static_cast<int>(tables.size()); ++ti) {
      config.policy = tables[ti];
      if (!policy_feasible(config, config.policy)) continue;
      TaskGraph graph = GenerateHarmonyTaskGraph(config, mode, machine.num_gpus,
                                                 minibatch, flags, profiles);
      const Estimate est = estimator.EstimateIteration(graph, nullptr, &scratch);
      ++out.feasible_count;
      if (out.feasible_count == 1 ||
          est.iteration_time < out.estimate.iteration_time) {
        out.estimate = est;
        out.best_table = ti;
        out.config = config;
      }
    }
    return out;
  };

  std::vector<EvalOutcome> outcomes(points.size());
  const int num_threads = options.num_threads <= 0
                              ? common::ThreadPool::DefaultThreadCount()
                              : options.num_threads;
  {
    // Work-stealing fan-out: one run per candidate, one estimator scratch
    // arena per worker (reused across every candidate that worker claims).
    // Each outcome lands in its own slot, so the result is independent of
    // thread count and steal pattern. A tripped cancel token leaves the
    // remaining outcomes infeasible; the cancellation check after the merge
    // discards the partial result.
    sim::MultiRunDriver driver(num_threads);
    std::vector<EstimatorScratch> scratches(
        static_cast<size_t>(driver.num_threads()));
    driver.Run(static_cast<int>(points.size()), [&](int run, int worker) {
      if (cancelled()) return;
      outcomes[run] = evaluate(points[run], scratches[worker]);
    });
  }

  // Phase 3 (serial): deterministic merge. The winner is the feasible
  // candidate with the lowest estimated time, ties broken by lexicographic
  // (u_bwd, u_fwd, bwd_floor, fwd_floor, policy table index) — independent
  // of thread count and of the order workers finished.
  double best_time = -1.0;
  std::tuple<int, int, int, int, int> best_key;
  for (size_t i = 0; i < points.size(); ++i) {
    EvalOutcome& out = outcomes[i];
    if (out.feasible_count == 0) continue;
    result.configs_feasible += out.feasible_count;
    const auto key =
        std::tuple_cat(points[i].TieBreak(), std::make_tuple(out.best_table));
    const bool better =
        best_time < 0 || out.estimate.iteration_time < best_time ||
        (out.estimate.iteration_time == best_time && key < best_key);
    if (better) {
      best_time = out.estimate.iteration_time;
      best_key = key;
      result.best = out.config;
      result.best_estimate = out.estimate;
    }
    if (options.keep_explored) {
      result.explored.push_back(
          ExploredConfig{std::move(out.config), out.estimate});
    }
  }

  result.search_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (cancelled()) {
    // Partial sweeps are never returned (and never cached upstream): a
    // cancelled search is indistinguishable from one that never ran.
    if (cancel->DeadlinePassed()) {
      return Status::DeadlineExceeded("configuration search deadline passed");
    }
    return Status::Cancelled("configuration search cancelled");
  }
  if (best_time < 0) {
    return Status::InvalidArgument(
        "no feasible configuration: model layers too large for GPU memory "
        "at every microbatch size");
  }
  // Release builds skip per-candidate structural validation inside
  // GenerateHarmonyTaskGraph; validate the one graph that leaves the search.
  {
    const TaskGraph winner = GenerateHarmonyTaskGraph(
        result.best, mode, machine.num_gpus, minibatch, flags, profiles);
    ValidateTaskGraph(winner);
  }
  return result;
}

}  // namespace harmony::core
