#include "core/config.h"

#include <sstream>

namespace harmony::core {

const char* HarmonyModeName(HarmonyMode mode) {
  switch (mode) {
    case HarmonyMode::kDataParallel: return "Harmony DP";
    case HarmonyMode::kPipelineParallel: return "Harmony PP";
  }
  return "?";
}

std::string PackListToString(const PackList& packs) {
  std::ostringstream os;
  for (size_t i = 0; i < packs.size(); ++i) {
    if (i) os << ", ";
    os << "L" << packs[i].lo << "-" << packs[i].hi;
  }
  return os.str();
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  os << "(U_F=" << u_fwd << ", |P_F|=" << fwd_packs.size() << ", U_B=" << u_bwd
     << ", |P_B|=" << bwd_packs.size() << ")";
  if (!policy.empty()) os << " policy=" << policy.ToString();
  return os.str();
}

}  // namespace harmony::core
