#ifndef HARMONY_CORE_CONFIG_H_
#define HARMONY_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "model/policy.h"

namespace harmony::core {

/// The per-layer stash residency axis lives in harmony::model (the planning
/// stack below core needs it too); core aliases it as its own vocabulary.
using model::PolicyTable;
using model::StashPolicy;

/// Harmony's two modes of parallel execution (Sec 3).
enum class HarmonyMode {
  kDataParallel,      // Harmony DP
  kPipelineParallel,  // Harmony PP (Wrap-Around Pipeline)
};

const char* HarmonyModeName(HarmonyMode mode);

/// A contiguous layer pack [lo, hi] (inclusive).
struct Pack {
  int lo = 0;
  int hi = -1;

  int num_layers() const { return hi - lo + 1; }
  bool operator==(const Pack& o) const { return lo == o.lo && hi == o.hi; }
};

using PackList = std::vector<Pack>;

std::string PackListToString(const PackList& packs);

/// The training configuration four-tuple of Sec 4.3.1:
/// (forward microbatch size U_F, forward layer packs P_F,
///  backward microbatch size U_B, backward layer packs P_B).
/// P_F excludes the last backward pack's layers — that pack's forward runs
/// fused with the first backward task (jit-compute, Alg 2 line 2).
struct Configuration {
  int u_fwd = 1;
  int u_bwd = 1;
  PackList fwd_packs;
  PackList bwd_packs;
  /// Per-layer stash residency. Empty = legacy: the task-graph generator
  /// derives a uniform table from OptimizationFlags::use_recompute, which
  /// reproduces the pre-policy-axis graphs bit-for-bit.
  PolicyTable policy;

  std::string ToString() const;
};

/// Harmony's runtime/scheduling optimizations (Sec 3, ablated in Fig 13).
/// All on by default; each can be disabled in isolation.
struct OptimizationFlags {
  /// Input-batch grouping: a task runs its whole group of microbatches
  /// back-to-back before the device moves to the next task.
  bool input_batch_grouping = true;
  /// Just-in-time weight update: update tasks run right after the backward
  /// task that produces their gradients, instead of at iteration end.
  bool jit_update = true;
  /// Just-in-time compute: fuse the last pack's forward with its backward
  /// (avoids rematerialization for the last pack).
  bool jit_compute = true;
  /// Direct GPU-GPU transfers for cross-device activations; when off, such
  /// tensors bounce through host memory as two swaps.
  bool p2p_transfers = true;
  /// Overlap the next task's tensor fetches with current compute
  /// (double-buffered prefetch, Sec 4.4).
  bool prefetch = true;
  /// Offload weight update (optimizer step) to the CPU.
  bool cpu_optimizer = true;
  /// Harmony's memory-manager tensor state machine: clean host-backed
  /// tensors are dropped on eviction without a copy-out. (Per-GPU-swap
  /// baselines, which lack this context, always transfer on eviction.)
  bool smart_eviction = true;
  /// Legacy coarse residency knob: when Configuration::policy is empty the
  /// generator lowers this to a uniform PolicyTable (all-kRecompute when set
  /// — Harmony's Sec 4.3.1 default — all-kKeep otherwise, the full-stash
  /// baselines). A non-empty policy table overrides it per layer.
  bool use_recompute = true;
};

}  // namespace harmony::core

#endif  // HARMONY_CORE_CONFIG_H_
