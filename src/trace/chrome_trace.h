#ifndef HARMONY_TRACE_CHROME_TRACE_H_
#define HARMONY_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace harmony::trace {

/// Records every event and renders chrome://tracing (Perfetto-compatible)
/// "Trace Event Format" JSON: one process per device, one thread row per
/// stream lane, duration slices for stream ops, instants for evictions /
/// clean drops / allocation stalls / network flows, and counter tracks for
/// host and device memory. Load the file via chrome://tracing or
/// https://ui.perfetto.dev.
class ChromeTraceSink : public TraceSink {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }
  bool WantsDetail() const override { return true; }

  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }

  /// Renders the accumulated events as a JSON object {"traceEvents": [...]}.
  void WriteJson(std::ostream& os) const;

  /// Convenience: writes the JSON to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<Event> events_;
};

}  // namespace harmony::trace

#endif  // HARMONY_TRACE_CHROME_TRACE_H_
