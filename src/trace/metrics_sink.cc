#include "trace/metrics_sink.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::trace {

MetricsSink::MetricsSink(int num_devices)
    : swap_in_(num_devices, 0),
      swap_out_(num_devices, 0),
      p2p_(num_devices, 0),
      busy_(num_devices, 0.0),
      open_(num_devices, 0.0),
      peak_device_(num_devices, 0) {}

void MetricsSink::OnEvent(const Event& e) {
  switch (e.kind) {
    case EventKind::kOpBegin:
      if (e.lane == Lane::kCompute) open_[e.device] = e.time;
      break;
    case EventKind::kOpEnd:
      // Matches the sim::Stream busy-time accumulation op for op, in the
      // same order, so the folded sum is bit-identical to Stream::busy_time.
      if (e.lane == Lane::kCompute) busy_[e.device] += e.time - open_[e.device];
      break;
    case EventKind::kSwapInIssued:
      swap_in_[e.device] += e.bytes;
      break;
    case EventKind::kSwapOutIssued:
      swap_out_[e.device] += e.bytes;
      break;
    case EventKind::kP2pIssued:
      p2p_[e.device] += e.bytes;
      break;
    case EventKind::kEvict:
      ++evictions_;
      break;
    case EventKind::kCleanDrop:
      ++clean_drops_;
      break;
    case EventKind::kAllocStall:
      ++alloc_stalls_;
      break;
    case EventKind::kFaultInjected:
      ++faults_injected_;
      break;
    case EventKind::kFaultRecovered:
      ++faults_recovered_;
      recovery_bytes_ += e.bytes;
      break;
    case EventKind::kHostBytes:
      peak_host_ = std::max(peak_host_, e.bytes);
      break;
    case EventKind::kDeviceBytes:
      peak_device_[e.device] = std::max(peak_device_[e.device], e.bytes);
      break;
    case EventKind::kServeAdmit:
      ++serve_admitted_;
      break;
    case EventKind::kServeCacheHit:
      ++serve_cache_hits_;
      serve_latency_ns_ += e.bytes;
      ++serve_completed_;
      break;
    case EventKind::kServeSearchBegin:
      ++serve_searches_;
      break;
    case EventKind::kServeComplete:
      serve_latency_ns_ += e.bytes;
      ++serve_completed_;
      break;
    case EventKind::kServeReject:
      ++serve_rejected_;
      break;
    case EventKind::kFlowBegin:
    case EventKind::kFlowEnd:
    case EventKind::kTensor:
    case EventKind::kServeConnOpen:
    case EventKind::kServeConnClose:
    case EventKind::kServeFastPath:
    case EventKind::kClusterPeerFill:
    case EventKind::kClusterDiskHit:
    case EventKind::kReplanTriggered:
    case EventKind::kReplanApplied:
    case EventKind::kReplanRejected:
      break;  // not part of the metrics fold
  }
}

}  // namespace harmony::trace
