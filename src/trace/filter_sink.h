#ifndef HARMONY_TRACE_FILTER_SINK_H_
#define HARMONY_TRACE_FILTER_SINK_H_

#include <cstdio>
#include <string>

#include "trace/trace.h"

namespace harmony::trace {

/// Per-tensor diagnostic tracing: prints every state transition of one tensor
/// to stderr, subsuming the old HARMONY_RUNTIME_TRACE env-var hack that lived
/// inside the runtime. The environment is read exactly once per process (at
/// first EnvFilter() call), not on every state transition.
class FilterSink : public TraceSink {
 public:
  /// `filter` is a tensor key string, e.g. "A[L5,b2,o0]".
  explicit FilterSink(std::string filter, FILE* out = stderr)
      : filter_(std::move(filter)), out_(out) {}

  /// The HARMONY_RUNTIME_TRACE value, read from the environment exactly once
  /// per process; nullptr when unset.
  static const char* EnvFilter();

  bool WantsDetail() const override { return true; }
  bool WantsTensorEvents() const override { return true; }

  void OnEvent(const Event& event) override;

  int64_t matches() const { return matches_; }

 private:
  std::string filter_;
  FILE* out_;
  int64_t matches_ = 0;
};

}  // namespace harmony::trace

#endif  // HARMONY_TRACE_FILTER_SINK_H_
