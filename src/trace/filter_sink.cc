#include "trace/filter_sink.h"

#include <cstdlib>

namespace harmony::trace {

const char* FilterSink::EnvFilter() {
  static const char* filter = std::getenv("HARMONY_RUNTIME_TRACE");
  return filter;
}

void FilterSink::OnEvent(const Event& e) {
  if (e.kind != EventKind::kTensor || e.name != filter_) return;
  ++matches_;
  std::fprintf(out_, "[runtime-trace] %s %s d%d\n", e.name.c_str(), e.detail,
               e.device);
}

}  // namespace harmony::trace
