#ifndef HARMONY_TRACE_TRACE_H_
#define HARMONY_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace harmony::trace {

/// Event taxonomy of the execution pipeline. Everything the paper measures
/// (swap volume Fig 10, idle time, estimator-vs-runtime error Fig 14) derives
/// from these events; RunMetrics is folded from them by MetricsSink.
enum class EventKind : uint8_t {
  // Span events: a stream op occupying a device x lane row. Emitted by
  // sim::Stream (runtime) and by the estimator's lane scheduler, so predicted
  // and simulated timelines can be diffed event-by-event.
  kOpBegin,
  kOpEnd,

  // Byte-accounting instants, emitted where the transfer is committed.
  kSwapInIssued,   // host -> device, `bytes` on `device`
  kSwapOutIssued,  // device -> host, `bytes` from `device`
  kP2pIssued,      // peer -> peer, `bytes` attributed to the receiving device

  // Memory-manager instants.
  kEvict,       // an eviction transfer completed (bytes moved to host)
  kCleanDrop,   // eviction satisfied by dropping a host-backed copy, no bytes
  kAllocStall,  // allocator blocked; `bytes` = unmet deficit on `device`

  // Network-level instants from sim::FlowNetwork.
  kFlowBegin,
  kFlowEnd,

  // Tensor state-machine transition (`name` = tensor key, `detail` = the
  // transition). Only emitted when a sink opted in via WantsTensorEvents().
  kTensor,

  // Counter samples (`bytes` = current total).
  kHostBytes,    // host buffer footprint
  kDeviceBytes,  // device memory in use on `device`

  // Fault-injection instants (src/fault). `detail` names the fault kind;
  // kFaultInjected marks the moment a fault fires (a transfer failing, a link
  // flapping down, pressure landing on a device), kFaultRecovered marks the
  // repair that healed it (a retry succeeding, pressure lifting, an emergency
  // eviction completing). `bytes` carries the recovery transfer size when the
  // repair moved data. These are deliberately NOT folded into the semantic
  // swap/p2p accounting: recovery changes time, never the work a plan does.
  kFaultInjected,
  kFaultRecovered,

  // Serving-layer request lifecycle (src/serve). `task` carries the request
  // id; `time` is real wall-clock seconds since the service started (the
  // planner runs in real time, not simulated time). PlanService serializes
  // its emissions, so single-threaded sinks observe a consistent stream.
  kServeAdmit,        // request admitted to the search queue
  kServeCacheHit,     // served from the plan cache; `bytes` = latency in ns
  kServeSearchBegin,  // a worker started the search (`device` = worker id)
  kServeComplete,     // response ready; `bytes` = end-to-end latency in ns
  kServeReject,       // load-shed (queue full) or refused (draining)

  // Reactor frontend instants (PlanServer's event loops). `device` carries
  // the loop index, `task` the connection fd. kServeConnClose's `detail`
  // names why ("eof", "idle-timeout", "frame-deadline", "error", ...);
  // kServeFastPath marks a request answered from the frontend's byte memo
  // without ever parsing JSON, `bytes` = response payload size.
  kServeConnOpen,
  kServeConnClose,
  kServeFastPath,

  // Cluster cache-tier instants (src/cluster). `task` carries the low 32
  // bits of the request fingerprint; kClusterPeerFill marks a plan fetched
  // from the fingerprint's owner peer instead of searched locally,
  // kClusterDiskHit a plan revived from the disk-backed warm store. `bytes`
  // carries the plan envelope size in both cases.
  kClusterPeerFill,
  kClusterDiskHit,

  // Adaptive re-planning instants (src/adapt), emitted between iterations on
  // the global kNet row. `task` carries the iteration index the decision was
  // made at; `bytes` carries the estimated iteration time in nanoseconds
  // (old plan for kReplanTriggered, new plan for kReplanApplied/kRejected).
  // `detail` names the trigger or rejection reason ("link-degrade",
  // "mem-shrink", "below-margin", ...).
  kReplanTriggered,  // health monitor crossed hysteresis; re-plan requested
  kReplanApplied,    // switchover committed at an iteration boundary
  kReplanRejected,   // candidate plan did not clear the gain margin
};

const char* EventKindName(EventKind kind);

/// The per-device rows of the pipeline: one per CUDA-like stream plus the
/// process-level CPU lane and bookkeeping lanes.
enum class Lane : uint8_t {
  kCompute,
  kSwapIn,
  kSwapOut,
  kP2pIn,
  kCpu,
  kHost,
  kNet,
  kAlloc,
  kServe,  // plan-service request lifecycle rows
};

const char* LaneName(Lane lane);

/// One typed trace event. `name` is only populated when some sink asked for
/// detail (TraceBus::detailed()), keeping the common path allocation-free.
struct Event {
  EventKind kind = EventKind::kOpBegin;
  Lane lane = Lane::kCompute;
  int device = -1;  // GPU index (or process index on the kCpu lane); -1 global
  TimeSec time = 0;
  Bytes bytes = 0;
  int task = -1;        // task id, when the emitter knows it
  const char* detail = "";  // static transition / annotation string
  std::string name;     // tensor key or op label (detailed mode only)
};

/// Receives every event emitted on a bus. Implementations must not mutate
/// simulation state; they observe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& event) = 0;

  /// True if this sink needs `Event::name` populated (string building on the
  /// hot path is skipped when no sink wants it).
  virtual bool WantsDetail() const { return false; }

  /// True if this sink wants per-tensor state-machine transitions (kTensor),
  /// which are far more frequent than the transfer/step events.
  virtual bool WantsTensorEvents() const { return false; }
};

/// Fan-out of events to registered sinks. Sinks are borrowed, not owned; the
/// bus must not outlive them. Single-threaded, like the simulation it traces.
class TraceBus {
 public:
  void AddSink(TraceSink* sink);

  bool active() const { return !sinks_.empty(); }
  bool detailed() const { return detailed_; }
  bool tensor_events() const { return tensor_events_; }

  void Emit(const Event& event) {
    for (TraceSink* sink : sinks_) sink->OnEvent(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
  bool detailed_ = false;
  bool tensor_events_ = false;
};

}  // namespace harmony::trace

#endif  // HARMONY_TRACE_TRACE_H_
