#ifndef HARMONY_TRACE_METRICS_SINK_H_
#define HARMONY_TRACE_METRICS_SINK_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace harmony::trace {

/// Folds the event stream into the byte/time accounting that backs
/// runtime::RunMetrics — the single source of truth for swap volume (Fig 10),
/// compute busy time, eviction counts, and memory high-water marks. The
/// executor no longer keeps any counters of its own; it reads them from here
/// after the simulation drains.
class MetricsSink : public TraceSink {
 public:
  explicit MetricsSink(int num_devices);

  void OnEvent(const Event& event) override;

  const std::vector<Bytes>& swap_in_bytes() const { return swap_in_; }
  const std::vector<Bytes>& swap_out_bytes() const { return swap_out_; }
  const std::vector<Bytes>& p2p_bytes() const { return p2p_; }
  const std::vector<TimeSec>& compute_busy() const { return busy_; }
  const std::vector<Bytes>& peak_device_bytes() const { return peak_device_; }
  Bytes peak_host_bytes() const { return peak_host_; }
  int64_t evictions() const { return evictions_; }
  int64_t clean_drops() const { return clean_drops_; }
  int64_t alloc_stalls() const { return alloc_stalls_; }

  // Fault-injection accounting (kFault* events). Recovery bytes are the
  // transfers recovery performed on top of the plan's semantic work — they
  // never mix into swap_in/swap_out/p2p, which must stay fault-invariant.
  int64_t faults_injected() const { return faults_injected_; }
  int64_t faults_recovered() const { return faults_recovered_; }
  Bytes recovery_bytes() const { return recovery_bytes_; }

  // Serving-layer request accounting (kServe* events). Latency sums divide
  // by the matching count for mean served latency; percentile breakdowns
  // live in ChromeTraceSink / the client, which see each instant.
  int64_t serve_admitted() const { return serve_admitted_; }
  int64_t serve_cache_hits() const { return serve_cache_hits_; }
  int64_t serve_searches() const { return serve_searches_; }
  int64_t serve_completed() const { return serve_completed_; }
  int64_t serve_rejected() const { return serve_rejected_; }
  int64_t serve_latency_ns() const { return serve_latency_ns_; }

 private:
  std::vector<Bytes> swap_in_, swap_out_, p2p_;
  std::vector<TimeSec> busy_;
  std::vector<TimeSec> open_;  // begin time of the in-flight compute op
  std::vector<Bytes> peak_device_;
  Bytes peak_host_ = 0;
  int64_t evictions_ = 0;
  int64_t clean_drops_ = 0;
  int64_t alloc_stalls_ = 0;
  int64_t faults_injected_ = 0;
  int64_t faults_recovered_ = 0;
  Bytes recovery_bytes_ = 0;
  int64_t serve_admitted_ = 0;
  int64_t serve_cache_hits_ = 0;
  int64_t serve_searches_ = 0;
  int64_t serve_completed_ = 0;
  int64_t serve_rejected_ = 0;
  int64_t serve_latency_ns_ = 0;
};

}  // namespace harmony::trace

#endif  // HARMONY_TRACE_METRICS_SINK_H_
