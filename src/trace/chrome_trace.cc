#include "trace/chrome_trace.h"

#include <fstream>
#include <map>
#include <set>
#include <utility>

namespace harmony::trace {
namespace {

// Devices map to trace pids directly; global (device == -1) events get their
// own "machine" process so network flows and host counters have a home row.
// Serving-layer events land in a dedicated "plan-service" process whose
// thread rows are the pool workers (plus one front-door row for admission
// events that precede worker assignment).
constexpr int kGlobalPid = 1000;
constexpr int kServePid = 2000;
constexpr int kServeFrontDoorTid = 99;

int PidOf(const Event& e) {
  if (e.lane == Lane::kServe) return kServePid;
  return e.device < 0 ? kGlobalPid : e.device;
}

int TidOf(const Event& e) {
  if (e.lane == Lane::kServe) {
    return e.device < 0 ? kServeFrontDoorTid : e.device;
  }
  return static_cast<int>(e.lane);
}

std::string Escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop control chars
        out += c;
    }
  }
  return out;
}

double Us(TimeSec t) { return t * 1e6; }

}  // namespace

void ChromeTraceSink::WriteJson(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  // Begin events waiting for their matching end, per (pid, tid) row. Stream
  // ops are FIFO per lane, so a one-deep slot per row suffices; nested spans
  // never occur on a stream.
  std::map<std::pair<int, int>, Event> open;
  std::set<std::pair<int, int>> rows;  // (pid, tid) seen, for metadata

  for (const Event& e : events_) {
    const int pid = PidOf(e);
    const int tid = TidOf(e);
    char buf[200];
    switch (e.kind) {
      case EventKind::kOpBegin:
        rows.insert({pid, tid});
        open[{pid, tid}] = e;
        break;
      case EventKind::kOpEnd: {
        auto it = open.find({pid, tid});
        if (it == open.end()) break;  // unmatched end: drop
        const Event& b = it->second;
        std::string name = b.name.empty() ? LaneName(e.lane) : Escaped(b.name);
        snprintf(buf, sizeof(buf),
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                 "\"dur\":%.3f,\"pid\":%d,\"tid\":%d",
                 name.c_str(), LaneName(e.lane), Us(b.time),
                 Us(e.time - b.time), pid, tid);
        std::string line(buf);
        if (b.task >= 0) line += ",\"args\":{\"task\":" + std::to_string(b.task) + "}";
        emit(line + "}");
        open.erase(it);
        break;
      }
      case EventKind::kEvict:
      case EventKind::kCleanDrop:
      case EventKind::kAllocStall:
      case EventKind::kFaultInjected:
      case EventKind::kFaultRecovered:
      case EventKind::kReplanTriggered:
      case EventKind::kReplanApplied:
      case EventKind::kReplanRejected:
      case EventKind::kFlowBegin:
      case EventKind::kFlowEnd: {
        rows.insert({pid, tid});
        std::string name = EventKindName(e.kind);
        if (e.detail[0] != '\0') name += std::string(" ") + e.detail;
        if (!e.name.empty()) name += " " + Escaped(e.name);
        snprintf(buf, sizeof(buf),
                 "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"bytes\":%lld}}",
                 Us(e.time), pid, tid, static_cast<long long>(e.bytes));
        emit("{\"name\":\"" + name + buf);
        break;
      }
      case EventKind::kHostBytes:
      case EventKind::kDeviceBytes: {
        const char* counter =
            e.kind == EventKind::kHostBytes ? "host_bytes" : "device_bytes";
        snprintf(buf, sizeof(buf),
                 "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,"
                 "\"args\":{\"bytes\":%lld}}",
                 counter, Us(e.time), pid, static_cast<long long>(e.bytes));
        emit(buf);
        break;
      }
      case EventKind::kServeAdmit:
      case EventKind::kServeCacheHit:
      case EventKind::kServeSearchBegin:
      case EventKind::kServeComplete:
      case EventKind::kServeReject:
      case EventKind::kServeConnOpen:
      case EventKind::kServeConnClose:
      case EventKind::kServeFastPath:
      case EventKind::kClusterPeerFill:
      case EventKind::kClusterDiskHit: {
        // Instants keyed by request id: the per-request latency breakdown is
        // the gap between a request's admit / search-begin / complete marks.
        rows.insert({pid, tid});
        std::string name = EventKindName(e.kind);
        if (!e.name.empty()) name += " " + Escaped(e.name);
        snprintf(buf, sizeof(buf),
                 "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":%.3f,\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"request\":%d,\"latency_ns\":%lld}}",
                 Us(e.time), pid, tid, e.task,
                 static_cast<long long>(e.bytes));
        emit("{\"name\":\"" + name + buf);
        break;
      }
      case EventKind::kSwapInIssued:
      case EventKind::kSwapOutIssued:
      case EventKind::kP2pIssued:
      case EventKind::kTensor:
        break;  // byte accounting / tensor transitions: not rendered
    }
  }

  // Row naming metadata: device processes and lane threads.
  std::set<int> pids;
  for (const auto& [pid, tid] : rows) pids.insert(pid);
  for (int pid : pids) {
    const std::string pname = pid == kGlobalPid    ? "machine"
                              : pid == kServePid   ? "plan-service"
                                                   : "GPU" + std::to_string(pid);
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"args\":{\"name\":\"" + pname + "\"}}");
  }
  for (const auto& [pid, tid] : rows) {
    std::string tname;
    if (pid == kServePid) {
      tname = tid == kServeFrontDoorTid ? "requests"
                                        : "worker" + std::to_string(tid);
    } else {
      tname = LaneName(static_cast<Lane>(tid));
    }
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + tname + "\"}}");
  }
  os << "\n]}\n";
}

Status ChromeTraceSink::WriteFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::InvalidArgument("cannot open trace file " + path);
  WriteJson(os);
  return os ? Status::Ok()
            : Status::Internal("short write to trace file " + path);
}

}  // namespace harmony::trace
