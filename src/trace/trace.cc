#include "trace/trace.h"

namespace harmony::trace {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kOpBegin: return "op-begin";
    case EventKind::kOpEnd: return "op-end";
    case EventKind::kSwapInIssued: return "swap-in";
    case EventKind::kSwapOutIssued: return "swap-out";
    case EventKind::kP2pIssued: return "p2p";
    case EventKind::kEvict: return "evict";
    case EventKind::kCleanDrop: return "clean-drop";
    case EventKind::kAllocStall: return "alloc-stall";
    case EventKind::kFlowBegin: return "flow-begin";
    case EventKind::kFlowEnd: return "flow-end";
    case EventKind::kTensor: return "tensor";
    case EventKind::kHostBytes: return "host-bytes";
    case EventKind::kDeviceBytes: return "device-bytes";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kFaultRecovered: return "fault-recovered";
    case EventKind::kServeAdmit: return "serve-admit";
    case EventKind::kServeCacheHit: return "serve-cache-hit";
    case EventKind::kServeSearchBegin: return "serve-search-begin";
    case EventKind::kServeComplete: return "serve-complete";
    case EventKind::kServeReject: return "serve-reject";
    case EventKind::kServeConnOpen: return "serve-conn-open";
    case EventKind::kServeConnClose: return "serve-conn-close";
    case EventKind::kServeFastPath: return "serve-fastpath";
    case EventKind::kClusterPeerFill: return "cluster-peer-fill";
    case EventKind::kClusterDiskHit: return "cluster-disk-hit";
    case EventKind::kReplanTriggered: return "replan-triggered";
    case EventKind::kReplanApplied: return "replan-applied";
    case EventKind::kReplanRejected: return "replan-rejected";
  }
  return "?";
}

const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kCompute: return "compute";
    case Lane::kSwapIn: return "swapin";
    case Lane::kSwapOut: return "swapout";
    case Lane::kP2pIn: return "p2pin";
    case Lane::kCpu: return "cpu";
    case Lane::kHost: return "host";
    case Lane::kNet: return "net";
    case Lane::kAlloc: return "alloc";
    case Lane::kServe: return "serve";
  }
  return "?";
}

void TraceBus::AddSink(TraceSink* sink) {
  sinks_.push_back(sink);
  detailed_ = detailed_ || sink->WantsDetail();
  tensor_events_ = tensor_events_ || sink->WantsTensorEvents();
}

}  // namespace harmony::trace
