#ifndef HARMONY_MODEL_MODELS_H_
#define HARMONY_MODEL_MODELS_H_

#include "model/layer.h"

namespace harmony::model {

/// Builders for the evaluation models of Sec 5.1. Parameter counts, depths
/// and sample sizes follow the paper: BERT variants use sequence length 512,
/// GPT2 variants 1024, CNNs use 224x224 ImageNet samples.

/// BERT-Large: 24 transformer layers, hidden 1024, ~340M params.
LayerGraph BertLarge();

/// BERT96: 96 transformer layers (PipeDream-2BW's deep BERT), ~1.2B params.
/// 100 layers total (L0..L99), matching Table 5's pack indices.
LayerGraph Bert96();

/// GPT2 (the default 1.5B model): 48 blocks, hidden 1600, seq 1024.
/// 52 layers total (L0..L51), matching Table 5.
LayerGraph Gpt2();

/// GPT2-Medium (0.3B): 24 blocks, hidden 1024.
LayerGraph Gpt2Medium();

/// Customized GPT2 scaled to roughly `billions` of parameters at 48 blocks
/// (the 10B..40B models of Sec 5.7).
LayerGraph Gpt2Custom(double billions);

/// VGG416: the classic VGG scaled to 416 layer indices (L0..L416 as in
/// Table 5): 407 convs + 5 pools + flatten + 3 FC + loss.
LayerGraph Vgg416();

/// ResNet1K: pre-activation bottleneck ResNet with 342 blocks
/// (L0..L1029 as in Table 5). Skip connections appear as branch edges and
/// exercise the Decomposer's sequentialization.
LayerGraph ResNet1K();

/// Small uniform transformer for tests (L transformer blocks + embedding +
/// head); keeps unit tests fast while exercising every scheduler path.
LayerGraph TinyTransformer(int blocks, int hidden = 256, int seq = 64);

/// Builds a transformer-family language model; shared implementation behind
/// the GPT/BERT builders (exposed for tests and custom experiments).
struct TransformerConfig {
  std::string name;
  int num_blocks = 24;
  int hidden = 1024;
  int seq_len = 512;
  int heads = 16;
  int vocab = 30522;
  bool is_bert = false;  // BERT: pooler+classifier head; GPT: LN + LM head
};
LayerGraph BuildTransformer(const TransformerConfig& config);

}  // namespace harmony::model

#endif  // HARMONY_MODEL_MODELS_H_
