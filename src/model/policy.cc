#include "model/policy.h"

#include <sstream>

#include "common/logging.h"

namespace harmony::model {

const char* StashPolicyName(StashPolicy p) {
  switch (p) {
    case StashPolicy::kKeep: return "keep";
    case StashPolicy::kSwap: return "swap";
    case StashPolicy::kRecompute: return "recompute";
  }
  return "?";
}

char StashPolicyCode(StashPolicy p) {
  switch (p) {
    case StashPolicy::kKeep: return 'k';
    case StashPolicy::kSwap: return 's';
    case StashPolicy::kRecompute: return 'r';
  }
  return '?';
}

PolicyTable PolicyTable::Uniform(int num_layers, StashPolicy fill) {
  HARMONY_CHECK_GE(num_layers, 1);
  PolicyTable t;
  t.entries_.assign(num_layers, fill);
  return t;
}

void PolicyTable::Set(int layer, StashPolicy p) {
  HARMONY_CHECK_GE(layer, 0);
  HARMONY_CHECK_LT(layer, num_layers());
  entries_[layer] = p;
}

bool PolicyTable::IsUniform(StashPolicy p) const {
  if (entries_.empty()) return false;
  for (StashPolicy e : entries_) {
    if (e != p) return false;
  }
  return true;
}

int PolicyTable::Count(StashPolicy p) const {
  int n = 0;
  for (StashPolicy e : entries_) n += e == p ? 1 : 0;
  return n;
}

std::string PolicyTable::ToString() const {
  std::ostringstream os;
  const int n = num_layers();
  for (int lo = 0; lo < n;) {
    int hi = lo;
    while (hi + 1 < n && entries_[hi + 1] == entries_[lo]) ++hi;
    if (lo > 0) os << ",";
    os << StashPolicyCode(entries_[lo]) << lo;
    if (hi > lo) os << "-" << hi;
    lo = hi + 1;
  }
  return os.str();
}

Result<PolicyTable> PolicyTable::FromString(const std::string& s) {
  PolicyTable t;
  if (s.empty()) return t;
  size_t pos = 0;
  int expected_lo = 0;
  while (pos < s.size()) {
    StashPolicy p;
    switch (s[pos]) {
      case 'k': p = StashPolicy::kKeep; break;
      case 's': p = StashPolicy::kSwap; break;
      case 'r': p = StashPolicy::kRecompute; break;
      default:
        return Status::InvalidArgument("policy table: bad code at '" +
                                       s.substr(pos) + "'");
    }
    ++pos;
    auto parse_int = [&](int* out) -> bool {
      size_t start = pos;
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
      if (pos == start) return false;
      *out = std::stoi(s.substr(start, pos - start));
      return true;
    };
    int lo = 0, hi = 0;
    if (!parse_int(&lo)) {
      return Status::InvalidArgument("policy table: missing layer index");
    }
    hi = lo;
    if (pos < s.size() && s[pos] == '-') {
      ++pos;
      if (!parse_int(&hi)) {
        return Status::InvalidArgument("policy table: missing range end");
      }
    }
    if (lo != expected_lo || hi < lo) {
      return Status::InvalidArgument(
          "policy table: runs must be contiguous from layer 0");
    }
    for (int l = lo; l <= hi; ++l) t.entries_.push_back(p);
    expected_lo = hi + 1;
    if (pos < s.size()) {
      if (s[pos] != ',') {
        return Status::InvalidArgument("policy table: expected ','");
      }
      ++pos;
      if (pos == s.size()) {
        return Status::InvalidArgument("policy table: trailing ','");
      }
    }
  }
  return t;
}

LayerResidencyCost ResidencyCost(const CostModel& cost, const LayerSpec& layer,
                                 int u, double swap_bw) {
  LayerResidencyCost c;
  c.recompute_time = cost.FwdTime(layer, u);
  c.stash_bytes = static_cast<Bytes>(u) * layer.stash_bytes_per_sample;
  c.swap_stall =
      swap_bw > 0 ? static_cast<double>(c.stash_bytes) / swap_bw : 0.0;
  return c;
}

StashPolicy DominantPolicy(const LayerResidencyCost& cost) {
  if (cost.stash_bytes == 0) return StashPolicy::kKeep;
  return cost.recompute_time < cost.swap_stall ? StashPolicy::kRecompute
                                               : StashPolicy::kSwap;
}

}  // namespace harmony::model
