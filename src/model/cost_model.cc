#include "model/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::model {

CostModel::CostModel(const hw::GpuSpec& gpu) : gpu_(gpu) {}

TimeSec CostModel::ComputeTime(const LayerSpec& layer, int u,
                               Flops flops_per_sample,
                               double bytes_multiplier) const {
  HARMONY_CHECK_GE(u, 1);
  const double eff = layer.efficiency_at_saturation *
                     (static_cast<double>(u) / (u + layer.efficiency_half_u));
  const double flop_time =
      eff > 0.0 ? (u * flops_per_sample) / (gpu_.peak_flops * eff) : 0.0;
  const double bytes_touched =
      bytes_multiplier *
          static_cast<double>(u) *
          static_cast<double>(layer.input_bytes_per_sample +
                              layer.output_bytes_per_sample +
                              layer.stash_bytes_per_sample) +
      static_cast<double>(layer.param_bytes);
  const double mem_time = bytes_touched / gpu_mem_bw_;
  return std::max(flop_time, mem_time);
}

TimeSec CostModel::FwdTime(const LayerSpec& layer, int u) const {
  return fwd_launch_overhead_ +
         ComputeTime(layer, u, layer.fwd_flops_per_sample, 1.0);
}

TimeSec CostModel::BwdTime(const LayerSpec& layer, int u) const {
  // Backward touches activations and their gradients: ~2x the bytes.
  return bwd_launch_overhead_ +
         ComputeTime(layer, u, layer.bwd_flops_per_sample, 2.0);
}

TimeSec CostModel::GpuUpdateTime(const LayerSpec& layer) const {
  // Adam: read W, G, m, v; write W, m, v  => ~7x param bytes, memory bound.
  return 10e-6 + 7.0 * static_cast<double>(layer.param_bytes) / gpu_mem_bw_;
}

Bytes CostModel::FwdWorkingBytes(const LayerSpec& layer, int u) const {
  return static_cast<Bytes>(u) * (layer.input_bytes_per_sample +
                                  layer.output_bytes_per_sample +
                                  layer.stash_bytes_per_sample) +
         layer.workspace_bytes;
}

Bytes CostModel::BwdWorkingBytes(const LayerSpec& layer, int u) const {
  // Adds gradient buffers for input/output activations.
  return static_cast<Bytes>(u) * (2 * layer.input_bytes_per_sample +
                                  2 * layer.output_bytes_per_sample +
                                  layer.stash_bytes_per_sample) +
         layer.workspace_bytes;
}

}  // namespace harmony::model
