#include "model/layer.h"

#include "common/logging.h"

namespace harmony::model {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kEmbedding: return "embedding";
    case LayerKind::kTransformerBlock: return "transformer";
    case LayerKind::kLayerNorm: return "layernorm";
    case LayerKind::kLinear: return "linear";
    case LayerKind::kLmHead: return "lm_head";
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "pool";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kClassifier: return "classifier";
    case LayerKind::kPooler: return "pooler";
    case LayerKind::kLoss: return "loss";
    case LayerKind::kIdentityRelay: return "identity";
  }
  return "?";
}

Bytes LayerGraph::total_param_bytes() const {
  Bytes total = 0;
  for (const auto& l : layers) total += l.param_bytes;
  return total;
}

Bytes SequentialModel::total_param_bytes() const {
  Bytes total = 0;
  for (const auto& l : layers) total += l.spec.param_bytes;
  return total;
}

Flops SequentialModel::total_fwd_flops_per_sample() const {
  Flops total = 0;
  for (const auto& l : layers) total += l.spec.fwd_flops_per_sample;
  return total;
}

SequentialModel Sequentialize(const LayerGraph& graph) {
  SequentialModel seq;
  seq.model_name = graph.model_name;
  seq.sample_input_bytes = graph.sample_input_bytes;
  seq.layers.reserve(graph.layers.size());
  for (const auto& spec : graph.layers) {
    seq.layers.push_back(SeqLayer{spec, 0});
  }
  // A branch (src -> dst) means src's output must reach dst even though the
  // chain only hands tensors to the next layer. The chain edge (src, src+1)
  // already carries it; layers src+1 .. dst-1 must additionally relay it on
  // their output side (identity pass-through appended to the activation
  // payload), so boundaries (src+1, src+2) .. (dst-1, dst) carry the extra
  // bytes.
  for (const auto& edge : graph.branches) {
    HARMONY_CHECK_GE(edge.src, 0);
    HARMONY_CHECK_LT(edge.dst, graph.num_layers());
    HARMONY_CHECK_LT(edge.src + 1, edge.dst)
        << "branch (" << edge.src << "->" << edge.dst
        << ") is the implicit chain edge or malformed";
    for (int pos = edge.src + 1; pos <= edge.dst - 1; ++pos) {
      seq.layers[pos].relay_bytes_per_sample += edge.bytes_per_sample;
    }
  }
  return seq;
}

}  // namespace harmony::model
