#include "model/models.h"

#include <cmath>

#include "common/logging.h"

namespace harmony::model {
namespace {

constexpr Bytes kF32 = 4;

LayerSpec TransformerBlock(const std::string& name, int hidden, int seq, int heads) {
  const double h = hidden, s = seq;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kTransformerBlock;
  l.param_bytes = static_cast<Bytes>((12.0 * h * h + 13.0 * h) * kF32);
  // QKV + output projections (8sh^2), attention score/context (4s^2h),
  // 4x-expansion MLP (16sh^2).
  l.fwd_flops_per_sample = 24.0 * s * h * h + 4.0 * s * s * h;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(s * h * kF32);
  l.output_bytes_per_sample = l.input_bytes_per_sample;
  // Per-sample backward stash: GELU/attention intermediates (~10 s h floats)
  // plus one copy of the attention probabilities (heads s^2).
  l.stash_bytes_per_sample =
      static_cast<Bytes>((10.0 * s * h + 1.0 * heads * s * s) * kF32);
  l.workspace_bytes = MiB(64);
  l.efficiency_at_saturation = 0.42;
  l.efficiency_half_u = 0.25;
  return l;
}

LayerSpec Embedding(const std::string& name, int vocab, int hidden, int seq,
                    int max_pos) {
  const double h = hidden, s = seq;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kEmbedding;
  l.param_bytes = static_cast<Bytes>((static_cast<double>(vocab) + max_pos) * h * kF32);
  l.fwd_flops_per_sample = 2.0 * s * h;  // gather + add position
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(s * kF32);  // token ids
  l.output_bytes_per_sample = static_cast<Bytes>(s * h * kF32);
  l.stash_bytes_per_sample = static_cast<Bytes>(s * kF32);  // ids for scatter-add
  l.efficiency_at_saturation = 0.05;  // memory-bound gather
  l.efficiency_half_u = 0.5;
  return l;
}

LayerSpec FinalLayerNorm(int hidden, int seq) {
  const double h = hidden, s = seq;
  LayerSpec l;
  l.name = "final_ln";
  l.kind = LayerKind::kLayerNorm;
  l.param_bytes = static_cast<Bytes>(2.0 * h * kF32);
  l.fwd_flops_per_sample = 10.0 * s * h;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(s * h * kF32);
  l.output_bytes_per_sample = l.input_bytes_per_sample;
  l.stash_bytes_per_sample = l.input_bytes_per_sample;
  l.efficiency_at_saturation = 0.03;  // memory bound
  l.efficiency_half_u = 0.5;
  return l;
}

LayerSpec LmHead(int vocab, int hidden, int seq) {
  const double h = hidden, s = seq, v = vocab;
  LayerSpec l;
  l.name = "lm_head";
  l.kind = LayerKind::kLmHead;
  // Weight tied with the input embedding (GPT-2 convention): no extra params,
  // but the projection compute is real and large.
  l.param_bytes = 0;
  l.fwd_flops_per_sample = 2.0 * s * h * v;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(s * h * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(s * kF32);  // per-token loss
  l.stash_bytes_per_sample = static_cast<Bytes>(s * h * kF32);
  l.workspace_bytes = MiB(256);  // chunked logits scratch
  l.efficiency_at_saturation = 0.42;
  l.efficiency_half_u = 0.25;
  return l;
}

LayerSpec Pooler(int hidden, int seq) {
  const double h = hidden;
  LayerSpec l;
  l.name = "pooler";
  l.kind = LayerKind::kPooler;
  l.param_bytes = static_cast<Bytes>((h * h + h) * kF32);
  l.fwd_flops_per_sample = 2.0 * h * h;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(static_cast<double>(seq) * h * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(h * kF32);
  l.stash_bytes_per_sample = static_cast<Bytes>(h * kF32);
  l.efficiency_at_saturation = 0.2;
  l.efficiency_half_u = 8.0;
  return l;
}

LayerSpec Classifier(const std::string& name, int in_features, int classes) {
  const double in = in_features, c = classes;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kClassifier;
  l.param_bytes = static_cast<Bytes>((in * c + c) * kF32);
  l.fwd_flops_per_sample = 2.0 * in * c;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(in * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(c * kF32);
  l.stash_bytes_per_sample = static_cast<Bytes>(c * kF32);
  l.efficiency_at_saturation = 0.2;
  l.efficiency_half_u = 8.0;
  return l;
}

LayerSpec Loss(int classes) {
  LayerSpec l;
  l.name = "loss";
  l.kind = LayerKind::kLoss;
  l.fwd_flops_per_sample = 5.0 * classes;
  l.bwd_flops_per_sample = 5.0 * classes;
  l.input_bytes_per_sample = static_cast<Bytes>(classes) * kF32;
  l.output_bytes_per_sample = kF32;
  l.stash_bytes_per_sample = static_cast<Bytes>(classes) * kF32;
  l.efficiency_at_saturation = 0.01;
  l.efficiency_half_u = 1.0;
  return l;
}

LayerSpec Conv(const std::string& name, int in_ch, int out_ch, int out_hw,
               int kernel = 3) {
  const double cin = in_ch, cout = out_ch, hw = out_hw, k = kernel;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kConv;
  l.param_bytes = static_cast<Bytes>((k * k * cin * cout + cout) * kF32);
  l.fwd_flops_per_sample = 2.0 * hw * hw * k * k * cin * cout;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  // Input spatial size: out_hw for stride 1 (the builders pass the output
  // resolution; stride-2 convs slightly underestimate input bytes, fine for
  // a cost model).
  l.input_bytes_per_sample = static_cast<Bytes>(hw * hw * cin * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(hw * hw * cout * kF32);
  l.stash_bytes_per_sample = l.output_bytes_per_sample;  // post-ReLU stash
  l.workspace_bytes = MiB(96);  // cuDNN algo scratch
  l.efficiency_at_saturation = 0.38;
  l.efficiency_half_u = 2.0;
  return l;
}

LayerSpec Pool(const std::string& name, int channels, int out_hw) {
  const double c = channels, hw = out_hw;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kPool;
  l.fwd_flops_per_sample = 4.0 * hw * hw * c;
  l.bwd_flops_per_sample = l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(4.0 * hw * hw * c * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(hw * hw * c * kF32);
  l.stash_bytes_per_sample = l.output_bytes_per_sample;  // argmax indices
  l.efficiency_at_saturation = 0.02;
  l.efficiency_half_u = 1.0;
  return l;
}

LayerSpec Linear(const std::string& name, int in_features, int out_features) {
  const double in = in_features, out = out_features;
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::kLinear;
  l.param_bytes = static_cast<Bytes>((in * out + out) * kF32);
  l.fwd_flops_per_sample = 2.0 * in * out;
  l.bwd_flops_per_sample = 2.0 * l.fwd_flops_per_sample;
  l.input_bytes_per_sample = static_cast<Bytes>(in * kF32);
  l.output_bytes_per_sample = static_cast<Bytes>(out * kF32);
  l.stash_bytes_per_sample = l.output_bytes_per_sample;
  l.efficiency_at_saturation = 0.5;
  l.efficiency_half_u = 8.0;  // GEMV until batched
  return l;
}

}  // namespace

LayerGraph BuildTransformer(const TransformerConfig& c) {
  LayerGraph g;
  g.model_name = c.name;
  g.sample_input_bytes = static_cast<Bytes>(c.seq_len) * kF32;
  g.layers.push_back(Embedding("embedding", c.vocab, c.hidden, c.seq_len,
                               /*max_pos=*/c.seq_len));
  for (int i = 0; i < c.num_blocks; ++i) {
    g.layers.push_back(
        TransformerBlock("block" + std::to_string(i), c.hidden, c.seq_len, c.heads));
  }
  if (c.is_bert) {
    g.layers.push_back(Pooler(c.hidden, c.seq_len));
    g.layers.push_back(Classifier("classifier", c.hidden, /*classes=*/2));
    g.layers.push_back(Loss(/*classes=*/2));
  } else {
    g.layers.push_back(FinalLayerNorm(c.hidden, c.seq_len));
    g.layers.push_back(LmHead(c.vocab, c.hidden, c.seq_len));
    g.layers.push_back(Loss(/*classes=*/c.vocab));
  }
  return g;
}

LayerGraph BertLarge() {
  TransformerConfig c;
  c.name = "BERT-Large";
  c.num_blocks = 24;
  c.hidden = 1024;
  c.seq_len = 512;
  c.heads = 16;
  c.vocab = 30522;
  c.is_bert = true;
  return BuildTransformer(c);
}

LayerGraph Bert96() {
  TransformerConfig c;
  c.name = "BERT96";
  c.num_blocks = 96;  // 100 layers total: emb + 96 blocks + pooler + cls + loss
  c.hidden = 1024;
  c.seq_len = 512;
  c.heads = 16;
  c.vocab = 30522;
  c.is_bert = true;
  return BuildTransformer(c);
}

LayerGraph Gpt2() {
  TransformerConfig c;
  c.name = "GPT2";
  c.num_blocks = 48;  // 52 layers total: emb + 48 blocks + ln + head + loss
  c.hidden = 1600;
  c.seq_len = 1024;
  c.heads = 25;
  c.vocab = 50257;
  c.is_bert = false;
  return BuildTransformer(c);
}

LayerGraph Gpt2Medium() {
  TransformerConfig c;
  c.name = "GPT2-Medium";
  c.num_blocks = 24;
  c.hidden = 1024;
  c.seq_len = 1024;
  c.heads = 16;
  c.vocab = 50257;
  c.is_bert = false;
  return BuildTransformer(c);
}

LayerGraph Gpt2Custom(double billions) {
  HARMONY_CHECK_GT(billions, 0.0);
  TransformerConfig c;
  c.num_blocks = 48;
  // params ~= 12 * h^2 * blocks  =>  h = sqrt(B * 1e9 / (12 * blocks)),
  // rounded to a multiple of 64.
  const double h_exact = std::sqrt(billions * 1e9 / (12.0 * c.num_blocks));
  c.hidden = static_cast<int>(std::round(h_exact / 64.0)) * 64;
  c.heads = c.hidden / 64;
  c.seq_len = 1024;
  c.vocab = 50257;
  c.is_bert = false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "GPT2-%.0fB", billions);
  c.name = buf;
  return BuildTransformer(c);
}

LayerGraph TinyTransformer(int blocks, int hidden, int seq) {
  TransformerConfig c;
  c.name = "TinyTransformer-" + std::to_string(blocks);
  c.num_blocks = blocks;
  c.hidden = hidden;
  c.seq_len = seq;
  c.heads = std::max(1, hidden / 64);
  c.vocab = 1000;
  c.is_bert = false;
  return BuildTransformer(c);
}

LayerGraph Vgg416() {
  LayerGraph g;
  g.model_name = "VGG416";
  g.sample_input_bytes = static_cast<Bytes>(3) * 224 * 224 * kF32;
  // 407 convs over 5 stages + 5 pools + flatten + 3 FC + loss = 417 layers
  // (L0..L416, matching Table 5).
  const int stage_convs[5] = {40, 40, 81, 123, 123};
  const int stage_ch[5] = {64, 128, 256, 512, 512};
  const int stage_hw[5] = {224, 112, 56, 28, 14};
  int in_ch = 3;
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < stage_convs[s]; ++i) {
      g.layers.push_back(Conv("s" + std::to_string(s) + ".conv" + std::to_string(i),
                              in_ch, stage_ch[s], stage_hw[s]));
      in_ch = stage_ch[s];
    }
    g.layers.push_back(Pool("s" + std::to_string(s) + ".pool", stage_ch[s],
                            stage_hw[s] / 2));
  }
  // Flatten 512 x 7 x 7 -> 25088.
  LayerSpec flatten;
  flatten.name = "flatten";
  flatten.kind = LayerKind::kFlatten;
  flatten.fwd_flops_per_sample = 0;
  flatten.bwd_flops_per_sample = 0;
  flatten.input_bytes_per_sample = static_cast<Bytes>(25088) * kF32;
  flatten.output_bytes_per_sample = flatten.input_bytes_per_sample;
  flatten.stash_bytes_per_sample = 0;
  flatten.efficiency_at_saturation = 0.01;
  flatten.efficiency_half_u = 1.0;
  g.layers.push_back(flatten);
  g.layers.push_back(Linear("fc6", 25088, 4096));
  g.layers.push_back(Linear("fc7", 4096, 4096));
  g.layers.push_back(Classifier("fc8", 4096, 1000));
  g.layers.push_back(Loss(1000));
  HARMONY_CHECK_EQ(g.num_layers(), 417);
  return g;
}

LayerGraph ResNet1K() {
  LayerGraph g;
  g.model_name = "ResNet1K";
  g.sample_input_bytes = static_cast<Bytes>(3) * 224 * 224 * kF32;
  // Stem (conv7x7 + pool) + 342 bottleneck blocks x 3 convs + (global pool +
  // classifier/loss) = 1030 layers (L0..L1029, matching Table 5).
  g.layers.push_back(Conv("stem.conv", 3, 64, 112, /*kernel=*/7));
  g.layers.push_back(Pool("stem.pool", 64, 56));
  const int stage_blocks[4] = {34, 68, 170, 70};
  const int stage_width[4] = {64, 128, 256, 512};   // bottleneck width
  const int stage_hw[4] = {56, 28, 14, 7};
  int in_ch = 64;
  for (int s = 0; s < 4; ++s) {
    const int w = stage_width[s];
    const int out_ch = 4 * w;
    for (int b = 0; b < stage_blocks[s]; ++b) {
      const std::string pfx =
          "s" + std::to_string(s) + ".b" + std::to_string(b) + ".";
      const int block_input_layer = g.num_layers() - 1;
      g.layers.push_back(Conv(pfx + "conv1", in_ch, w, stage_hw[s], 1));
      g.layers.push_back(Conv(pfx + "conv2", w, w, stage_hw[s], 3));
      LayerSpec c3 = Conv(pfx + "conv3", w, out_ch, stage_hw[s], 1);
      if (b == 0 && in_ch != out_ch) {
        // Projection shortcut params folded into the block's last conv.
        c3.param_bytes += static_cast<Bytes>(in_ch) * out_ch * kF32;
        c3.fwd_flops_per_sample +=
            2.0 * stage_hw[s] * stage_hw[s] * in_ch * out_ch;
        c3.bwd_flops_per_sample = 2.0 * c3.fwd_flops_per_sample;
      }
      g.layers.push_back(c3);
      // Skip connection: block input consumed by the add at conv3.
      g.branches.push_back(BranchEdge{
          block_input_layer, g.num_layers() - 1,
          static_cast<Bytes>(stage_hw[s]) * stage_hw[s] * in_ch * kF32});
      in_ch = out_ch;
    }
  }
  g.layers.push_back(Pool("head.gap", in_ch, 1));
  g.layers.push_back(Classifier("head.fc", in_ch, 1000));
  HARMONY_CHECK_EQ(g.num_layers(), 1030);
  return g;
}

}  // namespace harmony::model
