#ifndef HARMONY_MODEL_POLICY_H_
#define HARMONY_MODEL_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "model/cost_model.h"
#include "model/layer.h"

namespace harmony::model {

/// What happens to a layer's stashed activations between its forward and its
/// backward pass (the residency-policy axis, ROADMAP item 3):
///   kKeep      — stay GPU-resident; the memory manager may still evict them
///                under pressure, but the planner charges nothing for them.
///   kSwap      — proactively moved to host after the forward, fetched back
///                for the backward (vDNN-style offload).
///   kRecompute — dropped; the backward rematerializes them from the pack's
///                checkpointed input (Harmony's Sec 4.3.1 default).
enum class StashPolicy : uint8_t { kKeep = 0, kSwap = 1, kRecompute = 2 };

const char* StashPolicyName(StashPolicy p);  // "keep" / "swap" / "recompute"
char StashPolicyCode(StashPolicy p);         // 'k' / 's' / 'r'

/// Per-layer residency policy table. An *empty* table means "legacy": the
/// consumer derives a uniform table from OptimizationFlags::use_recompute
/// (all-kRecompute when set, all-kKeep otherwise), which is exactly the
/// pre-refactor pair of behaviors {recompute=true task-wide, save_full_stash}.
class PolicyTable {
 public:
  PolicyTable() = default;

  static PolicyTable Uniform(int num_layers, StashPolicy fill);
  /// The two canonical legacy tables (see class comment).
  static PolicyTable Legacy(int num_layers, bool use_recompute) {
    return Uniform(num_layers,
                   use_recompute ? StashPolicy::kRecompute : StashPolicy::kKeep);
  }

  bool empty() const { return entries_.empty(); }
  int num_layers() const { return static_cast<int>(entries_.size()); }
  // Inline: the estimator queries this per layer inside its scheduling loop.
  StashPolicy at(int layer) const {
    HARMONY_CHECK_GE(layer, 0);
    HARMONY_CHECK_LT(layer, num_layers());
    return entries_[layer];
  }
  void Set(int layer, StashPolicy p);
  /// True iff non-empty and every layer uses `p`.
  bool IsUniform(StashPolicy p) const;
  int Count(StashPolicy p) const;

  bool operator==(const PolicyTable& o) const { return entries_ == o.entries_; }
  bool operator!=(const PolicyTable& o) const { return !(*this == o); }

  /// Run-length rendering, e.g. "k0-3,s4,r5-95"; "" for the empty table.
  std::string ToString() const;
  /// Parses ToString output (round-trip exact). "" yields the empty table.
  static Result<PolicyTable> FromString(const std::string& s);

 private:
  std::vector<StashPolicy> entries_;
};

/// Per-layer cost accounting behind the policy choice: what the backward pass
/// pays to rematerialize this layer's stash versus swapping it through the
/// host link at `swap_bw` bytes/s (the effective per-GPU share).
struct LayerResidencyCost {
  TimeSec recompute_time = 0;  // forward re-execution of the layer at u
  Bytes stash_bytes = 0;       // bytes a microbatch of u must stash
  TimeSec swap_stall = 0;      // stash_bytes / swap_bw
};

LayerResidencyCost ResidencyCost(const CostModel& cost, const LayerSpec& layer,
                                 int u, double swap_bw);

/// Greedy per-layer dominance rule (Algorithm 1's policy axis seed):
/// stash-free layers keep (nothing to store), otherwise recompute iff the
/// re-forward is cheaper than the estimated swap stall.
StashPolicy DominantPolicy(const LayerResidencyCost& cost);

}  // namespace harmony::model

#endif  // HARMONY_MODEL_POLICY_H_
