#ifndef HARMONY_MODEL_LAYER_H_
#define HARMONY_MODEL_LAYER_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace harmony::model {

/// Coarse layer taxonomy at the granularity Harmony's Decomposer extracts
/// (Sec 4.1: "linear layer, transformer, residual block, etc." rather than
/// individual operators).
enum class LayerKind {
  kEmbedding,
  kTransformerBlock,
  kLayerNorm,
  kLinear,
  kLmHead,
  kConv,
  kPool,
  kFlatten,
  kClassifier,   // final linear + loss
  kPooler,       // BERT [CLS] pooler
  kLoss,
  kIdentityRelay,  // inserted by sequentialization (Fig 6)
};

const char* LayerKindName(LayerKind kind);

/// One layer of the fine-grained layer graph, with the analytical cost model
/// parameters that stand in for real kernel execution (see DESIGN.md Sec 1).
/// All per-sample quantities scale linearly with microbatch size; compute
/// *time* additionally depends on an efficiency curve (CostModel).
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kLinear;

  Bytes param_bytes = 0;              // FP32 weights
  Flops fwd_flops_per_sample = 0;
  Flops bwd_flops_per_sample = 0;     // typically 2-3x forward (Sec 4.3.1)

  Bytes input_bytes_per_sample = 0;   // X
  Bytes output_bytes_per_sample = 0;  // Y
  /// Intermediate activations that must be stashed for the backward pass when
  /// recomputation is off; with recomputation only the pack input is kept.
  Bytes stash_bytes_per_sample = 0;
  /// Fixed scratch (cuDNN workspace etc.), occupied only while computing.
  Bytes workspace_bytes = 0;

  /// Peak-FLOPs fraction this layer reaches at large microbatch sizes.
  double efficiency_at_saturation = 0.5;
  /// Microbatch size at which efficiency reaches half of saturation: encodes
  /// how much arithmetic intensity improves with batching (drives the
  /// input-batch-grouping benefit).
  double efficiency_half_u = 0.5;
};

/// Branch edge in the layer graph: `dst` additionally consumes `src`'s output
/// (e.g. a residual skip connection). Main-chain edges (i -> i+1) are
/// implicit. Requires src < dst - 1 (otherwise it is just the chain edge).
struct BranchEdge {
  int src = 0;
  int dst = 0;
  Bytes bytes_per_sample = 0;
};

/// Layer-granularity model graph as produced by the Decomposer's Graph
/// Creator: a chain of layers plus branch edges.
struct LayerGraph {
  std::string model_name;
  std::vector<LayerSpec> layers;
  std::vector<BranchEdge> branches;
  /// Per-sample input payload (tokens or image) fed to layer 0.
  Bytes sample_input_bytes = 0;

  int num_layers() const { return static_cast<int>(layers.size()); }
  Bytes total_param_bytes() const;
};

/// A sequentialized layer: the LayerSpec plus the bytes of live branch
/// tensors that must be relayed through this position (Fig 6's identity
/// nodes). Relay bytes ride along with the layer's activations — they add
/// transfer volume and resident footprint but no compute.
struct SeqLayer {
  LayerSpec spec;
  Bytes relay_bytes_per_sample = 0;

  /// Total activation payload flowing OUT of this layer per sample
  /// (own output + relayed branch tensors).
  Bytes boundary_out_bytes() const {
    return spec.output_bytes_per_sample + relay_bytes_per_sample;
  }
};

/// Fully sequential model: every tensor flows only to the next layer, which
/// is the invariant the Harmony Scheduler and Runtime rely on (Sec 4.1).
struct SequentialModel {
  std::string model_name;
  std::vector<SeqLayer> layers;
  Bytes sample_input_bytes = 0;

  int num_layers() const { return static_cast<int>(layers.size()); }
  Bytes total_param_bytes() const;
  Flops total_fwd_flops_per_sample() const;
};

/// Sequentializes a layer graph by relaying branch tensors across the
/// downstream layers until their destination consumes them (the paper's
/// preferred p2p-relaying scheme, Sec 4.1 / Fig 6).
SequentialModel Sequentialize(const LayerGraph& graph);

}  // namespace harmony::model

#endif  // HARMONY_MODEL_LAYER_H_
