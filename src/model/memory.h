#ifndef HARMONY_MODEL_MEMORY_H_
#define HARMONY_MODEL_MEMORY_H_

#include <string>

#include "model/layer.h"
#include "model/policy.h"

namespace harmony::model {

/// Which optimizer's state is resident during training (Sec 5.1: Adam for the
/// language models, SGD for the CNNs).
enum class Optimizer { kSgdMomentum, kAdam };

Bytes OptimizerStateBytesPerParamByte(Optimizer opt);

/// Training memory footprint breakdown for a whole model at a given minibatch
/// size (the quantity plotted in Fig 8 / Fig 18): what a single virtual
/// device with unbounded memory would have to hold.
struct MemoryFootprint {
  Bytes weights = 0;
  Bytes gradients = 0;
  Bytes optimizer_state = 0;
  Bytes activations = 0;  // stashed activations for the backward pass
  Bytes workspace = 0;    // framework scratch (max over layers)

  Bytes total() const {
    return weights + gradients + optimizer_state + activations + workspace;
  }
};

/// Computes the footprint of training `model` with minibatch size
/// `minibatch`. With `recompute` only pack-boundary activations are counted
/// (here approximated as layer inputs, the Decomposer's checkpoint set).
MemoryFootprint ComputeFootprint(const SequentialModel& model, int minibatch,
                                 Optimizer opt, bool recompute);

/// Policy-aware variant: layer l's contribution to `activations` follows
/// `policy.at(l)` — kRecompute counts only the checkpointed layer input,
/// kKeep/kSwap additionally count the stash that must survive to the
/// backward pass (on GPU resp. host). The bool overload above equals the two
/// uniform legacy tables.
MemoryFootprint ComputeFootprint(const SequentialModel& model, int minibatch,
                                 Optimizer opt, const PolicyTable& policy);

}  // namespace harmony::model

#endif  // HARMONY_MODEL_MEMORY_H_
