#include "model/memory.h"

#include <algorithm>

namespace harmony::model {

Bytes OptimizerStateBytesPerParamByte(Optimizer opt) {
  switch (opt) {
    case Optimizer::kSgdMomentum: return 1;  // momentum buffer
    case Optimizer::kAdam: return 2;         // first + second moments
  }
  return 0;
}

MemoryFootprint ComputeFootprint(const SequentialModel& model, int minibatch,
                                 Optimizer opt, bool recompute) {
  MemoryFootprint f;
  const Bytes opt_mult = OptimizerStateBytesPerParamByte(opt);
  for (const auto& layer : model.layers) {
    f.weights += layer.spec.param_bytes;
    f.gradients += layer.spec.param_bytes;
    f.optimizer_state += opt_mult * layer.spec.param_bytes;
    const Bytes checkpoint =
        layer.spec.input_bytes_per_sample + layer.relay_bytes_per_sample;
    const Bytes stash = recompute ? checkpoint
                                  : checkpoint + layer.spec.stash_bytes_per_sample;
    f.activations += static_cast<Bytes>(minibatch) * stash;
    f.workspace = std::max(f.workspace, layer.spec.workspace_bytes);
  }
  return f;
}

}  // namespace harmony::model
