#include "model/memory.h"

#include <algorithm>

namespace harmony::model {

Bytes OptimizerStateBytesPerParamByte(Optimizer opt) {
  switch (opt) {
    case Optimizer::kSgdMomentum: return 1;  // momentum buffer
    case Optimizer::kAdam: return 2;         // first + second moments
  }
  return 0;
}

MemoryFootprint ComputeFootprint(const SequentialModel& model, int minibatch,
                                 Optimizer opt, bool recompute) {
  return ComputeFootprint(model, minibatch, opt,
                          PolicyTable::Legacy(model.num_layers(), recompute));
}

MemoryFootprint ComputeFootprint(const SequentialModel& model, int minibatch,
                                 Optimizer opt, const PolicyTable& policy) {
  MemoryFootprint f;
  const Bytes opt_mult = OptimizerStateBytesPerParamByte(opt);
  for (int l = 0; l < model.num_layers(); ++l) {
    const auto& layer = model.layers[l];
    f.weights += layer.spec.param_bytes;
    f.gradients += layer.spec.param_bytes;
    f.optimizer_state += opt_mult * layer.spec.param_bytes;
    const Bytes checkpoint =
        layer.spec.input_bytes_per_sample + layer.relay_bytes_per_sample;
    const Bytes stash = policy.at(l) == StashPolicy::kRecompute
                            ? checkpoint
                            : checkpoint + layer.spec.stash_bytes_per_sample;
    f.activations += static_cast<Bytes>(minibatch) * stash;
    f.workspace = std::max(f.workspace, layer.spec.workspace_bytes);
  }
  return f;
}

}  // namespace harmony::model
