#ifndef HARMONY_MODEL_COST_MODEL_H_
#define HARMONY_MODEL_COST_MODEL_H_

#include "hw/machine.h"
#include "model/layer.h"

namespace harmony::model {

/// Ground-truth execution model of a layer on a GPU: the stand-in for real
/// kernel execution (see DESIGN.md). Compute time is the max of a FLOP term
/// (with a saturating efficiency curve in the microbatch size) and a memory-
/// bandwidth term, plus per-layer kernel launch overhead. The curve is mildly
/// non-linear in u, so the Profiler's linear interpolation (Sec 4.2) has
/// realistic, small error.
class CostModel {
 public:
  explicit CostModel(const hw::GpuSpec& gpu);

  /// Time to run the forward pass of `layer` on one microbatch of `u` samples.
  TimeSec FwdTime(const LayerSpec& layer, int u) const;

  /// Same for the backward pass (compute of dX and dW).
  TimeSec BwdTime(const LayerSpec& layer, int u) const;

  /// Time for the weight-update (optimizer step) of this layer on the GPU.
  TimeSec GpuUpdateTime(const LayerSpec& layer) const;

  /// Peak resident bytes while executing the layer's forward at microbatch u
  /// (inputs + outputs + stash + workspace; weights accounted separately).
  Bytes FwdWorkingBytes(const LayerSpec& layer, int u) const;

  /// Peak resident bytes for backward at microbatch u (adds gradient
  /// activations and the weight-gradient buffer is accounted separately).
  Bytes BwdWorkingBytes(const LayerSpec& layer, int u) const;

  const hw::GpuSpec& gpu() const { return gpu_; }

 private:
  TimeSec ComputeTime(const LayerSpec& layer, int u, Flops flops_per_sample,
                      double bytes_multiplier) const;

  hw::GpuSpec gpu_;
  BytesPerSec gpu_mem_bw_ = GiBps(420.0);  // GDDR5X effective bandwidth
  TimeSec fwd_launch_overhead_ = 25e-6;
  TimeSec bwd_launch_overhead_ = 55e-6;
};

}  // namespace harmony::model

#endif  // HARMONY_MODEL_COST_MODEL_H_
