#ifndef HARMONY_SIM_CALENDAR_QUEUE_H_
#define HARMONY_SIM_CALENDAR_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"

namespace harmony::sim {

/// One pending event. Fixed-size and arena-pooled by CalendarQueue: the
/// 32-byte header (time / FIFO sequence / bucket link / trampoline) is
/// followed by 32 bytes of inline callback storage, making the whole record
/// exactly one cache line. Callables larger than the inline buffer spill to
/// the queue's spill arena (see CalendarQueue::AcquireSpill) — never to
/// operator new.
struct EventRec {
  static constexpr std::size_t kInlineBytes = 32;

  TimeSec time = 0.0;
  int64_t seq = 0;
  EventRec* next = nullptr;
  /// Trampoline installed by the scheduler: runs (when `run`) and destroys
  /// the payload, then returns the record (and any spill block) to the
  /// arena. `ctx` is the owning engine.
  void (*op)(EventRec* rec, void* ctx, bool run) = nullptr;
  alignas(std::max_align_t) unsigned char payload[kInlineBytes];
};

/// An indexed calendar (bucket) priority queue over arena-allocated event
/// records, with amortized O(1) push and pop-min.
///
/// Structure: `num_buckets` (a power of two) singly-linked lists, each
/// sorted by (time, seq); an event at time t lives in bucket
/// floor(t / width) mod num_buckets. Pop scans forward from the cursor
/// bucket and takes the head whose virtual bucket matches the scanned one —
/// because equal times always share a virtual bucket, the pop order is the
/// exact total order by (time, seq), bit-identical to a binary heap. Events
/// more than one full calendar "year" (num_buckets x width) past the cursor
/// go to an overflow binary heap instead of wrapping, and migrate back into
/// the calendar as the cursor approaches them.
///
/// Self-tuning: the bucket count doubles/halves with occupancy, and the
/// bucket width is re-derived from an exponential moving average of the
/// observed inter-event (pop-to-pop) time deltas whenever the structure is
/// rebuilt — so uniform, bursty and far-future-heavy distributions all
/// settle near one event per scanned bucket.
///
/// Memory: records come from a chunked free-list arena owned by the queue;
/// oversized callbacks draw from a size-classed spill arena. Neither path
/// touches the global allocator after warm-up, and nothing is returned to
/// the OS until the queue is destroyed.
class CalendarQueue {
 public:
  CalendarQueue();
  ~CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Takes a record from the arena. Caller fills time/seq/op/payload and
  /// must either Push it or Release it.
  EventRec* Acquire();
  /// Returns a record whose payload has already been destroyed.
  void Release(EventRec* rec);

  /// Allocates `bytes` of spill storage for an oversized callback.
  void* AcquireSpill(std::size_t bytes);
  void ReleaseSpill(void* block, std::size_t bytes);

  /// Inserts an acquired record. `rec->time` must be >= the time of the
  /// last PopMin (the engine guarantees this by clamping to now()).
  void Push(EventRec* rec);

  /// Removes and returns the minimum record by (time, seq); nullptr when
  /// empty. The caller owns the record until it calls Release.
  EventRec* PopMin();

  bool empty() const { return size_ == 0; }
  int64_t size() const { return size_; }

  // Introspection (tests / bench_sim_core).
  double width() const { return width_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t rebuilds() const { return rebuilds_; }
  int64_t overflow_pushes() const { return overflow_pushes_; }

 private:
  /// Virtual (un-wrapped) bucket index of a timestamp. Uses the same
  /// multiply-by-reciprocal on every path so insert and scan can never
  /// disagree about an event's bucket.
  int64_t VirtualBucket(TimeSec t) const;
  void InsertBucket(EventRec* rec);
  /// Migrates overflow events that now fall inside the calendar window.
  void DrainOverflow();
  /// Rebuilds with `new_buckets` buckets and a width tuned from the
  /// inter-event delta EWMA.
  void Rebuild(std::size_t new_buckets);
  void MaybeRetune();

  // Calendar.
  std::vector<EventRec*> buckets_;
  std::size_t mask_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  int64_t cursor_vb_ = 0;       // virtual bucket of the last popped event
  TimeSec last_pop_time_ = 0.0;
  int64_t cal_size_ = 0;        // events in buckets (excludes overflow)
  int64_t size_ = 0;            // total pending events

  // Overflow min-heap (std::push_heap/pop_heap over record pointers).
  std::vector<EventRec*> overflow_;

  // Width tuning.
  double delta_ewma_ = 0.0;     // EWMA of positive pop-to-pop time deltas
  int64_t pops_since_tune_ = 0;
  int64_t insert_hops_since_tune_ = 0;
  int64_t scan_steps_since_tune_ = 0;
  int64_t rebuilds_ = 0;
  int64_t overflow_pushes_ = 0;

  // Record arena: chunked storage + free list threaded through `next`.
  static constexpr std::size_t kRecordsPerChunk = 512;
  std::vector<std::unique_ptr<EventRec[]>> chunks_;
  std::size_t chunk_used_ = kRecordsPerChunk;  // forces first-chunk alloc
  EventRec* free_ = nullptr;

  // Spill arena: power-of-two size classes from 64 B up, free lists
  // threaded through the first 8 bytes of each block.
  static constexpr std::size_t kSpillChunkBytes = 32 * 1024;
  std::vector<std::unique_ptr<unsigned char[]>> spill_chunks_;
  std::vector<void*> spill_free_;  // one list head per size class

  // Scratch for rebuilds (reused; capacity retained).
  std::vector<EventRec*> rebuild_scratch_;
};

}  // namespace harmony::sim

#endif  // HARMONY_SIM_CALENDAR_QUEUE_H_
