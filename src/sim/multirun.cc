#include "sim/multirun.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

namespace harmony::sim {
namespace {

struct WorkerQueue {
  std::mutex mu;
  std::deque<int> runs;
};

}  // namespace

MultiRunDriver::MultiRunDriver(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads_ = num_threads;
}

void MultiRunDriver::Run(int n, const std::function<void(int, int)>& fn) {
  steals_ = 0;
  if (n <= 0) return;
  const int workers = num_threads_ < n ? num_threads_ : n;
  if (workers == 1) {
    for (int run = 0; run < n; ++run) fn(run, 0);
    return;
  }

  // Block-distribute runs so each worker starts on a contiguous range;
  // stealing takes from the *back* of the victim's block, so early runs stay
  // with their original owner (whose per-worker scratch is warm for them).
  std::vector<WorkerQueue> queues(static_cast<std::size_t>(workers));
  for (int run = 0; run < n; ++run) {
    const auto w = static_cast<std::size_t>(
        static_cast<int64_t>(run) * workers / n);
    queues[w].runs.push_back(run);
  }

  std::atomic<int64_t> steals{0};
  auto worker_loop = [&](int self) {
    const auto s = static_cast<std::size_t>(self);
    for (;;) {
      int run = -1;
      {
        std::lock_guard<std::mutex> lock(queues[s].mu);
        if (!queues[s].runs.empty()) {
          run = queues[s].runs.front();
          queues[s].runs.pop_front();
        }
      }
      if (run < 0) {
        for (int off = 1; off < workers && run < 0; ++off) {
          const auto victim = static_cast<std::size_t>((self + off) % workers);
          std::lock_guard<std::mutex> lock(queues[victim].mu);
          if (!queues[victim].runs.empty()) {
            run = queues[victim].runs.back();
            queues[victim].runs.pop_back();
          }
        }
        // Runs are never re-enqueued, so one full empty scan means every run
        // has been claimed (possibly still executing on another worker).
        if (run < 0) return;
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      fn(run, self);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) threads.emplace_back(worker_loop, w);
  worker_loop(0);
  for (auto& t : threads) t.join();
  steals_ = steals.load(std::memory_order_relaxed);
}

}  // namespace harmony::sim
