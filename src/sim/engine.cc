#include "sim/engine.h"

namespace harmony::sim {

Engine::~Engine() {
  // Destroy pending payloads without running them (run=false) so captured
  // state (shared_ptrs, trace sinks) is released even when the engine is
  // torn down with events still queued.
  while (EventRec* rec = queue_.PopMin()) rec->op(rec, this, /*run=*/false);
}

TimeSec Engine::Run() {
  while (EventRec* rec = queue_.PopMin()) {
    now_ = rec->time;
    ++events_processed_;
    rec->op(rec, this, /*run=*/true);
  }
  return now_;
}

void Condition::Fire() {
  HARMONY_CHECK(!fired_) << "Condition fired twice";
  fired_ = true;
  std::vector<std::function<void()>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& w : waiters) w();
}

void Condition::OnFire(std::function<void()> fn) {
  if (fired_) {
    fn();
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void WhenAll(const std::vector<Condition*>& deps, std::function<void()> done) {
  // Fast paths: most call sites wait on zero or one unfired condition (the
  // rest already fired, or are null), and neither needs a shared barrier.
  int unfired = 0;
  Condition* last_unfired = nullptr;
  for (Condition* c : deps) {
    if (c == nullptr || c->fired()) continue;
    ++unfired;
    last_unfired = c;
  }
  if (unfired == 0) {
    done();
    return;
  }
  if (unfired == 1) {
    last_unfired->OnFire(std::move(done));
    return;
  }

  struct Barrier {
    int remaining;
    std::function<void()> done;
  };
  // Shared ownership, not self-deletion: if a dependency never fires (a
  // wedged schedule drains the engine with waiters still registered), the
  // barrier is released when the conditions holding its waiters are
  // destroyed, instead of leaking.
  auto barrier = std::make_shared<Barrier>(Barrier{unfired, std::move(done)});
  for (Condition* c : deps) {
    if (c == nullptr || c->fired()) continue;
    c->OnFire([barrier]() {
      if (--barrier->remaining == 0) barrier->done();
    });
  }
}

}  // namespace harmony::sim
