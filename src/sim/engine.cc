#include "sim/engine.h"

namespace harmony::sim {

void Engine::At(TimeSec t, std::function<void()> fn) {
  HARMONY_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

TimeSec Engine::Run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  return now_;
}

void Condition::Fire() {
  HARMONY_CHECK(!fired_) << "Condition fired twice";
  fired_ = true;
  std::vector<std::function<void()>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& w : waiters) w();
}

void Condition::OnFire(std::function<void()> fn) {
  if (fired_) {
    fn();
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void WhenAll(const std::vector<Condition*>& deps, std::function<void()> done) {
  struct Barrier {
    int remaining;
    std::function<void()> done;
  };
  // Shared ownership, not self-deletion: if a dependency never fires (a
  // wedged schedule drains the engine with waiters still registered), the
  // barrier is released when the conditions holding its waiters are
  // destroyed, instead of leaking.
  auto barrier = std::make_shared<Barrier>(Barrier{1, std::move(done)});
  for (Condition* c : deps) {
    if (c == nullptr || c->fired()) continue;
    ++barrier->remaining;
    c->OnFire([barrier]() {
      if (--barrier->remaining == 0) barrier->done();
    });
  }
  if (--barrier->remaining == 0) barrier->done();
}

}  // namespace harmony::sim
