#ifndef HARMONY_SIM_ENGINE_H_
#define HARMONY_SIM_ENGINE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "sim/calendar_queue.h"

namespace harmony::sim {

/// Discrete-event simulation engine. Deterministic: events at equal timestamps
/// run in insertion order (FIFO tie-break by sequence number).
///
/// Events live in a calendar (bucket) queue — amortized O(1) schedule and
/// dispatch — as fixed-size arena records. Callables up to 32 bytes (which
/// covers std::function and almost every capture lambda in the codebase) are
/// stored inline in the record; larger ones spill to the queue's size-classed
/// spill arena. No per-event heap allocation on either path.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimeSec now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t`. Scheduling in the past is a
  /// causality error: debug builds abort (HARMONY_DCHECK); release builds
  /// clamp to now() — the event still runs, after everything already pending
  /// at now() — and count the violation in causality_clamps().
  template <typename F>
  void At(TimeSec t, F&& fn) {
    if (t < now_) {
      HARMONY_DCHECK_GE(t, now_) << "Engine::At scheduled in the past";
      t = now_;
      ++causality_clamps_;
    }
    using Fn = std::decay_t<F>;
    EventRec* rec = queue_.Acquire();
    rec->time = t;
    rec->seq = next_seq_++;
    if constexpr (sizeof(Fn) <= EventRec::kInlineBytes) {
      static_assert(alignof(Fn) <= alignof(std::max_align_t));
      ::new (static_cast<void*>(rec->payload)) Fn(std::forward<F>(fn));
      rec->op = &InlineOp<Fn>;
    } else {
      static_assert(alignof(Fn) <= alignof(std::max_align_t));
      void* block = queue_.AcquireSpill(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(fn));
      std::memcpy(rec->payload, &block, sizeof(void*));
      rec->op = &SpillOp<Fn>;
    }
    queue_.Push(rec);
  }

  /// Schedules `fn` to run `dt` seconds from now.
  template <typename F>
  void After(TimeSec dt, F&& fn) {
    At(now_ + dt, std::forward<F>(fn));
  }

  /// Runs until the event queue drains. Returns the final simulated time.
  TimeSec Run();

  /// Number of events processed so far (diagnostics / loop guards in tests).
  int64_t events_processed() const { return events_processed_; }
  /// Times a release build clamped a past-scheduled event to now().
  int64_t causality_clamps() const { return causality_clamps_; }
  /// The underlying queue, for introspection in tests and benches.
  const CalendarQueue& queue() const { return queue_; }

 private:
  /// Trampoline for callables stored inline in the record payload.
  template <typename Fn>
  static void InlineOp(EventRec* rec, void* ctx, bool run) {
    auto* engine = static_cast<Engine*>(ctx);
    Fn* fn = std::launder(reinterpret_cast<Fn*>(rec->payload));
    if (run) (*fn)();
    fn->~Fn();
    engine->queue_.Release(rec);
  }

  /// Trampoline for callables spilled to the arena; the payload holds the
  /// block pointer.
  template <typename Fn>
  static void SpillOp(EventRec* rec, void* ctx, bool run) {
    auto* engine = static_cast<Engine*>(ctx);
    void* block;
    std::memcpy(&block, rec->payload, sizeof(void*));
    Fn* fn = std::launder(reinterpret_cast<Fn*>(block));
    if (run) (*fn)();
    fn->~Fn();
    engine->queue_.ReleaseSpill(block, sizeof(Fn));
    engine->queue_.Release(rec);
  }

  TimeSec now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  int64_t causality_clamps_ = 0;
  CalendarQueue queue_;
};

/// One-shot synchronization flag, analogous to a CUDA event: consumers
/// register callbacks that run when (or immediately if) the condition fires.
class Condition {
 public:
  Condition() = default;
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  bool fired() const { return fired_; }

  /// Fires the condition; runs pending callbacks synchronously (they execute
  /// within the current event, at the current simulated time). Firing twice
  /// is a programming error.
  void Fire();

  /// Runs `fn` when the condition fires; immediately if already fired.
  void OnFire(std::function<void()> fn);

 private:
  bool fired_ = false;
  std::vector<std::function<void()>> waiters_;
};

/// Fires `done` once every condition in `deps` has fired (all may already be
/// fired, in which case `done` runs immediately). `deps` may contain nulls,
/// which are ignored. The returned guard must stay alive until completion;
/// ownership is internal (self-deleting), callers just call the function.
void WhenAll(const std::vector<Condition*>& deps, std::function<void()> done);

}  // namespace harmony::sim

#endif  // HARMONY_SIM_ENGINE_H_
