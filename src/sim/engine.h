#ifndef HARMONY_SIM_ENGINE_H_
#define HARMONY_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace harmony::sim {

/// Discrete-event simulation engine. Deterministic: events at equal timestamps
/// run in insertion order (FIFO tie-break by sequence number).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimeSec now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).
  void At(TimeSec t, std::function<void()> fn);

  /// Schedules `fn` to run `dt` seconds from now.
  void After(TimeSec dt, std::function<void()> fn) { At(now_ + dt, std::move(fn)); }

  /// Runs until the event queue drains. Returns the final simulated time.
  TimeSec Run();

  /// Number of events processed so far (diagnostics / loop guards in tests).
  int64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    TimeSec time;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeSec now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// One-shot synchronization flag, analogous to a CUDA event: consumers
/// register callbacks that run when (or immediately if) the condition fires.
class Condition {
 public:
  Condition() = default;
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  bool fired() const { return fired_; }

  /// Fires the condition; runs pending callbacks synchronously (they execute
  /// within the current event, at the current simulated time). Firing twice
  /// is a programming error.
  void Fire();

  /// Runs `fn` when the condition fires; immediately if already fired.
  void OnFire(std::function<void()> fn);

 private:
  bool fired_ = false;
  std::vector<std::function<void()>> waiters_;
};

/// Fires `done` once every condition in `deps` has fired (all may already be
/// fired, in which case `done` runs immediately). `deps` may contain nulls,
/// which are ignored. The returned guard must stay alive until completion;
/// ownership is internal (self-deleting), callers just call the function.
void WhenAll(const std::vector<Condition*>& deps, std::function<void()> done);

}  // namespace harmony::sim

#endif  // HARMONY_SIM_ENGINE_H_
