#ifndef HARMONY_SIM_NETWORK_H_
#define HARMONY_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/machine.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace harmony::sim {

/// Fluid-flow model of a set of directed links with max-min fair bandwidth
/// sharing. Concurrent flows traversing a common link split its capacity
/// fairly (progressive filling); rates are recomputed whenever a flow starts
/// or finishes. This is what turns the paper's "bottleneck PCIe link" and
/// "4:1 oversubscription" into emergent slowdowns (Fig 2).
///
/// The implementation is allocation-free on the steady-state path: flows live
/// in reusable slots stored structure-of-arrays (remaining / rate / freeze
/// mark each a dense array indexed by slot), so the integration, fill, and
/// completion-scan hot loops touch compact doubles instead of striding over
/// 100-byte flow structs. Each link keeps a persistent list of the flow slots
/// traversing it, and the progressive-filling pass uses epoch-stamped freeze
/// marks plus per-link residual/count scratch that is reused across
/// recomputes. The projected next-completion time falls out of the fill loop
/// itself (every flow is frozen exactly once per recompute), so no separate
/// scan over the flow population is needed to schedule the next event.
///
/// Wakeup scheduling: a recompute whose projected completion is already
/// covered by a pending (earlier-or-equal) wakeup does not enqueue a new
/// event at all — the pending wakeup fires, notices it is early, and re-arms
/// at the stored absolute projection (the exact double, so drain timestamps
/// are unaffected). Suppressed enqueues are counted in wakeups_suppressed().
class FlowNetwork {
 public:
  FlowNetwork(Engine* engine, std::vector<BytesPerSec> link_capacities);

  /// Starts a flow of `bytes` over the directed links in `path`; invokes
  /// `done` when the last byte arrives. Zero-byte flows complete immediately.
  /// Returns a flow id (diagnostics only).
  int64_t StartFlow(const std::vector<int>& path, Bytes bytes,
                    std::function<void()> done);

  /// Emits kFlowBegin/kFlowEnd instants for every flow to `bus`.
  void BindTrace(trace::TraceBus* bus) { bus_ = bus; }

  /// Fault hook: scales `link`'s capacity to `factor` x its construction-time
  /// value (a degraded or flapping link). In-flight progress is integrated at
  /// the old rates first, then rates are recomputed, so degradation takes
  /// effect exactly at the current simulated instant. `factor` is clamped to
  /// a small positive floor — a fluid-flow link never reaches literal zero,
  /// it just becomes arbitrarily slow (and the max-min invariants keep
  /// requiring strictly positive rates). Pass 1.0 to restore the link.
  void SetLinkCapacityFactor(int link, double factor);

  /// Current capacity of a link (diagnostics / tests).
  BytesPerSec link_capacity(int link) const { return capacities_.at(link); }

  /// Total bytes moved over a link since construction.
  double link_bytes(int link) const { return link_bytes_.at(link); }

  int num_active_flows() const { return static_cast<int>(active_.size()); }

  /// Completion-event enqueues skipped because a pending wakeup already
  /// covered the projected completion time.
  int64_t wakeups_suppressed() const { return wakeups_suppressed_; }

 private:
  /// Integrates flow progress from `last_update_` to now.
  void AdvanceToNow();
  /// Max-min fair rate assignment + arms (or suppresses) the next wakeup.
  void RecomputeRates();
  /// Fires when a wakeup lands: early wakeups re-arm at the stored
  /// projection; on-time ones drain finished flows, reassign rates, then fire
  /// callbacks in flow-id order (matching the pre-slot std::map iteration
  /// order).
  void OnWakeup();
  /// Unlinks `slot` from every per-link flow list along its path.
  void RemoveFromLinks(int slot);

  Engine* engine_;
  trace::TraceBus* bus_ = nullptr;
  std::vector<BytesPerSec> capacities_;
  std::vector<BytesPerSec> base_capacities_;  // construction-time values
  std::vector<double> link_bytes_;

  // Slot-based flow storage, structure-of-arrays: all vectors below are
  // indexed by slot. `active_` and every `link_flows_[l]` hold slot indices
  // in ascending flow-id order (new flows always get the largest id, removals
  // preserve order), which keeps freeze/integration/callback order identical
  // to the former id-keyed std::map.
  std::vector<int64_t> flow_id_;
  std::vector<double> flow_remaining_;        // bytes
  std::vector<double> flow_rate_;             // bytes/sec, by RecomputeRates()
  std::vector<std::vector<int>> flow_path_;   // capacity reused across reuse
  std::vector<std::function<void()>> flow_done_;
  std::vector<int> free_slots_;
  std::vector<int> active_;
  std::vector<std::vector<int>> link_flows_;  // one entry per path traversal

  // Progressive-filling scratch, reused across recomputes (no per-recompute
  // allocation). `frozen_epoch_[slot] == fill_epoch_` marks a frozen flow;
  // bumping the epoch invalidates all marks in O(1).
  std::vector<double> residual_;
  std::vector<int> nflows_;
  std::vector<uint32_t> frozen_epoch_;
  uint32_t fill_epoch_ = 0;
  std::vector<std::function<void()>> done_scratch_;

  int64_t next_flow_id_ = 0;
  TimeSec last_update_ = 0.0;

  // Wakeup bookkeeping. `armed_times_` holds the timestamps of every pending
  // wakeup event, strictly decreasing (a new wakeup is armed only when it is
  // strictly earlier than all pending ones), so the back is both the next to
  // fire and the earliest. `next_completion_time_` is the projection from the
  // most recent recompute (+inf when no flows are active).
  std::vector<TimeSec> armed_times_;
  TimeSec next_completion_time_ = 0.0;
  int64_t wakeups_suppressed_ = 0;
};

/// Maps a MachineSpec's PCIe tree onto FlowNetwork link ids and provides the
/// canonical paths used by the runtime: host<->GPU swaps (which traverse the
/// shared switch uplinks and host DRAM) and GPU<->GPU p2p (which bypasses host
/// DRAM, and bypasses the uplinks entirely when both GPUs share a switch).
class Interconnect {
 public:
  explicit Interconnect(const hw::MachineSpec& machine);

  int num_links() const { return static_cast<int>(capacities_.size()); }
  const std::vector<BytesPerSec>& capacities() const { return capacities_; }

  std::vector<int> SwapInPath(int gpu) const;   // host -> gpu
  std::vector<int> SwapOutPath(int gpu) const;  // gpu -> host
  std::vector<int> P2pPath(int src_gpu, int dst_gpu) const;

  /// Human-readable link name (tests / diagnostics).
  std::string LinkName(int link) const;

 private:
  hw::MachineSpec machine_;
  std::vector<BytesPerSec> capacities_;
  std::vector<std::string> names_;
  // Link id layout
  std::vector<int> gpu_up_;      // gpu -> switch direction
  std::vector<int> gpu_down_;    // switch -> gpu direction
  std::vector<int> uplink_up_;   // switch -> host root
  std::vector<int> uplink_down_; // host root -> switch
  std::vector<int> nvlink_out_;  // dedicated NVLink ports (when present)
  std::vector<int> nvlink_in_;
  int hostmem_write_ = -1;       // DMA into host DRAM
  int hostmem_read_ = -1;        // DMA out of host DRAM
};

}  // namespace harmony::sim

#endif  // HARMONY_SIM_NETWORK_H_
