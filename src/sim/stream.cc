#include "sim/stream.h"

#include <utility>

namespace harmony::sim {

Stream::Stream(Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void Stream::BindTrace(trace::TraceBus* bus, int device, trace::Lane lane) {
  bus_ = bus;
  trace_device_ = device;
  trace_lane_ = lane;
}

Condition* Stream::Push(std::vector<Condition*> deps, Body body) {
  return Push(std::move(deps), std::string(), -1, std::move(body));
}

Condition* Stream::Push(std::vector<Condition*> deps, std::string label,
                        int task, Body body) {
  conditions_.push_back(std::make_unique<Condition>());
  Condition* done = conditions_.back().get();
  deps.push_back(last_done_);  // in-order with the previous op (null for first)
  last_done_ = done;
  WhenAll(deps, [this, done, label = std::move(label), task,
                 body = std::move(body)]() {
    const TimeSec start = engine_->now();
    if (bus_ != nullptr && bus_->active()) {
      trace::Event e;
      e.kind = trace::EventKind::kOpBegin;
      e.lane = trace_lane_;
      e.device = trace_device_;
      e.time = start;
      e.task = task;
      e.name = label;  // empty unless the pusher saw detailed()
      bus_->Emit(e);
    }
    body([this, done, start, task]() {
      if (bus_ != nullptr && bus_->active()) {
        trace::Event e;
        e.kind = trace::EventKind::kOpEnd;
        e.lane = trace_lane_;
        e.device = trace_device_;
        e.time = engine_->now();
        e.task = task;
        bus_->Emit(e);
      }
      busy_time_ += engine_->now() - start;
      ++ops_completed_;
      done->Fire();
    });
  });
  return done;
}

Condition* Stream::PushDelay(std::vector<Condition*> deps, TimeSec duration) {
  HARMONY_CHECK_GE(duration, 0.0);
  return Push(std::move(deps), [this, duration](std::function<void()> done) {
    engine_->After(duration, std::move(done));
  });
}

}  // namespace harmony::sim
