#include "sim/stream.h"

#include <utility>

namespace harmony::sim {

Stream::Stream(Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void Stream::BindTrace(trace::TraceBus* bus, int device, trace::Lane lane) {
  bus_ = bus;
  trace_device_ = device;
  trace_lane_ = lane;
}

Condition* Stream::Push(std::vector<Condition*> deps, Body body) {
  return PushImpl(std::move(deps), std::string(), -1, std::move(body), -1.0);
}

Condition* Stream::Push(std::vector<Condition*> deps, std::string label,
                        int task, Body body) {
  return PushImpl(std::move(deps), std::move(label), task, std::move(body),
                  -1.0);
}

Condition* Stream::PushTimed(std::vector<Condition*> deps, std::string label,
                             int task, TimeSec duration) {
  return PushImpl(
      std::move(deps), std::move(label), task,
      [this, duration](std::function<void()> done) {
        engine_->After(duration, std::move(done));
      },
      duration);
}

Condition* Stream::PushImpl(std::vector<Condition*> deps, std::string label,
                            int task, Body body, TimeSec exact_duration) {
  Condition* done = &conditions_.emplace_back();
  deps.push_back(last_done_);  // in-order with the previous op (null for first)
  last_done_ = done;
  WhenAll(deps, [this, done, label = std::move(label), task,
                 body = std::move(body), exact_duration]() mutable {
    auto run = [this, done, label = std::move(label), task,
                body = std::move(body), exact_duration]() {
      const TimeSec start = engine_->now();
      if (bus_ != nullptr && bus_->active()) {
        trace::Event e;
        e.kind = trace::EventKind::kOpBegin;
        e.lane = trace_lane_;
        e.device = trace_device_;
        e.time = start;
        e.task = task;
        e.name = label;  // empty unless the pusher saw detailed()
        bus_->Emit(e);
      }
      body([this, done, start, task, exact_duration]() {
        if (bus_ != nullptr && bus_->active()) {
          trace::Event e;
          e.kind = trace::EventKind::kOpEnd;
          e.lane = trace_lane_;
          e.device = trace_device_;
          e.time = engine_->now();
          e.task = task;
          bus_->Emit(e);
        }
        busy_time_ +=
            exact_duration >= 0.0 ? exact_duration : engine_->now() - start;
        last_completion_ = engine_->now();
        ++ops_completed_;
        done->Fire();
      });
    };
    // Fault hook: a stall delays the op *start*, so the span duration and
    // busy_time accumulation are untouched — injected stalls change when
    // work happens, never how much work it is.
    const TimeSec stall = stall_probe_ ? stall_probe_() : 0.0;
    if (stall > 0.0) {
      engine_->After(stall, std::move(run));
    } else {
      run();
    }
  });
  return done;
}

Condition* Stream::PushDelay(std::vector<Condition*> deps, TimeSec duration) {
  HARMONY_CHECK_GE(duration, 0.0);
  return PushTimed(std::move(deps), std::string(), -1, duration);
}

}  // namespace harmony::sim
