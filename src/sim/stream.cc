#include "sim/stream.h"

namespace harmony::sim {

Stream::Stream(Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

Condition* Stream::Push(std::vector<Condition*> deps, Body body) {
  conditions_.push_back(std::make_unique<Condition>());
  Condition* done = conditions_.back().get();
  deps.push_back(last_done_);  // in-order with the previous op (null for first)
  last_done_ = done;
  WhenAll(deps, [this, done, body = std::move(body)]() {
    const TimeSec start = engine_->now();
    body([this, done, start]() {
      busy_time_ += engine_->now() - start;
      ++ops_completed_;
      done->Fire();
    });
  });
  return done;
}

Condition* Stream::PushDelay(std::vector<Condition*> deps, TimeSec duration) {
  HARMONY_CHECK_GE(duration, 0.0);
  return Push(std::move(deps), [this, duration](std::function<void()> done) {
    engine_->After(duration, std::move(done));
  });
}

}  // namespace harmony::sim
