#ifndef HARMONY_SIM_MULTIRUN_H_
#define HARMONY_SIM_MULTIRUN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace harmony::sim {

/// Runs N independent simulation scenarios across a work-stealing thread
/// pool — chaos-matrix entries, search candidate evaluations, bench reps.
///
/// Determinism: the driver never shares mutable state between runs. Each
/// callback constructs its own Engine / Rng / trace sink from the run index
/// alone, and writes its result to a slot indexed by run (Map does this for
/// you), so per-run results are bit-identical to serial execution at any
/// thread count; only wall-clock and the worker-to-run assignment change.
class MultiRunDriver {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit MultiRunDriver(int num_threads = 0);

  int num_threads() const { return num_threads_; }

  /// Invokes fn(run, worker) for every run in [0, n). `worker` is in
  /// [0, num_threads()) and is stable for the duration of one callback — use
  /// it to index per-worker scratch. Blocks until all runs complete. With one
  /// thread (or one run) executes inline on the caller, in run order.
  void Run(int n, const std::function<void(int run, int worker)>& fn);

  /// Convenience: collect one result per run, placed by run index.
  template <typename R>
  std::vector<R> Map(int n, const std::function<R(int run, int worker)>& fn) {
    std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
    Run(n, [&](int run, int worker) { out[run] = fn(run, worker); });
    return out;
  }

  /// Runs migrated between workers during the last Run (0 when serial).
  int64_t steals() const { return steals_; }

 private:
  int num_threads_;
  int64_t steals_ = 0;
};

}  // namespace harmony::sim

#endif  // HARMONY_SIM_MULTIRUN_H_
