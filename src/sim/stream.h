#ifndef HARMONY_SIM_STREAM_H_
#define HARMONY_SIM_STREAM_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace harmony::sim {

/// An in-order execution queue, analogous to a CUDA stream. Each GPU in the
/// Harmony runtime owns five of these (compute, swap-in, swap-out, p2p-in,
/// p2p-out — Sec 4.4); cross-stream dependencies are expressed with
/// Conditions, analogous to CUDA events.
///
/// An op starts when (a) the op ahead of it in the stream has finished, and
/// (b) all of its dependency conditions have fired. The op's body receives a
/// completion callback to invoke when its work is done (a compute delay or a
/// FlowNetwork transfer).
class Stream {
 public:
  using Body = std::function<void(std::function<void()> done)>;

  Stream(Engine* engine, std::string name);
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues an op; returns the condition fired on its completion. The
  /// returned pointer stays valid for the stream's lifetime.
  Condition* Push(std::vector<Condition*> deps, Body body);

  /// Same, with a trace label and task id attached to the span events. Build
  /// the label only when the bound bus reports detailed() — it is dead weight
  /// otherwise.
  Condition* Push(std::vector<Condition*> deps, std::string label, int task,
                  Body body);

  /// An op whose duration is known at push time (a profiled compute delay).
  /// busy_time accumulates `duration` itself rather than the end-minus-start
  /// timestamp difference, so the total is invariant under time translation:
  /// injected faults that merely *delay* ops cannot drift busy_time by even
  /// an ulp.
  Condition* PushTimed(std::vector<Condition*> deps, std::string label,
                       int task, TimeSec duration);

  /// Convenience: an op that just occupies the stream for `duration`.
  Condition* PushDelay(std::vector<Condition*> deps, TimeSec duration);

  /// Routes this stream's op begin/end span events to `bus`, attributed to
  /// `device` on `lane` (one chrome-trace row per device x lane).
  void BindTrace(trace::TraceBus* bus, int device, trace::Lane lane);

  /// Fault hook: consulted once per op, after its dependencies fire but
  /// before the op span begins. A positive return delays the op start by that
  /// many simulated seconds (a "stream stall" — the hardware wedging, not the
  /// op running long), so busy_time and the op's span duration stay exactly
  /// what they would be without the stall. Null (the default) costs one
  /// branch per op.
  void SetStallProbe(std::function<TimeSec()> probe) {
    stall_probe_ = std::move(probe);
  }

  /// Total time the stream spent executing op bodies.
  TimeSec busy_time() const { return busy_time_; }
  /// Simulated time the stream's most recent op completed (0 if none). The
  /// executor takes the max across streams as the iteration's end: liveness
  /// timers (watchdog ticks) keep the engine's clock running past the last
  /// real work, so the engine's drain time is not the iteration time.
  TimeSec last_completion() const { return last_completion_; }
  const std::string& name() const { return name_; }
  int64_t ops_completed() const { return ops_completed_; }

 private:
  /// Shared implementation: `exact_duration >= 0` means "charge busy_time
  /// exactly this much"; negative means "measure end minus start".
  Condition* PushImpl(std::vector<Condition*> deps, std::string label,
                      int task, Body body, TimeSec exact_duration);

  Engine* engine_;
  std::string name_;
  trace::TraceBus* bus_ = nullptr;
  int trace_device_ = -1;
  trace::Lane trace_lane_ = trace::Lane::kCompute;
  Condition* last_done_ = nullptr;
  std::function<TimeSec()> stall_probe_;
  // Deque for pointer stability: Push hands out Condition* for the stream's
  // lifetime. Direct storage (no unique_ptr) — one allocation per deque
  // block, not per op.
  std::deque<Condition> conditions_;
  TimeSec busy_time_ = 0.0;
  TimeSec last_completion_ = 0.0;
  int64_t ops_completed_ = 0;
};

}  // namespace harmony::sim

#endif  // HARMONY_SIM_STREAM_H_
