#ifndef HARMONY_SIM_STREAM_H_
#define HARMONY_SIM_STREAM_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace harmony::sim {

/// An in-order execution queue, analogous to a CUDA stream. Each GPU in the
/// Harmony runtime owns five of these (compute, swap-in, swap-out, p2p-in,
/// p2p-out — Sec 4.4); cross-stream dependencies are expressed with
/// Conditions, analogous to CUDA events.
///
/// An op starts when (a) the op ahead of it in the stream has finished, and
/// (b) all of its dependency conditions have fired. The op's body receives a
/// completion callback to invoke when its work is done (a compute delay or a
/// FlowNetwork transfer).
class Stream {
 public:
  using Body = std::function<void(std::function<void()> done)>;

  Stream(Engine* engine, std::string name);
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues an op; returns the condition fired on its completion. The
  /// returned pointer stays valid for the stream's lifetime.
  Condition* Push(std::vector<Condition*> deps, Body body);

  /// Convenience: an op that just occupies the stream for `duration`.
  Condition* PushDelay(std::vector<Condition*> deps, TimeSec duration);

  /// Total time the stream spent executing op bodies.
  TimeSec busy_time() const { return busy_time_; }
  const std::string& name() const { return name_; }
  int64_t ops_completed() const { return ops_completed_; }

 private:
  Engine* engine_;
  std::string name_;
  Condition* last_done_ = nullptr;
  std::deque<std::unique_ptr<Condition>> conditions_;
  TimeSec busy_time_ = 0.0;
  int64_t ops_completed_ = 0;
};

}  // namespace harmony::sim

#endif  // HARMONY_SIM_STREAM_H_
