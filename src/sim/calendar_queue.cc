#include "sim/calendar_queue.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace harmony::sim {
namespace {

/// (time, seq) ascending — the determinism contract's total order.
inline bool EarlierThan(const EventRec& a, const EventRec& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// std::make_heap comparator for a min-heap of record pointers.
struct LaterPtr {
  bool operator()(const EventRec* a, const EventRec* b) const {
    return EarlierThan(*b, *a);
  }
};

constexpr std::size_t kInitialBuckets = 32;
constexpr double kMinWidth = 1e-12;
/// Virtual buckets past this are treated as "effectively infinity" and sent
/// straight to the overflow heap (guards the double->int64 cast).
constexpr double kMaxVirtualBucket = 4.0e18;
constexpr std::size_t kMinSpillClass = 64;

std::size_t SpillClassOf(std::size_t bytes) {
  std::size_t cls = 0;
  std::size_t size = kMinSpillClass;
  while (size < bytes) {
    size <<= 1;
    ++cls;
  }
  return cls;
}

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kInitialBuckets, nullptr) {
  mask_ = buckets_.size() - 1;
}

CalendarQueue::~CalendarQueue() {
  // Owners (the engine) dispose pending payloads before destruction; the
  // arena chunks free themselves.
}

EventRec* CalendarQueue::Acquire() {
  if (free_ != nullptr) {
    EventRec* rec = free_;
    free_ = rec->next;
    return rec;
  }
  if (chunk_used_ == kRecordsPerChunk) {
    chunks_.push_back(std::make_unique<EventRec[]>(kRecordsPerChunk));
    chunk_used_ = 0;
  }
  return &chunks_.back()[chunk_used_++];
}

void CalendarQueue::Release(EventRec* rec) {
  rec->next = free_;
  free_ = rec;
}

void* CalendarQueue::AcquireSpill(std::size_t bytes) {
  const std::size_t cls = SpillClassOf(bytes);
  const std::size_t block = kMinSpillClass << cls;
  if (spill_free_.size() <= cls) spill_free_.resize(cls + 1, nullptr);
  if (spill_free_[cls] != nullptr) {
    void* p = spill_free_[cls];
    std::memcpy(&spill_free_[cls], p, sizeof(void*));
    return p;
  }
  // Carve a fresh chunk into blocks of this class; keep one, list the rest.
  const std::size_t chunk_bytes = std::max(kSpillChunkBytes, block);
  spill_chunks_.push_back(std::make_unique<unsigned char[]>(chunk_bytes));
  unsigned char* base = spill_chunks_.back().get();
  for (std::size_t off = block; off + block <= chunk_bytes; off += block) {
    void* p = base + off;
    std::memcpy(p, &spill_free_[cls], sizeof(void*));
    spill_free_[cls] = p;
  }
  return base;
}

void CalendarQueue::ReleaseSpill(void* block, std::size_t bytes) {
  const std::size_t cls = SpillClassOf(bytes);
  std::memcpy(block, &spill_free_[cls], sizeof(void*));
  spill_free_[cls] = block;
}

int64_t CalendarQueue::VirtualBucket(TimeSec t) const {
  const double vb = t * inv_width_;
  if (vb >= kMaxVirtualBucket) return std::numeric_limits<int64_t>::max() / 2;
  return static_cast<int64_t>(vb);  // t >= 0 always: truncation == floor
}

void CalendarQueue::Push(EventRec* rec) {
  // A push can only be at/after the cursor (the engine clamps to now()),
  // but tolerate cursor-equal times produced by re-derived widths.
  const int64_t vb = VirtualBucket(rec->time);
  if (vb < cursor_vb_) cursor_vb_ = vb;
  if (vb >= cursor_vb_ + static_cast<int64_t>(buckets_.size())) {
    overflow_.push_back(rec);
    std::push_heap(overflow_.begin(), overflow_.end(), LaterPtr{});
    ++overflow_pushes_;
  } else {
    InsertBucket(rec);
    ++cal_size_;
  }
  ++size_;
  if (cal_size_ > 2 * static_cast<int64_t>(buckets_.size())) {
    Rebuild(buckets_.size() * 2);
  }
}

void CalendarQueue::InsertBucket(EventRec* rec) {
  EventRec** link = &buckets_[VirtualBucket(rec->time) & mask_];
  while (*link != nullptr && EarlierThan(**link, *rec)) {
    link = &(*link)->next;
    ++insert_hops_since_tune_;
  }
  rec->next = *link;
  *link = rec;
}

void CalendarQueue::DrainOverflow() {
  const int64_t window_end = cursor_vb_ + static_cast<int64_t>(buckets_.size());
  while (!overflow_.empty() &&
         VirtualBucket(overflow_.front()->time) < window_end) {
    std::pop_heap(overflow_.begin(), overflow_.end(), LaterPtr{});
    EventRec* rec = overflow_.back();
    overflow_.pop_back();
    InsertBucket(rec);
    ++cal_size_;
  }
}

EventRec* CalendarQueue::PopMin() {
  if (size_ == 0) return nullptr;
  if (cal_size_ == 0) {
    // Jump the cursor to the overflow minimum, then pull in its cohort.
    cursor_vb_ = VirtualBucket(overflow_.front()->time);
  }
  DrainOverflow();
  HARMONY_DCHECK_GT(cal_size_, 0);

  const std::size_t nbuckets = buckets_.size();
  int64_t v = cursor_vb_;
  EventRec* found = nullptr;
  for (std::size_t steps = 0; steps < nbuckets; ++steps, ++v) {
    EventRec* head = buckets_[v & mask_];
    ++scan_steps_since_tune_;
    if (head != nullptr && VirtualBucket(head->time) <= v) {
      buckets_[v & mask_] = head->next;
      cursor_vb_ = v;
      found = head;
      break;
    }
  }
  if (found == nullptr) {
    // Degenerate widths can strand the whole population outside one scan
    // year; fall back to a direct min search (still exact (time, seq)).
    std::size_t best_bucket = 0;
    for (std::size_t b = 0; b < nbuckets; ++b) {
      EventRec* head = buckets_[b];
      if (head == nullptr) continue;
      if (found == nullptr || EarlierThan(*head, *found)) {
        found = head;
        best_bucket = b;
      }
    }
    HARMONY_CHECK(found != nullptr);
    buckets_[best_bucket] = found->next;
    cursor_vb_ = VirtualBucket(found->time);
  }

  --cal_size_;
  --size_;
  const double delta = found->time - last_pop_time_;
  if (delta > 0.0) {
    delta_ewma_ =
        delta_ewma_ == 0.0 ? delta : 0.875 * delta_ewma_ + 0.125 * delta;
  }
  last_pop_time_ = found->time;
  ++pops_since_tune_;

  if (size_ < static_cast<int64_t>(buckets_.size()) / 8 &&
      buckets_.size() > kInitialBuckets) {
    Rebuild(buckets_.size() / 2);
  } else {
    MaybeRetune();
  }
  return found;
}

void CalendarQueue::MaybeRetune() {
  if (pops_since_tune_ < 1024) return;
  // >2 sorted-insert hops per push means buckets chain (width too wide or
  // population outgrew the bucket count); >3 scanned buckets per pop means
  // the population is spread thin (width too narrow). Either way a rebuild
  // re-derives the width from the observed inter-event deltas.
  const bool chains = insert_hops_since_tune_ > 2 * pops_since_tune_;
  const bool sparse = scan_steps_since_tune_ > 3 * pops_since_tune_;
  if ((chains || sparse) && delta_ewma_ > 0.0) {
    Rebuild(buckets_.size());
  } else {
    pops_since_tune_ = 0;
    insert_hops_since_tune_ = 0;
    scan_steps_since_tune_ = 0;
  }
}

void CalendarQueue::Rebuild(std::size_t new_buckets) {
  rebuild_scratch_.clear();
  rebuild_scratch_.reserve(static_cast<std::size_t>(size_));
  for (EventRec*& head : buckets_) {
    while (head != nullptr) {
      EventRec* rec = head;
      head = rec->next;
      rebuild_scratch_.push_back(rec);
    }
  }
  for (EventRec* rec : overflow_) rebuild_scratch_.push_back(rec);
  overflow_.clear();

  buckets_.assign(new_buckets, nullptr);
  mask_ = new_buckets - 1;
  // Width: ~3 average inter-event gaps per bucket keeps occupancy near one
  // while tolerating bursts; fall back to the current width when no deltas
  // have been observed yet (all-simultaneous populations).
  if (delta_ewma_ > 0.0) {
    width_ = std::max(3.0 * delta_ewma_, kMinWidth);
    inv_width_ = 1.0 / width_;
  }
  cursor_vb_ = VirtualBucket(last_pop_time_);
  cal_size_ = 0;
  const int64_t n = size_;
  size_ = 0;
  for (EventRec* rec : rebuild_scratch_) Push(rec);
  HARMONY_CHECK_EQ(size_, n);
  rebuild_scratch_.clear();
  ++rebuilds_;
  pops_since_tune_ = 0;
  insert_hops_since_tune_ = 0;
  scan_steps_since_tune_ = 0;
}

}  // namespace harmony::sim
