#include "sim/network.h"

#include <algorithm>
#include <limits>

namespace harmony::sim {

FlowNetwork::FlowNetwork(Engine* engine, std::vector<BytesPerSec> link_capacities)
    : engine_(engine),
      capacities_(std::move(link_capacities)),
      link_bytes_(capacities_.size(), 0.0) {
  for (BytesPerSec c : capacities_) HARMONY_CHECK_GT(c, 0.0);
}

int64_t FlowNetwork::StartFlow(const std::vector<int>& path, Bytes bytes,
                               std::function<void()> done) {
  HARMONY_CHECK_GE(bytes, 0);
  const int64_t id = next_flow_id_++;
  if (bus_ != nullptr && bus_->active()) {
    trace::Event e;
    e.kind = trace::EventKind::kFlowBegin;
    e.lane = trace::Lane::kNet;
    e.time = engine_->now();
    e.bytes = bytes;
    bus_->Emit(e);
    done = [this, bytes, done = std::move(done)]() {
      trace::Event end;
      end.kind = trace::EventKind::kFlowEnd;
      end.lane = trace::Lane::kNet;
      end.time = engine_->now();
      end.bytes = bytes;
      bus_->Emit(end);
      done();
    };
  }
  if (bytes == 0 || path.empty()) {
    // Completes "immediately" but asynchronously, preserving callback order.
    engine_->After(0.0, std::move(done));
    return id;
  }
  for (int link : path) {
    HARMONY_CHECK_GE(link, 0);
    HARMONY_CHECK_LT(link, static_cast<int>(capacities_.size()));
  }
  AdvanceToNow();
  flows_.emplace(id, Flow{path, static_cast<double>(bytes), 0.0, std::move(done)});
  RecomputeRates();
  return id;
}

void FlowNetwork::AdvanceToNow() {
  const TimeSec now = engine_->now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const double moved = flow.rate * dt;
    flow.remaining = std::max(0.0, flow.remaining - moved);
    for (int link : flow.path) link_bytes_[link] += moved;
  }
}

void FlowNetwork::RecomputeRates() {
  // Progressive filling (max-min fairness): repeatedly saturate the most
  // constrained link, freezing the rates of the flows that traverse it.
  std::vector<double> residual = capacities_;
  std::vector<int> flows_on_link(capacities_.size(), 0);
  std::map<int64_t, bool> frozen;
  for (auto& [id, flow] : flows_) {
    frozen[id] = false;
    for (int link : flow.path) ++flows_on_link[link];
  }
  int unfrozen = static_cast<int>(flows_.size());
  while (unfrozen > 0) {
    // The binding link is the one offering the least residual share per flow.
    double best_share = std::numeric_limits<double>::infinity();
    int best_link = -1;
    for (size_t l = 0; l < residual.size(); ++l) {
      if (flows_on_link[l] == 0) continue;
      const double share = residual[l] / flows_on_link[l];
      if (share < best_share) {
        best_share = share;
        best_link = static_cast<int>(l);
      }
    }
    HARMONY_CHECK_GE(best_link, 0);
    for (auto& [id, flow] : flows_) {
      if (frozen[id]) continue;
      if (std::find(flow.path.begin(), flow.path.end(), best_link) ==
          flow.path.end()) {
        continue;
      }
      flow.rate = best_share;
      frozen[id] = true;
      --unfrozen;
      for (int link : flow.path) {
        residual[link] -= best_share;
        --flows_on_link[link];
      }
    }
    // Numerical safety: residual can go slightly negative from fp error.
    for (double& r : residual) r = std::max(r, 0.0);
  }
  ScheduleNextCompletion();
}

void FlowNetwork::ScheduleNextCompletion() {
  const int64_t epoch = ++completion_epoch_;
  if (flows_.empty()) return;
  double min_dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    HARMONY_CHECK_GT(flow.rate, 0.0);
    min_dt = std::min(min_dt, flow.remaining / flow.rate);
  }
  engine_->After(min_dt, [this, epoch]() {
    if (epoch != completion_epoch_) return;  // stale: rates changed since
    AdvanceToNow();
    // Collect and complete all flows that have drained (fp tolerance).
    std::vector<std::function<void()>> done_fns;
    for (auto it = flows_.begin(); it != flows_.end();) {
      // Sub-byte residue is floating-point error, not payload: a GB-scale
      // flow integrates with ~1e-7 relative error, so an absolute epsilon
      // below one byte would spin the engine on infinitesimal completions.
      if (it->second.remaining <= 1.0) {
        done_fns.push_back(std::move(it->second.done));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    RecomputeRates();
    for (auto& fn : done_fns) fn();
  });
}

// ---------------------------------------------------------------------------
// Interconnect
// ---------------------------------------------------------------------------

Interconnect::Interconnect(const hw::MachineSpec& machine) : machine_(machine) {
  auto add_link = [&](BytesPerSec cap, std::string name) {
    capacities_.push_back(cap);
    names_.push_back(std::move(name));
    return static_cast<int>(capacities_.size()) - 1;
  };
  for (int g = 0; g < machine.num_gpus; ++g) {
    gpu_up_.push_back(add_link(machine.pcie_bw, "gpu" + std::to_string(g) + ".up"));
    gpu_down_.push_back(add_link(machine.pcie_bw, "gpu" + std::to_string(g) + ".down"));
  }
  for (int s = 0; s < machine.num_switches; ++s) {
    uplink_up_.push_back(add_link(machine.uplink_bw, "sw" + std::to_string(s) + ".up"));
    uplink_down_.push_back(
        add_link(machine.uplink_bw, "sw" + std::to_string(s) + ".down"));
  }
  hostmem_write_ = add_link(machine.host_mem_bw, "hostmem.write");
  hostmem_read_ = add_link(machine.host_mem_bw, "hostmem.read");
  if (machine.nvlink_bw > 0) {
    for (int g = 0; g < machine.num_gpus; ++g) {
      nvlink_out_.push_back(
          add_link(machine.nvlink_bw, "gpu" + std::to_string(g) + ".nvl.out"));
      nvlink_in_.push_back(
          add_link(machine.nvlink_bw, "gpu" + std::to_string(g) + ".nvl.in"));
    }
  }
}

std::vector<int> Interconnect::SwapInPath(int gpu) const {
  const int s = machine_.gpu_to_switch[gpu];
  return {hostmem_read_, uplink_down_[s], gpu_down_[gpu]};
}

std::vector<int> Interconnect::SwapOutPath(int gpu) const {
  const int s = machine_.gpu_to_switch[gpu];
  return {gpu_up_[gpu], uplink_up_[s], hostmem_write_};
}

std::vector<int> Interconnect::P2pPath(int src_gpu, int dst_gpu) const {
  HARMONY_CHECK_NE(src_gpu, dst_gpu);
  if (!nvlink_out_.empty()) {
    // Dedicated NVLink ports: p2p bypasses the PCIe tree entirely.
    return {nvlink_out_[src_gpu], nvlink_in_[dst_gpu]};
  }
  const int ss = machine_.gpu_to_switch[src_gpu];
  const int ds = machine_.gpu_to_switch[dst_gpu];
  if (ss == ds) {
    return {gpu_up_[src_gpu], gpu_down_[dst_gpu]};
  }
  // Cross-switch p2p bounces through the root complex (no DRAM hop).
  return {gpu_up_[src_gpu], uplink_up_[ss], uplink_down_[ds], gpu_down_[dst_gpu]};
}

std::string Interconnect::LinkName(int link) const { return names_.at(link); }

}  // namespace harmony::sim
