#include "sim/network.h"

#include <algorithm>
#include <limits>

namespace harmony::sim {

FlowNetwork::FlowNetwork(Engine* engine, std::vector<BytesPerSec> link_capacities)
    : engine_(engine),
      capacities_(std::move(link_capacities)),
      base_capacities_(capacities_),
      link_bytes_(capacities_.size(), 0.0),
      link_flows_(capacities_.size()),
      residual_(capacities_.size(), 0.0),
      nflows_(capacities_.size(), 0) {
  for (BytesPerSec c : capacities_) HARMONY_CHECK_GT(c, 0.0);
}

int64_t FlowNetwork::StartFlow(const std::vector<int>& path, Bytes bytes,
                               std::function<void()> done) {
  HARMONY_CHECK_GE(bytes, 0);
  const int64_t id = next_flow_id_++;
  if (bus_ != nullptr && bus_->active()) {
    trace::Event e;
    e.kind = trace::EventKind::kFlowBegin;
    e.lane = trace::Lane::kNet;
    e.time = engine_->now();
    e.bytes = bytes;
    bus_->Emit(e);
    done = [this, bytes, done = std::move(done)]() {
      trace::Event end;
      end.kind = trace::EventKind::kFlowEnd;
      end.lane = trace::Lane::kNet;
      end.time = engine_->now();
      end.bytes = bytes;
      bus_->Emit(end);
      done();
    };
  }
  if (bytes == 0 || path.empty()) {
    // Completes "immediately" but asynchronously, preserving callback order.
    engine_->After(0.0, std::move(done));
    return id;
  }
  for (int link : path) {
    HARMONY_CHECK_GE(link, 0);
    HARMONY_CHECK_LT(link, static_cast<int>(capacities_.size()));
  }
  AdvanceToNow();

  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(flow_id_.size());
    flow_id_.push_back(-1);
    flow_remaining_.push_back(0.0);
    flow_rate_.push_back(0.0);
    flow_path_.emplace_back();
    flow_done_.emplace_back();
    frozen_epoch_.push_back(0);
  }
  flow_id_[slot] = id;
  flow_path_[slot].assign(path.begin(), path.end());
  flow_remaining_[slot] = static_cast<double>(bytes);
  flow_rate_[slot] = 0.0;
  flow_done_[slot] = std::move(done);
  // The new flow's id is the largest, so appending keeps every list sorted
  // by flow id.
  active_.push_back(slot);
  for (int link : path) link_flows_[link].push_back(slot);

  RecomputeRates();
  return id;
}

void FlowNetwork::SetLinkCapacityFactor(int link, double factor) {
  HARMONY_CHECK_GE(link, 0);
  HARMONY_CHECK_LT(link, static_cast<int>(capacities_.size()));
  // Floor the factor so every rate stays strictly positive: the progressive
  // filling pass CHECKs shares > 0, and a literally dead link would wedge
  // flows forever with no completion event to cancel.
  constexpr double kMinFactor = 1e-6;
  const double clamped = std::max(factor, kMinFactor);
  const BytesPerSec target = base_capacities_[link] * clamped;
  if (target == capacities_[link]) return;
  AdvanceToNow();
  capacities_[link] = target;
  RecomputeRates();
}

void FlowNetwork::AdvanceToNow() {
  const TimeSec now = engine_->now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (int slot : active_) {
    const double moved = flow_rate_[slot] * dt;
    flow_remaining_[slot] = std::max(0.0, flow_remaining_[slot] - moved);
    for (int link : flow_path_[slot]) link_bytes_[link] += moved;
  }
}

void FlowNetwork::RecomputeRates() {
  // Progressive filling (max-min fairness): repeatedly saturate the most
  // constrained link, freezing the rates of the flows that traverse it.
  // All scratch (residual_, nflows_, frozen_epoch_) is reused; the only
  // per-round work is an O(links) scan plus the flows actually frozen.
  residual_.assign(capacities_.begin(), capacities_.end());
  for (size_t l = 0; l < link_flows_.size(); ++l) {
    nflows_[l] = static_cast<int>(link_flows_[l].size());
  }
  ++fill_epoch_;
  int unfrozen = static_cast<int>(active_.size());
  double min_dt = std::numeric_limits<double>::infinity();
  double prev_share = 0.0;
  while (unfrozen > 0) {
    // The binding link is the one offering the least residual share per flow.
    double best_share = std::numeric_limits<double>::infinity();
    int best_link = -1;
    for (size_t l = 0; l < residual_.size(); ++l) {
      if (nflows_[l] == 0) continue;
      const double share = residual_[l] / nflows_[l];
      if (share < best_share) {
        best_share = share;
        best_link = static_cast<int>(l);
      }
    }
    HARMONY_CHECK_GE(best_link, 0);
    // Fair-share floor: in exact arithmetic the binding share never decreases
    // across fill rounds (removing k flows at share s from a link with
    // residual r >= n*s leaves (r - k*s)/(n - k) >= s), so a later round's
    // share can only dip below an earlier one — in the worst case collapsing
    // to 0.0 on a link whose residual was eaten by repeated subtraction — via
    // floating-point error. Clamping to the previous round's share restores
    // the invariant and keeps every rate strictly positive.
    best_share = std::max(best_share, prev_share);
    HARMONY_CHECK_GT(best_share, 0.0);
    prev_share = best_share;
    for (int slot : link_flows_[best_link]) {
      // Skip flows frozen in an earlier round — and, for paths that traverse
      // the binding link more than once, duplicate entries within this round.
      if (frozen_epoch_[slot] == fill_epoch_) continue;
      frozen_epoch_[slot] = fill_epoch_;
      flow_rate_[slot] = best_share;
      --unfrozen;
      // Every flow freezes exactly once per recompute, so the projected
      // next-completion time is a by-product of the fill loop.
      min_dt = std::min(min_dt, flow_remaining_[slot] / flow_rate_[slot]);
      for (int link : flow_path_[slot]) {
        residual_[link] -= best_share;
        --nflows_[link];
      }
    }
    // Numerical safety: residual can go slightly negative from fp error.
    for (double& r : residual_) r = std::max(r, 0.0);
  }

  if (active_.empty()) {
    next_completion_time_ = std::numeric_limits<double>::infinity();
    return;
  }
  // now + min_dt, computed exactly the way Engine::After computes the event
  // time, so a wakeup re-armed from the stored projection lands on the same
  // double an enqueue-at-recompute would have.
  next_completion_time_ = engine_->now() + min_dt;
  if (!armed_times_.empty() && armed_times_.back() <= next_completion_time_) {
    // A pending wakeup already fires at or before the projection; it will
    // re-arm at next_completion_time_ if it turns out to be early.
    ++wakeups_suppressed_;
    return;
  }
  armed_times_.push_back(next_completion_time_);
  engine_->At(next_completion_time_, [this]() { OnWakeup(); });
}

void FlowNetwork::OnWakeup() {
  // Pending wakeups fire earliest-first, and the earliest is the back.
  armed_times_.pop_back();
  if (active_.empty()) return;
  if (engine_->now() < next_completion_time_) {
    // Early: the projection moved later after this wakeup was armed (a new
    // flow or a degraded link stretched everyone out). Re-arm at the stored
    // absolute projection unless a pending wakeup already covers it.
    if (armed_times_.empty() ||
        armed_times_.back() > next_completion_time_) {
      armed_times_.push_back(next_completion_time_);
      engine_->At(next_completion_time_, [this]() { OnWakeup(); });
    } else {
      ++wakeups_suppressed_;
    }
    return;
  }
  AdvanceToNow();
  // Collect and complete all flows that have drained (fp tolerance), keeping
  // the survivors' relative order (ascending flow id).
  done_scratch_.clear();
  size_t keep = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    const int slot = active_[i];
    // Sub-byte residue is floating-point error, not payload: a GB-scale
    // flow integrates with ~1e-7 relative error, so an absolute epsilon
    // below one byte would spin the engine on infinitesimal completions.
    if (flow_remaining_[slot] <= 1.0) {
      done_scratch_.push_back(std::move(flow_done_[slot]));
      RemoveFromLinks(slot);
      flow_done_[slot] = nullptr;
      flow_path_[slot].clear();
      free_slots_.push_back(slot);
    } else {
      active_[keep++] = slot;
    }
  }
  active_.resize(keep);
  RecomputeRates();
  for (auto& fn : done_scratch_) fn();
  done_scratch_.clear();
}

void FlowNetwork::RemoveFromLinks(int slot) {
  for (int link : flow_path_[slot]) {
    auto& on_link = link_flows_[link];
    // One entry per traversal; erase the first match, preserving order.
    auto it = std::find(on_link.begin(), on_link.end(), slot);
    HARMONY_CHECK(it != on_link.end());
    on_link.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Interconnect
// ---------------------------------------------------------------------------

Interconnect::Interconnect(const hw::MachineSpec& machine) : machine_(machine) {
  // Link ids are assigned in exactly the order hw::MachineSpec's Link*
  // helpers document (NumLinks() mirrors this layout), so a heterogeneous
  // machine's per-link scale applies by construction index. The scale is an
  // exact 1.0 multiply on homogeneous machines.
  auto add_link = [&](BytesPerSec cap, std::string name) {
    const int id = static_cast<int>(capacities_.size());
    capacities_.push_back(cap * machine.LinkScaleAt(id));
    names_.push_back(std::move(name));
    return id;
  };
  for (int g = 0; g < machine.num_gpus; ++g) {
    gpu_up_.push_back(add_link(machine.pcie_bw, "gpu" + std::to_string(g) + ".up"));
    gpu_down_.push_back(add_link(machine.pcie_bw, "gpu" + std::to_string(g) + ".down"));
  }
  for (int s = 0; s < machine.num_switches; ++s) {
    uplink_up_.push_back(add_link(machine.uplink_bw, "sw" + std::to_string(s) + ".up"));
    uplink_down_.push_back(
        add_link(machine.uplink_bw, "sw" + std::to_string(s) + ".down"));
  }
  hostmem_write_ = add_link(machine.host_mem_bw, "hostmem.write");
  hostmem_read_ = add_link(machine.host_mem_bw, "hostmem.read");
  if (machine.nvlink_bw > 0) {
    for (int g = 0; g < machine.num_gpus; ++g) {
      nvlink_out_.push_back(
          add_link(machine.nvlink_bw, "gpu" + std::to_string(g) + ".nvl.out"));
      nvlink_in_.push_back(
          add_link(machine.nvlink_bw, "gpu" + std::to_string(g) + ".nvl.in"));
    }
  }
  HARMONY_CHECK_EQ(num_links(), machine.NumLinks());
}

std::vector<int> Interconnect::SwapInPath(int gpu) const {
  const int s = machine_.gpu_to_switch[gpu];
  return {hostmem_read_, uplink_down_[s], gpu_down_[gpu]};
}

std::vector<int> Interconnect::SwapOutPath(int gpu) const {
  const int s = machine_.gpu_to_switch[gpu];
  return {gpu_up_[gpu], uplink_up_[s], hostmem_write_};
}

std::vector<int> Interconnect::P2pPath(int src_gpu, int dst_gpu) const {
  HARMONY_CHECK_NE(src_gpu, dst_gpu);
  if (!nvlink_out_.empty()) {
    // Dedicated NVLink ports: p2p bypasses the PCIe tree entirely.
    return {nvlink_out_[src_gpu], nvlink_in_[dst_gpu]};
  }
  const int ss = machine_.gpu_to_switch[src_gpu];
  const int ds = machine_.gpu_to_switch[dst_gpu];
  if (ss == ds) {
    return {gpu_up_[src_gpu], gpu_down_[dst_gpu]};
  }
  // Cross-switch p2p bounces through the root complex (no DRAM hop).
  return {gpu_up_[src_gpu], uplink_up_[ss], uplink_down_[ds], gpu_down_[dst_gpu]};
}

std::string Interconnect::LinkName(int link) const { return names_.at(link); }

}  // namespace harmony::sim
