#include "hw/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::hw {

MachineSpec MachineSpec::Commodity4Gpu() {
  MachineSpec m;
  m.name = "4x GTX-1080Ti commodity server";
  m.num_gpus = 4;
  m.num_switches = 2;
  m.gpu_to_switch = {0, 0, 1, 1};
  m.host_memory = GiB(374.0);
  return m;
}

MachineSpec MachineSpec::Commodity8Gpu() {
  MachineSpec m;
  m.name = "8x GTX-1080Ti commodity server";
  m.num_gpus = 8;
  m.num_switches = 2;
  m.gpu_to_switch = {0, 0, 0, 0, 1, 1, 1, 1};
  m.host_memory = GiB(750.0);
  // Dual-socket box: twice the DMA-visible DRAM bandwidth and CPU update rate.
  m.host_mem_bw = GiBps(32.0);
  m.cpu_update_bw = GiBps(40.0);
  return m;
}

MachineSpec MachineSpec::WithNumGpus(int n) const {
  HARMONY_CHECK_GE(n, 1);
  HARMONY_CHECK_LE(n, num_gpus);
  MachineSpec m = *this;
  m.num_gpus = n;
  m.gpu_to_switch.assign(gpu_to_switch.begin(), gpu_to_switch.begin() + n);
  int max_switch = 0;
  for (int s : m.gpu_to_switch) max_switch = std::max(max_switch, s);
  m.num_switches = max_switch + 1;
  // Restriction changes the link-id layout: keep the surviving GPUs'
  // overrides, but any per-link scales are re-derived by the caller (the
  // old indices do not translate).
  if (!per_gpu.empty()) {
    m.per_gpu.assign(per_gpu.begin(), per_gpu.begin() + n);
  }
  m.link_bw_scale.clear();
  return m;
}

MachineSpec MachineSpec::WithNvlink(BytesPerSec bandwidth) const {
  HARMONY_CHECK_GT(bandwidth, 0.0);
  MachineSpec m = *this;
  m.nvlink_bw = bandwidth;
  return m;
}

// ---------------------------------------------------------------------------
// Heterogeneous fleets
// ---------------------------------------------------------------------------

Bytes MachineSpec::MinUsableMemory() const {
  if (per_gpu.empty()) return gpu.usable_memory();
  Bytes m = per_gpu[0].usable_memory();
  for (const GpuSpec& g : per_gpu) m = std::min(m, g.usable_memory());
  return m;
}

const GpuSpec& MachineSpec::PlanningGpu() const {
  if (per_gpu.empty()) return gpu;
  const GpuSpec* slowest = &per_gpu[0];
  for (const GpuSpec& g : per_gpu) {
    if (g.peak_flops < slowest->peak_flops) slowest = &g;
  }
  return *slowest;
}

double MachineSpec::MinGpuLinkScale() const {
  if (link_bw_scale.empty()) return 1.0;
  double m = 1.0;
  for (int g = 0; g < num_gpus; ++g) {
    m = std::min({m, LinkScaleAt(LinkGpuUp(g)), LinkScaleAt(LinkGpuDown(g))});
  }
  return m;
}

double MachineSpec::MinSwitchLinkScale() const {
  if (link_bw_scale.empty()) return 1.0;
  double m = 1.0;
  for (int s = 0; s < num_switches; ++s) {
    m = std::min(
        {m, LinkScaleAt(LinkSwitchUp(s)), LinkScaleAt(LinkSwitchDown(s))});
  }
  return m;
}

double MachineSpec::MinHostMemScale() const {
  if (link_bw_scale.empty()) return 1.0;
  return std::min(LinkScaleAt(LinkHostWrite()), LinkScaleAt(LinkHostRead()));
}

BytesPerSec MachineSpec::EffectiveSwapBw(int active_gpus) const {
  BytesPerSec bw =
      std::min(pcie_bw * MinGpuLinkScale(),
               host_mem_bw * MinHostMemScale() / std::max(1, active_gpus));
  // A degraded switch uplink sits on every swap path; fold it in only when
  // degraded so the nominal value stays bit-identical to the historical
  // two-term min regardless of the uplink_bw calibration.
  const double s = MinSwitchLinkScale();
  if (s < 1.0) bw = std::min(bw, uplink_bw * s);
  return bw;
}

BytesPerSec MachineSpec::EffectiveP2pBw() const {
  BytesPerSec bw = pcie_bw * MinGpuLinkScale();
  const double s = MinSwitchLinkScale();
  if (s < 1.0) bw = std::min(bw, uplink_bw * s);
  return bw;
}

MachineSpec MachineSpec::WithGpuOverride(int g, const GpuSpec& spec) const {
  HARMONY_CHECK_GE(g, 0);
  HARMONY_CHECK_LT(g, num_gpus);
  MachineSpec m = *this;
  if (m.per_gpu.empty()) m.per_gpu.assign(num_gpus, gpu);
  m.per_gpu[g] = spec;
  return m;
}

MachineSpec MachineSpec::WithLinkScale(int link, double factor) const {
  HARMONY_CHECK_GE(link, 0);
  HARMONY_CHECK_LT(link, NumLinks());
  HARMONY_CHECK_GT(factor, 0.0);
  MachineSpec m = *this;
  if (m.link_bw_scale.empty()) m.link_bw_scale.assign(NumLinks(), 1.0);
  m.link_bw_scale[link] *= factor;
  return m;
}

Status MachineSpec::Validate() const {
  if (num_gpus < 1) return Status::InvalidArgument("machine: num_gpus < 1");
  if (num_switches < 1) {
    return Status::InvalidArgument("machine: num_switches < 1");
  }
  if (static_cast<int>(gpu_to_switch.size()) != num_gpus) {
    return Status::InvalidArgument("machine: gpu_to_switch size != num_gpus");
  }
  for (int s : gpu_to_switch) {
    if (s < 0 || s >= num_switches) {
      return Status::InvalidArgument(
          "machine: gpu_to_switch entry " + std::to_string(s) +
          " outside [0, " + std::to_string(num_switches) + ")");
    }
  }
  if (pcie_bw <= 0 || uplink_bw <= 0 || host_mem_bw <= 0 ||
      cpu_update_bw <= 0 || nvlink_bw < 0) {
    return Status::InvalidArgument("machine: non-positive bandwidth");
  }
  if (host_memory <= 0) {
    return Status::InvalidArgument("machine: non-positive host memory");
  }
  auto check_gpu = [](const GpuSpec& g, const std::string& which) -> Status {
    if (g.memory_capacity <= 0) {
      return Status::InvalidArgument("machine: " + which +
                                     " has non-positive memory capacity");
    }
    if (g.peak_flops <= 0) {
      return Status::InvalidArgument("machine: " + which +
                                     " has non-positive peak flops");
    }
    if (g.usable_fraction <= 0.0 || g.usable_fraction > 1.0) {
      return Status::InvalidArgument("machine: " + which +
                                     " usable_fraction outside (0, 1]");
    }
    return Status::Ok();
  };
  HARMONY_RETURN_IF_ERROR(check_gpu(gpu, "gpu"));
  if (!per_gpu.empty() && static_cast<int>(per_gpu.size()) != num_gpus) {
    return Status::InvalidArgument("machine: per_gpu size != num_gpus");
  }
  for (size_t g = 0; g < per_gpu.size(); ++g) {
    HARMONY_RETURN_IF_ERROR(
        check_gpu(per_gpu[g], "per_gpu[" + std::to_string(g) + "]"));
  }
  if (!link_bw_scale.empty() &&
      static_cast<int>(link_bw_scale.size()) != NumLinks()) {
    return Status::InvalidArgument("machine: link_bw_scale size " +
                                   std::to_string(link_bw_scale.size()) +
                                   " != NumLinks() " +
                                   std::to_string(NumLinks()));
  }
  for (size_t l = 0; l < link_bw_scale.size(); ++l) {
    const double f = link_bw_scale[l];
    if (!(f > 0.0) || f > 1e3) {
      return Status::InvalidArgument("machine: link_bw_scale[" +
                                     std::to_string(l) + "] outside (0, 1e3]");
    }
  }
  return Status::Ok();
}

}  // namespace harmony::hw
