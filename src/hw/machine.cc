#include "hw/machine.h"

#include "common/logging.h"

namespace harmony::hw {

MachineSpec MachineSpec::Commodity4Gpu() {
  MachineSpec m;
  m.name = "4x GTX-1080Ti commodity server";
  m.num_gpus = 4;
  m.num_switches = 2;
  m.gpu_to_switch = {0, 0, 1, 1};
  m.host_memory = GiB(374.0);
  return m;
}

MachineSpec MachineSpec::Commodity8Gpu() {
  MachineSpec m;
  m.name = "8x GTX-1080Ti commodity server";
  m.num_gpus = 8;
  m.num_switches = 2;
  m.gpu_to_switch = {0, 0, 0, 0, 1, 1, 1, 1};
  m.host_memory = GiB(750.0);
  // Dual-socket box: twice the DMA-visible DRAM bandwidth and CPU update rate.
  m.host_mem_bw = GiBps(32.0);
  m.cpu_update_bw = GiBps(40.0);
  return m;
}

MachineSpec MachineSpec::WithNumGpus(int n) const {
  HARMONY_CHECK_GE(n, 1);
  HARMONY_CHECK_LE(n, num_gpus);
  MachineSpec m = *this;
  m.num_gpus = n;
  m.gpu_to_switch.assign(gpu_to_switch.begin(), gpu_to_switch.begin() + n);
  int max_switch = 0;
  for (int s : m.gpu_to_switch) max_switch = std::max(max_switch, s);
  m.num_switches = max_switch + 1;
  return m;
}

MachineSpec MachineSpec::WithNvlink(BytesPerSec bandwidth) const {
  HARMONY_CHECK_GT(bandwidth, 0.0);
  MachineSpec m = *this;
  m.nvlink_bw = bandwidth;
  return m;
}

}  // namespace harmony::hw
