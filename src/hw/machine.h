#ifndef HARMONY_HW_MACHINE_H_
#define HARMONY_HW_MACHINE_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace harmony::hw {

/// A single accelerator. Defaults approximate an NVIDIA GTX-1080Ti, the GPU
/// used throughout the paper's evaluation (Sec 5.1).
struct GpuSpec {
  std::string name = "GTX-1080Ti";
  Bytes memory_capacity = GiB(11.0);
  /// Peak FP32 throughput.
  Flops peak_flops = 11.34e12;
  /// Fraction of `memory_capacity` usable for tensors (the rest is framework
  /// workspace / CUDA context, which the paper counts separately in Fig 8).
  double usable_fraction = 0.92;

  Bytes usable_memory() const {
    return static_cast<Bytes>(static_cast<double>(memory_capacity) * usable_fraction);
  }
};

/// Identifies an endpoint in the PCIe tree.
struct DeviceId {
  enum class Kind { kHost, kGpu };
  Kind kind = Kind::kHost;
  int index = 0;  // GPU ordinal; 0 for host.

  static DeviceId Host() { return {Kind::kHost, 0}; }
  static DeviceId Gpu(int i) { return {Kind::kGpu, i}; }

  bool is_gpu() const { return kind == Kind::kGpu; }
  bool operator==(const DeviceId& o) const { return kind == o.kind && index == o.index; }
};

/// Directed link in the interconnect. Links come in pairs (one per PCIe
/// direction); contention is modeled per direction, matching the paper's
/// "16GB/s per direction" characterization.
struct LinkId {
  int id = -1;
  bool operator==(const LinkId& o) const { return id == o.id; }
};

/// A commodity multi-GPU server: GPUs hang off PCIe switches which share
/// uplinks into the host root complex (Fig 2a). `gpu_to_switch[g]` gives the
/// switch for GPU g; each switch has one uplink. When every GPU swaps
/// simultaneously the shared uplinks become the bottleneck — the 4:1 / 8:1
/// oversubscription the paper calls out in Sec 2.
struct MachineSpec {
  std::string name;
  GpuSpec gpu;
  int num_gpus = 4;
  std::vector<int> gpu_to_switch;  // size num_gpus
  int num_switches = 2;

  /// Effective per-direction bandwidth of one PCIe 3.0 x16 hop (16 GB/s raw,
  /// ~85% achievable after protocol overhead).
  BytesPerSec pcie_bw = GiBps(13.6);
  /// Per-direction bandwidth of each switch->host uplink.
  BytesPerSec uplink_bw = GiBps(13.6);
  /// Aggregate host DRAM bandwidth available to DMA traffic (all GPUs
  /// share): bounded by the root complex and pinned-buffer copies, well
  /// below raw DDR4 bandwidth.
  BytesPerSec host_mem_bw = GiBps(16.0);

  /// Per-direction bandwidth of a dedicated GPU<->GPU NVLink port (0 = the
  /// machine has no NVLink; the paper's commodity boxes do not, and footnote
  /// 3 notes NVLink "will only enhance Harmony's advantages due to p2p
  /// transfers" — WithNvlink() lets experiments test exactly that).
  BytesPerSec nvlink_bw = 0;

  Bytes host_memory = GiB(374.0);
  /// Effective rate at which the CPU applies optimizer updates (bytes of
  /// parameter state touched per second); models CPU-offloaded Adam.
  BytesPerSec cpu_update_bw = GiBps(20.0);

  /// True if p2p between two GPUs stays under a single switch (full-bandwidth
  /// path that does not consume host uplinks).
  bool SameSwitch(int gpu_a, int gpu_b) const {
    return gpu_to_switch[gpu_a] == gpu_to_switch[gpu_b];
  }

  /// The 4-GPU GTX-1080Ti server of Sec 5.1 (two switches, two GPUs each,
  /// 374 GB host RAM).
  static MachineSpec Commodity4Gpu();

  /// The 8-GPU server of Sec 5.7 (two switches, four GPUs each — 4:1
  /// oversubscription — 750 GB host RAM).
  static MachineSpec Commodity8Gpu();

  /// A copy of this machine restricted to the first `n` GPUs (used by the
  /// Fig 16 scalability sweep).
  MachineSpec WithNumGpus(int n) const;

  /// A copy of this machine with NVLink p2p ports of the given per-direction
  /// bandwidth (e.g. GiBps(22) for NVLink 1.0 as on a DGX-1).
  MachineSpec WithNvlink(BytesPerSec bandwidth) const;
};

}  // namespace harmony::hw

#endif  // HARMONY_HW_MACHINE_H_
