#ifndef HARMONY_HW_MACHINE_H_
#define HARMONY_HW_MACHINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace harmony::hw {

/// A single accelerator. Defaults approximate an NVIDIA GTX-1080Ti, the GPU
/// used throughout the paper's evaluation (Sec 5.1).
struct GpuSpec {
  std::string name = "GTX-1080Ti";
  Bytes memory_capacity = GiB(11.0);
  /// Peak FP32 throughput.
  Flops peak_flops = 11.34e12;
  /// Fraction of `memory_capacity` usable for tensors (the rest is framework
  /// workspace / CUDA context, which the paper counts separately in Fig 8).
  double usable_fraction = 0.92;

  Bytes usable_memory() const {
    return static_cast<Bytes>(static_cast<double>(memory_capacity) * usable_fraction);
  }
};

/// Identifies an endpoint in the PCIe tree.
struct DeviceId {
  enum class Kind { kHost, kGpu };
  Kind kind = Kind::kHost;
  int index = 0;  // GPU ordinal; 0 for host.

  static DeviceId Host() { return {Kind::kHost, 0}; }
  static DeviceId Gpu(int i) { return {Kind::kGpu, i}; }

  bool is_gpu() const { return kind == Kind::kGpu; }
  bool operator==(const DeviceId& o) const { return kind == o.kind && index == o.index; }
};

/// Directed link in the interconnect. Links come in pairs (one per PCIe
/// direction); contention is modeled per direction, matching the paper's
/// "16GB/s per direction" characterization.
struct LinkId {
  int id = -1;
  bool operator==(const LinkId& o) const { return id == o.id; }
};

/// A commodity multi-GPU server: GPUs hang off PCIe switches which share
/// uplinks into the host root complex (Fig 2a). `gpu_to_switch[g]` gives the
/// switch for GPU g; each switch has one uplink. When every GPU swaps
/// simultaneously the shared uplinks become the bottleneck — the 4:1 / 8:1
/// oversubscription the paper calls out in Sec 2.
struct MachineSpec {
  std::string name;
  GpuSpec gpu;
  int num_gpus = 4;
  std::vector<int> gpu_to_switch;  // size num_gpus
  int num_switches = 2;

  /// Heterogeneous-fleet overrides. Empty = homogeneous (every GPU is `gpu`,
  /// every link runs at its spec bandwidth) — the common case, and the one
  /// every pre-existing code path must reproduce bit-for-bit. When non-empty,
  /// `per_gpu` has exactly `num_gpus` entries (GpuAt) and `link_bw_scale` has
  /// exactly NumLinks() entries of positive capacity multipliers indexed by
  /// the canonical link-id layout below (LinkScaleAt). The health monitor
  /// synthesizes degraded machines through these fields; planners consume
  /// them through MinUsableMemory()/PlanningGpu()/EffectiveSwapBw().
  std::vector<GpuSpec> per_gpu;        // empty or size num_gpus
  std::vector<double> link_bw_scale;   // empty or size NumLinks()

  /// Effective per-direction bandwidth of one PCIe 3.0 x16 hop (16 GB/s raw,
  /// ~85% achievable after protocol overhead).
  BytesPerSec pcie_bw = GiBps(13.6);
  /// Per-direction bandwidth of each switch->host uplink.
  BytesPerSec uplink_bw = GiBps(13.6);
  /// Aggregate host DRAM bandwidth available to DMA traffic (all GPUs
  /// share): bounded by the root complex and pinned-buffer copies, well
  /// below raw DDR4 bandwidth.
  BytesPerSec host_mem_bw = GiBps(16.0);

  /// Per-direction bandwidth of a dedicated GPU<->GPU NVLink port (0 = the
  /// machine has no NVLink; the paper's commodity boxes do not, and footnote
  /// 3 notes NVLink "will only enhance Harmony's advantages due to p2p
  /// transfers" — WithNvlink() lets experiments test exactly that).
  BytesPerSec nvlink_bw = 0;

  Bytes host_memory = GiB(374.0);
  /// Effective rate at which the CPU applies optimizer updates (bytes of
  /// parameter state touched per second); models CPU-offloaded Adam.
  BytesPerSec cpu_update_bw = GiBps(20.0);

  /// True if p2p between two GPUs stays under a single switch (full-bandwidth
  /// path that does not consume host uplinks).
  bool SameSwitch(int gpu_a, int gpu_b) const {
    return gpu_to_switch[gpu_a] == gpu_to_switch[gpu_b];
  }

  /// The 4-GPU GTX-1080Ti server of Sec 5.1 (two switches, two GPUs each,
  /// 374 GB host RAM).
  static MachineSpec Commodity4Gpu();

  /// The 8-GPU server of Sec 5.7 (two switches, four GPUs each — 4:1
  /// oversubscription — 750 GB host RAM).
  static MachineSpec Commodity8Gpu();

  /// A copy of this machine restricted to the first `n` GPUs (used by the
  /// Fig 16 scalability sweep).
  MachineSpec WithNumGpus(int n) const;

  /// A copy of this machine with NVLink p2p ports of the given per-direction
  /// bandwidth (e.g. GiBps(22) for NVLink 1.0 as on a DGX-1).
  MachineSpec WithNvlink(BytesPerSec bandwidth) const;

  // --- heterogeneous fleets -------------------------------------------------

  /// The spec of GPU `g` (the shared `gpu` unless overridden).
  const GpuSpec& GpuAt(int g) const {
    return per_gpu.empty() ? gpu : per_gpu[g];
  }

  /// Smallest usable memory across the fleet — what packing must fit, since
  /// Harmony assigns the same capacity budget to every device.
  Bytes MinUsableMemory() const;

  /// The GPU the planner profiles compute costs on: the slowest device of a
  /// heterogeneous fleet (lowest peak_flops, ties to the lowest index), so a
  /// uniform schedule never underestimates a pack's compute time. Returns
  /// `gpu` exactly on a homogeneous machine.
  const GpuSpec& PlanningGpu() const;

  /// Canonical link-id layout, mirrored exactly by sim::Interconnect's
  /// constructor: per-GPU PCIe up/down pairs, per-switch uplink up/down
  /// pairs, host DRAM write/read, then (NVLink machines only) per-GPU NVLink
  /// out/in pairs.
  int LinkGpuUp(int g) const { return 2 * g; }
  int LinkGpuDown(int g) const { return 2 * g + 1; }
  int LinkSwitchUp(int s) const { return 2 * num_gpus + 2 * s; }
  int LinkSwitchDown(int s) const { return 2 * num_gpus + 2 * s + 1; }
  int LinkHostWrite() const { return 2 * num_gpus + 2 * num_switches; }
  int LinkHostRead() const { return 2 * num_gpus + 2 * num_switches + 1; }
  int LinkNvlinkOut(int g) const {
    return 2 * num_gpus + 2 * num_switches + 2 + 2 * g;
  }
  int LinkNvlinkIn(int g) const { return LinkNvlinkOut(g) + 1; }
  int NumLinks() const {
    return 2 * num_gpus + 2 * num_switches + 2 +
           (nvlink_bw > 0 ? 2 * num_gpus : 0);
  }

  /// Capacity multiplier of `link` (1.0 unless overridden).
  double LinkScaleAt(int link) const {
    return link_bw_scale.empty() ? 1.0 : link_bw_scale[link];
  }

  /// Smallest scale across the per-GPU PCIe links / the switch uplink
  /// pairs / the host DRAM links — the conservative factors the planner
  /// folds into its two effective bandwidths. All are exactly 1.0 on a
  /// homogeneous machine.
  double MinGpuLinkScale() const;
  double MinSwitchLinkScale() const;
  double MinHostMemScale() const;

  /// The planner's effective per-device swap bandwidth with `active_gpus`
  /// devices swapping concurrently: min(scaled PCIe hop, fair share of the
  /// scaled host DRAM bandwidth). Every swap (and cross-switch p2p) hop
  /// also crosses a switch uplink, so a *degraded* uplink is folded in as
  /// an extra min term — but only when its scale is < 1.0: at nominal the
  /// uplink never binds tighter than what planning already assumed, which
  /// keeps this bit-identical to the historical min(pcie_bw,
  /// host_mem_bw / N) when no link scales are set.
  BytesPerSec EffectiveSwapBw(int active_gpus) const;
  /// The planner's effective p2p bandwidth (scaled PCIe hop, degraded
  /// uplink folded in the same way).
  BytesPerSec EffectiveP2pBw() const;

  /// A copy with GPU `g` overridden to `spec` (materializes `per_gpu`).
  MachineSpec WithGpuOverride(int g, const GpuSpec& spec) const;
  /// A copy with `link`'s bandwidth scaled by `factor` (materializes
  /// `link_bw_scale`; factors compose multiplicatively with existing ones).
  MachineSpec WithLinkScale(int link, double factor) const;

  /// Structural validation of the descriptor — topology sizes, positive
  /// bandwidths and capacities, override-vector sizes, link-scale ranges.
  /// Every wire ingestion point and every synthesized degraded machine goes
  /// through this before planning.
  Status Validate() const;
};

}  // namespace harmony::hw

#endif  // HARMONY_HW_MACHINE_H_
