#include "fault/chaos.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace harmony::fault {

ChaosDriver::ChaosDriver(sim::Engine* engine, trace::TraceBus* bus,
                         FaultInjector* injector)
    : engine_(engine), bus_(bus), injector_(injector) {}

void ChaosDriver::Emit(trace::EventKind kind, FaultKind fault, int device,
                       Bytes bytes, int task) {
  if (bus_ == nullptr || !bus_->active()) return;
  trace::Event e;
  e.kind = kind;
  // Faults against a device land on its alloc row; machine-level faults
  // (links) land on the global net row.
  e.lane = device < 0 ? trace::Lane::kNet : trace::Lane::kAlloc;
  e.device = device;
  e.time = engine_->now();
  e.bytes = bytes;
  e.task = task;
  e.detail = FaultKindName(fault);
  bus_->Emit(e);
}

// ---------------------------------------------------------------------------
// Stream stalls
// ---------------------------------------------------------------------------

void ChaosDriver::AttachStreamStalls(sim::Stream* stream, int device) {
  stream->SetStallProbe([this, device]() -> TimeSec {
    if (Stopped()) return 0.0;
    const TimeSec stall = injector_->StreamStall();
    if (stall > 0.0) {
      Emit(trace::EventKind::kFaultInjected, FaultKind::kStreamStall, device,
           0);
      engine_->After(stall, [this, device]() {
        Emit(trace::EventKind::kFaultRecovered, FaultKind::kStreamStall,
             device, 0);
      });
    }
    return stall;
  });
}

// ---------------------------------------------------------------------------
// Link flaps
// ---------------------------------------------------------------------------

void ChaosDriver::ArmLinkFlaps(sim::FlowNetwork* flows, int num_links,
                               std::function<std::string(int)> link_name) {
  HARMONY_CHECK_GT(num_links, 0);
  link_name_ = std::move(link_name);
  ScheduleFlap(flows, num_links);
}

void ChaosDriver::ScheduleFlap(sim::FlowNetwork* flows, int num_links) {
  engine_->After(injector_->NextFlapDelay(), [this, flows, num_links]() {
    if (Stopped()) return;  // run over: stop re-arming, let the queue drain
    const int link = injector_->PickLink(num_links);
    injector_->RecordFlap();
    flows->SetLinkCapacityFactor(link, injector_->plan().link_degrade_factor);
    degraded_links_.push_back(link);
    Emit(trace::EventKind::kFaultInjected, FaultKind::kLinkDegrade, -1,
         EncodeFactorPpt(injector_->plan().link_degrade_factor), link);
    engine_->After(injector_->plan().link_flap_duration, [this, flows,
                                                          link]() {
      // Restore even after the run is over: a no-op for the drained engine,
      // and it keeps DescribeActive() honest while the failure unwinds.
      auto it =
          std::find(degraded_links_.begin(), degraded_links_.end(), link);
      if (it != degraded_links_.end()) degraded_links_.erase(it);
      // Only restore full capacity once no other flap holds this link down.
      if (std::find(degraded_links_.begin(), degraded_links_.end(), link) ==
          degraded_links_.end()) {
        flows->SetLinkCapacityFactor(link, 1.0);
      }
      Emit(trace::EventKind::kFaultRecovered, FaultKind::kLinkDegrade, -1, 0,
           link);
    });
    ScheduleFlap(flows, num_links);
  });
}

// ---------------------------------------------------------------------------
// Persistent targeted degradations
// ---------------------------------------------------------------------------

void ChaosDriver::ArmPersistentLinkFault(sim::FlowNetwork* flows, int link,
                                         double factor, TimeSec at) {
  HARMONY_CHECK_GE(link, 0);
  HARMONY_CHECK_GT(factor, 0.0);
  engine_->After(at, [this, flows, link, factor]() {
    if (Stopped()) return;
    flows->SetLinkCapacityFactor(link, factor);
    failed_links_.push_back(link);
    Emit(trace::EventKind::kFaultInjected, FaultKind::kLinkDegrade, -1,
         EncodeFactorPpt(factor), link);
    // No recovery is ever scheduled: the degradation outlives the run.
  });
}

void ChaosDriver::ArmPersistentMemShrink(int device, TimeSec at,
                                         std::function<Bytes(int)> apply) {
  HARMONY_CHECK_GE(device, 0);
  engine_->After(at, [this, device, apply = std::move(apply)]() {
    if (Stopped()) return;
    const Bytes stolen = apply(device);
    shrunk_devices_.push_back(device);
    Emit(trace::EventKind::kFaultInjected, FaultKind::kMemPressure, device,
         stolen);
  });
}

// ---------------------------------------------------------------------------
// Memory pressure
// ---------------------------------------------------------------------------

void ChaosDriver::ArmMemoryPressure(int num_devices,
                                    std::function<Bytes(int)> apply,
                                    std::function<Bytes(int)> release) {
  HARMONY_CHECK_GT(num_devices, 0);
  pressure_apply_ = std::move(apply);
  pressure_release_ = std::move(release);
  SchedulePressure(num_devices);
}

void ChaosDriver::SchedulePressure(int num_devices) {
  engine_->After(injector_->NextPressureDelay(), [this, num_devices]() {
    if (Stopped()) return;
    const int d = injector_->PickDevice(num_devices);
    // One spike per device at a time: Residency's pressure reserve is a
    // single slice, not a refcounted stack.
    if (std::find(pressured_devices_.begin(), pressured_devices_.end(), d) ==
        pressured_devices_.end()) {
      injector_->RecordPressure();
      const Bytes stolen = pressure_apply_(d);
      pressured_devices_.push_back(d);
      Emit(trace::EventKind::kFaultInjected, FaultKind::kMemPressure, d,
           stolen);
      engine_->After(injector_->plan().mem_pressure_duration, [this, d]() {
        pressure_release_(d);
        auto it = std::find(pressured_devices_.begin(),
                            pressured_devices_.end(), d);
        if (it != pressured_devices_.end()) pressured_devices_.erase(it);
        Emit(trace::EventKind::kFaultRecovered, FaultKind::kMemPressure, d, 0);
      });
    }
    SchedulePressure(num_devices);
  });
}

// ---------------------------------------------------------------------------
// Reliable flows (transfer-failure recovery)
// ---------------------------------------------------------------------------

struct ChaosDriver::FlowAttempt {
  sim::FlowNetwork* flows;
  std::vector<int> path;
  Bytes bytes;
  int device;
  std::function<void()> done;
  int attempts = 0;  // failed attempts so far
};

void ChaosDriver::StartReliableFlow(sim::FlowNetwork* flows,
                                    std::vector<int> path, Bytes bytes,
                                    int device, std::function<void()> done) {
  auto a = std::make_shared<FlowAttempt>();
  a->flows = flows;
  a->path = std::move(path);
  a->bytes = bytes;
  a->device = device;
  a->done = std::move(done);
  RunFlowAttempt(std::move(a));
}

void ChaosDriver::RunFlowAttempt(std::shared_ptr<FlowAttempt> a) {
  // Once the run is over (failed elsewhere), stop injecting: the transfer
  // proceeds for real so the stream op completes and the queue drains.
  if (!Stopped() && injector_->TransferFails()) {
    Emit(trace::EventKind::kFaultInjected, FaultKind::kTransferFailure,
         a->device, a->bytes);
    if (a->attempts == 0) ++transfers_in_retry_;
    if (a->attempts >= injector_->plan().max_transfer_retries) {
      --transfers_in_retry_;
      if (fail_) {
        fail_(Status::Unavailable(
            "injected transfer-failure on device " +
            std::to_string(a->device) + " persisted past " +
            std::to_string(injector_->plan().max_transfer_retries) +
            " retries (" + FormatBytes(a->bytes) + " transfer; chaos " +
            injector_->plan().Describe() + ")"));
      }
      return;  // unsurvivable: the transfer is abandoned, the run failed
    }
    const TimeSec delay = injector_->BackoffDelay(a->attempts);
    ++a->attempts;
    engine_->After(delay, [this, a = std::move(a)]() mutable {
      RunFlowAttempt(std::move(a));
    });
    return;
  }
  sim::FlowNetwork* flows = a->flows;
  const std::vector<int>& path = a->path;
  const Bytes bytes = a->bytes;
  flows->StartFlow(path, bytes, [this, a = std::move(a)]() {
    if (a->attempts > 0) {
      --transfers_in_retry_;
      ++transfers_recovered_;
      Emit(trace::EventKind::kFaultRecovered, FaultKind::kTransferFailure,
           a->device, a->bytes);
    }
    a->done();
  });
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::string ChaosDriver::DescribeActive() const {
  std::string out;
  auto sep = [&out]() {
    if (!out.empty()) out += ", ";
  };
  for (const int link : degraded_links_) {
    sep();
    out += "link " +
           (link_name_ ? link_name_(link) : std::to_string(link)) +
           " degraded";
  }
  for (const int d : pressured_devices_) {
    sep();
    out += "device " + std::to_string(d) + " under injected memory pressure";
  }
  for (const int link : failed_links_) {
    sep();
    out += "link " +
           (link_name_ ? link_name_(link) : std::to_string(link)) +
           " persistently degraded";
  }
  for (const int d : shrunk_devices_) {
    sep();
    out += "device " + std::to_string(d) + " permanently shrunk";
  }
  if (transfers_in_retry_ > 0) {
    sep();
    out += std::to_string(transfers_in_retry_) + " transfer(s) in retry";
  }
  if (out.empty()) return out;
  return " [active faults: " + out + "]";
}

}  // namespace harmony::fault
