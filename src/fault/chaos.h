#ifndef HARMONY_FAULT_CHAOS_H_
#define HARMONY_FAULT_CHAOS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "fault/fault.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/stream.h"
#include "trace/trace.h"

namespace harmony::fault {

/// The engine-side half of fault injection: schedules recurring faults (link
/// flaps, memory-pressure spikes) on the simulation clock, attaches stall
/// probes to streams, and wraps FlowNetwork transfers in the
/// retry-with-jittered-backoff recovery loop. Every fault and every repair is
/// published on the trace bus as a typed kFaultInjected / kFaultRecovered
/// instant, so chrome traces show the injection schedule next to the work it
/// perturbed and MetricsSink counts it into RunMetrics.
///
/// The driver is owned by the executor for the duration of one run. Recurring
/// faults re-arm themselves until the stop probe reports the run is over
/// (complete or failed), which is what lets the event queue drain.
class ChaosDriver {
 public:
  ChaosDriver(sim::Engine* engine, trace::TraceBus* bus,
              FaultInjector* injector);

  /// Recurring faults stop re-arming once this returns true.
  void SetStopProbe(std::function<bool()> probe) {
    stop_probe_ = std::move(probe);
  }
  /// Run-failure channel for unsurvivable schedules (retry budget exhausted).
  void SetFail(std::function<void(Status)> fail) { fail_ = std::move(fail); }

  /// Installs a stall probe on `stream`: each op start consults the injector
  /// and may be delayed by the plan's stall duration. The stall and its
  /// self-healing are traced against `device`.
  void AttachStreamStalls(sim::Stream* stream, int device);

  /// Arms the recurring link-flap schedule: every ~interval, a uniformly
  /// chosen link degrades to the plan's factor for the flap duration, then
  /// restores. `link_name` labels the fault in diagnostics (may be null).
  void ArmLinkFlaps(sim::FlowNetwork* flows, int num_links,
                    std::function<std::string(int)> link_name);

  /// Arms a persistent targeted link failure: at `at`, `link` permanently
  /// degrades to `factor` x its capacity — no recovery event ever follows,
  /// which is exactly the signature the health monitor keys on. The injected
  /// event carries the link id (task) and factor (bytes, ppt-encoded).
  void ArmPersistentLinkFault(sim::FlowNetwork* flows, int link, double factor,
                              TimeSec at);

  /// Arms a persistent memory shrink: at `at`, `apply(device)` permanently
  /// reserves the plan's shrink slice on the victim device (never released).
  void ArmPersistentMemShrink(int device, TimeSec at,
                              std::function<Bytes(int)> apply);

  /// Arms the recurring memory-pressure schedule. `apply` reserves the
  /// pressure slice on a device and returns the bytes stolen; `release`
  /// undoes it and returns the bytes given back. Both are runtime callbacks
  /// (Residency), keeping this layer free of runtime dependencies.
  void ArmMemoryPressure(int num_devices, std::function<Bytes(int)> apply,
                         std::function<Bytes(int)> release);

  /// A FlowNetwork transfer with transfer-failure injection and recovery:
  /// each attempt may fail per the injector; failed attempts retry after a
  /// jittered exponential backoff until the plan's retry budget is spent, at
  /// which point the run fails with a Status naming the injected fault and
  /// seed. `done` fires exactly once, when an attempt succeeds.
  void StartReliableFlow(sim::FlowNetwork* flows, std::vector<int> path,
                         Bytes bytes, int device, std::function<void()> done);

  /// One-line summary of the faults active right now ("link 3 degraded,
  /// device 1 under pressure, 2 transfers in retry") — appended to watchdog
  /// and deadlock diagnostics so a wedged chaos run names its wedge.
  std::string DescribeActive() const;

  int64_t transfers_recovered() const { return transfers_recovered_; }

 private:
  struct FlowAttempt;
  void Emit(trace::EventKind kind, FaultKind fault, int device, Bytes bytes,
            int task = -1);
  void ScheduleFlap(sim::FlowNetwork* flows, int num_links);
  void SchedulePressure(int num_devices);
  void RunFlowAttempt(std::shared_ptr<FlowAttempt> a);
  bool Stopped() const { return stop_probe_ && stop_probe_(); }

  sim::Engine* engine_;
  trace::TraceBus* bus_;
  FaultInjector* injector_;
  std::function<bool()> stop_probe_;
  std::function<void(Status)> fail_;
  std::function<std::string(int)> link_name_;
  std::function<Bytes(int)> pressure_apply_, pressure_release_;

  // Active-fault bookkeeping for DescribeActive().
  std::vector<int> degraded_links_;
  std::vector<int> pressured_devices_;
  std::vector<int> failed_links_;      // persistent (never restored)
  std::vector<int> shrunk_devices_;    // persistent (never released)
  int transfers_in_retry_ = 0;
  int64_t transfers_recovered_ = 0;
};

}  // namespace harmony::fault

#endif  // HARMONY_FAULT_CHAOS_H_
