#include "fault/fault.h"

namespace harmony::fault {

namespace {

// Split-stream tags: each injection site draws from its own child stream so
// adding draws at one site never perturbs another site's schedule.
constexpr uint64_t kTransferTag = 0x7472616e73666572;  // "transfer"
constexpr uint64_t kAllocTag = 0x616c6c6f63;           // "alloc"
constexpr uint64_t kStallTag = 0x7374616c6c;           // "stall"
constexpr uint64_t kFlapTag = 0x666c6170;              // "flap"
constexpr uint64_t kPressureTag = 0x7072657373;        // "press"
constexpr uint64_t kBackoffTag = 0x6261636b6f6666;     // "backoff"

std::string Trimmed(double v) {
  std::string s = std::to_string(v);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransferFailure: return "transfer-failure";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kMemPressure: return "mem-pressure";
    case FaultKind::kAllocFailure: return "alloc-failure";
    case FaultKind::kStreamStall: return "stream-stall";
  }
  return "?";
}

bool FaultPlan::Any() const {
  return enabled &&
         (transfer_failure_rate > 0.0 || link_flap_interval > 0.0 ||
          mem_pressure_interval > 0.0 || alloc_failure_rate > 0.0 ||
          stream_stall_rate > 0.0 || HasPersistent());
}

bool FaultPlan::HasPersistent() const {
  return enabled &&
         ((link_fail_at > 0.0 && link_fail_link >= 0) ||
          (mem_shrink_at > 0.0 && mem_shrink_device >= 0 &&
           mem_shrink_fraction > 0.0));
}

FaultPlan FaultPlan::WithoutPersistent() const {
  FaultPlan p = *this;
  p.link_fail_at = 0.0;
  p.link_fail_link = -1;
  p.mem_shrink_at = 0.0;
  p.mem_shrink_device = -1;
  p.mem_shrink_fraction = 0.0;
  return p;
}

std::string FaultPlan::Describe() const {
  if (!enabled) return "faults disabled";
  std::string s = "seed=" + std::to_string(seed);
  if (transfer_failure_rate > 0.0) {
    s += " transfer-failure=" + Trimmed(transfer_failure_rate);
  }
  if (link_flap_interval > 0.0) {
    s += " link-flap=" + Trimmed(link_flap_interval) + "s/x" +
         Trimmed(link_degrade_factor);
  }
  if (mem_pressure_interval > 0.0) {
    s += " mem-pressure=" + Trimmed(mem_pressure_interval) + "s/" +
         Trimmed(mem_pressure_fraction);
  }
  if (alloc_failure_rate > 0.0) {
    s += " alloc-failure=" + Trimmed(alloc_failure_rate);
  }
  if (stream_stall_rate > 0.0) {
    s += " stream-stall=" + Trimmed(stream_stall_rate) + "/" +
         Trimmed(stream_stall_duration) + "s";
  }
  if (link_fail_at > 0.0 && link_fail_link >= 0) {
    s += " link-fail=link" + std::to_string(link_fail_link) + "@" +
         Trimmed(link_fail_at) + "s/x" + Trimmed(link_fail_factor);
  }
  if (mem_shrink_at > 0.0 && mem_shrink_device >= 0 &&
      mem_shrink_fraction > 0.0) {
    s += " mem-shrink=gpu" + std::to_string(mem_shrink_device) + "@" +
         Trimmed(mem_shrink_at) + "s/" + Trimmed(mem_shrink_fraction);
  }
  return s;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      transfer_rng_(Rng(plan.seed).Split(kTransferTag)),
      alloc_rng_(Rng(plan.seed).Split(kAllocTag)),
      stall_rng_(Rng(plan.seed).Split(kStallTag)),
      flap_rng_(Rng(plan.seed).Split(kFlapTag)),
      pressure_rng_(Rng(plan.seed).Split(kPressureTag)),
      backoff_rng_(Rng(plan.seed).Split(kBackoffTag)) {}

bool FaultInjector::TransferFails() {
  if (plan_.transfer_failure_rate <= 0.0) return false;
  const bool fails = transfer_rng_.NextDouble() < plan_.transfer_failure_rate;
  if (fails) ++transfer_failures_;
  return fails;
}

bool FaultInjector::AllocFails() {
  if (plan_.alloc_failure_rate <= 0.0) return false;
  const bool fails = alloc_rng_.NextDouble() < plan_.alloc_failure_rate;
  if (fails) ++alloc_failures_;
  return fails;
}

TimeSec FaultInjector::StreamStall() {
  if (plan_.stream_stall_rate <= 0.0 || plan_.stream_stall_duration <= 0.0) {
    return 0.0;
  }
  if (stall_rng_.NextDouble() >= plan_.stream_stall_rate) return 0.0;
  ++stream_stalls_;
  return plan_.stream_stall_duration;
}

TimeSec FaultInjector::NextFlapDelay() {
  return plan_.link_flap_interval * (0.5 + flap_rng_.NextDouble());
}

TimeSec FaultInjector::NextPressureDelay() {
  return plan_.mem_pressure_interval * (0.5 + pressure_rng_.NextDouble());
}

int FaultInjector::PickLink(int num_links) {
  return static_cast<int>(
      flap_rng_.NextBounded(static_cast<uint64_t>(num_links)));
}

int FaultInjector::PickDevice(int num_devices) {
  return static_cast<int>(
      pressure_rng_.NextBounded(static_cast<uint64_t>(num_devices)));
}

TimeSec FaultInjector::BackoffDelay(int attempt) {
  return plan_.backoff.DelayFor(attempt, &backoff_rng_);
}

}  // namespace harmony::fault
