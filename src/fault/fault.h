#ifndef HARMONY_FAULT_FAULT_H_
#define HARMONY_FAULT_FAULT_H_

#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "common/rng.h"
#include "common/units.h"

namespace harmony::fault {

/// The fault taxonomy the chaos layer can inject. Each kind maps to one
/// failure mode of a real commodity server running at the ragged edge of GPU
/// memory capacity (the regime Harmony targets), and each is paired with a
/// recovery policy in the runtime so faults change *time, not results*.
enum class FaultKind : uint8_t {
  kTransferFailure,  // a host<->GPU / p2p transfer attempt fails outright
  kLinkDegrade,      // a PCIe/NVLink link flaps down to a fraction of its bw
  kMemPressure,      // a co-tenant steals a slice of a GPU's memory capacity
  kAllocFailure,     // a device allocation transiently fails (fragmentation)
  kStreamStall,      // a stream wedges for a while before starting its next op
};

const char* FaultKindName(FaultKind kind);

/// Link-degrade trace encoding: a kFaultInjected event for kLinkDegrade
/// carries the link id in Event::task and the capacity factor in
/// Event::bytes as integer parts-per-trillion. Doubles with <= 12
/// significant digits (every factor a plan can carry) round-trip exactly,
/// so a health monitor can reconstruct the precise degraded capacity from
/// the trace alone. The matching kFaultRecovered keeps bytes = 0 —
/// MetricsSink folds recovered bytes into recovery_bytes, which must stay
/// untouched by link events.
inline int64_t EncodeFactorPpt(double factor) {
  return static_cast<int64_t>(factor * 1e12 + (factor >= 0 ? 0.5 : -0.5));
}
inline double DecodeFactorPpt(int64_t ppt) {
  return static_cast<double>(ppt) / 1e12;
}

/// Everything a chaos run injects, replayable from `seed` alone. All decision
/// draws (which transfer fails, which link flaps, backoff jitter) come from
/// independent child streams of one seeded Rng, and all fault timing lives in
/// simulated time — so a schedule is a pure function of (plan, workload) and
/// any run reproduces bit-identically from its printed seed.
///
/// A default-constructed plan is inert: `enabled` is false and every rate and
/// interval is zero, so the runtime pays one branch per potential injection
/// site and nothing else.
struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 0;

  // --- transfer failures (recovered by jittered-backoff retry) -------------
  double transfer_failure_rate = 0.0;  // P(a transfer attempt fails)
  int max_transfer_retries = 8;        // fatal after this many failed attempts

  // --- link degradation / flaps (self-healing after duration) --------------
  TimeSec link_flap_interval = 0.0;  // mean seconds between flaps; 0 = off
  TimeSec link_flap_duration = 0.0;  // seconds a flapped link stays degraded
  double link_degrade_factor = 0.25; // capacity multiplier while degraded

  // --- memory-capacity pressure (recovered by emergency eviction) ----------
  TimeSec mem_pressure_interval = 0.0;  // mean seconds between spikes; 0 = off
  TimeSec mem_pressure_duration = 0.0;  // seconds a spike lasts
  double mem_pressure_fraction = 0.0;   // fraction of capacity stolen

  // --- transient allocation failures (recovered by backoff retry) ----------
  double alloc_failure_rate = 0.0;  // P(a grantable allocation fails anyway)
  int max_alloc_retries = 8;

  // --- stream stalls (self-healing; watchdog catches permanent ones) -------
  double stream_stall_rate = 0.0;     // P(an op start is delayed)
  TimeSec stream_stall_duration = 0.0;

  // --- persistent, targeted degradations (NOT self-healing) ----------------
  // The machine changes and stays changed: a link drops to a fraction of its
  // bandwidth, a co-tenant permanently claims a slice of a GPU. These are the
  // faults the adapt layer's health monitor is built to catch — a flap heals
  // itself, a persistent degradation needs a re-plan. Timing is simulated and
  // explicit (no RNG draws), so the injection replays bit-for-bit and the
  // synthesized degraded MachineSpec is an exact function of the plan.
  TimeSec link_fail_at = 0.0;        // inject time; 0 = off
  int link_fail_link = -1;           // Interconnect link id (machine layout)
  double link_fail_factor = 0.25;    // permanent capacity multiplier
  TimeSec mem_shrink_at = 0.0;       // inject time; 0 = off
  int mem_shrink_device = -1;        // victim GPU
  double mem_shrink_fraction = 0.0;  // fraction of capacity permanently lost

  // Shared retry policy for transfer and allocation recovery, in simulated
  // seconds. Jitter draws come from the plan's seed.
  common::BackoffPolicy backoff;

  /// True when any fault kind is armed (enabled and at least one rate or
  /// interval is positive, or a persistent degradation is scheduled).
  bool Any() const;

  /// True when a persistent targeted degradation is scheduled.
  bool HasPersistent() const;

  /// A copy with the persistent degradations cleared. The adapt layer strips
  /// a fault from the plan once its effect is baked into the degraded
  /// MachineSpec — injecting it again would double-count the damage.
  FaultPlan WithoutPersistent() const;

  /// One-line human description, e.g. for the chaos harness banner and for
  /// Status messages naming the injected fault ("seed=42 transfer=0.05 ...").
  std::string Describe() const;
};

/// The seeded decision oracle: every injection site asks the injector whether
/// (and how hard) to fail, and every answer is drawn from a site-specific
/// child stream of the plan's seed. The injector holds no engine or runtime
/// references — it is pure decisions plus counters — so it can be exercised
/// standalone in tests and shared by the sim- and runtime-side drivers.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Should this transfer attempt fail? (counts when true)
  bool TransferFails();
  /// Should this allocation grant transiently fail? (counts when true)
  bool AllocFails();
  /// Stall before the next stream op: 0 almost always, else the plan's stall
  /// duration. (counts when positive)
  TimeSec StreamStall();

  /// Jittered inter-arrival delay until the next link flap / pressure spike
  /// (uniform in [0.5, 1.5] x the plan's mean interval).
  TimeSec NextFlapDelay();
  TimeSec NextPressureDelay();
  /// Uniform victim pick for a flap / pressure spike.
  int PickLink(int num_links);
  int PickDevice(int num_devices);

  /// Bump the flap / pressure counters when the driver actually injects one
  /// (the delay draws above also precede the first injection, so they cannot
  /// count).
  void RecordFlap() { ++link_flaps_; }
  void RecordPressure() { ++pressure_spikes_; }

  /// Backoff delay (simulated seconds) before retry number `attempt`,
  /// jittered from the plan's seed.
  TimeSec BackoffDelay(int attempt);

  // Injection counters, for diagnostics and the chaos harness.
  int64_t transfer_failures() const { return transfer_failures_; }
  int64_t alloc_failures() const { return alloc_failures_; }
  int64_t stream_stalls() const { return stream_stalls_; }
  int64_t link_flaps() const { return link_flaps_; }
  int64_t pressure_spikes() const { return pressure_spikes_; }

 private:
  FaultPlan plan_;
  Rng transfer_rng_, alloc_rng_, stall_rng_, flap_rng_, pressure_rng_,
      backoff_rng_;
  int64_t transfer_failures_ = 0;
  int64_t alloc_failures_ = 0;
  int64_t stream_stalls_ = 0;
  int64_t link_flaps_ = 0;
  int64_t pressure_spikes_ = 0;
};

}  // namespace harmony::fault

#endif  // HARMONY_FAULT_FAULT_H_
