#ifndef HARMONY_COMMON_LOGGING_H_
#define HARMONY_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace harmony {
namespace internal_logging {

enum class Severity { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink. Fatal messages abort the process on destruction.
/// Used through the HARMONY_LOG / HARMONY_CHECK macros below; not part of the
/// public API surface.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

/// Controls the minimum severity printed to stderr (default: kWarning, so tests
/// and benches stay quiet). Fatal always prints and aborts.
void SetMinLogSeverity(Severity severity);
Severity MinLogSeverity();

}  // namespace internal_logging
}  // namespace harmony

#define HARMONY_LOG(severity)                                               \
  ::harmony::internal_logging::LogMessage(                                  \
      ::harmony::internal_logging::Severity::k##severity, __FILE__, __LINE__)

/// CHECK-style invariant assertion: always on, aborts with a message on failure.
/// Use for programmer errors / broken invariants (this codebase does not use
/// exceptions); recoverable conditions use Status instead.
#define HARMONY_CHECK(condition)                                   \
  if (!(condition))                                                \
  HARMONY_LOG(Fatal) << "Check failed: " #condition " "

#define HARMONY_CHECK_OP(lhs, op, rhs)                                      \
  if (!((lhs)op(rhs)))                                                      \
  HARMONY_LOG(Fatal) << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs) \
                     << " vs " << (rhs) << ") "

#define HARMONY_CHECK_EQ(lhs, rhs) HARMONY_CHECK_OP(lhs, ==, rhs)
#define HARMONY_CHECK_NE(lhs, rhs) HARMONY_CHECK_OP(lhs, !=, rhs)
#define HARMONY_CHECK_LT(lhs, rhs) HARMONY_CHECK_OP(lhs, <, rhs)
#define HARMONY_CHECK_LE(lhs, rhs) HARMONY_CHECK_OP(lhs, <=, rhs)
#define HARMONY_CHECK_GT(lhs, rhs) HARMONY_CHECK_OP(lhs, >, rhs)
#define HARMONY_CHECK_GE(lhs, rhs) HARMONY_CHECK_OP(lhs, >=, rhs)

/// Debug-only CHECK: aborts in debug builds, compiles to dead code (the
/// condition is type-checked but never evaluated) under NDEBUG. Use on hot
/// paths where the invariant is worth asserting but not worth a branch in
/// release builds.
#ifdef NDEBUG
#define HARMONY_DCHECK(condition) \
  while (false) HARMONY_CHECK(condition)
#define HARMONY_DCHECK_OP(lhs, op, rhs) \
  while (false) HARMONY_CHECK_OP(lhs, op, rhs)
#else
#define HARMONY_DCHECK(condition) HARMONY_CHECK(condition)
#define HARMONY_DCHECK_OP(lhs, op, rhs) HARMONY_CHECK_OP(lhs, op, rhs)
#endif

#define HARMONY_DCHECK_EQ(lhs, rhs) HARMONY_DCHECK_OP(lhs, ==, rhs)
#define HARMONY_DCHECK_NE(lhs, rhs) HARMONY_DCHECK_OP(lhs, !=, rhs)
#define HARMONY_DCHECK_LT(lhs, rhs) HARMONY_DCHECK_OP(lhs, <, rhs)
#define HARMONY_DCHECK_LE(lhs, rhs) HARMONY_DCHECK_OP(lhs, <=, rhs)
#define HARMONY_DCHECK_GT(lhs, rhs) HARMONY_DCHECK_OP(lhs, >, rhs)
#define HARMONY_DCHECK_GE(lhs, rhs) HARMONY_DCHECK_OP(lhs, >=, rhs)

#endif  // HARMONY_COMMON_LOGGING_H_
