#ifndef HARMONY_COMMON_RNG_H_
#define HARMONY_COMMON_RNG_H_

#include <cstdint>

namespace harmony {

/// Deterministic, splittable PRNG (xoshiro256** core with SplitMix64 seeding).
/// Every stochastic component in the repo (workload generation, tensor init,
/// property-test case generation) draws from an explicitly seeded Rng so runs
/// are bit-reproducible — a prerequisite for the Fig 12/19 correctness match.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over [0, 2^64).
  uint64_t NextU64();

  /// Uniform over [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextGaussian();

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and of each other.
  Rng Split(uint64_t tag);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace harmony

#endif  // HARMONY_COMMON_RNG_H_
