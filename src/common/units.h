#ifndef HARMONY_COMMON_UNITS_H_
#define HARMONY_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace harmony {

/// Simulated wall-clock time, in seconds.
using TimeSec = double;

/// Byte counts. Signed per style guide; large models reach tens of GB so 64-bit.
using Bytes = int64_t;

/// Floating point operation counts (can exceed 2^63 for full iterations).
using Flops = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Convenience constructors so call sites read like the paper ("11 GB", "16 GB/s").
constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }

/// Bandwidths are expressed in bytes per simulated second.
using BytesPerSec = double;

constexpr BytesPerSec GiBps(double n) { return n * static_cast<double>(kGiB); }

/// Formats a byte count with a human-readable suffix, e.g. "11.0 GiB".
std::string FormatBytes(Bytes bytes);

/// Formats seconds adaptively (us/ms/s), e.g. "12.3 ms".
std::string FormatTime(TimeSec seconds);

}  // namespace harmony

#endif  // HARMONY_COMMON_UNITS_H_
