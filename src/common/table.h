#ifndef HARMONY_COMMON_TABLE_H_
#define HARMONY_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace harmony {

/// Accumulates rows of strings and renders them as an aligned ASCII table or
/// as CSV. Every bench binary prints its figure/table through this so the
/// output mirrors the paper's rows/series and is machine-parseable.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with the right printf-style rendering.
  static std::string Cell(double v, int precision = 2);
  static std::string Cell(int64_t v);
  static std::string Cell(int v) { return Cell(static_cast<int64_t>(v)); }

  void PrintAscii(std::ostream* os) const;
  void PrintCsv(std::ostream* os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harmony

#endif  // HARMONY_COMMON_TABLE_H_
