#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace harmony::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<int> ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a previous daemon run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind(" + path + ")");
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    return Errno("listen(" + path + ")");
  }
  return fd;
}

Result<int> ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    return Errno("listen");
  }
  return fd;
}

Result<int> BoundPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("connect(" + path + ")");
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> Accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

namespace {

Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    // send(MSG_NOSIGNAL) rather than write(): a peer that hangs up while we
    // are mid-frame must surface as a connection error on this one
    // connection, not raise SIGPIPE and kill the whole daemon.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::NotFound("peer closed connection");
      }
      return Errno("send");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `len` bytes. `*clean_eof` is set when EOF arrives before
/// the first byte (only meaningful when nothing has been read yet).
Status ReadAll(int fd, char* data, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::NotFound("peer closed connection");
      }
      return Status::Internal("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status SendFrame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffull) {
    return Status::InvalidArgument("frame payload exceeds 4 GiB");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  HARMONY_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> RecvFrame(int fd, size_t max_payload) {
  char prefix[4];
  bool clean_eof = false;
  const Status head = ReadAll(fd, prefix, sizeof(prefix), &clean_eof);
  if (!head.ok()) return head;
  const uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
                       (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
                       (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
                       static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > max_payload) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds cap of " +
                                   std::to_string(max_payload));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    HARMONY_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, nullptr));
  }
  return payload;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace harmony::net
