#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

namespace harmony::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<int> ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a previous daemon run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind(" + path + ")");
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    return Errno("listen(" + path + ")");
  }
  return fd;
}

Result<int> ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    return Errno("listen");
  }
  return fd;
}

Result<int> BoundPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("connect(" + path + ")");
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> Accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<int> AcceptNonBlocking(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    // A connection that died between epoll and accept is the backlog's
    // problem, not ours: report it as drained-for-now so the loop re-polls.
    if (errno == ECONNABORTED) return Status::Unavailable("aborted in backlog");
    return Errno("accept4");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

void SetTcpNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<int> CreateEventFd() {
  const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) return Errno("eventfd");
  return fd;
}

void SignalEventFd(int fd) {
  const uint64_t one = 1;
  // A full counter (EAGAIN) already guarantees a pending wakeup; nothing to
  // do. EINTR retries like every other write.
  for (;;) {
    if (::write(fd, &one, sizeof(one)) >= 0 || errno != EINTR) return;
  }
}

void DrainEventFd(int fd) {
  uint64_t count;
  while (::read(fd, &count, sizeof(count)) > 0) {
  }
}

namespace {

Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    // send(MSG_NOSIGNAL) rather than write(): a peer that hangs up while we
    // are mid-frame must surface as a connection error on this one
    // connection, not raise SIGPIPE and kill the whole daemon.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::NotFound("peer closed connection");
      }
      return Errno("send");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `len` bytes. `*clean_eof` is set when EOF arrives before
/// the first byte (only meaningful when nothing has been read yet).
Status ReadAll(int fd, char* data, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::NotFound("peer closed connection");
      }
      return Status::Internal("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status SendFrame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffull) {
    return Status::InvalidArgument("frame payload exceeds 4 GiB");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  HARMONY_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> RecvFrame(int fd, size_t max_payload) {
  char prefix[4];
  bool clean_eof = false;
  const Status head = ReadAll(fd, prefix, sizeof(prefix), &clean_eof);
  if (!head.ok()) return head;
  const uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
                       (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
                       (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
                       static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > max_payload) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds cap of " +
                                   std::to_string(max_payload));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    HARMONY_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, nullptr));
  }
  return payload;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Status FrameDecoder::Feed(const char* data, size_t n) {
  if (oversized_length_ > 0) {
    return Status::InvalidArgument(
        "stream poisoned by an oversized frame of " +
        std::to_string(oversized_length_) + " bytes");
  }
  while (n > 0) {
    if (!expecting_payload_) {
      const size_t take = std::min(n, sizeof(prefix_) - prefix_filled_);
      std::memcpy(prefix_ + prefix_filled_, data, take);
      prefix_filled_ += take;
      data += take;
      n -= take;
      if (prefix_filled_ < sizeof(prefix_)) return Status::Ok();
      const uint64_t len = (static_cast<uint64_t>(prefix_[0]) << 24) |
                           (static_cast<uint64_t>(prefix_[1]) << 16) |
                           (static_cast<uint64_t>(prefix_[2]) << 8) |
                           static_cast<uint64_t>(prefix_[3]);
      if (len > max_payload_) {
        // Reject before reserving a byte of payload: a hostile prefix must
        // not be able to size an allocation.
        oversized_length_ = len;
        prefix_filled_ = 0;
        return Status::InvalidArgument(
            "frame of " + std::to_string(len) + " bytes exceeds cap of " +
            std::to_string(max_payload_));
      }
      expecting_payload_ = true;
      expected_len_ = static_cast<size_t>(len);
      payload_.clear();
      payload_.reserve(expected_len_);
    }
    const size_t take = std::min(n, expected_len_ - payload_.size());
    payload_.append(data, take);
    data += take;
    n -= take;
    if (payload_.size() == expected_len_) {
      frames_.push_back(std::move(payload_));
      payload_.clear();
      expecting_payload_ = false;
      prefix_filled_ = 0;
    }
  }
  return Status::Ok();
}

std::string FrameDecoder::PopFrame() {
  std::string frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void FrameWriter::QueueFrame(std::string_view payload) {
  // Compact once the consumed prefix dominates, so a long-lived connection's
  // buffer doesn't grow monotonically with traffic ever sent.
  if (offset_ > 4096 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const char prefix[4] = {
      static_cast<char>(len >> 24), static_cast<char>(len >> 16),
      static_cast<char>(len >> 8), static_cast<char>(len)};
  buffer_.append(prefix, sizeof(prefix));
  buffer_.append(payload.data(), payload.size());
}

Status FrameWriter::Flush(int fd) {
  while (offset_ < buffer_.size()) {
    const ssize_t n = ::send(fd, buffer_.data() + offset_,
                             buffer_.size() - offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::NotFound("peer closed connection");
      }
      return Errno("send");
    }
    offset_ += static_cast<size_t>(n);
  }
  buffer_.clear();
  offset_ = 0;
  return Status::Ok();
}

}  // namespace harmony::net
