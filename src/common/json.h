#ifndef HARMONY_COMMON_JSON_H_
#define HARMONY_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace harmony::json {

/// A small JSON document model built for the serving layer's wire format.
/// Two properties matter more than generality:
///
///  * **Canonical output.** `Dump()` emits no whitespace, keeps object keys
///    in insertion order, renders integral doubles below 2^53 as integers,
///    and renders everything else with the shortest round-trip form
///    (std::to_chars). The same Value always dumps to the same bytes, on any
///    host — which is what makes FNV-1a over the dump a stable cache key.
///  * **Order-preserving objects.** Members are a flat vector of pairs, not
///    a hash map, so serialize -> parse -> serialize is byte-identical
///    (golden-tested in wire_test).
///
/// Numbers are stored as double. Every quantity in the planner fits: byte
/// counts stay far below 2^53 and bandwidths are doubles to begin with.
class Value {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static Value Int(int64_t i) { return Number(static_cast<double>(i)); }
  static Value Str(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // --- array interface -----------------------------------------------------
  size_t size() const { return items_.size(); }
  const Value& at(size_t i) const { return items_.at(i); }
  Value& Append(Value v) {
    items_.push_back(std::move(v));
    return items_.back();
  }
  const std::vector<Value>& items() const { return items_; }

  // --- object interface (insertion-ordered) --------------------------------
  Value& Set(std::string key, Value v) {
    members_.emplace_back(std::move(key), std::move(v));
    return members_.back().second;
  }
  Value& Set(std::string key, bool b) { return Set(std::move(key), Bool(b)); }
  Value& Set(std::string key, double d) { return Set(std::move(key), Number(d)); }
  Value& Set(std::string key, int64_t i) { return Set(std::move(key), Int(i)); }
  Value& Set(std::string key, int i) { return Set(std::move(key), Int(i)); }
  Value& Set(std::string key, const char* s) { return Set(std::move(key), Str(s)); }
  Value& Set(std::string key, std::string s) {
    return Set(std::move(key), Str(std::move(s)));
  }

  /// Returns the first member with `key`, or nullptr. Linear scan — wire
  /// objects have a dozen members, not thousands.
  const Value* Find(std::string_view key) const;

  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Canonical serialization (see class comment).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> items_;                             // kArray
  std::vector<std::pair<std::string, Value>> members_;   // kObject
};

/// Parses a JSON document (UTF-8 passed through uncheck-ed; \uXXXX escapes
/// outside ASCII are rejected rather than decoded — the wire format never
/// produces them). Trailing garbage after the document is an error.
Result<Value> Parse(std::string_view text);

/// 64-bit FNV-1a over a byte string; the serving layer's content-address.
uint64_t Fnv1a(std::string_view bytes);

/// Lower-case 16-digit hex rendering of a fingerprint.
std::string FingerprintHex(uint64_t fp);

// Typed field accessors: read `key` from object `obj` into `out`, failing
// with a descriptive InvalidArgument when the key is missing or mistyped.
Status ReadBool(const Value& obj, std::string_view key, bool* out);
Status ReadInt(const Value& obj, std::string_view key, int* out);
Status ReadInt64(const Value& obj, std::string_view key, int64_t* out);
Status ReadDouble(const Value& obj, std::string_view key, double* out);
Status ReadString(const Value& obj, std::string_view key, std::string* out);

}  // namespace harmony::json

#endif  // HARMONY_COMMON_JSON_H_
