#ifndef HARMONY_COMMON_SOCKET_H_
#define HARMONY_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace harmony::net {

/// Thin POSIX socket helpers for the serving layer: Unix-domain or loopback
/// TCP listeners, blocking connects, and a length-prefixed frame transport.
///
/// Frame format (DESIGN.md §9): a 4-byte big-endian unsigned payload length
/// followed by that many bytes of UTF-8 JSON. Big-endian so a hexdump reads
/// naturally; 4 bytes bounds a frame at 4 GiB, and `RecvFrame` enforces a
/// far smaller application cap so a corrupt or hostile peer can't balloon
/// the daemon's memory.

/// Creates, binds and listens on a Unix-domain socket at `path`, unlinking
/// any stale socket file first. Returns the listening fd.
Result<int> ListenUnix(const std::string& path);

/// Listens on loopback TCP `port` (0 picks a free port; use BoundPort to
/// discover it). SO_REUSEADDR is set for fast daemon restarts.
Result<int> ListenTcp(int port);

/// Port a TCP listener actually bound (for ListenTcp(0)).
Result<int> BoundPort(int listen_fd);

Result<int> ConnectUnix(const std::string& path);
Result<int> ConnectTcp(const std::string& host, int port);

/// Accepts one connection; blocks. Returns the connection fd.
Result<int> Accept(int listen_fd);

/// Writes one frame (length prefix + payload), looping over partial writes.
Status SendFrame(int fd, std::string_view payload);

/// Reads one frame. Returns NotFound on clean EOF before any byte of the
/// length prefix (the peer hung up between frames — the daemon's normal
/// end-of-connection), InvalidArgument for oversized frames, Internal for
/// I/O errors or mid-frame EOF.
Result<std::string> RecvFrame(int fd, size_t max_payload = 64ull << 20);

/// close(2) wrapper, ignoring EINTR/EBADF noise.
void CloseFd(int fd);

}  // namespace harmony::net

#endif  // HARMONY_COMMON_SOCKET_H_
