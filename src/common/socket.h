#ifndef HARMONY_COMMON_SOCKET_H_
#define HARMONY_COMMON_SOCKET_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/status.h"

namespace harmony::net {

/// Thin POSIX socket helpers for the serving layer: Unix-domain or loopback
/// TCP listeners, blocking connects, and a length-prefixed frame transport.
///
/// Frame format (DESIGN.md §9): a 4-byte big-endian unsigned payload length
/// followed by that many bytes of UTF-8 JSON. Big-endian so a hexdump reads
/// naturally; 4 bytes bounds a frame at 4 GiB, and `RecvFrame` enforces a
/// far smaller application cap so a corrupt or hostile peer can't balloon
/// the daemon's memory.

/// Creates, binds and listens on a Unix-domain socket at `path`, unlinking
/// any stale socket file first. Returns the listening fd.
Result<int> ListenUnix(const std::string& path);

/// Listens on loopback TCP `port` (0 picks a free port; use BoundPort to
/// discover it). SO_REUSEADDR is set for fast daemon restarts.
Result<int> ListenTcp(int port);

/// Port a TCP listener actually bound (for ListenTcp(0)).
Result<int> BoundPort(int listen_fd);

Result<int> ConnectUnix(const std::string& path);
Result<int> ConnectTcp(const std::string& host, int port);

/// Accepts one connection; blocks. Returns the connection fd.
Result<int> Accept(int listen_fd);

/// Accepts one connection without blocking; the returned fd is already
/// non-blocking and close-on-exec (accept4). Returns Unavailable when no
/// connection is pending (EAGAIN) — the reactor's "drained the backlog"
/// signal, not an error.
Result<int> AcceptNonBlocking(int listen_fd);

/// Puts an fd into non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Disables Nagle on a TCP connection fd (no-op errors ignored for Unix
/// sockets): pipelined sub-frame writes must not wait for ACK coalescing.
void SetTcpNoDelay(int fd);

/// eventfd(2) wrappers for cross-thread loop wakeups: worker threads call
/// SignalEventFd after posting a completion, the owning event loop has the
/// fd in its epoll set and DrainEventFd's it on wakeup.
Result<int> CreateEventFd();
void SignalEventFd(int fd);
void DrainEventFd(int fd);

/// Writes one frame (length prefix + payload), looping over partial writes.
Status SendFrame(int fd, std::string_view payload);

/// Reads one frame. Returns NotFound on clean EOF before any byte of the
/// length prefix (the peer hung up between frames — the daemon's normal
/// end-of-connection), InvalidArgument for oversized frames, Internal for
/// I/O errors or mid-frame EOF.
Result<std::string> RecvFrame(int fd, size_t max_payload = 64ull << 20);

/// close(2) wrapper, ignoring EINTR/EBADF noise.
void CloseFd(int fd);

/// Incremental decoder for the length-prefixed frame transport: feed it
/// whatever byte run a non-blocking read produced — a length prefix split at
/// any byte, a payload spread over many reads, several frames in one read —
/// and pop complete frames in arrival order. The framing is
/// self-synchronizing, so a frame whose *payload* turns out to be garbage
/// does not desynchronize the stream; only an oversized length prefix does.
///
/// An oversized frame (declared length > max_payload) is rejected the moment
/// its prefix completes — none of its payload is ever buffered — and the
/// decoder poisons itself: every later Feed returns the same InvalidArgument,
/// because the remaining byte stream can no longer be framed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = 64ull << 20)
      : max_payload_(max_payload) {}

  /// Consumes `n` bytes from the transport. InvalidArgument on an oversized
  /// declared length (see above); Ok otherwise.
  Status Feed(const char* data, size_t n);

  bool HasFrame() const { return !frames_.empty(); }
  /// Next complete frame payload, in arrival order. HasFrame() must be true.
  std::string PopFrame();

  /// True between the first byte of a frame (prefix or payload) arriving and
  /// its last — the state a slow-loris peer parks a connection in, and what a
  /// partial-frame deadline therefore watches.
  bool mid_frame() const { return prefix_filled_ > 0 || expecting_payload_; }

  /// Declared length of the frame that poisoned the decoder (0 otherwise).
  uint64_t oversized_length() const { return oversized_length_; }

  /// Bytes buffered for the partially received frame (not yet poppable).
  size_t partial_bytes() const { return prefix_filled_ + payload_.size(); }

 private:
  size_t max_payload_;
  unsigned char prefix_[4] = {0, 0, 0, 0};
  size_t prefix_filled_ = 0;
  bool expecting_payload_ = false;
  size_t expected_len_ = 0;
  std::string payload_;
  std::deque<std::string> frames_;
  uint64_t oversized_length_ = 0;
};

/// Buffered non-blocking frame writer: queue whole frames (prefix + payload
/// copied into one output buffer), then Flush until the kernel stops taking
/// bytes. The reactor arms EPOLLOUT exactly while pending_bytes() > 0.
class FrameWriter {
 public:
  /// Appends one frame to the output buffer (payload must be < 4 GiB,
  /// which RecvFrame/FrameDecoder enforce on the peer side anyway).
  void QueueFrame(std::string_view payload);

  /// Writes as much buffered output as the socket accepts right now.
  /// Ok + pending_bytes()==0 when drained; Ok + pending_bytes()>0 on EAGAIN
  /// (re-arm EPOLLOUT); NotFound when the peer closed (EPIPE/ECONNRESET).
  Status Flush(int fd);

  size_t pending_bytes() const { return buffer_.size() - offset_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;  // bytes of buffer_ already written
};

}  // namespace harmony::net

#endif  // HARMONY_COMMON_SOCKET_H_
