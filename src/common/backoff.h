#ifndef HARMONY_COMMON_BACKOFF_H_
#define HARMONY_COMMON_BACKOFF_H_

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"

namespace harmony::common {

/// Jittered exponential backoff, shared by every retry site in the repo: the
/// fault layer's transfer/alloc retries (simulated time) and the serve
/// client's ResourceExhausted retries (wall-clock time). The delay for
/// attempt k is `initial * multiplier^k`, capped at `max_delay`, then
/// scattered by full jitter: uniform in [(1-jitter)*d, d]. Jitter draws come
/// from an explicitly seeded Rng so simulated retries replay bit-identically
/// from the chaos seed; pass nullptr to skip jitter entirely.
struct BackoffPolicy {
  TimeSec initial = 1e-3;
  TimeSec max_delay = 1.0;
  double multiplier = 2.0;
  double jitter = 0.5;  // fraction of the delay randomized away, in [0, 1]

  /// Delay before retry number `attempt` (0 = first retry).
  TimeSec DelayFor(int attempt, Rng* rng) const {
    TimeSec d = initial;
    for (int i = 0; i < attempt && d < max_delay; ++i) d *= multiplier;
    d = std::min(d, max_delay);
    if (rng != nullptr && jitter > 0.0) {
      d *= 1.0 - jitter * rng->NextDouble();
    }
    return d;
  }
};

/// Shared retry policies. Retry sites across layers used to duplicate these
/// constants inline; naming them here keeps the serve client, the cluster
/// tier, and any future retrier honest about using the same shape.
///
/// Wall-clock plan retries (serve client, tier client): start at 50ms — a
/// shed server's retry-after hints are in this range — and cap at 2s so a
/// bounded retry budget stays interactive.
inline constexpr BackoffPolicy kPlanRetryBackoff{/*initial=*/0.05,
                                                 /*max_delay=*/2.0,
                                                 /*multiplier=*/2.0,
                                                 /*jitter=*/0.5};

/// Peer-fetch retries inside the cluster tier: tighter (20ms..500ms) because
/// a peer fill is an optimization — if the peer dawdles, searching locally is
/// the better spend.
inline constexpr BackoffPolicy kPeerFetchBackoff{/*initial=*/0.02,
                                                 /*max_delay=*/0.5,
                                                 /*multiplier=*/2.0,
                                                 /*jitter=*/0.5};

}  // namespace harmony::common

#endif  // HARMONY_COMMON_BACKOFF_H_
