#include "common/logging.h"
#include "common/regression.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <numeric>
#include <sstream>

namespace harmony {

// ---------------------------------------------------------------------------
// units
// ---------------------------------------------------------------------------

std::string FormatBytes(Bytes bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (std::llabs(bytes) >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (std::llabs(bytes) >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (std::llabs(bytes) >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatTime(TimeSec seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------------

namespace internal_logging {
namespace {
Severity g_min_severity = Severity::kWarning;

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "INFO";
    case Severity::kWarning: return "WARNING";
    case Severity::kError: return "ERROR";
    case Severity::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(Severity severity) { g_min_severity = severity; }
Severity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == Severity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

// ---------------------------------------------------------------------------
// status
// ---------------------------------------------------------------------------

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HARMONY_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  HARMONY_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Split(uint64_t tag) {
  return Rng(NextU64() ^ (tag * 0x9e3779b97f4a7c15ULL));
}

// ---------------------------------------------------------------------------
// regression
// ---------------------------------------------------------------------------

LinearRegression LinearRegression::Fit(const std::vector<double>& x,
                                       const std::vector<double>& y) {
  HARMONY_CHECK_EQ(x.size(), y.size());
  HARMONY_CHECK(!x.empty());
  LinearRegression fit;
  const double n = static_cast<double>(x.size());
  const double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    fit.slope_ = 0.0;
    fit.intercept_ = mean_y;
    fit.r_squared_ = 1.0;
    return fit;
  }
  fit.slope_ = sxy / sxx;
  fit.intercept_ = mean_y - fit.slope_ * mean_x;
  if (syy <= 0.0) {
    fit.r_squared_ = 1.0;
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept_ + fit.slope_ * x[i]);
      ss_res += e * e;
    }
    fit.r_squared_ = 1.0 - ss_res / syy;
  }
  return fit;
}

double LinearRegression::Predict(double x) const {
  return std::max(0.0, intercept_ + slope_ * x);
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  HARMONY_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Cell(int64_t v) { return std::to_string(v); }

void Table::PrintAscii(std::ostream* os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      *os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << std::left << row[c];
    }
    *os << " |\n";
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    *os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  *os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream* os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) *os << ",";
      *os << row[c];
    }
    *os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace harmony
