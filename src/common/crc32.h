#ifndef HARMONY_COMMON_CRC32_H_
#define HARMONY_COMMON_CRC32_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace harmony::common {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte string.
/// Used by cluster::DiskStore to validate persisted plan envelopes: a torn
/// or bit-rotted cache file must degrade to a miss, never to a wrong plan.
/// Header-only; the table is built once at static-init time.
inline uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace harmony::common

#endif  // HARMONY_COMMON_CRC32_H_
