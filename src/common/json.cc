#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace harmony::json {

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; the planner never produces them, but a canonical
    // fallback beats undefined bytes.
    *out += "null";
    return;
  }
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) < kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;  // 64 bytes always suffice for shortest round-trip doubles
  out->append(buf, ptr);
}

}  // namespace

void Value::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  out.reserve(256);
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser. Depth-capped so hostile input can't blow the
/// stack of a daemon thread.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWs();
    Value v;
    HARMONY_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(Context("trailing characters"));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string Context(const std::string& what) const {
    return "json: " + what + " at offset " + std::to_string(pos_);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument(Context("nesting too deep"));
    if (pos_ >= text_.size()) return Status::InvalidArgument(Context("unexpected end"));
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        HARMONY_RETURN_IF_ERROR(ParseString(&s));
        *out = Value::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = Value::Bool(true);
          return Status::Ok();
        }
        return Status::InvalidArgument(Context("bad literal"));
      case 'f':
        if (ConsumeWord("false")) {
          *out = Value::Bool(false);
          return Status::Ok();
        }
        return Status::InvalidArgument(Context("bad literal"));
      case 'n':
        if (ConsumeWord("null")) {
          *out = Value::Null();
          return Status::Ok();
        }
        return Status::InvalidArgument(Context("bad literal"));
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    Consume('{');
    *out = Value::Object();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      std::string key;
      HARMONY_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Status::InvalidArgument(Context("expected ':'"));
      SkipWs();
      Value v;
      HARMONY_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Status::InvalidArgument(Context("expected ',' or '}'"));
    }
  }

  Status ParseArray(Value* out, int depth) {
    Consume('[');
    *out = Value::Array();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      SkipWs();
      Value v;
      HARMONY_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Status::InvalidArgument(Context("expected ',' or ']'"));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument(Context("expected string"));
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument(Context("truncated \\u escape"));
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument(Context("bad \\u escape"));
          }
          if (code > 0x7f) {
            return Status::InvalidArgument(
                Context("non-ASCII \\u escape unsupported"));
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument(Context("bad escape"));
      }
    }
    return Status::InvalidArgument(Context("unterminated string"));
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&]() {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return Status::InvalidArgument(Context("expected value"));
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument(Context("bad number"));
    }
    *out = Value::Number(d);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

std::string FingerprintHex(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

namespace {
Status MissingOrMistyped(std::string_view key, const char* want) {
  return Status::InvalidArgument("json: field '" + std::string(key) +
                                 "' missing or not a " + want);
}
}  // namespace

Status ReadBool(const Value& obj, std::string_view key, bool* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_bool()) return MissingOrMistyped(key, "bool");
  *out = v->AsBool();
  return Status::Ok();
}

Status ReadInt(const Value& obj, std::string_view key, int* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return MissingOrMistyped(key, "number");
  *out = static_cast<int>(v->AsInt());
  return Status::Ok();
}

Status ReadInt64(const Value& obj, std::string_view key, int64_t* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return MissingOrMistyped(key, "number");
  *out = v->AsInt();
  return Status::Ok();
}

Status ReadDouble(const Value& obj, std::string_view key, double* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return MissingOrMistyped(key, "number");
  *out = v->AsDouble();
  return Status::Ok();
}

Status ReadString(const Value& obj, std::string_view key, std::string* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) return MissingOrMistyped(key, "string");
  *out = v->AsString();
  return Status::Ok();
}

}  // namespace harmony::json
