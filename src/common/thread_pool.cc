#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::common {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  // All callers funnel through join_mu_: the first joins the workers, later
  // (or concurrent) callers block here until that join finished, so *every*
  // Shutdown return means "queue drained, workers gone".
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      // Drain pending tasks even when shutting down, so every future from
      // Submit is satisfied before the destructor returns.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace harmony::common
