#ifndef HARMONY_COMMON_CANCEL_H_
#define HARMONY_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

namespace harmony::common {

/// Cooperative cancellation for long-running planner work. A token is armed
/// either explicitly (`Cancel()`, e.g. service shutdown) or implicitly by a
/// deadline; workers poll `Cancelled()` at natural safepoints (the search
/// checks between candidate evaluations) and unwind with a Cancelled status.
///
/// Thread-safe: any thread may call `Cancel()` while workers poll. The flag
/// uses relaxed ordering — cancellation is advisory, a worker that misses one
/// poll simply cancels at the next — but a worker that *does* observe it can
/// rely on it staying set (the flag is never cleared).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms a wall-clock deadline; `Cancelled()` turns true once it passes.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds delay) {
    SetDeadline(Clock::now() + delay);
  }

  /// Trips the token. Returns true iff this call was the first to trip it —
  /// the "first tripper" contract lets an escalating watchdog distinguish "I
  /// am cancelling a wedged run" (report the wedge) from "someone already
  /// cancelled gracefully" (report plain cancellation, no wedge diagnostics).
  bool Cancel() { return !cancelled_.exchange(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && Clock::now().time_since_epoch().count() >= d;
  }

  /// The armed deadline as a steady-clock time_since_epoch count, 0 when no
  /// deadline is set — lets callers compare deadlines across tokens (e.g.
  /// single-flight coalescing only attaches to an equal-or-later deadline).
  int64_t deadline_count() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  /// True when the token tripped because the deadline passed (vs an explicit
  /// Cancel) — lets callers report DeadlineExceeded instead of Cancelled.
  bool DeadlinePassed() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && Clock::now().time_since_epoch().count() >= d;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
};

}  // namespace harmony::common

#endif  // HARMONY_COMMON_CANCEL_H_
