#ifndef HARMONY_COMMON_THREAD_POOL_H_
#define HARMONY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace harmony::common {

/// A fixed-size worker pool with a shared FIFO task queue. Built for the
/// Scheduler's parallel configuration search (many independent, CPU-bound
/// estimator calls), but generic: any callable can be submitted and its
/// result retrieved through the returned future.
///
/// Guarantees:
///  * `Submit` never blocks on task execution; tasks run in FIFO submission
///    order across the pool (each worker pops the oldest pending task).
///  * Deterministic shutdown: the destructor (or `Shutdown`) drains every
///    already-submitted task before joining the workers, so futures obtained
///    from `Submit` are always eventually satisfied.
///  * Thread-safe: `Submit` may be called concurrently from any thread,
///    including from inside a running task (tasks must not block on futures
///    of tasks queued behind them, the usual pool-deadlock caveat).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads` <= 0 selects the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn(args...)` and returns a future for its result.
  template <typename F, typename... Args>
  auto Submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable { return f(a...); });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Drains the queue and joins all workers. Idempotent; called by the
  /// destructor. After shutdown, `Submit` must not be called again.
  void Shutdown();

  /// Best-effort default worker count for CPU-bound work on this host.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace harmony::common

#endif  // HARMONY_COMMON_THREAD_POOL_H_
