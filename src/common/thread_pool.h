#ifndef HARMONY_COMMON_THREAD_POOL_H_
#define HARMONY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace harmony::common {

/// A fixed-size worker pool with a shared FIFO task queue. Built for the
/// Scheduler's parallel configuration search (many independent, CPU-bound
/// estimator calls), but generic: any callable can be submitted and its
/// result retrieved through the returned future.
///
/// Guarantees:
///  * `Submit` never blocks on task execution; tasks run in FIFO submission
///    order across the pool (each worker pops the oldest pending task).
///  * Deterministic shutdown: the destructor (or `Shutdown`) drains every
///    already-submitted task before joining the workers, so futures obtained
///    from `Submit` are always eventually satisfied.
///  * Thread-safe: `Submit` may be called concurrently from any thread,
///    including from inside a running task (tasks must not block on futures
///    of tasks queued behind them, the usual pool-deadlock caveat).
///  * Task exceptions propagate to the submitter: a callable that throws
///    stores the exception in its future (rethrown by `future::get()`), the
///    worker thread survives, and subsequent tasks run normally. Nothing a
///    task throws can terminate the process via the pool.
///  * Shutdown is well-defined under races: `Shutdown` is idempotent, and a
///    concurrent second caller blocks until the drain completes rather than
///    returning while workers are still running. `Submit` after (or
///    concurrent with) `Shutdown` never enqueues work that would be silently
///    dropped — it either runs normally (it won the race) or returns a
///    future carrying a `ThreadPool::ShutdownError` exception.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads` <= 0 selects the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Exception delivered through the future when a task is submitted to a
  /// pool that has already begun shutting down.
  struct ShutdownError : std::runtime_error {
    ShutdownError() : std::runtime_error("ThreadPool::Submit after Shutdown") {}
  };

  /// Enqueues `fn(args...)` and returns a future for its result. If the
  /// callable throws, the exception is captured into the future. If the pool
  /// is already shutting down, returns a future holding `ShutdownError`.
  template <typename F, typename... Args>
  auto Submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable { return f(a...); });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutting_down_) {
        std::promise<R> rejected;
        rejected.set_exception(std::make_exception_ptr(ShutdownError()));
        return rejected.get_future();
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Drains the queue and joins all workers. Idempotent and safe to race:
  /// every caller (including the destructor) returns only after the drain
  /// has completed. Subsequent `Submit` calls are rejected via the future
  /// (see ShutdownError) instead of being undefined behaviour.
  void Shutdown();

  /// Best-effort default worker count for CPU-bound work on this host.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  /// Serializes the join phase so concurrent Shutdown callers all block
  /// until the workers have actually exited (the flag alone would let the
  /// loser return early while tasks are still draining).
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace harmony::common

#endif  // HARMONY_COMMON_THREAD_POOL_H_
