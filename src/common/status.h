#ifndef HARMONY_COMMON_STATUS_H_
#define HARMONY_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace harmony {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfMemory,      // e.g. a model whose working set exceeds host memory (Fig 15)
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Serving-layer conditions (src/serve): requests can now be cancelled,
  // deadline-bounded, load-shed or refused during shutdown.
  kCancelled,          // cooperative cancellation tripped mid-search
  kDeadlineExceeded,   // per-request deadline passed
  kResourceExhausted,  // admission queue full; retry after backoff
  kUnavailable,        // service draining / shut down
};

/// Error-or-success result for recoverable conditions (no exceptions in this
/// codebase, per the Google style guide). Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Value-or-error. `value()` CHECK-fails on an error status, so call sites that
/// have already validated inputs stay terse; defensive callers test `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {      // NOLINT(runtime/explicit)
    HARMONY_CHECK(!std::get<Status>(data_).ok()) << "Result given OK status but no value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    HARMONY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    HARMONY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    HARMONY_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace harmony

#define HARMONY_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::harmony::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // HARMONY_COMMON_STATUS_H_
