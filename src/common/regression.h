#ifndef HARMONY_COMMON_REGRESSION_H_
#define HARMONY_COMMON_REGRESSION_H_

#include <vector>

namespace harmony {

/// Ordinary-least-squares fit of y = intercept + slope * x.
///
/// The Harmony Profiler (paper Sec 4.2) samples each layer at a handful of
/// microbatch sizes and interpolates the rest with "a simple regression
/// model"; this is that model. Extrapolation clamps predictions at >= 0 since
/// times/bytes are non-negative.
class LinearRegression {
 public:
  LinearRegression() = default;

  /// Fits from paired samples. Requires at least one point; with a single
  /// point the fit is the constant y0. Duplicate x values are handled (falls
  /// back to mean when x has zero variance).
  static LinearRegression Fit(const std::vector<double>& x,
                              const std::vector<double>& y);

  double Predict(double x) const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

  /// Coefficient of determination of the fit on its training points
  /// (1.0 = perfect). Used by tests to validate the paper's claim that the
  /// interpolation is "strikingly accurate" on near-linear layer costs.
  double r_squared() const { return r_squared_; }

 private:
  double slope_ = 0.0;
  double intercept_ = 0.0;
  double r_squared_ = 1.0;
};

}  // namespace harmony

#endif  // HARMONY_COMMON_REGRESSION_H_
