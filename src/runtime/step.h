#ifndef HARMONY_RUNTIME_STEP_H_
#define HARMONY_RUNTIME_STEP_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "runtime/tensor.h"

namespace harmony::runtime {

/// One tensor a step must have resident before its compute launches.
struct NeedSpec {
  TensorId id = kInvalidTensorId;
  Bytes bytes = 0;
  /// Fetch strictly from the host copy (checkpoint reads use the message-
  /// passing channel, Sec 4.4); never moves a peer GPU's copy.
  bool from_host = false;
};

/// One tensor a step allocates and writes.
struct ProduceSpec {
  TensorId id = kInvalidTensorId;
  Bytes bytes = 0;
};

/// One layer-granularity unit of GPU work, compiled from a Task. The
/// executor issues a step's fetches/allocations, runs its compute on the
/// compute stream, then applies the post actions. Tensors are referenced by
/// the dense TensorId interned at lowering time; the program's catalog maps
/// ids back to structural TensorKeys for diagnostics.
struct Step {
  int task = -1;
  TimeSec compute = 0;
  std::vector<NeedSpec> needs;
  std::vector<ProduceSpec> produces;
  std::vector<TensorId> derefs;        // consumed inputs (refcount--)
  std::vector<TensorId> copy_to_host;  // checkpoint / master write-back
  std::vector<TensorId> move_to_host;  // gradient push, optimizer state
  std::vector<TensorId> mark_dirty;
};

/// CPU-offloaded work (weight updates).
struct CpuStep {
  int task = -1;
  TimeSec duration = 0;
  std::vector<TensorId> host_needs;  // wait until a valid host copy exists
  std::vector<int> wait_tasks;       // task-completion dependencies
  std::vector<TensorId> host_frees;  // consumed host copies (gradients)
};

/// The compiled form of a TaskGraph: per-device GPU step sequences, per-
/// process CPU step sequences, the tensor catalog interning every TensorKey
/// the program touches, and the consumer reference counts (indexed by
/// TensorId) that drive tensor lifetime. Pure data — executable by the
/// simulator-backed Executor, and inspectable by tests without any
/// simulation at all.
struct StepProgram {
  std::vector<std::vector<Step>> steps;         // per device, in issue order
  std::vector<std::vector<CpuStep>> cpu_steps;  // per process, in order
  TensorCatalog tensors;
  std::vector<int> ref_counts;                  // per TensorId; consumers
  std::vector<int> task_step_counts;            // steps per task (GPU + CPU)
  /// Master weights + optimizer state permanently resident on host.
  Bytes static_host_bytes = 0;

  int64_t num_steps() const {
    int64_t n = 0;
    for (const auto& dev : steps) n += static_cast<int64_t>(dev.size());
    for (const auto& proc : cpu_steps) n += static_cast<int64_t>(proc.size());
    return n;
  }
};

/// Stable one-line renderings for golden tests and deadlock diagnostics.
/// Compute/duration times are intentionally omitted: goldens pin the
/// *structure* (keys, bytes, ordering), not the cost model. The catalog
/// resolves ids back to the key renderings the goldens were recorded with.
std::string DebugString(const Step& step, const TensorCatalog& tensors);
std::string DebugString(const CpuStep& step, const TensorCatalog& tensors);

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_STEP_H_
