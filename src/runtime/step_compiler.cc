#include "runtime/step_compiler.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"

namespace harmony::runtime {

using core::MbPiece;
using core::Task;
using core::TaskType;

StepCompiler::StepCompiler(const hw::MachineSpec& machine,
                           const model::SequentialModel& model,
                           const core::TaskGraph& graph,
                           model::Optimizer optimizer)
    : machine_(machine), model_(model), graph_(graph), cost_(machine.PlanningGpu()) {
  opt_mult_ = model::OptimizerStateBytesPerParamByte(optimizer);
}

void StepCompiler::Precompute() {
  const int R = model_.num_layers();
  boundary_bytes_.assign(R + 1, 0);
  boundary_bytes_[0] = model_.sample_input_bytes;
  stash_bytes_.assign(R, 0);
  for (int l = 0; l < R; ++l) {
    boundary_bytes_[l + 1] = model_.layers[l].boundary_out_bytes();
    stash_bytes_[l] = model_.layers[l].spec.stash_bytes_per_sample +
                      model_.layers[l].relay_bytes_per_sample;
  }

  program_.static_host_bytes = 0;
  for (const auto& layer : model_.layers) {
    program_.static_host_bytes += layer.spec.param_bytes * (1 + opt_mult_);
  }

  act_layout_.assign(graph_.num_replicas,
                     std::vector<std::vector<MbPiece>>(R + 1));
  grad_layout_.assign(graph_.num_replicas,
                      std::vector<std::vector<MbPiece>>(R + 1));
  stash_layout_.assign(graph_.num_replicas,
                       std::vector<std::vector<MbPiece>>(R));
  // Accumulate raw pieces first, then canonicalize each slot once: the
  // sort-after-every-merge variant re-sorted near-sorted vectors O(tasks)
  // times per boundary and dominated compile time on deep models.
  auto merge = [](std::vector<MbPiece>* dst, const std::vector<MbPiece>& src) {
    dst->insert(dst->end(), src.begin(), src.end());
  };
  for (const Task& t : graph_.tasks) {
    if (t.type == TaskType::kForward) {
      for (int b = t.pack.lo + 1; b <= t.pack.hi + 1; ++b) {
        merge(&act_layout_[t.replica][b], t.group);
      }
      // A layer's stash is stored by its forward task unless the policy says
      // the backward rematerializes it (fused packs have no forward task and
      // always rematerialize, so they never reach here).
      for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
        if (graph_.policy_at(l) != core::StashPolicy::kRecompute) {
          merge(&stash_layout_[t.replica][l], t.group);
        }
      }
    } else if (t.type == TaskType::kBackward) {
      grad_layout_[t.replica][t.pack.lo] = t.group;
    }
  }
  auto canonicalize = [](std::vector<std::vector<MbPiece>>& slots) {
    for (std::vector<MbPiece>& dst : slots) {
      std::sort(dst.begin(), dst.end(), [](const MbPiece& a, const MbPiece& b) {
        return a.begin < b.begin;
      });
      dst.erase(std::unique(dst.begin(), dst.end(),
                            [](const MbPiece& a, const MbPiece& b) {
                              return a.begin == b.begin;
                            }),
                dst.end());
    }
  };
  for (auto& per_replica : act_layout_) canonicalize(per_replica);
  for (auto& per_replica : stash_layout_) canonicalize(per_replica);
}

std::vector<NeedSpec> StepCompiler::BoundaryInputKeys(int boundary, int replica,
                                                      const MbPiece& piece) {
  std::vector<NeedSpec> out;
  if (boundary_bytes_[boundary] == 0) return out;
  if (boundary == 0 || act_layout_[replica][boundary].empty()) {
    // Data loader (or an unproduced boundary, which AutoCreate rejects):
    // keyed at consumer granularity.
    out.push_back(NeedSpec{
        Id(TensorKey{TensorKind::kActivation, boundary, piece.begin, replica}),
        static_cast<Bytes>(piece.size) * boundary_bytes_[boundary]});
    return out;
  }
  for (const MbPiece& p : act_layout_[replica][boundary]) {
    if (!p.Overlaps(piece)) continue;
    out.push_back(NeedSpec{
        Id(TensorKey{TensorKind::kActivation, boundary, p.begin, replica}),
        static_cast<Bytes>(p.size) * boundary_bytes_[boundary]});
  }
  HARMONY_CHECK(!out.empty()) << "no producer pieces for boundary " << boundary;
  return out;
}

std::vector<NeedSpec> StepCompiler::StashKeys(int layer, int replica,
                                              const MbPiece& piece) {
  std::vector<NeedSpec> out;
  if (stash_bytes_[layer] == 0) return out;
  HARMONY_CHECK(!stash_layout_[replica][layer].empty())
      << "backward without recompute needs stash of layer " << layer;
  // Swapped-out stash lives host-side only (the forward's move released the
  // GPU copy); consumers must pull it back through the host channel.
  const bool swapped = graph_.policy_at(layer) == core::StashPolicy::kSwap;
  for (const MbPiece& p : stash_layout_[replica][layer]) {
    if (!p.Overlaps(piece)) continue;
    NeedSpec n{Id(TensorKey{TensorKind::kStash, layer, p.begin, replica}),
               static_cast<Bytes>(p.size) * stash_bytes_[layer]};
    n.from_host = swapped;
    out.push_back(n);
  }
  return out;
}

void StepCompiler::CompileForward(const Task& t) {
  const int d = t.device;
  for (const MbPiece& piece : t.group) {
    for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
      Step s;
      s.task = t.id;
      s.compute = cost_.FwdTime(model_.layers[l].spec, piece.size);
      const Bytes params = model_.layers[l].spec.param_bytes;
      if (params > 0) {
        s.needs.push_back(
            NeedSpec{Id(TensorKey{TensorKind::kWeight, l, -1, d}), params});
      }
      if (l == t.pack.lo) {
        for (const NeedSpec& in : BoundaryInputKeys(l, t.replica, piece)) {
          s.needs.push_back(in);
          s.derefs.push_back(in.id);
        }
      } else if (boundary_bytes_[l] > 0) {
        const TensorId in =
            Id(TensorKey{TensorKind::kActivation, l, piece.begin, t.replica});
        s.needs.push_back(
            NeedSpec{in, static_cast<Bytes>(piece.size) * boundary_bytes_[l]});
        s.derefs.push_back(in);
      }
      if (boundary_bytes_[l + 1] > 0) {
        const TensorId out = Id(
            TensorKey{TensorKind::kActivation, l + 1, piece.begin, t.replica});
        s.produces.push_back(ProduceSpec{
            out, static_cast<Bytes>(piece.size) * boundary_bytes_[l + 1]});
        if (std::find(t.checkpoint_boundaries.begin(),
                      t.checkpoint_boundaries.end(),
                      l + 1) != t.checkpoint_boundaries.end()) {
          s.copy_to_host.push_back(out);
        }
      }
      const core::StashPolicy pol = graph_.policy_at(l);
      if (pol != core::StashPolicy::kRecompute && stash_bytes_[l] > 0) {
        const TensorId st =
            Id(TensorKey{TensorKind::kStash, l, piece.begin, t.replica});
        s.produces.push_back(ProduceSpec{
            st, static_cast<Bytes>(piece.size) * stash_bytes_[l]});
        if (pol == core::StashPolicy::kSwap) {
          // vDNN-style offload: release the GPU copy as soon as the move
          // lands; the backward fetches it back through the host channel.
          s.move_to_host.push_back(st);
        }
      }
      program_.steps[d].push_back(std::move(s));
    }
  }
}

void StepCompiler::CompileBackward(const Task& t) {
  const int d = t.device;
  const int R = model_.num_layers();
  // Per-layer rematerialization: a fused jit-compute task re-runs its whole
  // pack; otherwise only the layers the residency policy marked kRecompute.
  auto remat_layer = [&](int l) {
    return t.fused_forward ||
           graph_.policy_at(l) == core::StashPolicy::kRecompute;
  };
  const bool push_grads =
      graph_.flags.cpu_optimizer || graph_.grad_reduce_via_host;

  bool first_piece = true;
  for (const MbPiece& piece : t.group) {
    // Rematerialization chain (or the fused jit-compute forward): re-run the
    // forward of every remat layer, feeding each from the stash below it —
    // remat-produced (this piece's granularity) or stored (forward-piece
    // granularity) — and the pack input (checkpoint) at the pack start.
    for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
      if (!remat_layer(l)) continue;
      Step s;
      s.task = t.id;
      s.compute = cost_.FwdTime(model_.layers[l].spec, piece.size);
      const Bytes params = model_.layers[l].spec.param_bytes;
      if (params > 0) {
        s.needs.push_back(
            NeedSpec{Id(TensorKey{TensorKind::kWeight, l, -1, d}), params});
      }
      if (l == t.pack.lo) {
        for (NeedSpec in : BoundaryInputKeys(l, t.replica, piece)) {
          in.from_host = t.reads_checkpoint;  // message-passing channel
          s.needs.push_back(in);
          s.derefs.push_back(in.id);
        }
      } else if (remat_layer(l - 1)) {
        if (stash_bytes_[l - 1] > 0) {
          const TensorId in =
              Id(TensorKey{TensorKind::kStash, l - 1, piece.begin, t.replica});
          s.needs.push_back(
              NeedSpec{in, static_cast<Bytes>(piece.size) * stash_bytes_[l - 1]});
          s.derefs.push_back(in);
        }
      } else {
        // Mixed table: the remat chain restarts above a stored layer.
        for (const NeedSpec& st : StashKeys(l - 1, t.replica, piece)) {
          s.needs.push_back(st);
          s.derefs.push_back(st.id);
        }
      }
      if (stash_bytes_[l] > 0) {
        s.produces.push_back(ProduceSpec{
            Id(TensorKey{TensorKind::kStash, l, piece.begin, t.replica}),
            static_cast<Bytes>(piece.size) * stash_bytes_[l]});
      }
      program_.steps[d].push_back(std::move(s));
    }
    for (int l = t.pack.hi; l >= t.pack.lo; --l) {
      Step s;
      s.task = t.id;
      s.compute = cost_.BwdTime(model_.layers[l].spec, piece.size);
      const Bytes params = model_.layers[l].spec.param_bytes;
      if (params > 0) {
        s.needs.push_back(
            NeedSpec{Id(TensorKey{TensorKind::kWeight, l, -1, d}), params});
        const TensorId g = Id(TensorKey{TensorKind::kGrad, l, -1, t.replica});
        if (first_piece) {
          s.produces.push_back(ProduceSpec{g, params});
        } else {
          s.needs.push_back(NeedSpec{g, params});
        }
        s.mark_dirty.push_back(g);
      }
      // Stashed activations of this layer (rematerialized or fetched).
      if (remat_layer(l)) {
        if (stash_bytes_[l] > 0) {
          const TensorId st =
              Id(TensorKey{TensorKind::kStash, l, piece.begin, t.replica});
          s.needs.push_back(
              NeedSpec{st, static_cast<Bytes>(piece.size) * stash_bytes_[l]});
          s.derefs.push_back(st);
        }
      } else {
        for (const NeedSpec& st : StashKeys(l, t.replica, piece)) {
          s.needs.push_back(st);
          s.derefs.push_back(st.id);
        }
      }
      // Incoming gradient dA(l+1).
      if (l == t.pack.hi) {
        if (t.pack.hi + 1 <= R - 1 && boundary_bytes_[l + 1] > 0) {
          for (const MbPiece& p : grad_layout_[t.replica][l + 1]) {
            if (!p.Overlaps(piece)) continue;
            const TensorId gin =
                Id(TensorKey{TensorKind::kGradAct, l + 1, p.begin, t.replica});
            s.needs.push_back(NeedSpec{
                gin, static_cast<Bytes>(p.size) * boundary_bytes_[l + 1]});
            s.derefs.push_back(gin);
          }
        }
      } else if (boundary_bytes_[l + 1] > 0) {
        const TensorId gin =
            Id(TensorKey{TensorKind::kGradAct, l + 1, piece.begin, t.replica});
        s.needs.push_back(
            NeedSpec{gin, static_cast<Bytes>(piece.size) * boundary_bytes_[l + 1]});
        s.derefs.push_back(gin);
      }
      // Outgoing gradient dA(l) (none for the model input).
      if (l > 0 && boundary_bytes_[l] > 0) {
        s.produces.push_back(ProduceSpec{
            Id(TensorKey{TensorKind::kGradAct, l, piece.begin, t.replica}),
            static_cast<Bytes>(piece.size) * boundary_bytes_[l]});
      }
      program_.steps[d].push_back(std::move(s));
    }
    first_piece = false;
  }
  // After the group completes: push accumulated gradients to host when the
  // update runs on CPU or gradients reduce across replicas.
  if (push_grads && !program_.steps[d].empty()) {
    Step& last = program_.steps[d].back();
    for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
      if (model_.layers[l].spec.param_bytes > 0) {
        last.move_to_host.push_back(
            Id(TensorKey{TensorKind::kGrad, l, -1, t.replica}));
      }
    }
  }
}

void StepCompiler::CompileGpuUpdate(const Task& t) {
  const int d = t.device;
  const int replica = std::max(t.replica, 0);
  bool any = false;
  // One step per layer: an update of a pack larger than GPU memory must
  // stream layer by layer, exactly like forward/backward execution.
  for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
    const Bytes params = model_.layers[l].spec.param_bytes;
    if (params == 0) continue;
    Step s;
    s.task = t.id;
    s.compute = cost_.GpuUpdateTime(model_.layers[l].spec);
    const TensorId w = Id(TensorKey{TensorKind::kWeight, l, -1, d});
    const TensorId g = Id(TensorKey{TensorKind::kGrad, l, -1, replica});
    const TensorId o = Id(TensorKey{TensorKind::kOptState, l, -1, d});
    s.needs.push_back(NeedSpec{w, params});
    s.needs.push_back(NeedSpec{g, params});
    s.needs.push_back(NeedSpec{o, opt_state_bytes(l)});
    s.mark_dirty.push_back(w);
    s.mark_dirty.push_back(o);
    s.copy_to_host.push_back(w);   // master write-back; cached copy stays
    s.move_to_host.push_back(o);   // persists on host for the next iteration
    s.derefs.push_back(g);
    program_.steps[d].push_back(std::move(s));
    any = true;
  }
  if (!any) {
    // Pack with no parameters at all: still emit an empty step so the task
    // completes and dependents unblock.
    Step s;
    s.task = t.id;
    program_.steps[d].push_back(std::move(s));
  }
}

void StepCompiler::CompileCpuUpdate(const Task& t) {
  const core::DepResolver deps(graph_);
  CpuStep s;
  s.task = t.id;
  const auto producers = deps.BackwardTasksForPack(t.pack, t.replica);
  std::set<int> replicas;
  for (int pid : producers) replicas.insert(graph_.task(pid).replica);
  const int nrep = std::max<int>(1, replicas.size());
  for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
    const Bytes params = model_.layers[l].spec.param_bytes;
    if (params == 0) continue;
    s.duration += static_cast<double>(params) * (2.0 + nrep) /
                  machine_.cpu_update_bw;
    for (int r : replicas) {
      const TensorId g = Id(TensorKey{TensorKind::kGrad, l, -1, r});
      s.host_needs.push_back(g);
      s.host_frees.push_back(g);
    }
  }
  // Gradients are only final once their backward tasks complete (an eviction
  // can land a partial gradient on host earlier).
  s.wait_tasks.insert(s.wait_tasks.end(), producers.begin(), producers.end());
  if (!graph_.flags.jit_update) {
    for (int r = 0; r < graph_.num_replicas; ++r) {
      if (t.replica >= 0 && r != t.replica) continue;
      const auto& all = deps.AllBackwardTasks(r);
      s.wait_tasks.insert(s.wait_tasks.end(), all.begin(), all.end());
    }
  }
  program_.cpu_steps[t.device].push_back(std::move(s));
}

void StepCompiler::ComputeRefs() {
  program_.ref_counts.assign(program_.tensors.size(), 0);
  for (const auto& dev : program_.steps) {
    for (const Step& s : dev) {
      for (const TensorId id : s.derefs) ++program_.ref_counts[id];
    }
  }
}

StepProgram StepCompiler::Compile() {
  Precompute();
  program_.steps.assign(graph_.num_devices, {});
  program_.cpu_steps.assign(graph_.num_devices, {});
  for (int d = 0; d < graph_.num_devices; ++d) {
    for (int id : graph_.device_order[d]) {
      const Task& t = graph_.task(id);
      switch (t.type) {
        case TaskType::kForward: CompileForward(t); break;
        case TaskType::kBackward: CompileBackward(t); break;
        case TaskType::kUpdate: CompileGpuUpdate(t); break;
      }
    }
    if (static_cast<size_t>(d) < graph_.cpu_order.size()) {
      for (int id : graph_.cpu_order[d]) CompileCpuUpdate(graph_.task(id));
    }
  }
  ComputeRefs();

  program_.task_step_counts.assign(graph_.num_tasks(), 0);
  for (const auto& dev : program_.steps) {
    for (const Step& s : dev) ++program_.task_step_counts[s.task];
  }
  for (const auto& proc : program_.cpu_steps) {
    for (const CpuStep& s : proc) ++program_.task_step_counts[s.task];
  }
  return std::move(program_);
}

// ---------------------------------------------------------------------------
// Debug renderings
// ---------------------------------------------------------------------------

namespace {

void AppendKeys(std::string* out, const char* tag,
                const std::vector<TensorId>& ids,
                const TensorCatalog& tensors) {
  if (ids.empty()) return;
  *out += " ";
  *out += tag;
  *out += "=[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i) *out += " ";
    *out += tensors.key(ids[i]).ToString();
  }
  *out += "]";
}

}  // namespace

std::string DebugString(const Step& s, const TensorCatalog& tensors) {
  std::string out = "t" + std::to_string(s.task);
  out += " needs=[";
  for (size_t i = 0; i < s.needs.size(); ++i) {
    if (i) out += " ";
    out += tensors.key(s.needs[i].id).ToString() + ":" +
           std::to_string(s.needs[i].bytes);
    if (s.needs[i].from_host) out += "@host";
  }
  out += "] produces=[";
  for (size_t i = 0; i < s.produces.size(); ++i) {
    if (i) out += " ";
    out += tensors.key(s.produces[i].id).ToString() + ":" +
           std::to_string(s.produces[i].bytes);
  }
  out += "]";
  AppendKeys(&out, "derefs", s.derefs, tensors);
  AppendKeys(&out, "copy", s.copy_to_host, tensors);
  AppendKeys(&out, "move", s.move_to_host, tensors);
  AppendKeys(&out, "dirty", s.mark_dirty, tensors);
  return out;
}

std::string DebugString(const CpuStep& s, const TensorCatalog& tensors) {
  std::string out = "t" + std::to_string(s.task) + " cpu";
  AppendKeys(&out, "host_needs", s.host_needs, tensors);
  AppendKeys(&out, "host_frees", s.host_frees, tensors);
  if (!s.wait_tasks.empty()) {
    out += " waits=[";
    for (size_t i = 0; i < s.wait_tasks.size(); ++i) {
      if (i) out += " ";
      out += "t" + std::to_string(s.wait_tasks[i]);
    }
    out += "]";
  }
  return out;
}

}  // namespace harmony::runtime
