#ifndef HARMONY_RUNTIME_MEMORY_MANAGER_H_
#define HARMONY_RUNTIME_MEMORY_MANAGER_H_

#include <vector>

#include "common/units.h"
#include "runtime/tensor.h"

namespace harmony::runtime {

/// Per-GPU memory accounting with LRU selection of eviction victims: the
/// bookkeeping half of the Runtime's central memory manager (Sec 4.4). The
/// executor owns the transfer side (issuing swap-out flows for victims).
///
/// Tensors are addressed by the program's dense TensorId: all per-tensor
/// state lives in an id-indexed array (no tree lookups on the hot path), and
/// a compact list of resident ids backs the eviction scans.
class DeviceMemory {
 public:
  /// `num_tensors` is the program catalog size; ids passed to every other
  /// method must be < num_tensors.
  DeviceMemory(Bytes capacity, int num_tensors);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  /// Bytes available for new allocations. Negative while an injected
  /// pressure spike overlaps already-resident tensors — the allocator then
  /// evicts (recovery-classified) until the books balance again.
  Bytes free_bytes() const { return capacity_ - pressure_ - used_; }
  Bytes peak_used() const { return peak_used_; }

  /// Fault hook: reserves `bytes` of capacity for an injected co-tenant
  /// pressure spike (0 clears it). Purely an accounting change; the
  /// residency layer reacts through free_bytes() going down (or negative).
  void SetPressure(Bytes bytes) { pressure_ = bytes; }
  Bytes pressure() const { return pressure_; }

  /// Marks `id` resident, consuming `bytes`. Requires free_bytes() >= bytes.
  void AddResident(TensorId id, Bytes bytes);

  /// Removes a resident tensor, releasing its bytes.
  void RemoveResident(TensorId id);

  bool IsResident(TensorId id) const { return entries_[id].resident; }
  Bytes ResidentBytes(TensorId id) const {
    return entries_[id].resident ? entries_[id].bytes : 0;
  }

  /// LRU bump.
  void Touch(TensorId id);

  void Pin(TensorId id);
  void Unpin(TensorId id);
  bool IsPinned(TensorId id) const {
    return entries_[id].resident && entries_[id].pins > 0;
  }

  /// Least-recently-used unpinned victims whose combined size reaches
  /// `needed` bytes (may return fewer if not enough are evictable). Does not
  /// remove them — the executor removes each once its swap-out completes.
  std::vector<TensorId> PickVictims(Bytes needed) const;

  /// Sum of evictable (unpinned resident) bytes.
  Bytes EvictableBytes() const;

  int num_resident() const { return static_cast<int>(resident_list_.size()); }

 private:
  struct Entry {
    Bytes bytes = 0;
    int pins = 0;
    int64_t lru = 0;
    bool resident = false;
    int list_pos = -1;  // index into resident_list_ (swap-remove)
  };

  Bytes capacity_;
  Bytes used_ = 0;
  Bytes pressure_ = 0;  // injected-fault capacity reserve
  Bytes peak_used_ = 0;
  int64_t clock_ = 0;
  std::vector<Entry> entries_;         // indexed by TensorId
  std::vector<TensorId> resident_list_;  // compact; order arbitrary
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_MEMORY_MANAGER_H_
