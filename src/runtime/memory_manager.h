#ifndef HARMONY_RUNTIME_MEMORY_MANAGER_H_
#define HARMONY_RUNTIME_MEMORY_MANAGER_H_

#include <functional>
#include <list>
#include <map>
#include <vector>

#include "common/units.h"
#include "runtime/tensor.h"

namespace harmony::runtime {

/// Per-GPU memory accounting with LRU selection of eviction victims: the
/// bookkeeping half of the Runtime's central memory manager (Sec 4.4). The
/// executor owns the transfer side (issuing swap-out flows for victims).
class DeviceMemory {
 public:
  explicit DeviceMemory(Bytes capacity);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free_bytes() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_used_; }

  /// Marks `key` resident, consuming `bytes`. Requires free_bytes() >= bytes.
  void AddResident(const TensorKey& key, Bytes bytes);

  /// Removes a resident tensor, releasing its bytes.
  void RemoveResident(const TensorKey& key);

  bool IsResident(const TensorKey& key) const { return resident_.count(key) > 0; }
  Bytes ResidentBytes(const TensorKey& key) const;

  /// LRU bump.
  void Touch(const TensorKey& key);

  void Pin(const TensorKey& key);
  void Unpin(const TensorKey& key);
  bool IsPinned(const TensorKey& key) const;

  /// Least-recently-used unpinned victims whose combined size reaches
  /// `needed` bytes (may return fewer if not enough are evictable). Does not
  /// remove them — the executor removes each once its swap-out completes.
  std::vector<TensorKey> PickVictims(Bytes needed) const;

  /// Sum of evictable (unpinned resident) bytes.
  Bytes EvictableBytes() const;

  int num_resident() const { return static_cast<int>(resident_.size()); }

 private:
  struct Entry {
    Bytes bytes = 0;
    int pins = 0;
    int64_t lru = 0;
  };

  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_used_ = 0;
  int64_t clock_ = 0;
  std::map<TensorKey, Entry> resident_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_MEMORY_MANAGER_H_
