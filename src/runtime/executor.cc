#include "runtime/executor.h"

#include <memory>

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace harmony::runtime {

Executor::Executor(const hw::MachineSpec& machine, const core::TaskGraph& graph,
                   const RuntimeOptions& options, StepProgram program,
                   trace::TraceBus* bus, trace::MetricsSink* metrics)
    : machine_(machine),
      graph_(graph),
      options_(options),
      program_(std::move(program)),
      bus_(bus),
      metrics_(metrics),
      net_(machine),
      flows_(&engine_, net_.capacities()) {}

void Executor::Fail(Status status) {
  if (failed_) return;
  failed_ = true;
  failure_ = std::move(status);
}

// ---------------------------------------------------------------------------
// Liveness: cancellation + watchdog
// ---------------------------------------------------------------------------

bool Executor::AllWorkDone() const {
  for (size_t d = 0; d < steps_done_.size(); ++d) {
    if (steps_done_[d] < program_.steps[d].size()) return false;
    if (cpu_next_[d] < program_.cpu_steps[d].size()) return false;
  }
  return true;
}

int64_t Executor::ProgressCounter() const {
  int64_t p = 0;
  for (size_t d = 0; d < steps_done_.size(); ++d) {
    p += static_cast<int64_t>(steps_done_[d]) +
         static_cast<int64_t>(cpu_next_[d]);
  }
  for (const auto& s : swapin_) p += s->ops_completed();
  for (const auto& s : swapout_) p += s->ops_completed();
  for (const auto& s : p2pin_) p += s->ops_completed();
  return p;
}

bool Executor::PollCancel() {
  if (failed_) return true;
  if (options_.cancel == nullptr || !options_.cancel->Cancelled()) {
    return false;
  }
  Fail(options_.cancel->DeadlinePassed()
           ? Status::DeadlineExceeded(
                 "run cancelled: deadline passed mid-iteration")
           : Status::Cancelled("run cancelled"));
  return true;
}

void Executor::WatchdogTick() {
  if (failed_ || AllWorkDone()) return;  // run over; stop re-arming
  if (PollCancel()) return;
  const int64_t progress = ProgressCounter();
  if (progress == watchdog_progress_) {
    // No step, CPU update, or transfer completed for a whole interval:
    // escalate. Cancelling the token unwinds any cooperating layers
    // (search, serve) sharing it; the Status names the wedge. The
    // first-tripper check closes a race with graceful shutdown: if another
    // party cancelled the shared token between the PollCancel above and this
    // escalation, the run must surface kCancelled — not an Internal
    // "watchdog: no progress" dressed with DescribeStuck noise. Only the
    // actual tripper pays for (and reports) the wedge diagnostics.
    if (options_.cancel != nullptr && !options_.cancel->Cancel()) {
      PollCancel();
      return;
    }
    Fail(Status::Internal("watchdog: no progress for " +
                          std::to_string(watchdog_interval_) + "s" +
                          DescribeStuck()));
    return;
  }
  watchdog_progress_ = progress;
  engine_.After(watchdog_interval_, [this]() { WatchdogTick(); });
}

// ---------------------------------------------------------------------------
// Task completion bookkeeping
// ---------------------------------------------------------------------------

void Executor::OnTaskStepDone(int task) {
  HARMONY_CHECK_GT(task_steps_remaining_[task], 0);
  if (--task_steps_remaining_[task] == 0) {
    auto waiters = std::move(task_waiters_[task]);
    task_waiters_[task].clear();
    for (auto& w : waiters) w();
  }
}

void Executor::WhenTaskComplete(int task, std::function<void()> fn) {
  if (task_steps_remaining_[task] == 0) {
    fn();
  } else {
    task_waiters_[task].push_back(std::move(fn));
  }
}

// ---------------------------------------------------------------------------
// GPU step driving
// ---------------------------------------------------------------------------

void Executor::TryIssue(int d) {
  if (failed_ || issue_busy_[d]) return;
  // Amortized cancel poll: Cancelled() reads a wall clock, so consult it
  // once every 256 issue attempts rather than on the simulator hot path.
  if (options_.cancel != nullptr && (++cancel_poll_ & 0xffu) == 0 &&
      PollCancel()) {
    return;
  }
  if (issue_next_[d] >= program_.steps[d].size()) return;
  const size_t in_flight = issue_next_[d] - steps_done_[d];
  if (in_flight > static_cast<size_t>(issue_window_)) return;
  issue_busy_[d] = true;
  const int idx = static_cast<int>(issue_next_[d]++);
  IssueStep(d, idx);
}

void Executor::IssueStep(int d, int step_idx) {
  Step& s = program_.steps[d][step_idx];
  sim::Condition* ready = &conditions_.emplace_back();

  // Join counters across needs + produces.
  struct Join {
    int commits_left;
    int arrivals_left;
  };
  // Shared ownership so a wedged schedule (arrivals that never happen)
  // releases the join with the waiter closures at teardown instead of
  // leaking it.
  auto join = std::make_shared<Join>(Join{0, 0});
  join->commits_left = static_cast<int>(s.needs.size() + s.produces.size()) + 1;
  join->arrivals_left = join->commits_left;

  // Materialized as std::function once per step: EnsureResident takes these
  // by const reference, so the per-need fast path performs no copies.
  const std::function<void()> committed = [this, d, join]() {
    if (--join->commits_left == 0) {
      issue_busy_[d] = false;
      TryIssue(d);
    }
  };
  const std::function<void()> arrived = [join, ready]() {
    if (--join->arrivals_left == 0) ready->Fire();
  };

  // Push the compute op first: the sentinel commit below can re-enter
  // TryIssue and push the next step's op, and the compute stream must stay
  // in step order.
  std::string label;
  if (bus_ != nullptr && bus_->detailed()) {
    label = "t" + std::to_string(s.task) + " step" + std::to_string(step_idx);
  }
  compute_[d]
      ->PushTimed({ready}, std::move(label), s.task,
                  program_.steps[d][step_idx].compute)
      ->OnFire([this, d, step_idx]() { FinishStep(d, step_idx); });

  for (const NeedSpec& n : s.needs) {
    residency_->EnsureResident(d, n.id, n.bytes, n.from_host, committed,
                               arrived);
  }
  for (const ProduceSpec& p : s.produces) {
    residency_->AllocForProduce(d, p, [committed, arrived]() {
      committed();
      arrived();
    });
  }
  // The +1 sentinel resolves immediately (handles empty lists).
  committed();
  arrived();
}

void Executor::FinishStep(int d, int step_idx) {
  Step& s = program_.steps[d][step_idx];

  // 1. Unpin this step's tensors.
  for (const NeedSpec& n : s.needs) residency_->UnpinNeed(d, n.id);
  // 2. Finalize produced tensors.
  for (const ProduceSpec& p : s.produces) residency_->FinalizeProduce(d, p);
  // 3. Dirty marks (gradient accumulation, updated weights).
  for (const TensorId k : s.mark_dirty) residency_->MarkDirty(k);
  // 4. Host copies (checkpoints, master weight write-back).
  for (const TensorId k : s.copy_to_host) residency_->CopyToHost(d, k);
  // 5. Moves to host (gradient push, optimizer state write-back).
  for (const TensorId k : s.move_to_host) residency_->MoveToHost(d, k);
  // 6. Dereference consumed inputs.
  for (const TensorId k : s.derefs) residency_->Deref(k);

  ++steps_done_[d];
  OnTaskStepDone(s.task);
  // Unpins and frees above may unblock queued allocations anywhere.
  residency_->PumpAll();
  TryIssue(d);
}

// ---------------------------------------------------------------------------
// CPU step driving
// ---------------------------------------------------------------------------

void Executor::AdvanceCpu(int d) {
  if (failed_ || cpu_next_[d] >= program_.cpu_steps[d].size()) return;
  CpuStep& s = program_.cpu_steps[d][cpu_next_[d]];
  auto retry = [this, d]() { AdvanceCpu(d); };

  // Wait for producing (and, without jit, all) backward tasks first; then
  // re-check that every gradient actually has a final host copy — an early
  // eviction can put a *partial* gradient on host, so the host check only
  // counts once the producers are done.
  for (int task : s.wait_tasks) {
    if (task_steps_remaining_[task] != 0) {
      WhenTaskComplete(task, retry);
      return;
    }
  }
  for (const TensorId k : s.host_needs) {
    if (!residency_->HostReady(k)) {
      residency_->AddHostWaiter(k, retry);
      return;
    }
  }

  std::string label;
  if (bus_ != nullptr && bus_->detailed()) {
    label = "t" + std::to_string(s.task) + " cpu-update";
  }
  cpu_[d]
      ->PushTimed({}, std::move(label), s.task,
                  program_.cpu_steps[d][cpu_next_[d]].duration)
      ->OnFire([this, d]() {
        CpuStep& step = program_.cpu_steps[d][cpu_next_[d]];
        for (const TensorId k : step.host_frees) {
          residency_->ReleaseHostCopy(k);
        }
        OnTaskStepDone(step.task);
        ++cpu_next_[d];
        AdvanceCpu(d);
      });
}

// ---------------------------------------------------------------------------
// Deadlock diagnostics
// ---------------------------------------------------------------------------

std::string Executor::DescribeStuck() {
  std::string out;
  const int N = graph_.num_devices;
  for (int d = 0; d < N; ++d) {
    if (steps_done_[d] < program_.steps[d].size()) {
      const size_t idx = steps_done_[d];
      const Step& s = program_.steps[d][idx];
      out += "; d" + std::to_string(d) + " stuck at step " +
             std::to_string(idx) + "/" +
             std::to_string(program_.steps[d].size()) + " (task " +
             std::to_string(s.task) + ") waiting on " +
             residency_->DescribeWait(d, s);
    }
    if (cpu_next_[d] < program_.cpu_steps[d].size()) {
      const CpuStep& s = program_.cpu_steps[d][cpu_next_[d]];
      std::string waits;
      for (int task : s.wait_tasks) {
        if (task_steps_remaining_[task] == 0) continue;
        if (!waits.empty()) waits += ", ";
        waits += "task " + std::to_string(task);
      }
      for (const TensorId k : s.host_needs) {
        if (residency_->HostReady(k)) continue;
        if (!waits.empty()) waits += ", ";
        waits += program_.tensors.key(k).ToString() + " [no host copy]";
      }
      if (waits.empty()) waits = "cpu stream backlog";
      out += "; cpu" + std::to_string(d) + " stuck at update (task " +
             std::to_string(s.task) + ") waiting on " + waits;
    }
  }
  if (chaos_ != nullptr) out += chaos_->DescribeActive();
  return out;
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

Result<RunMetrics> Executor::Run() {
  const int N = graph_.num_devices;
  HARMONY_CHECK_LE(N, machine_.num_gpus);

  // Static host footprint: master weights + optimizer state (+ scheme
  // overheads like ZeRO staging buffers).
  const Bytes static_host =
      options_.host_static_overhead + program_.static_host_bytes;
  if (options_.enforce_host_capacity && static_host > machine_.host_memory) {
    return Status::OutOfMemory(
        "host memory exhausted before training: static state " +
        FormatBytes(static_host) + " exceeds " +
        FormatBytes(machine_.host_memory));
  }

  std::vector<Bytes> capacities;
  for (int d = 0; d < N; ++d) {
    Bytes reserved = d < static_cast<int>(graph_.device_reserved_bytes.size())
                         ? graph_.device_reserved_bytes[d]
                         : 0;
    const Bytes capacity = machine_.GpuAt(d).usable_memory() - reserved;
    if (capacity <= 0) {
      return Status::OutOfMemory("device reservation exceeds GPU capacity");
    }
    capacities.push_back(capacity);
    const std::string sd = std::to_string(d);
    compute_.push_back(std::make_unique<sim::Stream>(&engine_, "compute" + sd));
    swapin_.push_back(std::make_unique<sim::Stream>(&engine_, "swapin" + sd));
    swapout_.push_back(std::make_unique<sim::Stream>(&engine_, "swapout" + sd));
    p2pin_.push_back(std::make_unique<sim::Stream>(&engine_, "p2pin" + sd));
    cpu_.push_back(std::make_unique<sim::Stream>(&engine_, "cpu" + sd));
    if (bus_ != nullptr && bus_->active()) {
      compute_[d]->BindTrace(bus_, d, trace::Lane::kCompute);
      swapin_[d]->BindTrace(bus_, d, trace::Lane::kSwapIn);
      swapout_[d]->BindTrace(bus_, d, trace::Lane::kSwapOut);
      p2pin_[d]->BindTrace(bus_, d, trace::Lane::kP2pIn);
      cpu_[d]->BindTrace(bus_, d, trace::Lane::kCpu);
    }
  }
  if (bus_ != nullptr && bus_->active()) flows_.BindTrace(bus_);

  // Fault injection: build the seeded decision oracle and the engine-side
  // chaos driver before the residency layer, which borrows both.
  const fault::FaultPlan& plan = options_.fault_plan;
  if (plan.enabled && plan.Any()) {
    injector_ = std::make_unique<fault::FaultInjector>(plan);
    chaos_ =
        std::make_unique<fault::ChaosDriver>(&engine_, bus_, injector_.get());
    chaos_->SetStopProbe([this]() { return failed_ || AllWorkDone(); });
    chaos_->SetFail([this](Status status) { Fail(std::move(status)); });
  }

  Residency::Env env;
  env.engine = &engine_;
  env.flows = &flows_;
  env.net = &net_;
  for (int d = 0; d < N; ++d) {
    env.swapin.push_back(swapin_[d].get());
    env.swapout.push_back(swapout_[d].get());
    env.p2pin.push_back(p2pin_[d].get());
  }
  env.fail = [this](Status status) { Fail(std::move(status)); };
  env.failed = [this]() { return failed_; };
  env.steps_in_flight = [this](int d) {
    return issue_next_[d] - steps_done_[d] > 1;
  };
  env.injector = injector_.get();
  if (injector_ != nullptr && plan.transfer_failure_rate > 0) {
    env.transfer = [this](const std::vector<int>& path, Bytes bytes,
                          int device, std::function<void()> done) {
      chaos_->StartReliableFlow(&flows_, path, bytes, device, std::move(done));
    };
  } else {
    env.transfer = [this](const std::vector<int>& path, Bytes bytes, int,
                          std::function<void()> done) {
      flows_.StartFlow(path, bytes, std::move(done));
    };
  }
  residency_ = std::make_unique<Residency>(graph_, std::move(capacities),
                                           &program_, std::move(env), bus_);
  residency_->SetStaticHostBytes(static_host);

  issue_next_.assign(N, 0);
  steps_done_.assign(N, 0);
  issue_busy_.assign(N, false);
  cpu_next_.assign(N, 0);
  issue_window_ = graph_.flags.prefetch ? 2 : 0;

  task_steps_remaining_ = program_.task_step_counts;
  task_waiters_.assign(graph_.num_tasks(), {});

  // Arm the recurring fault schedules (state vectors above are live now, so
  // the driver's stop probe is safe to consult).
  if (chaos_ != nullptr) {
    if (plan.stream_stall_rate > 0 && plan.stream_stall_duration > 0) {
      for (int d = 0; d < N; ++d) {
        chaos_->AttachStreamStalls(compute_[d].get(), d);
        chaos_->AttachStreamStalls(swapin_[d].get(), d);
        chaos_->AttachStreamStalls(swapout_[d].get(), d);
        chaos_->AttachStreamStalls(p2pin_[d].get(), d);
      }
    }
    if (plan.link_flap_interval > 0 && plan.link_flap_duration > 0) {
      chaos_->ArmLinkFlaps(&flows_, net_.num_links(),
                           [this](int link) { return net_.LinkName(link); });
    }
    if (plan.mem_pressure_interval > 0 && plan.mem_pressure_duration > 0 &&
        plan.mem_pressure_fraction > 0) {
      chaos_->ArmMemoryPressure(
          N,
          [this](int d) {
            return residency_->ApplyFaultPressure(
                d, options_.fault_plan.mem_pressure_fraction);
          },
          [this](int d) { return residency_->ReleaseFaultPressure(d); });
    }
    // Persistent targeted degradations: the machine changes and stays
    // changed. Pressure is applied once and never released — the health
    // monitor upstairs is what turns these into a re-plan.
    if (plan.link_fail_at > 0 && plan.link_fail_link >= 0) {
      if (plan.link_fail_link >= net_.num_links() ||
          plan.link_fail_factor <= 0) {
        return Status::InvalidArgument(
            "fault plan: link-fail link " +
            std::to_string(plan.link_fail_link) + " / factor " +
            std::to_string(plan.link_fail_factor) + " invalid (machine has " +
            std::to_string(net_.num_links()) + " links)");
      }
      chaos_->ArmPersistentLinkFault(&flows_, plan.link_fail_link,
                                     plan.link_fail_factor, plan.link_fail_at);
    }
    if (plan.mem_shrink_at > 0 && plan.mem_shrink_device >= 0 &&
        plan.mem_shrink_fraction > 0) {
      if (plan.mem_shrink_device >= N || plan.mem_shrink_fraction >= 1.0) {
        return Status::InvalidArgument(
            "fault plan: mem-shrink device " +
            std::to_string(plan.mem_shrink_device) + " / fraction " +
            std::to_string(plan.mem_shrink_fraction) + " invalid (" +
            std::to_string(N) + " active devices)");
      }
      chaos_->ArmPersistentMemShrink(
          plan.mem_shrink_device, plan.mem_shrink_at, [this](int d) {
            return residency_->ApplyFaultPressure(
                d, options_.fault_plan.mem_shrink_fraction);
          });
    }
  }
  // Watchdog: explicit interval, or a 60s default whenever chaos or a cancel
  // token makes a wedge survivable-by-diagnosis rather than fatal-by-CHECK.
  watchdog_interval_ = options_.watchdog_interval;
  if (watchdog_interval_ == 0 &&
      (chaos_ != nullptr || options_.cancel != nullptr)) {
    watchdog_interval_ = 60.0;
  }
  if (watchdog_interval_ > 0) {
    watchdog_progress_ = -1;
    engine_.After(watchdog_interval_, [this]() { WatchdogTick(); });
  }

  for (int d = 0; d < N; ++d) {
    TryIssue(d);
    AdvanceCpu(d);
  }
  engine_.Run();
  // Iteration end is when the last stream op completed, not when the engine's
  // event queue drained: an armed watchdog (or a pending chaos timer) leaves
  // one final no-op tick on the clock past the real work, and the engine's
  // drain time would report that tick as iteration time.
  TimeSec end = 0.0;
  for (const auto* set :
       {&compute_, &swapin_, &swapout_, &p2pin_, &cpu_}) {
    for (const auto& s : *set) end = std::max(end, s->last_completion());
  }

  if (failed_) return failure_;
  for (int d = 0; d < N; ++d) {
    if (steps_done_[d] != program_.steps[d].size() ||
        cpu_next_[d] != program_.cpu_steps[d].size()) {
      for (int dev = 0; dev < N; ++dev) {
        if (residency_->HasPendingAllocs(dev)) {
          // Stalled with allocations outstanding: the working set cannot fit
          // even with everything evictable gone.
          return Status::OutOfMemory(
              "device " + std::to_string(dev) +
              " wedged on allocation: working set exceeds GPU capacity"
              "; pending: " +
              residency_->DescribePendingAllocs(dev) + DescribeStuck());
        }
      }
      return Status::Internal(
          "device " + std::to_string(d) + " stalled: executed " +
          std::to_string(steps_done_[d]) + "/" +
          std::to_string(program_.steps[d].size()) +
          " steps (schedule deadlock)" + DescribeStuck());
    }
  }
  if (options_.enforce_host_capacity &&
      metrics_->peak_host_bytes() > machine_.host_memory) {
    return Status::OutOfMemory("host memory exhausted during training: peak " +
                               FormatBytes(metrics_->peak_host_bytes()) +
                               " exceeds " + FormatBytes(machine_.host_memory));
  }

  RunMetrics metrics;
  metrics.iteration_time = end;
  metrics.swap_in_bytes = metrics_->swap_in_bytes();
  metrics.swap_out_bytes = metrics_->swap_out_bytes();
  metrics.p2p_bytes = metrics_->p2p_bytes();
  // Busy time comes from the stream counters, not the trace fold: PushTimed
  // charges each op its profiled duration directly, so the sum is invariant
  // under the time translation injected faults cause — the chaos harness
  // asserts it bit-identical against the fault-free run. (The trace-folded
  // end-minus-begin sum drifts by ulps when op start times shift.)
  metrics.compute_busy.reserve(static_cast<size_t>(N));
  for (int d = 0; d < N; ++d) {
    metrics.compute_busy.push_back(compute_[d]->busy_time());
  }
  metrics.peak_device_bytes = metrics_->peak_device_bytes();
  metrics.peak_host_bytes = metrics_->peak_host_bytes();
  metrics.evictions = metrics_->evictions();
  metrics.clean_drops = metrics_->clean_drops();
  metrics.faults_injected = metrics_->faults_injected();
  metrics.faults_recovered = metrics_->faults_recovered();
  metrics.recovery_bytes = metrics_->recovery_bytes();
  return metrics;
}

}  // namespace harmony::runtime
