#ifndef HARMONY_RUNTIME_RUNTIME_H_
#define HARMONY_RUNTIME_RUNTIME_H_

#include <numeric>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/task_graph.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "model/layer.h"
#include "model/memory.h"

namespace harmony::trace {
class TraceSink;
}  // namespace harmony::trace

namespace harmony::runtime {

/// Measurements from executing one training iteration.
struct RunMetrics {
  TimeSec iteration_time = 0;

  /// CPU->GPU and GPU->CPU traffic per device ("swap load", Fig 10).
  std::vector<Bytes> swap_in_bytes;
  std::vector<Bytes> swap_out_bytes;
  /// GPU->GPU traffic attributed to the receiving device.
  std::vector<Bytes> p2p_bytes;

  std::vector<TimeSec> compute_busy;      // per device compute-stream busy time
  std::vector<Bytes> peak_device_bytes;   // memory-manager high-water mark
  Bytes peak_host_bytes = 0;
  int64_t evictions = 0;    // evictions that required a transfer
  int64_t clean_drops = 0;  // evictions satisfied by dropping a clean copy

  /// Chaos accounting (zero on fault-free runs). Recovery transfers are
  /// *extra* traffic the self-healing paths moved (emergency evictions,
  /// refetches, retried payloads); they are deliberately excluded from the
  /// semantic swap/p2p accounting above, which a survivable fault schedule
  /// must leave bit-identical to the fault-free run.
  int64_t faults_injected = 0;
  int64_t faults_recovered = 0;
  Bytes recovery_bytes = 0;

  Bytes device_swap(int d) const { return swap_in_bytes[d] + swap_out_bytes[d]; }
  Bytes total_swap() const {
    return std::accumulate(swap_in_bytes.begin(), swap_in_bytes.end(), Bytes{0}) +
           std::accumulate(swap_out_bytes.begin(), swap_out_bytes.end(), Bytes{0});
  }
  Bytes max_device_swap() const {
    Bytes m = 0;
    for (size_t d = 0; d < swap_in_bytes.size(); ++d) {
      m = std::max(m, device_swap(static_cast<int>(d)));
    }
    return m;
  }
  /// Samples per second given the iteration's global minibatch.
  double Throughput(int minibatch) const {
    return iteration_time > 0 ? minibatch / iteration_time : 0.0;
  }
};

struct RuntimeOptions {
  model::Optimizer optimizer = model::Optimizer::kAdam;
  /// Extra host bytes the scheme permanently occupies (e.g. ZeRO-Infinity's
  /// pinned staging buffers); counts toward the host-memory capacity check.
  Bytes host_static_overhead = 0;
  /// Abort with OutOfMemory if peak host usage exceeds the machine's host
  /// memory (Fig 15's 40B-parameter wall). Checked before execution from the
  /// static state and during execution from the dynamic peak.
  bool enforce_host_capacity = true;
  /// Extra observers attached to the execution's trace bus (borrowed, e.g. a
  /// ChromeTraceSink); MetricsSink and the HARMONY_RUNTIME_TRACE filter are
  /// always attached. Null entries are ignored.
  std::vector<trace::TraceSink*> trace_sinks;

  /// Deterministic fault injection (chaos runs). Default-constructed =
  /// disabled: the runtime pays one branch per potential injection site.
  fault::FaultPlan fault_plan;

  /// Cooperative cancellation: polled periodically by the executor (and by
  /// the watchdog, when armed), so a wedged or over-deadline run unwinds
  /// with Cancelled / DeadlineExceeded instead of spinning. The watchdog
  /// also *cancels* the token on a no-progress escalation, unwinding any
  /// cooperating layers (search, serve) sharing it. Borrowed.
  common::CancelToken* cancel = nullptr;

  /// Executor watchdog: when armed, a no-progress interval of this many
  /// *simulated* seconds fails the run with DescribeStuck() diagnostics (and
  /// cancels `cancel`, if set) instead of wedging forever. > 0 arms it
  /// explicitly; 0 (default) auto-arms at 60s whenever fault injection or a
  /// cancel token is present; < 0 disables it outright. While armed, the
  /// reported iteration_time may include up to one trailing watchdog tick.
  TimeSec watchdog_interval = 0;
};

/// Harmony's Runtime (Sec 4.4), generalized to execute *any* TaskGraph (the
/// baselines lower to the same IR). One simulated process per GPU, five
/// CUDA-like streams each, a central memory manager with LRU demand paging,
/// double-buffered prefetch, p2p transfers, and CPU-offloaded weight update.
/// Swap behaviour (repeated / unnecessary / unbalanced swaps) emerges from
/// the schedule and memory pressure rather than being scripted.
class Runtime {
 public:
  Runtime(hw::MachineSpec machine, const model::SequentialModel& model);

  /// Executes one training iteration of `graph` and returns its metrics.
  /// Fails with OutOfMemory when a working set cannot fit even with all
  /// evictable tensors swapped out, or when host memory is exhausted.
  Result<RunMetrics> Execute(const core::TaskGraph& graph,
                             const RuntimeOptions& options = {}) const;

 private:
  hw::MachineSpec machine_;
  const model::SequentialModel& model_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_RUNTIME_H_
