#ifndef HARMONY_RUNTIME_EXECUTOR_H_
#define HARMONY_RUNTIME_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/task_graph.h"
#include "fault/chaos.h"
#include "hw/machine.h"
#include "runtime/residency.h"
#include "runtime/runtime.h"
#include "runtime/step.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/stream.h"
#include "trace/metrics_sink.h"
#include "trace/trace.h"

namespace harmony::runtime {

/// The driving layer of the execution pipeline: issues a compiled StepProgram
/// onto the discrete-event simulator. Owns the engine, the five CUDA-like
/// streams per GPU, the issue windows (double-buffered prefetch), and the
/// task-completion bookkeeping; delegates every residency decision to the
/// Residency layer. All byte/time accounting flows through the trace bus into
/// MetricsSink, from which the final RunMetrics is folded.
class Executor {
 public:
  Executor(const hw::MachineSpec& machine, const core::TaskGraph& graph,
           const RuntimeOptions& options, StepProgram program,
           trace::TraceBus* bus, trace::MetricsSink* metrics);

  /// Runs the program to completion and folds the metrics. Fails with
  /// OutOfMemory when a working set cannot fit, or Internal on a schedule
  /// deadlock — both diagnose the stuck steps and the tensors they wait on.
  Result<RunMetrics> Run();

 private:
  void Fail(Status status);
  void TryIssue(int d);
  void IssueStep(int d, int step_idx);
  void FinishStep(int d, int step_idx);
  void AdvanceCpu(int d);
  void OnTaskStepDone(int task);
  void WhenTaskComplete(int task, std::function<void()> fn);

  bool AllWorkDone() const;
  /// Monotone progress measure for the watchdog: completed GPU steps + CPU
  /// updates + transfer-stream ops. Any forward motion bumps it.
  int64_t ProgressCounter() const;
  /// Polls the cancel token; fails the run (Cancelled / DeadlineExceeded)
  /// and returns true when it has tripped.
  bool PollCancel();
  /// Recurring no-progress check; escalates to cancel + Internal with
  /// DescribeStuck() diagnostics, and stops re-arming once the run is over.
  void WatchdogTick();

  /// Names every stuck GPU/CPU step and the tensors or tasks it waits on —
  /// appended to the post-drain failure statuses.
  std::string DescribeStuck();

  const hw::MachineSpec& machine_;
  const core::TaskGraph& graph_;
  RuntimeOptions options_;
  StepProgram program_;
  trace::TraceBus* bus_;
  trace::MetricsSink* metrics_;

  sim::Engine engine_;
  sim::Interconnect net_;
  sim::FlowNetwork flows_;

  std::vector<std::unique_ptr<sim::Stream>> compute_, swapin_, swapout_,
      p2pin_, cpu_;
  std::unique_ptr<Residency> residency_;
  // Deque for pointer stability; direct storage — one allocation per deque
  // block, not per step.
  std::deque<sim::Condition> conditions_;

  // Driving state.
  std::vector<size_t> issue_next_, steps_done_;
  std::vector<bool> issue_busy_;
  std::vector<size_t> cpu_next_;
  int issue_window_ = 2;

  std::vector<int> task_steps_remaining_;
  std::vector<std::vector<std::function<void()>>> task_waiters_;

  // Chaos & liveness (null / disarmed unless the options enable them).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::ChaosDriver> chaos_;
  TimeSec watchdog_interval_ = 0;   // resolved from options; <= 0 disarmed
  int64_t watchdog_progress_ = -1;  // ProgressCounter() at the last tick
  uint32_t cancel_poll_ = 0;

  bool failed_ = false;
  Status failure_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_EXECUTOR_H_
