#ifndef HARMONY_RUNTIME_TENSOR_H_
#define HARMONY_RUNTIME_TENSOR_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace harmony::runtime {

/// The tensor classes the Runtime's state machine tracks (Fig 5a).
enum class TensorKind : uint8_t {
  kWeight,      // per-device cached copy of a layer's weights (host master)
  kGrad,        // weight-gradient accumulation buffer, per replica
  kOptState,    // optimizer state (momentum / Adam moments), per device copy
  kActivation,  // boundary activation tensor, keyed by boundary layer + piece
  kGradAct,     // boundary activation gradient
  kStash,       // per-layer stashed intermediate activations
};

const char* TensorKindName(TensorKind kind);

/// Identity of a tensor instance. `layer` is a layer index (kWeight, kGrad,
/// kOptState, kStash) or a boundary index (kActivation, kGradAct: the tensor
/// between layers `layer-1` and `layer`). `begin` is the piece's first sample
/// (-1 for state tensors). `owner` is the caching device (kWeight, kOptState)
/// or the replica (everything else).
struct TensorKey {
  TensorKind kind = TensorKind::kWeight;
  int layer = 0;
  int begin = -1;
  int owner = 0;

  auto Tie() const { return std::tie(kind, layer, begin, owner); }
  bool operator<(const TensorKey& o) const { return Tie() < o.Tie(); }
  bool operator==(const TensorKey& o) const { return Tie() == o.Tie(); }

  std::string ToString() const;
};

/// Dense handle for a tensor instance, assigned by the StepCompiler when it
/// interns every TensorKey appearing in a program. All hot-path state
/// (residency, memory accounting, reference counts) is indexed by TensorId;
/// the structural TensorKey survives only in the catalog, for diagnostics
/// and golden renderings.
using TensorId = int32_t;
inline constexpr TensorId kInvalidTensorId = -1;

/// Bidirectional TensorKey <-> TensorId mapping for one compiled program.
/// Ids are dense, assigned in first-intern order — so the id assignment is
/// a function of the intern call sequence alone, independent of the index
/// container's internal ordering.
class TensorCatalog {
 public:
  TensorId Intern(const TensorKey& key) {
    auto [it, inserted] =
        index_.try_emplace(key, static_cast<TensorId>(keys_.size()));
    if (inserted) keys_.push_back(key);
    return it->second;
  }
  /// kInvalidTensorId when `key` was never interned.
  TensorId Find(const TensorKey& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? kInvalidTensorId : it->second;
  }
  const TensorKey& key(TensorId id) const { return keys_[id]; }
  int size() const { return static_cast<int>(keys_.size()); }

 private:
  /// The compiler interns the same key many times (once per consuming step);
  /// a hashed index makes the hot repeat-lookup O(1) instead of a red-black
  /// tree walk with field-tuple comparisons at every node.
  struct KeyHash {
    size_t operator()(const TensorKey& k) const {
      uint64_t h = (static_cast<uint64_t>(static_cast<uint8_t>(k.kind)) << 56) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(k.owner)) << 40) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(k.begin)) << 20) ^
                   static_cast<uint64_t>(static_cast<uint32_t>(k.layer));
      // splitmix64 finalizer: spreads the packed fields across all bits.
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 31;
      return static_cast<size_t>(h);
    }
  };

  std::vector<TensorKey> keys_;
  std::unordered_map<TensorKey, TensorId, KeyHash> index_;
};

/// Where a tensor's bytes live and how they may move. A tensor has at most
/// one GPU-resident copy per device; `on_host` records whether a valid host
/// copy exists, so a clean eviction can drop the GPU copy without a transfer
/// — the tensor-lifetime state machine of Harmony's memory manager (Sec 4.4).
/// Device sets are bitmasks (bit d = device d), bounding the runtime to 32
/// GPUs per machine — far above the paper's 4/8-GPU commodity servers.
struct TensorState {
  Bytes bytes = 0;
  bool exists = false;        // has been produced (or auto-created host state)
  bool on_host = false;       // valid copy in host memory
  uint32_t resident_gpus = 0;  // GPUs holding a copy
  uint32_t evicting_gpus = 0;  // copies with an eviction/move in progress
  bool gpu_dirty = false;     // newest data is on a GPU (host copy stale/absent)
  /// Chaos bookkeeping: devices whose copy an injected fault (memory
  /// pressure) emergency-evicted. A refetch back to such a device is
  /// recovery traffic — accounted as kFaultRecovered, not semantic swap/p2p
  /// bytes — because the fault-free run would have hit in device memory.
  /// Cleared per device as copies are healed or semantically released.
  uint32_t fault_evicted_gpus = 0;
  /// True while the only host copy exists because a fault eviction wrote it
  /// (the fault-free run has no host copy): fetches on *other* devices then
  /// account the transfer the fault-free run would have made (p2p or host
  /// bounce from the evicted device) instead of the physical host swap-in.
  bool fault_host_copy = false;
  bool fetch_in_flight = false;

  bool FaultEvictedOn(int d) const { return (fault_evicted_gpus >> d) & 1u; }
  void SetFaultEvicted(int d, bool v) {
    fault_evicted_gpus =
        v ? fault_evicted_gpus | (1u << d) : fault_evicted_gpus & ~(1u << d);
  }
  int inflight_dst = -1;
  int refs_remaining = 0;     // consumers yet to use it (data tensors)

  bool ResidentOn(int d) const { return (resident_gpus >> d) & 1u; }
  bool EvictingOn(int d) const { return (evicting_gpus >> d) & 1u; }
  void SetResident(int d, bool v) {
    resident_gpus = v ? resident_gpus | (1u << d) : resident_gpus & ~(1u << d);
  }
  void SetEvicting(int d, bool v) {
    evicting_gpus = v ? evicting_gpus | (1u << d) : evicting_gpus & ~(1u << d);
  }
  int NumResident() const { return std::popcount(resident_gpus); }

  bool UsableOn(int d) const { return ResidentOn(d) && !EvictingOn(d); }
  /// A GPU that currently holds a stable copy (-1 if none). Lowest device
  /// first, matching the former std::set<int> iteration order.
  int StableGpu() const {
    const uint32_t stable = resident_gpus & ~evicting_gpus;
    return stable == 0 ? -1 : std::countr_zero(stable);
  }

  /// Continuations: fired (and cleared) on production, on GPU arrival, and on
  /// host-copy availability, respectively.
  std::vector<std::function<void()>> creation_waiters;
  std::vector<std::function<void()>> arrival_waiters;
  std::vector<std::function<void()>> host_waiters;
};

/// Registry of all tensor instances in a run, indexed by TensorId. Every id
/// of the program's catalog has a (lazily meaningful) slot from the start;
/// `exists` distinguishes produced tensors.
class TensorTable {
 public:
  explicit TensorTable(int num_tensors) : states_(num_tensors) {}

  TensorState& Get(TensorId id) { return states_[id]; }
  const TensorState& Get(TensorId id) const { return states_[id]; }
  int size() const { return static_cast<int>(states_.size()); }

 private:
  std::vector<TensorState> states_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_TENSOR_H_
