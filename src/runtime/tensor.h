#ifndef HARMONY_RUNTIME_TENSOR_H_
#define HARMONY_RUNTIME_TENSOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/units.h"

namespace harmony::runtime {

/// The tensor classes the Runtime's state machine tracks (Fig 5a).
enum class TensorKind : uint8_t {
  kWeight,      // per-device cached copy of a layer's weights (host master)
  kGrad,        // weight-gradient accumulation buffer, per replica
  kOptState,    // optimizer state (momentum / Adam moments), per device copy
  kActivation,  // boundary activation tensor, keyed by boundary layer + piece
  kGradAct,     // boundary activation gradient
  kStash,       // per-layer stashed intermediate activations
};

const char* TensorKindName(TensorKind kind);

/// Identity of a tensor instance. `layer` is a layer index (kWeight, kGrad,
/// kOptState, kStash) or a boundary index (kActivation, kGradAct: the tensor
/// between layers `layer-1` and `layer`). `begin` is the piece's first sample
/// (-1 for state tensors). `owner` is the caching device (kWeight, kOptState)
/// or the replica (everything else).
struct TensorKey {
  TensorKind kind = TensorKind::kWeight;
  int layer = 0;
  int begin = -1;
  int owner = 0;

  auto Tie() const { return std::tie(kind, layer, begin, owner); }
  bool operator<(const TensorKey& o) const { return Tie() < o.Tie(); }
  bool operator==(const TensorKey& o) const { return Tie() == o.Tie(); }

  std::string ToString() const;
};

/// Where a tensor's bytes live and how they may move. A tensor has at most
/// one GPU-resident copy; `on_host` records whether a valid host copy exists,
/// so a clean eviction can drop the GPU copy without a transfer — the
/// tensor-lifetime state machine of Harmony's memory manager (Sec 4.4).
struct TensorState {
  Bytes bytes = 0;
  bool exists = false;        // has been produced (or auto-created host state)
  bool on_host = false;       // valid copy in host memory
  std::set<int> resident_gpus;  // GPUs holding a copy
  std::set<int> evicting_gpus;  // copies with an eviction/move in progress
  bool gpu_dirty = false;     // newest data is on a GPU (host copy stale/absent)
  bool fetch_in_flight = false;
  int inflight_dst = -1;
  int refs_remaining = 0;     // consumers yet to use it (data tensors)

  bool UsableOn(int d) const {
    return resident_gpus.count(d) > 0 && evicting_gpus.count(d) == 0;
  }
  /// A GPU that currently holds a stable copy (-1 if none).
  int StableGpu() const {
    for (int d : resident_gpus) {
      if (evicting_gpus.count(d) == 0) return d;
    }
    return -1;
  }

  /// Continuations: fired (and cleared) on production, on GPU arrival, and on
  /// host-copy availability, respectively.
  std::vector<std::function<void()>> creation_waiters;
  std::vector<std::function<void()>> arrival_waiters;
  std::vector<std::function<void()>> host_waiters;
};

/// Registry of all tensor instances in a run.
class TensorTable {
 public:
  TensorState& Get(const TensorKey& key) { return states_[key]; }
  bool Contains(const TensorKey& key) const { return states_.count(key) > 0; }
  const std::map<TensorKey, TensorState>& all() const { return states_; }

 private:
  std::map<TensorKey, TensorState> states_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_TENSOR_H_
