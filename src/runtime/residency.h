#ifndef HARMONY_RUNTIME_RESIDENCY_H_
#define HARMONY_RUNTIME_RESIDENCY_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/task_graph.h"
#include "fault/fault.h"
#include "runtime/memory_manager.h"
#include "runtime/step.h"
#include "runtime/tensor.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/stream.h"
#include "trace/trace.h"

namespace harmony::runtime {

/// The residency layer of the execution pipeline: Harmony's tensor-lifetime
/// state machine (Sec 4.4) over per-device memory. Owns the tensor table, the
/// device memory managers, the allocation queues, and every host<->device /
/// peer transfer decision: demand fetches, just-enough LRU eviction (or
/// LMS-style evict-everything when smart_eviction is off), clean drops of
/// host-backed copies, gradient pushes, and checkpoint write-backs.
///
/// The executor above it only says *what* a step needs and produces; this
/// layer decides *where* the bytes come from and emits the byte-accounting
/// trace events (kSwapIn/OutIssued, kP2pIssued, kEvict, kCleanDrop,
/// kAllocStall, kHostBytes, kDeviceBytes) that MetricsSink folds into
/// RunMetrics.
///
/// All tensors are addressed by the program's dense TensorId; the program's
/// catalog resolves ids back to structural keys for diagnostics only.
class Residency {
 public:
  /// Services the residency layer borrows from the executor: the simulation
  /// clock and transfer machinery, the run-failure channel, and a probe for
  /// "more in-flight steps will unpin tensors soon" (which turns an empty
  /// victim list into a wait instead of an OOM).
  struct Env {
    sim::Engine* engine = nullptr;
    sim::FlowNetwork* flows = nullptr;
    const sim::Interconnect* net = nullptr;
    std::vector<sim::Stream*> swapin;   // per device
    std::vector<sim::Stream*> swapout;  // per device
    std::vector<sim::Stream*> p2pin;    // per device
    std::function<void(Status)> fail;
    std::function<bool()> failed;
    std::function<bool(int)> steps_in_flight;  // >1 outstanding steps on d?

    /// Transfer launcher: FlowNetwork::StartFlow directly on fault-free
    /// runs, or the chaos driver's retry-with-backoff wrapper when transfer
    /// failures are armed. (path, bytes, device-for-attribution, done).
    std::function<void(const std::vector<int>&, Bytes, int,
                       std::function<void()>)>
        transfer;
    /// Fault decision oracle; null = chaos disabled (every injection site
    /// pays one branch).
    fault::FaultInjector* injector = nullptr;
  };

  /// `program` must outlive the Residency; its catalog sizes the tensor
  /// table and its ref_counts seed consumer counts.
  Residency(const core::TaskGraph& graph, std::vector<Bytes> capacities,
            const StepProgram* program, Env env, trace::TraceBus* bus);

  // --- allocation & fetching (issue side) ---------------------------------

  /// Makes `id` usable on device `d`: waits for production if needed, then
  /// pins an existing copy or allocates + fetches one (host swap-in, p2p, or
  /// a host bounce when p2p is off). `committed` fires once the allocation is
  /// granted (the step's issue slot can recycle); `arrived` once the bytes
  /// are resident. Taken by const reference: the resident-hit fast path
  /// invokes both synchronously without ever copying them; only the wait and
  /// fetch paths capture copies into continuations.
  void EnsureResident(int d, TensorId id, Bytes bytes, bool from_host,
                      const std::function<void()>& committed,
                      const std::function<void()>& arrived);

  /// Queues an allocation of `bytes` for `id` on `d`; `granted` fires with
  /// the tensor pinned. FIFO per device; triggers eviction on pressure.
  void RequestAlloc(int d, TensorId id, Bytes bytes,
                    std::function<void()> granted);

  /// Allocation for a tensor this step will write: records the size and
  /// queues the allocation (residency is finalized by FinalizeProduce).
  void AllocForProduce(int d, const ProduceSpec& p,
                       std::function<void()> granted);

  /// Drains device `d`'s allocation queue as far as memory allows.
  void PumpAllocator(int d);
  /// Re-pumps every device (after unpins/frees that may unblock any queue).
  void PumpAll();

  // --- step-completion actions (finish side) ------------------------------

  void UnpinNeed(int d, TensorId id);
  /// Finalizes a produced tensor: residency, dirty bit, refcount seeding,
  /// creation-waiter wakeup, and the immediate free of unconsumed data.
  void FinalizeProduce(int d, const ProduceSpec& p);
  /// Newest data now on GPU; any host copy is stale.
  void MarkDirty(TensorId id);
  /// Checkpoint / master-weight write-back: async copy, GPU copy stays.
  void CopyToHost(int d, TensorId id);
  /// Gradient push / optimizer-state write-back: async move, GPU copy
  /// released on completion (concurrent consumers re-fetch from host).
  void MoveToHost(int d, TensorId id);
  /// Consumer finished with a data tensor; frees it on the last reference.
  void Deref(TensorId id);

  // --- host-side hooks (CPU update steps) ---------------------------------

  /// True when a final host copy of `id` exists.
  bool HostReady(TensorId id);
  /// Runs `fn` when a host copy of `id` next becomes available.
  void AddHostWaiter(TensorId id, std::function<void()> fn);
  /// Releases a consumed host copy (gradient applied by the CPU optimizer).
  void ReleaseHostCopy(TensorId id);

  // --- fault hooks --------------------------------------------------------

  /// Injected co-tenant pressure spike: reserves fraction x capacity on
  /// device `d` and emergency-evicts (recovery-classified) resident tensors
  /// until the books balance. Returns the bytes stolen.
  Bytes ApplyFaultPressure(int d, double fraction);
  /// Ends the spike and re-pumps the allocator. Returns the bytes released.
  Bytes ReleaseFaultPressure(int d);

  /// Accounts the permanently-resident host footprint (master weights,
  /// optimizer state, scheme overheads) before execution starts.
  void SetStaticHostBytes(Bytes bytes);
  Bytes host_bytes() const { return host_bytes_; }

  // --- diagnostics --------------------------------------------------------

  bool HasPendingAllocs(int d) const { return !alloc_queue_[d].empty(); }
  /// Queued-but-unserved allocations on `d`, e.g. "W[L3 d0](256.0 MiB)".
  std::string DescribePendingAllocs(int d) const;
  /// One-line status of every unmet need of a stuck step, naming the tensors
  /// it waits on and why ("unproduced", "evicting", "fetch-in-flight", ...).
  std::string DescribeWait(int d, const Step& step);
  /// Structural key for `id` (diagnostics / trace detail).
  const TensorKey& KeyOf(TensorId id) const { return program_->tensors.key(id); }

 private:
  bool AutoCreate(TensorId id, Bytes bytes);
  /// `fault_recovery` evictions exist only because an injected pressure
  /// spike forced them: they account as kFaultRecovered (not kEvict /
  /// kCleanDrop / kSwapOutIssued) and tag the tensor so the healing refetch
  /// is recovery traffic too.
  void StartEviction(int d, TensorId id, bool fault_recovery = false);
  void HostArrived(TensorId id);
  void AddHostBuffer(TensorState* st);
  void DropHostBuffer(TensorState* st);
  void FreeTensor(TensorId id);
  int RefCount(TensorId id) const { return program_->ref_counts[id]; }

  void EmitInstant(trace::EventKind kind, trace::Lane lane, int device,
                   Bytes bytes);
  void EmitFault(trace::EventKind kind, int device, Bytes bytes,
                 const char* detail);
  void TraceTensor(TensorId id, const char* detail, int device);

  const core::TaskGraph& graph_;
  const StepProgram* program_;
  Env env_;
  trace::TraceBus* bus_;

  std::vector<DeviceMemory> mem_;
  TensorTable table_;

  struct AllocReq {
    TensorId id;
    Bytes bytes;
    std::function<void()> granted;
    int fault_attempts = 0;    // injected alloc-failures consumed so far
    bool fault_waiting = false;  // a backoff retry timer owns this slot
  };
  std::vector<std::deque<AllocReq>> alloc_queue_;
  std::vector<int> evictions_in_flight_;

  Bytes host_bytes_ = 0;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_RESIDENCY_H_
