// The cold half of the residency layer: host-copy hooks used by CPU update
// steps, and the diagnostics that describe what a stuck device is waiting
// for. Split from residency.cc so the per-step allocation/eviction state
// machine stays a compact TU.

#include "common/units.h"
#include "runtime/residency.h"

namespace harmony::runtime {

// ---------------------------------------------------------------------------
// Host-side hooks
// ---------------------------------------------------------------------------

bool Residency::HostReady(const TensorKey& key) {
  const TensorState& st = table_.Get(key);
  return st.exists && st.on_host;
}

void Residency::AddHostWaiter(const TensorKey& key, std::function<void()> fn) {
  table_.Get(key).host_waiters.push_back(std::move(fn));
}

void Residency::ReleaseHostCopy(const TensorKey& key) {
  TensorState& st = table_.Get(key);
  if (st.on_host) {
    DropHostBuffer(&st);
    st.on_host = false;
  }
  if (st.resident_gpus.empty()) st.exists = false;
}


std::string Residency::DescribePendingAllocs(int d) const {
  std::string out;
  for (const AllocReq& req : alloc_queue_[d]) {
    if (!out.empty()) out += ", ";
    out += req.key.ToString() + "(" + FormatBytes(req.bytes) + ")";
  }
  return out;
}

std::string Residency::DescribeWait(int d, const Step& step) {
  std::string out;
  auto add = [&out](const TensorKey& key, const std::string& why) {
    if (!out.empty()) out += ", ";
    out += key.ToString() + " [" + why + "]";
  };
  for (const NeedSpec& n : step.needs) {
    if (!table_.Contains(n.key)) {
      add(n.key, "unproduced");
      continue;
    }
    TensorState& st = table_.Get(n.key);
    if (st.UsableOn(d)) continue;  // this need is satisfied
    if (!st.exists) {
      add(n.key, "unproduced");
    } else if (st.evicting_gpus.count(d)) {
      add(n.key, "evicting from d" + std::to_string(d));
    } else if (st.fetch_in_flight) {
      add(n.key, "fetch in flight to d" + std::to_string(st.inflight_dst));
    } else if (st.on_host) {
      add(n.key, "on host, not fetched");
    } else if (int peer = st.StableGpu(); peer >= 0) {
      add(n.key, "resident on d" + std::to_string(peer));
    } else {
      add(n.key, "no stable copy");
    }
  }
  for (const ProduceSpec& p : step.produces) {
    if (!mem_[d].IsResident(p.key)) {
      add(p.key, "allocation not granted");
    }
  }
  if (out.empty()) out = "no unmet tensor waits (join lost)";
  return out;
}

}  // namespace harmony::runtime
