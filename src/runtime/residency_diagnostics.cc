// The cold half of the residency layer: host-copy hooks used by CPU update
// steps, and the diagnostics that describe what a stuck device is waiting
// for. Split from residency.cc so the per-step allocation/eviction state
// machine stays a compact TU.

#include "common/units.h"
#include "runtime/residency.h"

namespace harmony::runtime {

// ---------------------------------------------------------------------------
// Host-side hooks
// ---------------------------------------------------------------------------

bool Residency::HostReady(TensorId id) {
  const TensorState& st = table_.Get(id);
  return st.exists && st.on_host;
}

void Residency::AddHostWaiter(TensorId id, std::function<void()> fn) {
  table_.Get(id).host_waiters.push_back(std::move(fn));
}

void Residency::ReleaseHostCopy(TensorId id) {
  TensorState& st = table_.Get(id);
  if (st.on_host) {
    DropHostBuffer(&st);
    st.on_host = false;
  }
  if (st.resident_gpus == 0) st.exists = false;
}


std::string Residency::DescribePendingAllocs(int d) const {
  std::string out;
  for (const AllocReq& req : alloc_queue_[d]) {
    if (!out.empty()) out += ", ";
    out += KeyOf(req.id).ToString() + "(" + FormatBytes(req.bytes) + ")";
  }
  return out;
}

std::string Residency::DescribeWait(int d, const Step& step) {
  std::string out;
  auto add = [&out, this](TensorId id, const std::string& why) {
    if (!out.empty()) out += ", ";
    out += KeyOf(id).ToString() + " [" + why + "]";
  };
  for (const NeedSpec& n : step.needs) {
    TensorState& st = table_.Get(n.id);
    if (st.UsableOn(d)) continue;  // this need is satisfied
    if (!st.exists) {
      add(n.id, "unproduced");
    } else if (st.EvictingOn(d)) {
      add(n.id, "evicting from d" + std::to_string(d));
    } else if (st.fetch_in_flight) {
      add(n.id, "fetch in flight to d" + std::to_string(st.inflight_dst));
    } else if (st.on_host) {
      add(n.id, "on host, not fetched");
    } else if (int peer = st.StableGpu(); peer >= 0) {
      add(n.id, "resident on d" + std::to_string(peer));
    } else {
      add(n.id, "no stable copy");
    }
  }
  for (const ProduceSpec& p : step.produces) {
    if (!mem_[d].IsResident(p.id)) {
      add(p.id, "allocation not granted");
    }
  }
  if (out.empty()) {
    // Every need is resident and every allocation granted: the step is
    // stream-bound (e.g. a permanently stalled compute op under chaos).
    // Name the tensors anyway so a watchdog report pins the step's inputs.
    std::string keys;
    for (const NeedSpec& n : step.needs) {
      if (!keys.empty()) keys += ", ";
      keys += KeyOf(n.id).ToString();
    }
    out = "no unmet tensor waits; stream-bound with resident needs [" + keys +
          "]";
  }
  return out;
}

}  // namespace harmony::runtime
