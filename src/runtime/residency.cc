#include "runtime/residency.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace harmony::runtime {

Residency::Residency(const core::TaskGraph& graph,
                     std::vector<Bytes> capacities, const StepProgram* program,
                     Env env, trace::TraceBus* bus)
    : graph_(graph),
      program_(program),
      env_(std::move(env)),
      bus_(bus),
      table_(program->tensors.size()) {
  mem_.reserve(capacities.size());
  for (Bytes capacity : capacities) {
    mem_.emplace_back(capacity, program->tensors.size());
  }
  alloc_queue_.assign(capacities.size(), {});
  evictions_in_flight_.assign(capacities.size(), 0);
}

// ---------------------------------------------------------------------------
// Trace plumbing
// ---------------------------------------------------------------------------

void Residency::EmitInstant(trace::EventKind kind, trace::Lane lane,
                            int device, Bytes bytes) {
  if (bus_ == nullptr || !bus_->active()) return;
  trace::Event e;
  e.kind = kind;
  e.lane = lane;
  e.device = device;
  e.time = env_.engine->now();
  e.bytes = bytes;
  bus_->Emit(e);
}

void Residency::EmitFault(trace::EventKind kind, int device, Bytes bytes,
                          const char* detail) {
  if (bus_ == nullptr || !bus_->active()) return;
  trace::Event e;
  e.kind = kind;
  e.lane = trace::Lane::kAlloc;
  e.device = device;
  e.time = env_.engine->now();
  e.bytes = bytes;
  e.detail = detail;
  bus_->Emit(e);
}

void Residency::TraceTensor(TensorId id, const char* detail, int device) {
  if (bus_ == nullptr || !bus_->tensor_events()) return;
  trace::Event e;
  e.kind = trace::EventKind::kTensor;
  e.lane = trace::Lane::kAlloc;
  e.device = device;
  e.time = env_.engine->now();
  e.detail = detail;
  e.name = KeyOf(id).ToString();
  bus_->Emit(e);
}

// ---------------------------------------------------------------------------
// Host accounting
// ---------------------------------------------------------------------------

void Residency::SetStaticHostBytes(Bytes bytes) {
  host_bytes_ = bytes;
  EmitInstant(trace::EventKind::kHostBytes, trace::Lane::kHost, -1,
              host_bytes_);
}

void Residency::AddHostBuffer(TensorState* st) {
  host_bytes_ += st->bytes;
  EmitInstant(trace::EventKind::kHostBytes, trace::Lane::kHost, -1,
              host_bytes_);
}

void Residency::DropHostBuffer(TensorState* st) {
  host_bytes_ -= st->bytes;
  EmitInstant(trace::EventKind::kHostBytes, trace::Lane::kHost, -1,
              host_bytes_);
}

// ---------------------------------------------------------------------------
// Tensor lifetime
// ---------------------------------------------------------------------------

bool Residency::AutoCreate(TensorId id, Bytes bytes) {
  const TensorKey& key = KeyOf(id);
  const bool creatable =
      key.kind == TensorKind::kWeight || key.kind == TensorKind::kOptState ||
      (key.kind == TensorKind::kActivation && key.layer == 0);
  if (!creatable) return false;
  TensorState& st = table_.Get(id);
  st.bytes = bytes;
  st.exists = true;
  st.on_host = true;
  if (key.kind == TensorKind::kActivation) {
    // Loader data occupies host memory until consumed; persistent state
    // (weights, optimizer) is counted in the static host footprint.
    AddHostBuffer(&st);
    st.refs_remaining = RefCount(id);
  }
  return true;
}

void Residency::FreeTensor(TensorId id) {
  TensorState& st = table_.Get(id);
  TraceTensor(id, "free", -1);
  for (uint32_t rem = st.resident_gpus; rem != 0; rem &= rem - 1) {
    const int d = std::countr_zero(rem);
    if (st.EvictingOn(d) || mem_[d].IsPinned(id)) {
      // An eviction or an in-flight host-copy flow still holds this copy;
      // its completion handler releases the residency once `exists` is
      // false.
      continue;
    }
    mem_[d].RemoveResident(id);
    st.SetResident(d, false);
  }
  const TensorKind kind = KeyOf(id).kind;
  if (st.on_host &&
      (kind == TensorKind::kActivation || kind == TensorKind::kGradAct ||
       kind == TensorKind::kStash || kind == TensorKind::kGrad)) {
    DropHostBuffer(&st);
    st.on_host = false;
  }
  st.exists = false;
  st.fault_evicted_gpus = 0;  // a freed tensor has nothing left to heal
  st.fault_host_copy = false;
}

void Residency::HostArrived(TensorId id) {
  TensorState& st = table_.Get(id);
  auto waiters = std::move(st.host_waiters);
  st.host_waiters.clear();
  for (auto& w : waiters) w();
}

// ---------------------------------------------------------------------------
// Allocation & eviction
// ---------------------------------------------------------------------------

void Residency::AllocForProduce(int d, const ProduceSpec& p,
                                std::function<void()> granted) {
  table_.Get(p.id).bytes = p.bytes;
  RequestAlloc(d, p.id, p.bytes, std::move(granted));
}

void Residency::RequestAlloc(int d, TensorId id, Bytes bytes,
                             std::function<void()> granted) {
  TraceTensor(id, "alloc-request", d);
  alloc_queue_[d].push_back(AllocReq{id, bytes, std::move(granted)});
  PumpAllocator(d);
}

void Residency::PumpAllocator(int d) {
  if (env_.failed()) return;
  while (!alloc_queue_[d].empty()) {
    AllocReq& req = alloc_queue_[d].front();
    if (req.fault_waiting) return;  // the backoff retry timer owns this slot
    if (mem_[d].IsResident(req.id)) {
      TensorState& st = table_.Get(req.id);
      if (st.EvictingOn(d)) {
        // The previous copy is on its way out (e.g. a gradient push); its
        // completion re-pumps this queue.
        return;
      }
      // Re-produced accumulation buffer whose copy survived on-device:
      // reuse the existing allocation.
      TraceTensor(req.id, "alloc-reuse", d);
      mem_[d].Pin(req.id);
      auto granted = std::move(req.granted);
      alloc_queue_[d].pop_front();
      granted();
      continue;
    }
    if (req.bytes <= mem_[d].free_bytes()) {
      if (env_.injector != nullptr && env_.injector->AllocFails()) {
        // Injected transient allocation failure (fragmentation): retry with
        // jittered backoff, fatal only once the plan's budget is spent.
        EmitFault(trace::EventKind::kFaultInjected, d, req.bytes,
                  "alloc-failure");
        if (req.fault_attempts >= env_.injector->plan().max_alloc_retries) {
          env_.fail(Status::OutOfMemory(
              "injected alloc-failure for " + KeyOf(req.id).ToString() +
              " on device " + std::to_string(d) + " persisted past " +
              std::to_string(req.fault_attempts) + " retries (chaos " +
              env_.injector->plan().Describe() + ")"));
          return;
        }
        const TimeSec delay = env_.injector->BackoffDelay(req.fault_attempts);
        ++req.fault_attempts;
        req.fault_waiting = true;
        env_.engine->After(delay, [this, d]() {
          if (env_.failed() || alloc_queue_[d].empty()) return;
          alloc_queue_[d].front().fault_waiting = false;
          PumpAllocator(d);
        });
        return;
      }
      if (req.fault_attempts > 0) {
        EmitFault(trace::EventKind::kFaultRecovered, d, 0, "alloc-failure");
      }
      TraceTensor(req.id, "alloc-grant", d);
      mem_[d].AddResident(req.id, req.bytes);
      mem_[d].Pin(req.id);
      EmitInstant(trace::EventKind::kDeviceBytes, trace::Lane::kAlloc, d,
                  mem_[d].used());
      auto granted = std::move(req.granted);
      alloc_queue_[d].pop_front();
      granted();
      continue;
    }
    const Bytes deficit = req.bytes - mem_[d].free_bytes();
    // Harmony's memory manager evicts just enough, coldest-first. LMS-style
    // virtualization (the per-GPU-swap baselines) instead swaps out *all*
    // inactive tensors once the limit is hit — the eviction storms behind
    // the paper's 100-300x baseline swap volumes (Fig 10).
    const Bytes want = graph_.flags.smart_eviction
                           ? deficit
                           : std::numeric_limits<Bytes>::max();
    const auto victims = mem_[d].PickVictims(want);
    if (victims.empty()) {
      if (evictions_in_flight_[d] > 0) {
        // Retry when one lands.
        EmitInstant(trace::EventKind::kAllocStall, trace::Lane::kAlloc, d,
                    deficit);
        return;
      }
      if (env_.steps_in_flight(d)) {
        // Another in-flight step will finish and unpin its tensors; the
        // allocator is re-pumped from the executor's step completion.
        EmitInstant(trace::EventKind::kAllocStall, trace::Lane::kAlloc, d,
                    deficit);
        return;
      }
      if (mem_[d].pressure() > 0) {
        // An injected pressure spike is squatting on the capacity this
        // allocation needs: wait it out (the spike's release re-pumps this
        // queue) instead of declaring a working-set OOM the fault-free run
        // would never hit. The watchdog converts a permanent spike into
        // diagnostics.
        EmitInstant(trace::EventKind::kAllocStall, trace::Lane::kAlloc, d,
                    deficit);
        return;
      }
      env_.fail(Status::OutOfMemory(
          "device " + std::to_string(d) + " cannot fit " +
          KeyOf(req.id).ToString() + " (" + FormatBytes(req.bytes) +
          "): working set exceeds capacity"));
      return;
    }
    const Bytes free_before = mem_[d].free_bytes();
    // Evictions forced purely by an injected pressure spike are recovery
    // actions the fault-free run never makes: classify each victim against
    // the deficit that would exist with the spike's bytes given back. With
    // smart_eviction off the fault-free run evicts everything inactive
    // anyway, so every victim stays semantic.
    const bool classify =
        graph_.flags.smart_eviction && mem_[d].pressure() > 0;
    Bytes natural_deficit = std::max<Bytes>(
        0, req.bytes - (mem_[d].free_bytes() + mem_[d].pressure()));
    for (const TensorId v : victims) {
      const bool recovery = classify && natural_deficit <= 0;
      natural_deficit =
          std::max<Bytes>(0, natural_deficit - table_.Get(v).bytes);
      StartEviction(d, v, recovery);
    }
    if (mem_[d].free_bytes() > free_before) continue;  // clean drops freed space
    return;  // all victims are async transfers; resume from their completions
  }
}

void Residency::PumpAll() {
  for (size_t d = 0; d < mem_.size(); ++d) PumpAllocator(static_cast<int>(d));
}

void Residency::StartEviction(int d, TensorId id, bool fault_recovery) {
  TensorState& st = table_.Get(id);
  HARMONY_CHECK(st.ResidentOn(d))
      << "evicting " << KeyOf(id).ToString() << " with no copy on device " << d;
  TraceTensor(id, fault_recovery ? "fault-evict-start" : "evict-start", d);
  mem_[d].Pin(id);  // exclude from further victim picks
  st.SetEvicting(d, true);
  if (fault_recovery) st.SetFaultEvicted(d, true);
  // Harmony's state machine drops copies that are backed elsewhere without a
  // transfer; LMS-style baselines always write the victim to host.
  const bool backed = st.on_host || st.NumResident() > 1;
  if (backed && graph_.flags.smart_eviction) {
    // Dropped synchronously; the caller (PumpAllocator) observes the freed
    // space — no re-entrant pump, which would double-evict from its stale
    // victim list.
    if (fault_recovery) {
      EmitFault(trace::EventKind::kFaultRecovered, d, 0, "mem-pressure");
    } else {
      EmitInstant(trace::EventKind::kCleanDrop, trace::Lane::kAlloc, d,
                  st.bytes);
    }
    st.SetResident(d, false);
    st.SetEvicting(d, false);
    mem_[d].Unpin(id);
    mem_[d].RemoveResident(id);
    return;
  }
  ++evictions_in_flight_[d];
  const Bytes bytes = st.bytes;
  sim::Condition* flow_done =
      env_.swapout[d]->Push({}, [this, d, bytes](std::function<void()> done) {
        env_.transfer(env_.net->SwapOutPath(d), bytes, d, std::move(done));
      });
  flow_done->OnFire([this, d, id, fault_recovery]() {
    TensorState& st = table_.Get(id);
    if (fault_recovery) {
      // The emergency eviction's transfer is recovery traffic, and the host
      // copy it writes exists only because of the fault (unless a semantic
      // write-back claimed the bytes while this was in flight).
      EmitFault(trace::EventKind::kFaultRecovered, d, st.bytes,
                "mem-pressure");
      if (st.FaultEvictedOn(d) && st.exists && !st.on_host) {
        st.fault_host_copy = true;
      }
    } else {
      EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, d,
                  st.bytes);
      EmitInstant(trace::EventKind::kEvict, trace::Lane::kAlloc, d, st.bytes);
      st.fault_host_copy = false;  // the host copy is semantic now
    }
    if (st.exists && !st.on_host) {
      AddHostBuffer(&st);
      st.on_host = true;
      st.gpu_dirty = false;
    }
    st.SetResident(d, false);
    st.SetEvicting(d, false);
    mem_[d].Unpin(id);
    mem_[d].RemoveResident(id);
    --evictions_in_flight_[d];
    if (st.exists) HostArrived(id);
    PumpAllocator(d);
  });
}

// ---------------------------------------------------------------------------
// Fault hooks
// ---------------------------------------------------------------------------

Bytes Residency::ApplyFaultPressure(int d, double fraction) {
  const Bytes steal =
      static_cast<Bytes>(static_cast<double>(mem_[d].capacity()) * fraction);
  mem_[d].SetPressure(steal);
  // Emergency eviction: reclaim the overdraft right away so the spike
  // behaves like a real co-tenant allocation rather than a lazy debt. Every
  // victim is recovery-classified — the fault-free run keeps them resident.
  if (mem_[d].free_bytes() < 0) {
    const auto victims = mem_[d].PickVictims(-mem_[d].free_bytes());
    for (const TensorId v : victims) {
      StartEviction(d, v, /*fault_recovery=*/true);
    }
  }
  PumpAllocator(d);
  return steal;
}

Bytes Residency::ReleaseFaultPressure(int d) {
  const Bytes steal = mem_[d].pressure();
  mem_[d].SetPressure(0);
  PumpAllocator(d);
  return steal;
}

// ---------------------------------------------------------------------------
// Fetching
// ---------------------------------------------------------------------------

void Residency::EnsureResident(int d, TensorId id, Bytes bytes, bool from_host,
                               const std::function<void()>& committed,
                               const std::function<void()>& arrived) {
  if (env_.failed()) return;
  TensorState& st = table_.Get(id);
  // Built lazily: the resident-hit fast path below never copies the
  // callbacks, and every wait path pays for the capture only when taken.
  auto retry = [&]() {
    return [this, d, id, bytes, from_host, committed, arrived]() {
      EnsureResident(d, id, bytes, from_host, committed, arrived);
    };
  };
  if (!st.exists) {
    if (!AutoCreate(id, bytes)) {
      st.creation_waiters.push_back(retry());  // wait for the producer
      return;
    }
  }
  TensorState& state = table_.Get(id);
  if (state.UsableOn(d)) {
    TraceTensor(id, "need-hit", d);
    mem_[d].Pin(id);
    mem_[d].Touch(id);
    committed();
    arrived();
    return;
  }
  if (state.fetch_in_flight) {
    // Another consumer is already pulling a copy; join and re-evaluate when
    // it lands.
    state.arrival_waiters.push_back(retry());
    return;
  }
  if (state.ResidentOn(d)) {
    // Our copy is being evicted; wait for the host copy and fetch it back.
    state.host_waiters.push_back(retry());
    return;
  }
  // Pick a source: the host copy when available (and mandatory for
  // checkpoint reads via the message-passing channel), else a stable peer
  // copy for a p2p transfer.
  int src = -1;
  if (!state.on_host) {
    if (from_host) {
      state.host_waiters.push_back(retry());  // the producer's copy is coming
      return;
    }
    src = state.StableGpu();
    if (src < 0) {
      // All copies are mid-eviction: the data will surface on host.
      state.host_waiters.push_back(retry());
      return;
    }
  }
  state.fetch_in_flight = true;
  state.inflight_dst = d;
  if (src >= 0) mem_[src].Pin(id);  // hold the source copy during transfer

  RequestAlloc(d, id, state.bytes, [this, d, id, src, committed, arrived]() {
    committed();
    TensorState& st = table_.Get(id);
    const Bytes bytes = st.bytes;
    // Chaos classification: a refetch healing a fault eviction on this
    // device is recovery traffic (the fault-free run would have hit in
    // device memory); a fetch forced through a fault-created host copy
    // instead accounts the transfer the fault-free run would have made from
    // the evicted device.
    const bool heal = st.FaultEvictedOn(d);
    int ghost_src = -1;
    if (heal) {
      st.SetFaultEvicted(d, false);
    } else if (src < 0 && st.fault_host_copy && st.fault_evicted_gpus != 0) {
      ghost_src = std::countr_zero(st.fault_evicted_gpus);
    }
    auto finish = [this, d, id, src, arrived]() {
      TensorState& st = table_.Get(id);
      TraceTensor(id, "fetch-arrive", d);
      if (src >= 0) mem_[src].Unpin(id);  // source copy stays (it's a copy)
      st.SetResident(d, true);
      st.fetch_in_flight = false;
      st.inflight_dst = -1;
      auto waiters = std::move(st.arrival_waiters);
      st.arrival_waiters.clear();
      arrived();
      for (auto& w : waiters) w();
    };
    if (src < 0) {
      // Host -> device swap-in.
      HARMONY_CHECK(st.on_host) << KeyOf(id).ToString() << " has no source copy";
      if (heal) {
        EmitFault(trace::EventKind::kFaultRecovered, d, bytes, "mem-pressure");
      } else if (ghost_src >= 0) {
        // Physical host swap-in standing in for the p2p (or host bounce)
        // the fault-free run would have made from the evicted device.
        if (graph_.flags.p2p_transfers) {
          EmitInstant(trace::EventKind::kP2pIssued, trace::Lane::kP2pIn, d,
                      bytes);
        } else {
          EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut,
                      ghost_src, bytes);
          EmitInstant(trace::EventKind::kSwapInIssued, trace::Lane::kSwapIn, d,
                      bytes);
        }
        EmitFault(trace::EventKind::kFaultRecovered, d, 0, "mem-pressure");
      } else {
        EmitInstant(trace::EventKind::kSwapInIssued, trace::Lane::kSwapIn, d,
                    bytes);
      }
      env_.swapin[d]->Push({}, [this, d, bytes,
                                finish](std::function<void()> done) {
        env_.transfer(env_.net->SwapInPath(d), bytes, d, [done, finish]() {
          finish();
          done();
        });
      });
      return;
    }
    if (graph_.flags.p2p_transfers) {
      if (heal) {
        EmitFault(trace::EventKind::kFaultRecovered, d, bytes, "mem-pressure");
      } else {
        EmitInstant(trace::EventKind::kP2pIssued, trace::Lane::kP2pIn, d,
                    bytes);
      }
      env_.p2pin[d]->Push({}, [this, d, src, bytes,
                               finish](std::function<void()> done) {
        env_.transfer(env_.net->P2pPath(src, d), bytes, d,
                      [done, finish]() {
                        finish();
                        done();
                      });
      });
      return;
    }
    // p2p disabled: bounce through host memory as two swaps.
    if (heal) {
      EmitFault(trace::EventKind::kFaultRecovered, d, bytes, "mem-pressure");
    } else {
      EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, src,
                  bytes);
      EmitInstant(trace::EventKind::kSwapInIssued, trace::Lane::kSwapIn, d,
                  bytes);
    }
    env_.swapout[src]->Push({}, [this, src, d, bytes, id,
                                 finish](std::function<void()> done) {
      env_.transfer(env_.net->SwapOutPath(src), bytes, src,
                            [this, d, bytes, id, finish, done]() {
        TensorState& st = table_.Get(id);
        if (!st.on_host) {
          AddHostBuffer(&st);
          st.on_host = true;
        }
        env_.swapin[d]->Push({}, [this, d, bytes,
                                  finish](std::function<void()> in_done) {
          env_.transfer(env_.net->SwapInPath(d), bytes, d,
                        [finish, in_done]() {
                          finish();
                          in_done();
                        });
        });
        done();
      });
    });
  });
}

// ---------------------------------------------------------------------------
// Step-completion actions
// ---------------------------------------------------------------------------

void Residency::UnpinNeed(int d, TensorId id) {
  TraceTensor(id, "need-unpin", d);
  if (mem_[d].IsResident(id)) mem_[d].Unpin(id);
}

void Residency::FinalizeProduce(int d, const ProduceSpec& p) {
  TensorState& st = table_.Get(p.id);
  st.SetResident(d, true);  // the allocator reserved this copy at issue
  st.SetFaultEvicted(d, false);  // fresh data supersedes any pending heal
  st.gpu_dirty = true;
  if (!st.exists) {
    st.exists = true;
    st.refs_remaining = RefCount(p.id);
    auto waiters = std::move(st.creation_waiters);
    st.creation_waiters.clear();
    for (auto& w : waiters) w();
  }
  TraceTensor(p.id, "produce-unpin", d);
  mem_[d].Unpin(p.id);
  const TensorKind kind = KeyOf(p.id).kind;
  const bool data_tensor = kind == TensorKind::kActivation ||
                           kind == TensorKind::kGradAct ||
                           kind == TensorKind::kStash;
  if (data_tensor && st.refs_remaining == 0) FreeTensor(p.id);
}

void Residency::MarkDirty(TensorId id) {
  TensorState& st = table_.Get(id);
  st.gpu_dirty = true;
  st.on_host = false;  // host copy (if any) is stale now
  st.fault_host_copy = false;
}

void Residency::CopyToHost(int d, TensorId id) {
  TensorState& st = table_.Get(id);
  TraceTensor(id, "copy-to-host", d);
  if (!st.ResidentOn(d) || st.EvictingOn(d)) {
    if (st.FaultEvictedOn(d)) {
      // A fault eviction already moved (or is moving) these bytes to host;
      // account the checkpoint copy the fault-free run would have issued.
      // The copy semantically persists on-device, so the heal tag stays.
      EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, d,
                  st.bytes);
      st.fault_host_copy = false;  // the host copy is semantic now
    }
    return;  // already freed, or a pending eviction writes host anyway
  }
  mem_[d].Pin(id);
  const Bytes bytes = st.bytes;
  EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, d,
              bytes);
  env_.swapout[d]->Push({}, [this, d, bytes, id](std::function<void()> done) {
    env_.transfer(env_.net->SwapOutPath(d), bytes, d, [this, d, id,
                                                            done]() {
      TensorState& st = table_.Get(id);
      if (st.exists && !st.on_host) {
        AddHostBuffer(&st);
        st.on_host = true;
        st.gpu_dirty = false;
      }
      mem_[d].Unpin(id);
      if (!st.exists) {
        // All consumers drained during the copy; finish the deferred free.
        if (!mem_[d].IsPinned(id) && st.ResidentOn(d)) {
          mem_[d].RemoveResident(id);
          st.SetResident(d, false);
        }
      } else {
        HostArrived(id);
      }
      done();
    });
  });
}

void Residency::MoveToHost(int d, TensorId id) {
  TensorState& st = table_.Get(id);
  // An LRU eviction already in flight produces the same host copy; a second
  // transfer would double-release the residency.
  if (!st.ResidentOn(d) || st.EvictingOn(d)) {
    if (st.FaultEvictedOn(d)) {
      // A fault eviction already performed this push's transfer: account
      // the semantic move and release the heal claim — after a move the
      // fault-free run holds no device copy either, so later fetches are
      // semantic in both worlds.
      EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, d,
                  st.bytes);
      st.SetFaultEvicted(d, false);
      st.fault_host_copy = false;
      if (st.exists && st.on_host) HostArrived(id);
    }
    return;
  }
  mem_[d].Pin(id);
  st.SetEvicting(d, true);
  const Bytes bytes = st.bytes;
  EmitInstant(trace::EventKind::kSwapOutIssued, trace::Lane::kSwapOut, d,
              bytes);
  env_.swapout[d]->Push({}, [this, d, bytes, id](std::function<void()> done) {
    env_.transfer(env_.net->SwapOutPath(d), bytes, d, [this, d, id,
                                                            done]() {
      TensorState& st = table_.Get(id);
      if (st.exists && !st.on_host) {
        AddHostBuffer(&st);
        st.on_host = true;
        st.gpu_dirty = false;
      }
      st.SetResident(d, false);
      st.SetEvicting(d, false);
      mem_[d].Unpin(id);
      mem_[d].RemoveResident(id);
      if (st.exists) HostArrived(id);
      PumpAllocator(d);
      done();
    });
  });
}

void Residency::Deref(TensorId id) {
  TensorState& st = table_.Get(id);
  if (--st.refs_remaining == 0) FreeTensor(id);
}

}  // namespace harmony::runtime
