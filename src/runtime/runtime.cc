#include "runtime/runtime.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "common/logging.h"
#include "model/cost_model.h"
#include "runtime/memory_manager.h"
#include "runtime/tensor.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/stream.h"

namespace harmony::runtime {
namespace {

using core::MbPiece;
using core::Task;
using core::TaskGraph;
using core::TaskType;

struct NeedSpec {
  TensorKey key;
  Bytes bytes = 0;
  /// Fetch strictly from the host copy (checkpoint reads use the message-
  /// passing channel, Sec 4.4); never moves a peer GPU's copy.
  bool from_host = false;
};

struct ProduceSpec {
  TensorKey key;
  Bytes bytes = 0;
};

/// One layer-granularity unit of GPU work, compiled from a Task. The
/// executor issues a step's fetches/allocations, runs its compute on the
/// compute stream, then applies the post actions.
struct Step {
  int task = -1;
  TimeSec compute = 0;
  std::vector<NeedSpec> needs;
  std::vector<ProduceSpec> produces;
  std::vector<TensorKey> derefs;        // consumed inputs (refcount--)
  std::vector<TensorKey> copy_to_host;  // checkpoint / master write-back
  std::vector<TensorKey> move_to_host;  // gradient push, optimizer state
  std::vector<TensorKey> mark_dirty;
};

/// CPU-offloaded work (weight updates).
struct CpuStep {
  int task = -1;
  TimeSec duration = 0;
  std::vector<TensorKey> host_needs;  // wait until a valid host copy exists
  std::vector<int> wait_tasks;        // task-completion dependencies
  std::vector<TensorKey> host_frees;  // consumed host copies (gradients)
};

class Execution {
 public:
  Execution(const hw::MachineSpec& machine, const model::SequentialModel& model,
            const TaskGraph& graph, const RuntimeOptions& options)
      : machine_(machine),
        model_(model),
        graph_(graph),
        options_(options),
        cost_(machine.gpu),
        net_(machine),
        flows_(&engine_, net_.capacities()) {}

  Result<RunMetrics> Run();

 private:
  // --- compilation -------------------------------------------------------
  void Precompute();
  void CompileAll();
  void CompileForward(const Task& t);
  void CompileBackward(const Task& t);
  void CompileGpuUpdate(const Task& t);
  void CompileCpuUpdate(const Task& t);
  std::vector<NeedSpec> BoundaryInputKeys(int boundary, int replica,
                                          const MbPiece& piece);
  std::vector<NeedSpec> StashKeys(int layer, int replica, const MbPiece& piece);
  void ComputeRefs();

  // --- tensor & memory machinery -----------------------------------------
  bool AutoCreate(const TensorKey& key, Bytes bytes);
  void EnsureResident(int d, const TensorKey& key, Bytes bytes, bool from_host,
                      std::function<void()> committed,
                      std::function<void()> arrived);
  void RequestAlloc(int d, const TensorKey& key, Bytes bytes,
                    std::function<void()> granted);
  void PumpAllocator(int d);
  void StartEviction(int d, const TensorKey& key);
  void HostArrived(const TensorKey& key);
  void AddHostBuffer(TensorState* st);
  void DropHostBuffer(TensorState* st);
  void FreeTensor(const TensorKey& key);
  void Fail(Status status);

  // --- execution driving --------------------------------------------------
  void TryIssue(int d);
  void IssueStep(int d, int step_idx);
  void FinishStep(int d, int step_idx);
  void AdvanceCpu(int d);
  void OnTaskStepDone(int task);
  void WhenTaskComplete(int task, std::function<void()> fn);

  Bytes opt_state_bytes(int layer) const {
    return opt_mult_ * model_.layers[layer].spec.param_bytes;
  }

  // --- members ------------------------------------------------------------
  const hw::MachineSpec& machine_;
  const model::SequentialModel& model_;
  const TaskGraph& graph_;
  RuntimeOptions options_;
  model::CostModel cost_;
  sim::Engine engine_;
  sim::Interconnect net_;
  sim::FlowNetwork flows_;

  std::vector<std::unique_ptr<sim::Stream>> compute_, swapin_, swapout_, p2pin_,
      cpu_;
  std::vector<DeviceMemory> mem_;
  TensorTable table_;
  std::deque<std::unique_ptr<sim::Condition>> conditions_;

  // Compiled program.
  std::vector<std::vector<Step>> steps_;        // per device
  std::vector<std::vector<CpuStep>> cpu_steps_; // per process
  std::map<TensorKey, int> ref_counts_;

  // Piece layouts: [replica][boundary/layer] -> producer pieces.
  std::vector<std::vector<std::vector<MbPiece>>> act_layout_;
  std::vector<std::vector<std::vector<MbPiece>>> grad_layout_;
  std::vector<std::vector<std::vector<MbPiece>>> stash_layout_;

  // Cached model arrays.
  std::vector<Bytes> boundary_bytes_;  // per-sample, index 0..R
  std::vector<Bytes> stash_bytes_;     // per-sample, per layer
  Bytes opt_mult_ = 2;

  // Driving state.
  std::vector<size_t> issue_next_, steps_done_;
  std::vector<bool> issue_busy_;
  std::vector<size_t> cpu_next_;
  int issue_window_ = 2;

  struct AllocReq {
    TensorKey key;
    Bytes bytes;
    std::function<void()> granted;
  };
  std::vector<std::deque<AllocReq>> alloc_queue_;
  std::vector<int> evictions_in_flight_;

  std::vector<int> task_steps_remaining_;
  std::vector<std::vector<std::function<void()>>> task_waiters_;

  Bytes host_bytes_ = 0;
  Bytes peak_host_ = 0;
  RunMetrics metrics_;
  bool failed_ = false;
  Status failure_;
};

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

void Execution::Precompute() {
  const int R = model_.num_layers();
  boundary_bytes_.assign(R + 1, 0);
  boundary_bytes_[0] = model_.sample_input_bytes;
  stash_bytes_.assign(R, 0);
  for (int l = 0; l < R; ++l) {
    boundary_bytes_[l + 1] = model_.layers[l].boundary_out_bytes();
    stash_bytes_[l] = model_.layers[l].spec.stash_bytes_per_sample +
                      model_.layers[l].relay_bytes_per_sample;
  }
  opt_mult_ = model::OptimizerStateBytesPerParamByte(options_.optimizer);

  act_layout_.assign(graph_.num_replicas,
                     std::vector<std::vector<MbPiece>>(R + 1));
  grad_layout_.assign(graph_.num_replicas,
                      std::vector<std::vector<MbPiece>>(R + 1));
  stash_layout_.assign(graph_.num_replicas,
                       std::vector<std::vector<MbPiece>>(R));
  auto merge = [](std::vector<MbPiece>* dst, const std::vector<MbPiece>& src) {
    dst->insert(dst->end(), src.begin(), src.end());
    std::sort(dst->begin(), dst->end(),
              [](const MbPiece& a, const MbPiece& b) { return a.begin < b.begin; });
    dst->erase(std::unique(dst->begin(), dst->end(),
                           [](const MbPiece& a, const MbPiece& b) {
                             return a.begin == b.begin;
                           }),
               dst->end());
  };
  for (const Task& t : graph_.tasks) {
    if (t.type == TaskType::kForward) {
      for (int b = t.pack.lo + 1; b <= t.pack.hi + 1; ++b) {
        merge(&act_layout_[t.replica][b], t.group);
      }
      if (t.save_full_stash) {
        for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
          merge(&stash_layout_[t.replica][l], t.group);
        }
      }
    } else if (t.type == TaskType::kBackward) {
      grad_layout_[t.replica][t.pack.lo] = t.group;
    }
  }
}

std::vector<NeedSpec> Execution::BoundaryInputKeys(int boundary, int replica,
                                                   const MbPiece& piece) {
  std::vector<NeedSpec> out;
  if (boundary_bytes_[boundary] == 0) return out;
  if (boundary == 0 || act_layout_[replica][boundary].empty()) {
    // Data loader (or an unproduced boundary, which AutoCreate rejects):
    // keyed at consumer granularity.
    out.push_back(NeedSpec{
        TensorKey{TensorKind::kActivation, boundary, piece.begin, replica},
        static_cast<Bytes>(piece.size) * boundary_bytes_[boundary]});
    return out;
  }
  for (const MbPiece& p : act_layout_[replica][boundary]) {
    if (!p.Overlaps(piece)) continue;
    out.push_back(NeedSpec{
        TensorKey{TensorKind::kActivation, boundary, p.begin, replica},
        static_cast<Bytes>(p.size) * boundary_bytes_[boundary]});
  }
  HARMONY_CHECK(!out.empty()) << "no producer pieces for boundary " << boundary;
  return out;
}

std::vector<NeedSpec> Execution::StashKeys(int layer, int replica,
                                           const MbPiece& piece) {
  std::vector<NeedSpec> out;
  if (stash_bytes_[layer] == 0) return out;
  HARMONY_CHECK(!stash_layout_[replica][layer].empty())
      << "backward without recompute needs stash of layer " << layer;
  for (const MbPiece& p : stash_layout_[replica][layer]) {
    if (!p.Overlaps(piece)) continue;
    out.push_back(
        NeedSpec{TensorKey{TensorKind::kStash, layer, p.begin, replica},
                 static_cast<Bytes>(p.size) * stash_bytes_[layer]});
  }
  return out;
}

void Execution::CompileForward(const Task& t) {
  const int d = t.device;
  for (const MbPiece& piece : t.group) {
    for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
      Step s;
      s.task = t.id;
      s.compute = cost_.FwdTime(model_.layers[l].spec, piece.size);
      const Bytes params = model_.layers[l].spec.param_bytes;
      if (params > 0) {
        s.needs.push_back(
            NeedSpec{TensorKey{TensorKind::kWeight, l, -1, d}, params});
      }
      if (l == t.pack.lo) {
        for (const NeedSpec& in : BoundaryInputKeys(l, t.replica, piece)) {
          s.needs.push_back(in);
          s.derefs.push_back(in.key);
        }
      } else if (boundary_bytes_[l] > 0) {
        const TensorKey in{TensorKind::kActivation, l, piece.begin, t.replica};
        s.needs.push_back(
            NeedSpec{in, static_cast<Bytes>(piece.size) * boundary_bytes_[l]});
        s.derefs.push_back(in);
      }
      if (boundary_bytes_[l + 1] > 0) {
        const TensorKey out{TensorKind::kActivation, l + 1, piece.begin,
                            t.replica};
        s.produces.push_back(ProduceSpec{
            out, static_cast<Bytes>(piece.size) * boundary_bytes_[l + 1]});
        if (std::find(t.checkpoint_boundaries.begin(),
                      t.checkpoint_boundaries.end(),
                      l + 1) != t.checkpoint_boundaries.end()) {
          s.copy_to_host.push_back(out);
        }
      }
      if (t.save_full_stash && stash_bytes_[l] > 0) {
        s.produces.push_back(
            ProduceSpec{TensorKey{TensorKind::kStash, l, piece.begin, t.replica},
                        static_cast<Bytes>(piece.size) * stash_bytes_[l]});
      }
      steps_[d].push_back(std::move(s));
    }
  }
}

void Execution::CompileBackward(const Task& t) {
  const int d = t.device;
  const int R = model_.num_layers();
  const bool remat = t.recompute || t.fused_forward;
  const bool push_grads =
      graph_.flags.cpu_optimizer || graph_.grad_reduce_via_host;

  bool first_piece = true;
  for (const MbPiece& piece : t.group) {
    if (remat) {
      // Rematerialization (or the fused jit-compute forward): run the pack
      // forward from its input, materializing the per-layer stash.
      for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
        Step s;
        s.task = t.id;
        s.compute = cost_.FwdTime(model_.layers[l].spec, piece.size);
        const Bytes params = model_.layers[l].spec.param_bytes;
        if (params > 0) {
          s.needs.push_back(
              NeedSpec{TensorKey{TensorKind::kWeight, l, -1, d}, params});
        }
        if (l == t.pack.lo) {
          for (NeedSpec in : BoundaryInputKeys(l, t.replica, piece)) {
            in.from_host = t.reads_checkpoint;  // message-passing channel
            s.needs.push_back(in);
            s.derefs.push_back(in.key);
          }
        } else if (stash_bytes_[l - 1] > 0) {
          const TensorKey in{TensorKind::kStash, l - 1, piece.begin, t.replica};
          s.needs.push_back(
              NeedSpec{in, static_cast<Bytes>(piece.size) * stash_bytes_[l - 1]});
          s.derefs.push_back(in);
        }
        if (stash_bytes_[l] > 0) {
          s.produces.push_back(
              ProduceSpec{TensorKey{TensorKind::kStash, l, piece.begin, t.replica},
                          static_cast<Bytes>(piece.size) * stash_bytes_[l]});
        }
        steps_[d].push_back(std::move(s));
      }
    }
    for (int l = t.pack.hi; l >= t.pack.lo; --l) {
      Step s;
      s.task = t.id;
      s.compute = cost_.BwdTime(model_.layers[l].spec, piece.size);
      const Bytes params = model_.layers[l].spec.param_bytes;
      if (params > 0) {
        s.needs.push_back(
            NeedSpec{TensorKey{TensorKind::kWeight, l, -1, d}, params});
        const TensorKey g{TensorKind::kGrad, l, -1, t.replica};
        if (first_piece) {
          s.produces.push_back(ProduceSpec{g, params});
        } else {
          s.needs.push_back(NeedSpec{g, params});
        }
        s.mark_dirty.push_back(g);
      }
      // Stashed activations of this layer (rematerialized or fetched).
      if (remat) {
        if (stash_bytes_[l] > 0) {
          const TensorKey st{TensorKind::kStash, l, piece.begin, t.replica};
          s.needs.push_back(
              NeedSpec{st, static_cast<Bytes>(piece.size) * stash_bytes_[l]});
          s.derefs.push_back(st);
        }
      } else {
        for (const NeedSpec& st : StashKeys(l, t.replica, piece)) {
          s.needs.push_back(st);
          s.derefs.push_back(st.key);
        }
      }
      // Incoming gradient dA(l+1).
      if (l == t.pack.hi) {
        if (t.pack.hi + 1 <= R - 1 && boundary_bytes_[l + 1] > 0) {
          for (const MbPiece& p : grad_layout_[t.replica][l + 1]) {
            if (!p.Overlaps(piece)) continue;
            const TensorKey gin{TensorKind::kGradAct, l + 1, p.begin, t.replica};
            s.needs.push_back(NeedSpec{
                gin, static_cast<Bytes>(p.size) * boundary_bytes_[l + 1]});
            s.derefs.push_back(gin);
          }
        }
      } else if (boundary_bytes_[l + 1] > 0) {
        const TensorKey gin{TensorKind::kGradAct, l + 1, piece.begin, t.replica};
        s.needs.push_back(
            NeedSpec{gin, static_cast<Bytes>(piece.size) * boundary_bytes_[l + 1]});
        s.derefs.push_back(gin);
      }
      // Outgoing gradient dA(l) (none for the model input).
      if (l > 0 && boundary_bytes_[l] > 0) {
        s.produces.push_back(
            ProduceSpec{TensorKey{TensorKind::kGradAct, l, piece.begin, t.replica},
                        static_cast<Bytes>(piece.size) * boundary_bytes_[l]});
      }
      steps_[d].push_back(std::move(s));
    }
    first_piece = false;
  }
  // After the group completes: push accumulated gradients to host when the
  // update runs on CPU or gradients reduce across replicas.
  if (push_grads && !steps_[d].empty()) {
    Step& last = steps_[d].back();
    for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
      if (model_.layers[l].spec.param_bytes > 0) {
        last.move_to_host.push_back(TensorKey{TensorKind::kGrad, l, -1, t.replica});
      }
    }
  }
}

void Execution::CompileGpuUpdate(const Task& t) {
  const int d = t.device;
  const int replica = std::max(t.replica, 0);
  bool any = false;
  // One step per layer: an update of a pack larger than GPU memory must
  // stream layer by layer, exactly like forward/backward execution.
  for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
    const Bytes params = model_.layers[l].spec.param_bytes;
    if (params == 0) continue;
    Step s;
    s.task = t.id;
    s.compute = cost_.GpuUpdateTime(model_.layers[l].spec);
    const TensorKey w{TensorKind::kWeight, l, -1, d};
    const TensorKey g{TensorKind::kGrad, l, -1, replica};
    const TensorKey o{TensorKind::kOptState, l, -1, d};
    s.needs.push_back(NeedSpec{w, params});
    s.needs.push_back(NeedSpec{g, params});
    s.needs.push_back(NeedSpec{o, opt_state_bytes(l)});
    s.mark_dirty.push_back(w);
    s.mark_dirty.push_back(o);
    s.copy_to_host.push_back(w);   // master write-back; cached copy stays
    s.move_to_host.push_back(o);   // persists on host for the next iteration
    s.derefs.push_back(g);
    steps_[d].push_back(std::move(s));
    any = true;
  }
  if (!any) {
    // Pack with no parameters at all: still emit an empty step so the task
    // completes and dependents unblock.
    Step s;
    s.task = t.id;
    steps_[d].push_back(std::move(s));
  }
}

void Execution::CompileCpuUpdate(const Task& t) {
  const core::DepResolver deps(graph_);
  CpuStep s;
  s.task = t.id;
  const auto producers = deps.BackwardTasksForPack(t.pack, t.replica);
  std::set<int> replicas;
  for (int pid : producers) replicas.insert(graph_.task(pid).replica);
  const int nrep = std::max<int>(1, replicas.size());
  for (int l = t.pack.lo; l <= t.pack.hi; ++l) {
    const Bytes params = model_.layers[l].spec.param_bytes;
    if (params == 0) continue;
    s.duration += static_cast<double>(params) * (2.0 + nrep) /
                  machine_.cpu_update_bw;
    for (int r : replicas) {
      const TensorKey g{TensorKind::kGrad, l, -1, r};
      s.host_needs.push_back(g);
      s.host_frees.push_back(g);
    }
  }
  // Gradients are only final once their backward tasks complete (an eviction
  // can land a partial gradient on host earlier).
  s.wait_tasks.insert(s.wait_tasks.end(), producers.begin(), producers.end());
  if (!graph_.flags.jit_update) {
    for (int r = 0; r < graph_.num_replicas; ++r) {
      if (t.replica >= 0 && r != t.replica) continue;
      const auto& all = deps.AllBackwardTasks(r);
      s.wait_tasks.insert(s.wait_tasks.end(), all.begin(), all.end());
    }
  }
  cpu_steps_[t.device].push_back(std::move(s));
}

void Execution::CompileAll() {
  steps_.assign(graph_.num_devices, {});
  cpu_steps_.assign(graph_.num_devices, {});
  for (int d = 0; d < graph_.num_devices; ++d) {
    for (int id : graph_.device_order[d]) {
      const Task& t = graph_.task(id);
      switch (t.type) {
        case TaskType::kForward: CompileForward(t); break;
        case TaskType::kBackward: CompileBackward(t); break;
        case TaskType::kUpdate: CompileGpuUpdate(t); break;
      }
    }
    if (static_cast<size_t>(d) < graph_.cpu_order.size()) {
      for (int id : graph_.cpu_order[d]) CompileCpuUpdate(graph_.task(id));
    }
  }
  ComputeRefs();

  task_steps_remaining_.assign(graph_.num_tasks(), 0);
  task_waiters_.assign(graph_.num_tasks(), {});
  for (const auto& dev : steps_) {
    for (const Step& s : dev) ++task_steps_remaining_[s.task];
  }
  for (const auto& dev : cpu_steps_) {
    for (const CpuStep& s : dev) ++task_steps_remaining_[s.task];
  }
}

void Execution::ComputeRefs() {
  ref_counts_.clear();
  for (const auto& dev : steps_) {
    for (const Step& s : dev) {
      for (const TensorKey& k : s.derefs) ++ref_counts_[k];
    }
  }
}

// ---------------------------------------------------------------------------
// Tensor & memory machinery
// ---------------------------------------------------------------------------

bool Execution::AutoCreate(const TensorKey& key, Bytes bytes) {
  const bool creatable =
      key.kind == TensorKind::kWeight || key.kind == TensorKind::kOptState ||
      (key.kind == TensorKind::kActivation && key.layer == 0);
  if (!creatable) return false;
  TensorState& st = table_.Get(key);
  st.bytes = bytes;
  st.exists = true;
  st.on_host = true;
  if (key.kind == TensorKind::kActivation) {
    // Loader data occupies host memory until consumed; persistent state
    // (weights, optimizer) is counted in the static host footprint.
    AddHostBuffer(&st);
    auto it = ref_counts_.find(key);
    st.refs_remaining = it == ref_counts_.end() ? 0 : it->second;
  }
  return true;
}

void Execution::AddHostBuffer(TensorState* st) {
  host_bytes_ += st->bytes;
  peak_host_ = std::max(peak_host_, host_bytes_);
}

void Execution::DropHostBuffer(TensorState* st) {
  host_bytes_ -= st->bytes;
}

void Execution::Fail(Status status) {
  if (failed_) return;
  failed_ = true;
  failure_ = std::move(status);
}

namespace {
/// Diagnostic tracing: set HARMONY_RUNTIME_TRACE to a tensor key string
/// (e.g. "A[L5,b2,o0]") to log every state transition of that tensor.
bool Traced(const TensorKey& key) {
  static const char* filter = getenv("HARMONY_RUNTIME_TRACE");
  return filter != nullptr && key.ToString() == filter;
}
void Trace(const TensorKey& key, const char* event, int device) {
  fprintf(stderr, "[runtime-trace] %s %s d%d\n", key.ToString().c_str(), event,
          device);
}
}  // namespace

void Execution::RequestAlloc(int d, const TensorKey& key, Bytes bytes,
                             std::function<void()> granted) {
  if (Traced(key)) Trace(key, "alloc-request", d);
  alloc_queue_[d].push_back(AllocReq{key, bytes, std::move(granted)});
  PumpAllocator(d);
}

void Execution::PumpAllocator(int d) {
  if (failed_) return;
  while (!alloc_queue_[d].empty()) {
    AllocReq& req = alloc_queue_[d].front();
    if (mem_[d].IsResident(req.key)) {
      TensorState& st = table_.Get(req.key);
      if (st.evicting_gpus.count(d)) {
        // The previous copy is on its way out (e.g. a gradient push); its
        // completion re-pumps this queue.
        return;
      }
      // Re-produced accumulation buffer whose copy survived on-device:
      // reuse the existing allocation.
      if (Traced(req.key)) Trace(req.key, "alloc-reuse", d);
      mem_[d].Pin(req.key);
      auto granted = std::move(req.granted);
      alloc_queue_[d].pop_front();
      granted();
      continue;
    }
    if (req.bytes <= mem_[d].free_bytes()) {
      if (Traced(req.key)) Trace(req.key, "alloc-grant", d);
      mem_[d].AddResident(req.key, req.bytes);
      mem_[d].Pin(req.key);
      metrics_.peak_device_bytes[d] =
          std::max(metrics_.peak_device_bytes[d], mem_[d].used());
      auto granted = std::move(req.granted);
      alloc_queue_[d].pop_front();
      granted();
      continue;
    }
    const Bytes deficit = req.bytes - mem_[d].free_bytes();
    // Harmony's memory manager evicts just enough, coldest-first. LMS-style
    // virtualization (the per-GPU-swap baselines) instead swaps out *all*
    // inactive tensors once the limit is hit — the eviction storms behind
    // the paper's 100-300x baseline swap volumes (Fig 10).
    const Bytes want = graph_.flags.smart_eviction
                           ? deficit
                           : std::numeric_limits<Bytes>::max();
    const auto victims = mem_[d].PickVictims(want);
    if (victims.empty()) {
      if (evictions_in_flight_[d] > 0) return;  // retry when one lands
      if (issue_next_[d] - steps_done_[d] > 1) {
        // Another in-flight step will finish and unpin its tensors; the
        // allocator is re-pumped from FinishStep.
        return;
      }
      Fail(Status::OutOfMemory(
          "device " + std::to_string(d) + " cannot fit " + req.key.ToString() +
          " (" + FormatBytes(req.bytes) + "): working set exceeds capacity"));
      return;
    }
    const Bytes free_before = mem_[d].free_bytes();
    for (const TensorKey& v : victims) StartEviction(d, v);
    if (mem_[d].free_bytes() > free_before) continue;  // clean drops freed space
    return;  // all victims are async transfers; resume from their completions
  }
}

void Execution::StartEviction(int d, const TensorKey& key) {
  TensorState& st = table_.Get(key);
  HARMONY_CHECK(st.resident_gpus.count(d))
      << "evicting " << key.ToString() << " with no copy on device " << d;
  if (Traced(key)) Trace(key, "evict-start", d);
  mem_[d].Pin(key);  // exclude from further victim picks
  st.evicting_gpus.insert(d);
  // Harmony's state machine drops copies that are backed elsewhere without a
  // transfer; LMS-style baselines always write the victim to host.
  const bool backed = st.on_host || st.resident_gpus.size() > 1;
  if (backed && graph_.flags.smart_eviction) {
    // Dropped synchronously; the caller (PumpAllocator) observes the freed
    // space — no re-entrant pump, which would double-evict from its stale
    // victim list.
    ++metrics_.clean_drops;
    st.resident_gpus.erase(d);
    st.evicting_gpus.erase(d);
    mem_[d].Unpin(key);
    mem_[d].RemoveResident(key);
    return;
  }
  ++evictions_in_flight_[d];
  const Bytes bytes = st.bytes;
  sim::Condition* flow_done =
      swapout_[d]->Push({}, [this, d, bytes](std::function<void()> done) {
        flows_.StartFlow(net_.SwapOutPath(d), bytes, std::move(done));
      });
  flow_done->OnFire([this, d, key]() {
    TensorState& st = table_.Get(key);
    metrics_.swap_out_bytes[d] += st.bytes;
    ++metrics_.evictions;
    if (st.exists && !st.on_host) {
      AddHostBuffer(&st);
      st.on_host = true;
      st.gpu_dirty = false;
    }
    st.resident_gpus.erase(d);
    st.evicting_gpus.erase(d);
    mem_[d].Unpin(key);
    mem_[d].RemoveResident(key);
    --evictions_in_flight_[d];
    if (st.exists) HostArrived(key);
    PumpAllocator(d);
  });
}

void Execution::HostArrived(const TensorKey& key) {
  TensorState& st = table_.Get(key);
  auto waiters = std::move(st.host_waiters);
  st.host_waiters.clear();
  for (auto& w : waiters) w();
}

void Execution::EnsureResident(int d, const TensorKey& key, Bytes bytes,
                               bool from_host,
                               std::function<void()> committed,
                               std::function<void()> arrived) {
  if (failed_) return;
  TensorState& st = table_.Get(key);
  auto retry = [this, d, key, bytes, from_host, committed, arrived]() {
    EnsureResident(d, key, bytes, from_host, committed, arrived);
  };
  if (!st.exists) {
    if (!AutoCreate(key, bytes)) {
      st.creation_waiters.push_back(retry);  // wait for the producer
      return;
    }
  }
  TensorState& state = table_.Get(key);
  if (state.UsableOn(d)) {
    if (Traced(key)) Trace(key, "need-hit", d);
    mem_[d].Pin(key);
    mem_[d].Touch(key);
    committed();
    arrived();
    return;
  }
  if (state.fetch_in_flight) {
    // Another consumer is already pulling a copy; join and re-evaluate when
    // it lands.
    state.arrival_waiters.push_back(retry);
    return;
  }
  if (state.resident_gpus.count(d)) {
    // Our copy is being evicted; wait for the host copy and fetch it back.
    state.host_waiters.push_back(retry);
    return;
  }
  // Pick a source: the host copy when available (and mandatory for
  // checkpoint reads via the message-passing channel), else a stable peer
  // copy for a p2p transfer.
  int src = -1;
  if (!state.on_host) {
    if (from_host) {
      state.host_waiters.push_back(retry);  // the producer's copy is coming
      return;
    }
    src = state.StableGpu();
    if (src < 0) {
      // All copies are mid-eviction: the data will surface on host.
      state.host_waiters.push_back(retry);
      return;
    }
  }
  state.fetch_in_flight = true;
  state.inflight_dst = d;
  if (src >= 0) mem_[src].Pin(key);  // hold the source copy during transfer

  RequestAlloc(d, key, state.bytes, [this, d, key, src, committed, arrived]() {
    committed();
    TensorState& st = table_.Get(key);
    const Bytes bytes = st.bytes;
    auto finish = [this, d, key, src, arrived]() {
      TensorState& st = table_.Get(key);
      if (Traced(key)) Trace(key, "fetch-arrive", d);
      if (src >= 0) mem_[src].Unpin(key);  // source copy stays (it's a copy)
      st.resident_gpus.insert(d);
      st.fetch_in_flight = false;
      st.inflight_dst = -1;
      auto waiters = std::move(st.arrival_waiters);
      st.arrival_waiters.clear();
      arrived();
      for (auto& w : waiters) w();
    };
    if (src < 0) {
      // Host -> device swap-in.
      HARMONY_CHECK(st.on_host) << key.ToString() << " has no source copy";
      metrics_.swap_in_bytes[d] += bytes;
      swapin_[d]->Push({}, [this, d, bytes, finish](std::function<void()> done) {
        flows_.StartFlow(net_.SwapInPath(d), bytes, [done, finish]() {
          finish();
          done();
        });
      });
      return;
    }
    if (graph_.flags.p2p_transfers) {
      metrics_.p2p_bytes[d] += bytes;
      p2pin_[d]->Push({}, [this, d, src, bytes, finish](std::function<void()> done) {
        flows_.StartFlow(net_.P2pPath(src, d), bytes, [done, finish]() {
          finish();
          done();
        });
      });
      return;
    }
    // p2p disabled: bounce through host memory as two swaps.
    metrics_.swap_out_bytes[src] += bytes;
    metrics_.swap_in_bytes[d] += bytes;
    swapout_[src]->Push({}, [this, src, d, bytes, key,
                             finish](std::function<void()> done) {
      flows_.StartFlow(net_.SwapOutPath(src), bytes, [this, d, bytes, key, finish,
                                                      done]() {
        TensorState& st = table_.Get(key);
        if (!st.on_host) {
          AddHostBuffer(&st);
          st.on_host = true;
        }
        swapin_[d]->Push({}, [this, d, bytes, finish](std::function<void()> in_done) {
          flows_.StartFlow(net_.SwapInPath(d), bytes, [finish, in_done]() {
            finish();
            in_done();
          });
        });
        done();
      });
    });
  });
}

void Execution::FreeTensor(const TensorKey& key) {
  TensorState& st = table_.Get(key);
  if (Traced(key)) Trace(key, "free", -1);
  for (auto it = st.resident_gpus.begin(); it != st.resident_gpus.end();) {
    const int d = *it;
    if (st.evicting_gpus.count(d) || mem_[d].IsPinned(key)) {
      // An eviction or an in-flight host-copy flow still holds this copy;
      // its completion handler releases the residency once `exists` is
      // false.
      ++it;
      continue;
    }
    mem_[d].RemoveResident(key);
    it = st.resident_gpus.erase(it);
  }
  if (st.on_host &&
      (key.kind == TensorKind::kActivation || key.kind == TensorKind::kGradAct ||
       key.kind == TensorKind::kStash || key.kind == TensorKind::kGrad)) {
    DropHostBuffer(&st);
    st.on_host = false;
  }
  st.exists = false;
}

// ---------------------------------------------------------------------------
// Execution driving
// ---------------------------------------------------------------------------

void Execution::OnTaskStepDone(int task) {
  HARMONY_CHECK_GT(task_steps_remaining_[task], 0);
  if (--task_steps_remaining_[task] == 0) {
    auto waiters = std::move(task_waiters_[task]);
    task_waiters_[task].clear();
    for (auto& w : waiters) w();
  }
}

void Execution::WhenTaskComplete(int task, std::function<void()> fn) {
  if (task_steps_remaining_[task] == 0) {
    fn();
  } else {
    task_waiters_[task].push_back(std::move(fn));
  }
}

void Execution::TryIssue(int d) {
  if (failed_ || issue_busy_[d]) return;
  if (issue_next_[d] >= steps_[d].size()) return;
  const size_t in_flight = issue_next_[d] - steps_done_[d];
  if (in_flight > static_cast<size_t>(issue_window_)) return;
  issue_busy_[d] = true;
  const int idx = static_cast<int>(issue_next_[d]++);
  IssueStep(d, idx);
}

void Execution::IssueStep(int d, int step_idx) {
  Step& s = steps_[d][step_idx];
  conditions_.push_back(std::make_unique<sim::Condition>());
  sim::Condition* ready = conditions_.back().get();

  // Join counters across needs + produces.
  struct Join {
    int commits_left;
    int arrivals_left;
  };
  auto* join = new Join{0, 0};
  join->commits_left = static_cast<int>(s.needs.size() + s.produces.size()) + 1;
  join->arrivals_left = join->commits_left;

  auto committed = [this, d, join]() {
    if (--join->commits_left == 0) {
      issue_busy_[d] = false;
      TryIssue(d);
    }
  };
  auto arrived = [join, ready]() {
    if (--join->arrivals_left == 0) {
      // Arrivals strictly follow their commits, so the join is finished.
      delete join;
      ready->Fire();
    }
  };

  // Push the compute op first: the sentinel commit below can re-enter
  // TryIssue and push the next step's op, and the compute stream must stay
  // in step order.
  compute_[d]->Push({ready}, [this, d, step_idx](std::function<void()> done) {
    engine_.After(steps_[d][step_idx].compute, std::move(done));
  })->OnFire([this, d, step_idx]() { FinishStep(d, step_idx); });

  for (const NeedSpec& n : s.needs) {
    EnsureResident(d, n.key, n.bytes, n.from_host, committed, arrived);
  }
  for (const ProduceSpec& p : s.produces) {
    TensorState& st = table_.Get(p.key);
    st.bytes = p.bytes;
    RequestAlloc(d, p.key, p.bytes, [committed, arrived]() {
      committed();
      arrived();
    });
  }
  // The +1 sentinel resolves immediately (handles empty lists).
  committed();
  arrived();
}

void Execution::FinishStep(int d, int step_idx) {
  Step& s = steps_[d][step_idx];

  // 1. Unpin this step's tensors.
  for (const NeedSpec& n : s.needs) {
    if (Traced(n.key)) Trace(n.key, "need-unpin", d);
    if (mem_[d].IsResident(n.key)) mem_[d].Unpin(n.key);
  }
  // 2. Finalize produced tensors.
  for (const ProduceSpec& p : s.produces) {
    TensorState& st = table_.Get(p.key);
    st.resident_gpus.insert(d);  // the allocator reserved this copy at issue
    st.gpu_dirty = true;
    if (!st.exists) {
      st.exists = true;
      auto it = ref_counts_.find(p.key);
      st.refs_remaining = it == ref_counts_.end() ? 0 : it->second;
      auto waiters = std::move(st.creation_waiters);
      st.creation_waiters.clear();
      for (auto& w : waiters) w();
    }
    if (Traced(p.key)) Trace(p.key, "produce-unpin", d);
    mem_[d].Unpin(p.key);
    const bool data_tensor = p.key.kind == TensorKind::kActivation ||
                             p.key.kind == TensorKind::kGradAct ||
                             p.key.kind == TensorKind::kStash;
    if (data_tensor && st.refs_remaining == 0) FreeTensor(p.key);
  }
  // 3. Dirty marks (gradient accumulation, updated weights).
  for (const TensorKey& k : s.mark_dirty) {
    TensorState& st = table_.Get(k);
    st.gpu_dirty = true;
    st.on_host = false;  // host copy (if any) is stale now
  }
  // 4. Host copies (checkpoints, master weight write-back): tensor stays
  //    resident; pinned for the duration of the flow.
  for (const TensorKey& k : s.copy_to_host) {
    TensorState& st = table_.Get(k);
    if (Traced(k)) Trace(k, "copy-to-host", d);
    if (!st.resident_gpus.count(d)) continue;   // already freed (defensive)
    if (st.evicting_gpus.count(d)) continue;    // eviction writes host anyway
    mem_[d].Pin(k);
    const Bytes bytes = st.bytes;
    metrics_.swap_out_bytes[d] += bytes;
    swapout_[d]->Push({}, [this, d, bytes, k](std::function<void()> done) {
      flows_.StartFlow(net_.SwapOutPath(d), bytes, [this, d, k, done]() {
        TensorState& st = table_.Get(k);
        if (st.exists && !st.on_host) {
          AddHostBuffer(&st);
          st.on_host = true;
          st.gpu_dirty = false;
        }
        mem_[d].Unpin(k);
        if (!st.exists) {
          // All consumers drained during the copy; finish the deferred free.
          if (!mem_[d].IsPinned(k) && st.resident_gpus.count(d)) {
            mem_[d].RemoveResident(k);
            st.resident_gpus.erase(d);
          }
        } else {
          HostArrived(k);
        }
        done();
      });
    });
  }
  // 5. Moves to host (gradient push, optimizer state write-back). Marked
  //    `evicting` so concurrent consumers wait for the host copy and fetch it
  //    back (which is precisely the re-swap the paper's analysis counts).
  for (const TensorKey& k : s.move_to_host) {
    TensorState& st = table_.Get(k);
    if (!st.resident_gpus.count(d)) continue;
    // An LRU eviction already in flight produces the same host copy; a second
    // transfer would double-release the residency.
    if (st.evicting_gpus.count(d)) continue;
    mem_[d].Pin(k);
    st.evicting_gpus.insert(d);
    const Bytes bytes = st.bytes;
    metrics_.swap_out_bytes[d] += bytes;
    swapout_[d]->Push({}, [this, d, bytes, k](std::function<void()> done) {
      flows_.StartFlow(net_.SwapOutPath(d), bytes, [this, d, k, done]() {
        TensorState& st = table_.Get(k);
        if (st.exists && !st.on_host) {
          AddHostBuffer(&st);
          st.on_host = true;
          st.gpu_dirty = false;
        }
        st.resident_gpus.erase(d);
        st.evicting_gpus.erase(d);
        mem_[d].Unpin(k);
        mem_[d].RemoveResident(k);
        if (st.exists) HostArrived(k);
        PumpAllocator(d);
        done();
      });
    });
  }
  // 6. Dereference consumed inputs.
  for (const TensorKey& k : s.derefs) {
    TensorState& st = table_.Get(k);
    if (--st.refs_remaining == 0) FreeTensor(k);
  }

  ++steps_done_[d];
  OnTaskStepDone(s.task);
  // Unpins and frees above may unblock queued allocations anywhere.
  for (int dev = 0; dev < graph_.num_devices; ++dev) PumpAllocator(dev);
  TryIssue(d);
}

void Execution::AdvanceCpu(int d) {
  if (failed_ || cpu_next_[d] >= cpu_steps_[d].size()) return;
  CpuStep& s = cpu_steps_[d][cpu_next_[d]];
  auto retry = [this, d]() { AdvanceCpu(d); };

  // Wait for producing (and, without jit, all) backward tasks first; then
  // re-check that every gradient actually has a final host copy — an early
  // eviction can put a *partial* gradient on host, so the host check only
  // counts once the producers are done.
  for (int task : s.wait_tasks) {
    if (task_steps_remaining_[task] != 0) {
      WhenTaskComplete(task, retry);
      return;
    }
  }
  for (const TensorKey& k : s.host_needs) {
    TensorState& st = table_.Get(k);
    if (!(st.exists && st.on_host)) {
      st.host_waiters.push_back(retry);
      return;
    }
  }

  cpu_[d]->Push({}, [this, d](std::function<void()> done) {
    engine_.After(cpu_steps_[d][cpu_next_[d]].duration, std::move(done));
  })->OnFire([this, d]() {
    CpuStep& step = cpu_steps_[d][cpu_next_[d]];
    for (const TensorKey& k : step.host_frees) {
      TensorState& st = table_.Get(k);
      if (st.on_host) {
        DropHostBuffer(&st);
        st.on_host = false;
      }
      if (st.resident_gpus.empty()) st.exists = false;
    }
    OnTaskStepDone(step.task);
    ++cpu_next_[d];
    AdvanceCpu(d);
  });
}

Result<RunMetrics> Execution::Run() {
  const int N = graph_.num_devices;
  HARMONY_CHECK_LE(N, machine_.num_gpus);

  Precompute();

  // Static host footprint: master weights + optimizer state (+ scheme
  // overheads like ZeRO staging buffers).
  Bytes static_host = options_.host_static_overhead;
  for (const auto& layer : model_.layers) {
    static_host += layer.spec.param_bytes * (1 + opt_mult_);
  }
  host_bytes_ = static_host;
  peak_host_ = host_bytes_;
  if (options_.enforce_host_capacity && host_bytes_ > machine_.host_memory) {
    return Status::OutOfMemory(
        "host memory exhausted before training: static state " +
        FormatBytes(host_bytes_) + " exceeds " +
        FormatBytes(machine_.host_memory));
  }

  metrics_.swap_in_bytes.assign(N, 0);
  metrics_.swap_out_bytes.assign(N, 0);
  metrics_.p2p_bytes.assign(N, 0);
  metrics_.compute_busy.assign(N, 0);
  metrics_.peak_device_bytes.assign(N, 0);

  for (int d = 0; d < N; ++d) {
    Bytes reserved = d < static_cast<int>(graph_.device_reserved_bytes.size())
                         ? graph_.device_reserved_bytes[d]
                         : 0;
    const Bytes capacity = machine_.gpu.usable_memory() - reserved;
    if (capacity <= 0) {
      return Status::OutOfMemory("device reservation exceeds GPU capacity");
    }
    mem_.emplace_back(capacity);
    const std::string sd = std::to_string(d);
    compute_.push_back(std::make_unique<sim::Stream>(&engine_, "compute" + sd));
    swapin_.push_back(std::make_unique<sim::Stream>(&engine_, "swapin" + sd));
    swapout_.push_back(std::make_unique<sim::Stream>(&engine_, "swapout" + sd));
    p2pin_.push_back(std::make_unique<sim::Stream>(&engine_, "p2pin" + sd));
    cpu_.push_back(std::make_unique<sim::Stream>(&engine_, "cpu" + sd));
  }
  alloc_queue_.assign(N, {});
  evictions_in_flight_.assign(N, 0);
  issue_next_.assign(N, 0);
  steps_done_.assign(N, 0);
  issue_busy_.assign(N, false);
  cpu_next_.assign(N, 0);
  issue_window_ = graph_.flags.prefetch ? 2 : 0;

  CompileAll();

  for (int d = 0; d < N; ++d) {
    TryIssue(d);
    AdvanceCpu(d);
  }
  const TimeSec end = engine_.Run();

  if (failed_) return failure_;
  for (int d = 0; d < N; ++d) {
    if (steps_done_[d] != steps_[d].size() ||
        cpu_next_[d] != cpu_steps_[d].size()) {
      for (int dev = 0; dev < N; ++dev) {
        if (!alloc_queue_[dev].empty()) {
          // Stalled with allocations outstanding: the working set cannot fit
          // even with everything evictable gone.
          return Status::OutOfMemory(
              "device " + std::to_string(dev) +
              " wedged on allocation: working set exceeds GPU capacity");
        }
      }
      return Status::Internal(
          "device " + std::to_string(d) + " stalled: executed " +
          std::to_string(steps_done_[d]) + "/" +
          std::to_string(steps_[d].size()) + " steps (schedule deadlock)");
    }
    metrics_.compute_busy[d] = compute_[d]->busy_time();
  }
  if (options_.enforce_host_capacity && peak_host_ > machine_.host_memory) {
    return Status::OutOfMemory("host memory exhausted during training: peak " +
                               FormatBytes(peak_host_) + " exceeds " +
                               FormatBytes(machine_.host_memory));
  }
  metrics_.iteration_time = end;
  metrics_.peak_host_bytes = peak_host_;
  return metrics_;
}

}  // namespace

Runtime::Runtime(hw::MachineSpec machine, const model::SequentialModel& model)
    : machine_(std::move(machine)), model_(model) {}

Result<RunMetrics> Runtime::Execute(const core::TaskGraph& graph,
                                    const RuntimeOptions& options) const {
  Execution exec(machine_, model_, graph, options);
  return exec.Run();
}

}  // namespace harmony::runtime
