#include "runtime/runtime.h"

#include <memory>

#include "runtime/executor.h"
#include "runtime/step_compiler.h"
#include "trace/filter_sink.h"
#include "trace/metrics_sink.h"
#include "trace/trace.h"

namespace harmony::runtime {

Runtime::Runtime(hw::MachineSpec machine, const model::SequentialModel& model)
    : machine_(std::move(machine)), model_(model) {}

Result<RunMetrics> Runtime::Execute(const core::TaskGraph& graph,
                                    const RuntimeOptions& options) const {
  // The execution pipeline: compile the task graph to a step program, then
  // drive it on the simulator with every observation routed over the trace
  // bus. MetricsSink is always attached — RunMetrics is folded from its
  // events rather than counted ad hoc.
  trace::TraceBus bus;
  trace::MetricsSink metrics(graph.num_devices);
  bus.AddSink(&metrics);
  std::unique_ptr<trace::FilterSink> filter;
  if (const char* f = trace::FilterSink::EnvFilter()) {
    filter = std::make_unique<trace::FilterSink>(f);
    bus.AddSink(filter.get());
  }
  for (trace::TraceSink* sink : options.trace_sinks) {
    if (sink != nullptr) bus.AddSink(sink);
  }

  StepCompiler compiler(machine_, model_, graph, options.optimizer);
  Executor executor(machine_, graph, options, compiler.Compile(), &bus,
                    &metrics);
  return executor.Run();
}

}  // namespace harmony::runtime
