#include "runtime/memory_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::runtime {

const char* TensorKindName(TensorKind kind) {
  switch (kind) {
    case TensorKind::kWeight: return "W";
    case TensorKind::kGrad: return "G";
    case TensorKind::kOptState: return "O";
    case TensorKind::kActivation: return "A";
    case TensorKind::kGradAct: return "dA";
    case TensorKind::kStash: return "S";
  }
  return "?";
}

std::string TensorKey::ToString() const {
  std::string s = TensorKindName(kind);
  s += "[L" + std::to_string(layer);
  if (begin >= 0) s += ",b" + std::to_string(begin);
  s += ",o" + std::to_string(owner) + "]";
  return s;
}

DeviceMemory::DeviceMemory(Bytes capacity) : capacity_(capacity) {
  HARMONY_CHECK_GT(capacity, 0);
}

void DeviceMemory::AddResident(const TensorKey& key, Bytes bytes) {
  HARMONY_CHECK_GE(bytes, 0);
  HARMONY_CHECK(!resident_.count(key)) << key.ToString() << " already resident";
  HARMONY_CHECK_LE(bytes, free_bytes()) << "allocation without space for "
                                        << key.ToString();
  resident_[key] = Entry{bytes, 0, ++clock_};
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
}

void DeviceMemory::RemoveResident(const TensorKey& key) {
  auto it = resident_.find(key);
  HARMONY_CHECK(it != resident_.end()) << key.ToString() << " not resident";
  used_ -= it->second.bytes;
  resident_.erase(it);
}

Bytes DeviceMemory::ResidentBytes(const TensorKey& key) const {
  auto it = resident_.find(key);
  return it == resident_.end() ? 0 : it->second.bytes;
}

void DeviceMemory::Touch(const TensorKey& key) {
  auto it = resident_.find(key);
  HARMONY_CHECK(it != resident_.end()) << "touch of non-resident " << key.ToString();
  it->second.lru = ++clock_;
}

void DeviceMemory::Pin(const TensorKey& key) {
  auto it = resident_.find(key);
  HARMONY_CHECK(it != resident_.end()) << "pin of non-resident " << key.ToString();
  ++it->second.pins;
}

void DeviceMemory::Unpin(const TensorKey& key) {
  auto it = resident_.find(key);
  HARMONY_CHECK(it != resident_.end()) << "unpin of non-resident " << key.ToString();
  HARMONY_CHECK_GT(it->second.pins, 0) << "unpin of unpinned " << key.ToString();
  --it->second.pins;
}

bool DeviceMemory::IsPinned(const TensorKey& key) const {
  auto it = resident_.find(key);
  return it != resident_.end() && it->second.pins > 0;
}

std::vector<TensorKey> DeviceMemory::PickVictims(Bytes needed) const {
  std::vector<std::pair<int64_t, const TensorKey*>> candidates;
  for (const auto& [key, entry] : resident_) {
    if (entry.pins == 0) candidates.emplace_back(entry.lru, &key);
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<TensorKey> victims;
  Bytes reclaimed = 0;
  for (const auto& [lru, key] : candidates) {
    if (reclaimed >= needed) break;
    victims.push_back(*key);
    reclaimed += resident_.at(*key).bytes;
  }
  return victims;
}

Bytes DeviceMemory::EvictableBytes() const {
  Bytes total = 0;
  for (const auto& [key, entry] : resident_) {
    if (entry.pins == 0) total += entry.bytes;
  }
  return total;
}

}  // namespace harmony::runtime
