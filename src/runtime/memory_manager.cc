#include "runtime/memory_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace harmony::runtime {

const char* TensorKindName(TensorKind kind) {
  switch (kind) {
    case TensorKind::kWeight: return "W";
    case TensorKind::kGrad: return "G";
    case TensorKind::kOptState: return "O";
    case TensorKind::kActivation: return "A";
    case TensorKind::kGradAct: return "dA";
    case TensorKind::kStash: return "S";
  }
  return "?";
}

std::string TensorKey::ToString() const {
  std::string s = TensorKindName(kind);
  s += "[L" + std::to_string(layer);
  if (begin >= 0) s += ",b" + std::to_string(begin);
  s += ",o" + std::to_string(owner) + "]";
  return s;
}

DeviceMemory::DeviceMemory(Bytes capacity, int num_tensors)
    : capacity_(capacity), entries_(num_tensors) {
  HARMONY_CHECK_GT(capacity, 0);
}

void DeviceMemory::AddResident(TensorId id, Bytes bytes) {
  HARMONY_CHECK_GE(bytes, 0);
  Entry& e = entries_[id];
  HARMONY_CHECK(!e.resident) << "tensor " << id << " already resident";
  HARMONY_CHECK_LE(bytes, free_bytes())
      << "allocation without space for tensor " << id;
  e.bytes = bytes;
  e.pins = 0;
  e.lru = ++clock_;
  e.resident = true;
  e.list_pos = static_cast<int>(resident_list_.size());
  resident_list_.push_back(id);
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
}

void DeviceMemory::RemoveResident(TensorId id) {
  Entry& e = entries_[id];
  HARMONY_CHECK(e.resident) << "tensor " << id << " not resident";
  used_ -= e.bytes;
  // Swap-remove from the compact list; fix the moved entry's back-pointer.
  const int pos = e.list_pos;
  const TensorId moved = resident_list_.back();
  resident_list_[pos] = moved;
  entries_[moved].list_pos = pos;
  resident_list_.pop_back();
  e.resident = false;
  e.list_pos = -1;
}

void DeviceMemory::Touch(TensorId id) {
  Entry& e = entries_[id];
  HARMONY_CHECK(e.resident) << "touch of non-resident tensor " << id;
  e.lru = ++clock_;
}

void DeviceMemory::Pin(TensorId id) {
  Entry& e = entries_[id];
  HARMONY_CHECK(e.resident) << "pin of non-resident tensor " << id;
  ++e.pins;
}

void DeviceMemory::Unpin(TensorId id) {
  Entry& e = entries_[id];
  HARMONY_CHECK(e.resident) << "unpin of non-resident tensor " << id;
  HARMONY_CHECK_GT(e.pins, 0) << "unpin of unpinned tensor " << id;
  --e.pins;
}

std::vector<TensorId> DeviceMemory::PickVictims(Bytes needed) const {
  std::vector<std::pair<int64_t, TensorId>> candidates;
  for (TensorId id : resident_list_) {
    if (entries_[id].pins == 0) candidates.emplace_back(entries_[id].lru, id);
  }
  // The lru clock is a unique monotone counter, so this order is
  // deterministic regardless of resident_list_'s (arbitrary) order.
  std::sort(candidates.begin(), candidates.end());
  std::vector<TensorId> victims;
  Bytes reclaimed = 0;
  for (const auto& [lru, id] : candidates) {
    if (reclaimed >= needed) break;
    victims.push_back(id);
    reclaimed += entries_[id].bytes;
  }
  return victims;
}

Bytes DeviceMemory::EvictableBytes() const {
  Bytes total = 0;
  for (TensorId id : resident_list_) {
    if (entries_[id].pins == 0) total += entries_[id].bytes;
  }
  return total;
}

}  // namespace harmony::runtime
