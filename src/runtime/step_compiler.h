#ifndef HARMONY_RUNTIME_STEP_COMPILER_H_
#define HARMONY_RUNTIME_STEP_COMPILER_H_

#include <vector>

#include "core/task_graph.h"
#include "hw/machine.h"
#include "model/cost_model.h"
#include "model/layer.h"
#include "model/memory.h"
#include "runtime/step.h"

namespace harmony::runtime {

/// Lowers a TaskGraph to a StepProgram: the pure compilation layer of the
/// execution pipeline. Forward/backward/update tasks expand to one step per
/// (microbatch piece, layer) with explicit need/produce tensor keys; CPU-
/// offloaded updates expand to CpuSteps with host-copy and task-completion
/// dependencies. No simulator state is touched — the compiler is a function
/// of (machine, model, graph, optimizer) and is unit-tested without the sim.
class StepCompiler {
 public:
  StepCompiler(const hw::MachineSpec& machine,
               const model::SequentialModel& model,
               const core::TaskGraph& graph,
               model::Optimizer optimizer = model::Optimizer::kAdam);

  /// One-shot lowering. Deterministic: identical inputs yield an identical
  /// program (golden-tested).
  StepProgram Compile();

 private:
  void Precompute();
  void CompileForward(const core::Task& t);
  void CompileBackward(const core::Task& t);
  void CompileGpuUpdate(const core::Task& t);
  void CompileCpuUpdate(const core::Task& t);
  std::vector<NeedSpec> BoundaryInputKeys(int boundary, int replica,
                                          const core::MbPiece& piece);
  std::vector<NeedSpec> StashKeys(int layer, int replica,
                                  const core::MbPiece& piece);
  void ComputeRefs();

  Bytes opt_state_bytes(int layer) const {
    return opt_mult_ * model_.layers[layer].spec.param_bytes;
  }

  /// Interns `key` into the program's catalog, returning its dense id.
  TensorId Id(const TensorKey& key) { return program_.tensors.Intern(key); }

  const hw::MachineSpec& machine_;
  const model::SequentialModel& model_;
  const core::TaskGraph& graph_;
  model::CostModel cost_;

  // Piece layouts: [replica][boundary/layer] -> producer pieces.
  std::vector<std::vector<std::vector<core::MbPiece>>> act_layout_;
  std::vector<std::vector<std::vector<core::MbPiece>>> grad_layout_;
  std::vector<std::vector<std::vector<core::MbPiece>>> stash_layout_;

  // Cached model arrays.
  std::vector<Bytes> boundary_bytes_;  // per-sample, index 0..R
  std::vector<Bytes> stash_bytes_;     // per-sample, per layer
  Bytes opt_mult_ = 2;

  StepProgram program_;
};

}  // namespace harmony::runtime

#endif  // HARMONY_RUNTIME_STEP_COMPILER_H_
