#ifndef HARMONY_CLUSTER_DISK_STORE_H_
#define HARMONY_CLUSTER_DISK_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace harmony::cluster {

struct DiskStoreOptions {
  /// Cache directory (created if absent). One file per fingerprint:
  /// `<16-hex>.plan`, containing a CRC-validated canonical plan envelope.
  std::string dir;
  /// Byte cap over stored payloads; past it, least-recently-used entries
  /// are unlinked. 0 means unbounded.
  uint64_t byte_cap = 256ull << 20;
};

struct DiskStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;        // LRU files unlinked by the byte cap
  uint64_t corrupt_dropped = 0;  // CRC/header mismatches unlinked on read
  uint64_t entries = 0;          // currently stored plans
  uint64_t bytes = 0;            // summed payload bytes
};

/// Disk-backed content-addressed plan store: the warm half of the cluster
/// tier. A restarted daemon reopens its directory and serves its first
/// repeat hit without a search, bit-identical to the original cold plan.
///
/// File format (all integers big-endian, like the frame transport):
///   "HPLN" | u32 version | u32 crc32(payload) | u64 payload_len | payload
/// The payload is the canonical CachedPlanToJson envelope. Writes go to
/// `<name>.tmp.<pid>` then rename(2) into place, so a crash at any byte
/// leaves either the old entry or a stray tmp file — never a torn entry.
/// Open() unlinks stray tmp files; Get() unlinks anything whose header or
/// CRC doesn't verify and degrades to a miss.
///
/// Recency is tracked in memory (LRU refreshed by Get); a reopened store
/// approximates it from file mtimes. Thread-safe via one mutex — disk I/O
/// is the cost here, not lock contention.
class DiskStore {
 public:
  /// Creates the directory if needed, removes stray tmp files, indexes the
  /// existing entries (oldest-mtime = least recent) and enforces the cap.
  static Result<std::unique_ptr<DiskStore>> Open(DiskStoreOptions options);

  /// The stored payload for `fingerprint`, or NotFound. A corrupt entry is
  /// unlinked, counted in corrupt_dropped, and reported as NotFound.
  Result<std::string> Get(uint64_t fingerprint);

  /// Atomically persists `payload` under `fingerprint`, then evicts LRU
  /// entries past the cap. Overwrites an existing entry (searches are
  /// deterministic, so the bytes are identical anyway).
  Status Put(uint64_t fingerprint, const std::string& payload);

  DiskStoreStats stats() const;
  const std::string& dir() const { return options_.dir; }

 private:
  explicit DiskStore(DiskStoreOptions options)
      : options_(std::move(options)) {}

  struct Entry {
    uint64_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;  // into lru_
  };

  std::string PathFor(uint64_t fingerprint) const;
  /// Drops `fingerprint` from the index and unlinks its file. Caller holds
  /// mu_; `counter` is the stat bucket (evictions or corrupt_dropped).
  void DropLocked(uint64_t fingerprint, uint64_t* counter);
  void EvictPastCapLocked();

  DiskStoreOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0, misses_ = 0, puts_ = 0;
  uint64_t evictions_ = 0, corrupt_dropped_ = 0;
};

}  // namespace harmony::cluster

#endif  // HARMONY_CLUSTER_DISK_STORE_H_
