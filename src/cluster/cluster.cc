#include "cluster/cluster.h"

#include <cstdlib>
#include <thread>
#include <utility>

#include "serve/plan_cache.h"

namespace harmony::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Owner-side cache_get reply: {"type":"cache_get","hit":...}; on a hit the
/// envelope carries where it was found and the canonical plan payload.
std::string CacheGetReply(bool hit, const char* source,
                          const serve::CachedPlan* plan) {
  json::Value v = json::Value::Object();
  v.Set("type", "cache_get");
  v.Set("hit", hit);
  if (hit) {
    v.Set("source", source);
    v.Set("plan", serve::CachedPlanToJson(*plan));
  }
  return v.Dump();
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      return Status::InvalidArgument("endpoint '" + spec + "': empty path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "': want tcp:<host>:<port>");
    }
    ep.host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end != rest.c_str() + rest.size() || port < 1 || port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec + "': bad port");
    }
    ep.port = static_cast<int>(port);
    return ep;
  }
  return Status::InvalidArgument("endpoint '" + spec +
                                 "': want unix:<path> or tcp:<host>:<port>");
}

Result<std::vector<std::string>> ParseMemberList(const std::string& csv) {
  std::vector<std::string> members;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string spec = csv.substr(start, comma - start);
    if (!spec.empty()) {
      HARMONY_RETURN_IF_ERROR(ParseEndpoint(spec).status());
      members.push_back(spec);
    }
    start = comma + 1;
  }
  if (members.empty()) {
    return Status::InvalidArgument("member list is empty");
  }
  return members;
}

Status ConnectEndpoint(const std::string& spec, serve::ServeClient* client) {
  auto ep = ParseEndpoint(spec);
  HARMONY_RETURN_IF_ERROR(ep.status());
  return ep.value().kind == Endpoint::Kind::kUnix
             ? client->ConnectUnix(ep.value().path)
             : client->ConnectTcp(ep.value().host, ep.value().port);
}

// ---------------------------------------------------------------------------
// ClusterNode
// ---------------------------------------------------------------------------

ClusterNode::ClusterNode(ClusterOptions options)
    : options_(std::move(options)),
      ring_(options_.vnodes_per_node),
      rng_(options_.backoff_seed),
      epoch_(Clock::now()) {
  for (const std::string& member : options_.members) ring_.AddNode(member);
}

ClusterNode::~ClusterNode() = default;

void ClusterNode::EmitEvent(trace::EventKind kind, uint64_t fingerprint,
                            int64_t bytes) {
  if (options_.bus == nullptr || !options_.bus->active()) return;
  trace::Event e;
  e.kind = kind;
  e.lane = trace::Lane::kServe;
  e.device = -1;
  e.time = std::chrono::duration<double>(Clock::now() - epoch_).count();
  e.task = static_cast<int>(fingerprint & 0x7FFFFFFFu);
  e.bytes = bytes;
  std::lock_guard<std::mutex> lock(trace_mu_);
  options_.bus->Emit(e);
}

std::shared_ptr<const serve::CachedPlan> ClusterNode::DiskLookup(
    uint64_t fingerprint, const std::string& canonical) {
  if (options_.disk == nullptr) return nullptr;
  auto payload = options_.disk->Get(fingerprint);
  if (!payload.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_misses;
    return nullptr;
  }
  auto parsed = json::Parse(payload.value());
  if (!parsed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_misses;
    return nullptr;
  }
  auto plan = serve::CachedPlanFromJson(parsed.value());
  if (!plan.ok() || plan.value().canonical_request != canonical) {
    // A decodable envelope for the wrong request (fingerprint collision on
    // the file name) — like the memory cache, never serve it.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_misses;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_hits;
  }
  EmitEvent(trace::EventKind::kClusterDiskHit, fingerprint,
            static_cast<int64_t>(payload.value().size()));
  return std::make_shared<const serve::CachedPlan>(std::move(plan).value());
}

void ClusterNode::PersistPlan(uint64_t fingerprint,
                              const serve::CachedPlan& plan) {
  if (options_.disk == nullptr) return;
  (void)options_.disk->Put(fingerprint, serve::CachedPlanToJson(plan).Dump());
}

std::shared_ptr<const serve::CachedPlan> ClusterNode::FetchFromOwner(
    const std::string& owner, uint64_t fingerprint,
    const std::string& canonical) {
  serve::CacheGetRequest get;
  get.fingerprint = fingerprint;
  get.canonical_request = canonical;
  const std::string envelope = serve::CacheGetRequestToJson(get).Dump();

  Peer* peer;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto& slot = peers_[owner];
    if (slot == nullptr) slot = std::make_unique<Peer>();
    peer = slot.get();
  }

  std::lock_guard<std::mutex> peer_lock(peer->mu);
  for (int attempt = 0;; ++attempt) {
    Status transport = Status::Ok();
    if (!peer->client.connected()) {
      transport = ConnectEndpoint(owner, &peer->client);
    }
    if (transport.ok()) {
      auto reply = peer->client.RoundTripEncoded(envelope, "cache_get");
      if (reply.ok()) {
        bool hit = false;
        if (!json::ReadBool(reply.value(), "hit", &hit).ok() || !hit) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.peer_fill_misses;
          return nullptr;
        }
        const json::Value* plan_json = reply.value().Find("plan");
        if (plan_json != nullptr) {
          auto plan = serve::CachedPlanFromJson(*plan_json);
          if (plan.ok() && plan.value().canonical_request == canonical) {
            return std::make_shared<const serve::CachedPlan>(
                std::move(plan).value());
          }
        }
        // A malformed or mismatched hit is as good as a miss — never let a
        // confused owner plant a wrong plan here.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.peer_fill_misses;
        return nullptr;
      }
      transport = reply.status();
      peer->client.Close();  // re-dial on the next attempt
    }
    if (attempt >= options_.peer_retries) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.peer_fill_errors;
      return nullptr;
    }
    double delay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      delay = options_.backoff.DelayFor(attempt, &rng_);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

std::shared_ptr<const serve::CachedPlan> ClusterNode::TryFill(
    uint64_t fingerprint, const std::string& canonical,
    const serve::PlanRequest& request, std::string* source) {
  (void)request;
  // Disk first: a restarted daemon's warm path, and cheaper than a peer
  // round trip when both would hit.
  if (auto plan = DiskLookup(fingerprint, canonical)) {
    *source = "disk";
    return plan;
  }

  const std::string owner = ring_.OwnerOf(fingerprint);
  if (owner.empty() || owner == options_.self) return nullptr;

  // Single-flight: one owner round trip per fingerprint; late arrivals wait
  // for the leader's outcome instead of dialing again.
  std::shared_ptr<PendingFetch> pending;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = fetching_.find(fingerprint);
    if (it == fetching_.end()) {
      pending = std::make_shared<PendingFetch>();
      fetching_.emplace(fingerprint, pending);
      leader = true;
      ++stats_.peer_fill_attempts;
    } else {
      pending = it->second;
      ++stats_.peer_fill_coalesced;
    }
    if (!leader) {
      pending->cv.wait(lock, [&pending]() { return pending->done; });
      if (pending->plan != nullptr) *source = "peer";
      return pending->plan;
    }
  }

  if (options_.stall_peer_fetch_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.stall_peer_fetch_for_test));
  }
  std::shared_ptr<const serve::CachedPlan> plan =
      FetchFromOwner(owner, fingerprint, canonical);
  if (plan != nullptr) {
    // Warm the local disk store so a restart of this daemon doesn't need
    // the peer again.
    PersistPlan(fingerprint, *plan);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.peer_fill_hits;
    }
    EmitEvent(trace::EventKind::kClusterPeerFill, fingerprint,
              static_cast<int64_t>(canonical.size()));
    *source = "peer";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending->plan = plan;
    pending->done = true;
    fetching_.erase(fingerprint);
  }
  pending->cv.notify_all();
  return plan;
}

void ClusterNode::StoreCompleted(
    uint64_t fingerprint,
    const std::shared_ptr<const serve::CachedPlan>& plan) {
  PersistPlan(fingerprint, *plan);
}

std::string ClusterNode::HandleEnvelope(const std::string& type,
                                        const json::Value& envelope) {
  if (type != "cache_get") return "";
  auto get = serve::CacheGetRequestFromJson(envelope);
  if (!get.ok()) {
    json::Value v = json::Value::Object();
    v.Set("type", "error");
    v.Set("error", "bad cache_get: " + get.status().ToString());
    return v.Dump();
  }
  const uint64_t fp = get.value().fingerprint;
  const std::string& canonical = get.value().canonical_request;

  // Memory first, then disk; strictly lookup-only (no search, no forward),
  // so a tier-wide miss terminates here with an honest "miss".
  if (service_ != nullptr) {
    if (auto plan = service_->PeekCache(fp, canonical)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_get_served_memory;
      return CacheGetReply(true, "memory", plan.get());
    }
  }
  if (auto plan = DiskLookup(fp, canonical)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_get_served_disk;
    return CacheGetReply(true, "disk", plan.get());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_get_misses;
  }
  return CacheGetReply(false, "", nullptr);
}

ClusterStats ClusterNode::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

json::Value ClusterNode::StatsJson() const {
  const ClusterStats s = stats();
  json::Value v = json::Value::Object();
  v.Set("self", options_.self);
  v.Set("members", static_cast<int64_t>(options_.members.size()));
  v.Set("peer_fill_attempts", static_cast<int64_t>(s.peer_fill_attempts));
  v.Set("peer_fill_hits", static_cast<int64_t>(s.peer_fill_hits));
  v.Set("peer_fill_misses", static_cast<int64_t>(s.peer_fill_misses));
  v.Set("peer_fill_errors", static_cast<int64_t>(s.peer_fill_errors));
  v.Set("peer_fill_coalesced", static_cast<int64_t>(s.peer_fill_coalesced));
  v.Set("disk_hits", static_cast<int64_t>(s.disk_hits));
  v.Set("disk_misses", static_cast<int64_t>(s.disk_misses));
  v.Set("cache_get_served_memory",
        static_cast<int64_t>(s.cache_get_served_memory));
  v.Set("cache_get_served_disk",
        static_cast<int64_t>(s.cache_get_served_disk));
  v.Set("cache_get_misses", static_cast<int64_t>(s.cache_get_misses));
  if (options_.disk != nullptr) {
    const DiskStoreStats d = options_.disk->stats();
    json::Value disk = json::Value::Object();
    disk.Set("hits", static_cast<int64_t>(d.hits));
    disk.Set("misses", static_cast<int64_t>(d.misses));
    disk.Set("puts", static_cast<int64_t>(d.puts));
    disk.Set("evictions", static_cast<int64_t>(d.evictions));
    disk.Set("corrupt_dropped", static_cast<int64_t>(d.corrupt_dropped));
    disk.Set("entries", static_cast<int64_t>(d.entries));
    disk.Set("bytes", static_cast<int64_t>(d.bytes));
    v.Set("disk", std::move(disk));
  }
  return v;
}

// ---------------------------------------------------------------------------
// TierClient
// ---------------------------------------------------------------------------

TierClient::TierClient(std::vector<std::string> members, int vnodes_per_node)
    : TierClient(std::move(members), vnodes_per_node, RetryOptions()) {}

TierClient::TierClient(std::vector<std::string> members, int vnodes_per_node,
                       RetryOptions retry)
    : members_(std::move(members)), ring_(vnodes_per_node), retry_(retry) {
  for (const std::string& member : members_) ring_.AddNode(member);
}

Result<serve::ServeClient*> TierClient::ClientFor(const std::string& member) {
  auto& slot = clients_[member];
  if (slot == nullptr) slot = std::make_unique<serve::ServeClient>();
  if (!slot->connected()) {
    HARMONY_RETURN_IF_ERROR(ConnectEndpoint(member, slot.get()));
  }
  return slot.get();
}

std::string TierClient::OwnerOf(const serve::PlanRequest& request) const {
  return ring_.OwnerOf(serve::RequestFingerprint(request));
}

Result<serve::PlanResponse> TierClient::Plan(
    const serve::PlanRequest& request) {
  const uint64_t fp = serve::RequestFingerprint(request);
  // Owner first, then the rendezvous ranking: every client walks dead
  // daemons in the same order, so failover traffic stays concentrated.
  std::vector<std::string> candidates;
  const std::string owner = ring_.OwnerOf(fp);
  if (!owner.empty()) candidates.push_back(owner);
  for (const std::string& member : ring_.RankedNodes(fp)) {
    if (member != owner) candidates.push_back(member);
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition("tier has no members");
  }
  // Dead-member errors name which endpoint failed (the ServeClient layer
  // already appends errno detail), mirroring PlanWithRetry's annotations.
  auto annotate = [](const std::string& member, const Status& s) {
    return Status(s.code(), "member " + member + ": " + s.message());
  };
  Status last = Status::Ok();
  Rng rng(retry_.seed);
  int shed_retries = 0;
  for (const std::string& member : candidates) {
    for (;;) {
      auto client = ClientFor(member);
      if (!client.ok()) {
        last = annotate(member, client.status());
        break;  // next candidate
      }
      auto response = client.value()->Plan(request);
      if (!response.ok()) {
        // Transport failure: drop the connection and try the next candidate.
        client.value()->Close();
        last = annotate(member, response.status());
        break;
      }
      if (response.value().status.code() == StatusCode::kResourceExhausted &&
          shed_retries < retry_.max_shed_retries) {
        // Load-shed by this member's admission control: shedding is
        // transient and the owner is still the right home for the plan, so
        // retry the same member after max(backoff, the server's hint) —
        // failing over would just stampede the next member.
        double delay = retry_.backoff.DelayFor(shed_retries, &rng);
        delay = std::max(delay, response.value().retry_after_ms / 1000.0);
        ++shed_retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        continue;
      }
      return response;
    }
  }
  return Status(last.code(),
                "no tier member answered (last: " + last.message() + ")");
}

Result<json::Value> TierClient::StatsFrom(const std::string& member) {
  auto client = ClientFor(member);
  HARMONY_RETURN_IF_ERROR(client.status());
  return client.value()->Stats();
}

int TierClient::ShutdownAll() {
  int reached = 0;
  for (const std::string& member : members_) {
    auto client = ClientFor(member);
    if (client.ok() && client.value()->Shutdown().ok()) ++reached;
  }
  return reached;
}

}  // namespace harmony::cluster
