#ifndef HARMONY_CLUSTER_HASH_RING_H_
#define HARMONY_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace harmony::cluster {

/// Consistent-hash ring over daemon endpoints, keyed by the canonical
/// request fingerprint serve::wire already produces. Placement is a pure
/// function of (member set, vnodes), so every client and daemon that agrees
/// on the member list agrees on each fingerprint's owner — no coordinator.
///
/// Each member contributes `vnodes_per_node` points at
/// FNV-1a(id + "#" + i); a fingerprint's owner is the first point clockwise
/// from it. Virtual nodes bound rebalance churn: removing one of N members
/// remaps only the keys the departed member owned (~1/N of the space), a
/// bound cluster_test asserts.
///
/// When the ring has no points (vnodes_per_node == 0 — a degenerate but
/// legal configuration), ownership falls back to rendezvous (highest-
/// random-weight) hashing over the member set, which is also what
/// RankedNodes uses to order failover candidates: the HRW ranking is a
/// deterministic permutation of the members per fingerprint, so every
/// client walks dead daemons in the same order.
///
/// Not thread-safe: build the membership up front (it changes at deploy
/// time, not per request) and share it read-only.
class HashRing {
 public:
  explicit HashRing(int vnodes_per_node = 64);

  void AddNode(const std::string& id);
  void RemoveNode(const std::string& id);

  bool empty() const { return nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }
  int vnodes_per_node() const { return vnodes_; }

  /// The member owning `fingerprint`; "" when the ring is empty.
  std::string OwnerOf(uint64_t fingerprint) const;

  /// Every member ordered by rendezvous weight for `fingerprint` (best
  /// first). The failover walk: try RankedNodes[0], then [1], ...
  std::vector<std::string> RankedNodes(uint64_t fingerprint) const;

 private:
  int vnodes_;
  std::set<std::string> nodes_;
  std::map<uint64_t, std::string> ring_;  // point -> member id
};

}  // namespace harmony::cluster

#endif  // HARMONY_CLUSTER_HASH_RING_H_
