#include "cluster/disk_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/json.h"

namespace harmony::cluster {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'H', 'P', 'L', 'N'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 8;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
}

uint32_t ReadU32(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

uint64_t ReadU64(const char* p) {
  return (static_cast<uint64_t>(ReadU32(p)) << 32) | ReadU32(p + 4);
}

/// Validates a whole entry file; returns the payload or a reason to drop.
Result<std::string> DecodeEntry(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic");
  }
  if (ReadU32(bytes.data() + 4) != kVersion) {
    return Status::InvalidArgument("unknown version");
  }
  const uint32_t crc = ReadU32(bytes.data() + 8);
  const uint64_t len = ReadU64(bytes.data() + 12);
  if (bytes.size() != kHeaderBytes + len) {
    return Status::InvalidArgument("truncated payload");
  }
  std::string payload = bytes.substr(kHeaderBytes);
  if (common::Crc32(payload) != crc) {
    return Status::InvalidArgument("crc mismatch");
  }
  return payload;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("open(" + path + "): " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read(" + path + ") failed");
  return bytes;
}

}  // namespace

Result<std::unique_ptr<DiskStore>> DiskStore::Open(DiskStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("disk store: dir must be non-empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("disk store: mkdir " + options.dir + ": " +
                            ec.message());
  }
  auto store = std::unique_ptr<DiskStore>(new DiskStore(std::move(options)));

  // Index the directory: stray tmp files (a crash between temp-write and
  // rename) are unlinked; entry files are ordered oldest-mtime-first so the
  // rebuilt LRU approximates the pre-restart recency.
  struct Found {
    fs::file_time_type mtime;
    uint64_t fingerprint;
    uint64_t bytes;
  };
  std::vector<Found> found;
  for (const auto& it : fs::directory_iterator(store->options_.dir, ec)) {
    const std::string name = it.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      fs::remove(it.path(), ec);
      continue;
    }
    if (name.size() != 16 + 5 || name.substr(16) != ".plan") continue;
    uint64_t fp = 0;
    bool hex = true;
    for (int i = 0; i < 16; ++i) {
      const char c = name[i];
      if (c >= '0' && c <= '9') fp = (fp << 4) | static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') fp = (fp << 4) | static_cast<uint64_t>(c - 'a' + 10);
      else { hex = false; break; }
    }
    if (!hex) continue;
    const uint64_t size = static_cast<uint64_t>(fs::file_size(it.path(), ec));
    const uint64_t payload =
        size > kHeaderBytes ? size - kHeaderBytes : 0;  // header excluded
    found.push_back({fs::last_write_time(it.path(), ec), fp, payload});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& f : found) {
    store->lru_.push_front(f.fingerprint);  // newest ends up at the front
    Entry entry;
    entry.bytes = f.bytes;
    entry.lru_pos = store->lru_.begin();
    store->entries_.emplace(f.fingerprint, entry);
    store->bytes_ += f.bytes;
  }
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    store->EvictPastCapLocked();
  }
  return store;
}

std::string DiskStore::PathFor(uint64_t fingerprint) const {
  return options_.dir + "/" + json::FingerprintHex(fingerprint) + ".plan";
}

void DiskStore::DropLocked(uint64_t fingerprint, uint64_t* counter) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++*counter;
  std::error_code ec;
  fs::remove(PathFor(fingerprint), ec);
}

void DiskStore::EvictPastCapLocked() {
  if (options_.byte_cap == 0) return;
  while (bytes_ > options_.byte_cap && !lru_.empty()) {
    DropLocked(lru_.back(), &evictions_);
  }
}

Result<std::string> DiskStore::Get(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return Status::NotFound("disk store: no entry for " +
                            json::FingerprintHex(fingerprint));
  }
  auto bytes = ReadWholeFile(PathFor(fingerprint));
  if (!bytes.ok()) {
    // Indexed but unreadable (unlinked behind our back): degrade to a miss.
    DropLocked(fingerprint, &corrupt_dropped_);
    ++misses_;
    return Status::NotFound("disk store: " + bytes.status().message());
  }
  auto payload = DecodeEntry(bytes.value());
  if (!payload.ok()) {
    // Torn or bit-rotted entry: unlink it so it can never be served, and
    // report a miss — the caller falls back to peer-fill or a search.
    DropLocked(fingerprint, &corrupt_dropped_);
    ++misses_;
    return Status::NotFound("disk store: corrupt entry for " +
                            json::FingerprintHex(fingerprint) + " (" +
                            payload.status().message() + ")");
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return std::move(payload).value();
}

Status DiskStore::Put(uint64_t fingerprint, const std::string& payload) {
  std::string bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  bytes.append(kMagic, 4);
  PutU32(&bytes, kVersion);
  PutU32(&bytes, common::Crc32(payload));
  PutU64(&bytes, payload.size());
  bytes += payload;

  const std::string path = PathFor(fingerprint);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("disk store: open(" + tmp + "): " +
                            std::strerror(errno));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("disk store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("disk store: rename(" + tmp + " -> " + path +
                            "): " + std::strerror(errno));
  }

  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.bytes = payload.size();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    lru_.push_front(fingerprint);
    Entry entry;
    entry.bytes = payload.size();
    entry.lru_pos = lru_.begin();
    entries_.emplace(fingerprint, entry);
  }
  bytes_ += payload.size();
  ++puts_;
  EvictPastCapLocked();
  return Status::Ok();
}

DiskStoreStats DiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DiskStoreStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.puts = puts_;
  s.evictions = evictions_;
  s.corrupt_dropped = corrupt_dropped_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace harmony::cluster
