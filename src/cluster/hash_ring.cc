#include "cluster/hash_ring.h"

#include <algorithm>

#include "common/json.h"

namespace harmony::cluster {

namespace {

/// Rendezvous weight of (member, fingerprint): hash both together so each
/// fingerprint induces an independent pseudo-random permutation of members.
uint64_t RendezvousScore(const std::string& id, uint64_t fingerprint) {
  return json::Fnv1a(json::FingerprintHex(fingerprint) + "@" + id);
}

}  // namespace

HashRing::HashRing(int vnodes_per_node) : vnodes_(vnodes_per_node) {
  if (vnodes_ < 0) vnodes_ = 0;
}

void HashRing::AddNode(const std::string& id) {
  if (!nodes_.insert(id).second) return;
  for (int i = 0; i < vnodes_; ++i) {
    ring_.emplace(json::Fnv1a(id + "#" + std::to_string(i)), id);
  }
}

void HashRing::RemoveNode(const std::string& id) {
  if (nodes_.erase(id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == id ? ring_.erase(it) : std::next(it);
  }
}

std::string HashRing::OwnerOf(uint64_t fingerprint) const {
  if (nodes_.empty()) return "";
  if (ring_.empty()) {
    // No points to walk (vnodes == 0): rendezvous hashing decides.
    return RankedNodes(fingerprint).front();
  }
  auto it = ring_.lower_bound(fingerprint);
  if (it == ring_.end()) it = ring_.begin();  // wrap past 2^64
  return it->second;
}

std::vector<std::string> HashRing::RankedNodes(uint64_t fingerprint) const {
  std::vector<std::pair<uint64_t, std::string>> scored;
  scored.reserve(nodes_.size());
  for (const std::string& id : nodes_) {
    scored.emplace_back(RendezvousScore(id, fingerprint), id);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::string> ranked;
  ranked.reserve(scored.size());
  for (auto& [score, id] : scored) ranked.push_back(std::move(id));
  return ranked;
}

}  // namespace harmony::cluster
