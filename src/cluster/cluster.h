#ifndef HARMONY_CLUSTER_CLUSTER_H_
#define HARMONY_CLUSTER_CLUSTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"
#include "common/json.h"
#include "common/status.h"
#include "cluster/disk_store.h"
#include "cluster/hash_ring.h"
#include "serve/client.h"
#include "serve/plan_service.h"
#include "trace/trace.h"

namespace harmony::cluster {

/// A daemon address in the tier's member list: "unix:<path>" or
/// "tcp:<host>:<port>". The *string* is the ring identity — every member
/// and client must spell an endpoint identically or placement diverges.
struct Endpoint {
  enum class Kind : uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix
  std::string host;  // kTcp
  int port = 0;      // kTcp
};

Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Splits a comma-separated member list ("unix:/a.sock,tcp:host:9)" style)
/// and validates each entry.
Result<std::vector<std::string>> ParseMemberList(const std::string& csv);

/// Dials `spec` on `client` (whichever transport the endpoint names).
Status ConnectEndpoint(const std::string& spec, serve::ServeClient* client);

struct ClusterOptions {
  /// This daemon's own endpoint string (must appear in `members`).
  std::string self;
  /// Every daemon in the tier, including self. Order is irrelevant (the
  /// ring sorts by hash) but spelling must match across the deployment.
  std::vector<std::string> members;
  int vnodes_per_node = 64;
  /// The warm store (borrowed; may be nullptr for a diskless member).
  DiskStore* disk = nullptr;
  /// Peer-fetch retry budget and backoff curve (common/backoff.h).
  int peer_retries = 2;
  common::BackoffPolicy backoff = common::kPeerFetchBackoff;
  uint64_t backoff_seed = 0;
  /// Optional observer (borrowed) for kClusterPeerFill / kClusterDiskHit.
  trace::TraceBus* bus = nullptr;
  /// Test hook: a peer fetch holds its single-flight slot for this long
  /// before dialing, so tests can pile waiters onto one fetch
  /// deterministically. Zero in production.
  TimeSec stall_peer_fetch_for_test = 0;
};

struct ClusterStats {
  uint64_t peer_fill_attempts = 0;  // owner fetches actually dialed
  uint64_t peer_fill_hits = 0;      // plans resolved from a peer
  uint64_t peer_fill_misses = 0;    // owner answered "don't have it"
  uint64_t peer_fill_errors = 0;    // transport/protocol failures (final)
  uint64_t peer_fill_coalesced = 0; // waiters attached to an in-flight fetch
  uint64_t disk_hits = 0;           // plans revived from the disk store
  uint64_t disk_misses = 0;
  uint64_t cache_get_served_memory = 0;  // owner-side: answered from PlanCache
  uint64_t cache_get_served_disk = 0;    // owner-side: answered from disk
  uint64_t cache_get_misses = 0;         // owner-side: answered "miss"
};

/// One daemon's membership in the cooperative cache tier (DESIGN.md §13).
/// Implements serve::PlanFillSource — PlanService consults it on a cache
/// miss before searching — and the owner-side "cache_get" envelope handler
/// that PlanServer's extension hook routes here.
///
/// Fill order on a local miss: disk store first (cheapest, and a restarted
/// daemon's warm path), then — if this daemon is not the fingerprint's ring
/// owner — a cache_get round trip to the owner with backoff retries. A peer
/// hit is persisted to the local disk store on the way back, so the next
/// restart of *this* daemon is warm too. Peer fetches are single-flight
/// per fingerprint: PlanService's own single-flight already coalesces
/// identical requests onto one worker, but distinct deadline groups of the
/// same fingerprint admit separately — this layer makes sure even those
/// share one round trip, and waiters share its outcome.
///
/// The owner side never searches and never forwards: cache_get answers
/// strictly from memory (PlanCache::Peek) or disk, so a tier-wide miss
/// cannot recurse or stampede Algorithm 1 — the requester falls back to
/// exactly one local search, which is the tier-wide total.
class ClusterNode : public serve::PlanFillSource {
 public:
  explicit ClusterNode(ClusterOptions options);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Late-bound because of construction order: ClusterNode must exist
  /// before PlanService (ServeOptions::fill), but the cache_get handler
  /// needs the service. Call once, before the server starts.
  void set_service(serve::PlanService* service) { service_ = service; }

  // --- serve::PlanFillSource -----------------------------------------------
  std::shared_ptr<const serve::CachedPlan> TryFill(
      uint64_t fingerprint, const std::string& canonical,
      const serve::PlanRequest& request, std::string* source) override;
  void StoreCompleted(
      uint64_t fingerprint,
      const std::shared_ptr<const serve::CachedPlan>& plan) override;

  /// ServerOptions::extension adapter: serves "cache_get", returns "" for
  /// anything else. Thread-safe (called on reactor loop threads).
  std::string HandleEnvelope(const std::string& type,
                             const json::Value& envelope);

  /// ServerOptions::stats_extension adapter: the "cluster" stats block
  /// (tier counters + disk store counters + membership).
  json::Value StatsJson() const;

  ClusterStats stats() const;
  const HashRing& ring() const { return ring_; }
  /// Ring owner of a fingerprint (by member endpoint string).
  std::string OwnerOf(uint64_t fingerprint) const {
    return ring_.OwnerOf(fingerprint);
  }

 private:
  struct PendingFetch {
    bool done = false;
    std::shared_ptr<const serve::CachedPlan> plan;  // null = miss/failure
    std::condition_variable cv;
  };

  /// One cache_get round trip to `owner` with reconnect + backoff retries.
  /// Returns the plan (verified against `canonical`) or null.
  std::shared_ptr<const serve::CachedPlan> FetchFromOwner(
      const std::string& owner, uint64_t fingerprint,
      const std::string& canonical);

  std::shared_ptr<const serve::CachedPlan> DiskLookup(
      uint64_t fingerprint, const std::string& canonical);
  void PersistPlan(uint64_t fingerprint, const serve::CachedPlan& plan);
  void EmitEvent(trace::EventKind kind, uint64_t fingerprint, int64_t bytes);

  ClusterOptions options_;
  HashRing ring_;
  serve::PlanService* service_ = nullptr;

  mutable std::mutex mu_;  // guards stats + single-flight map + rng
  std::unordered_map<uint64_t, std::shared_ptr<PendingFetch>> fetching_;
  ClusterStats stats_;
  Rng rng_;

  /// Pooled peer connections, one per owner endpoint, serialized per peer
  /// (cache_get round trips are short; a per-peer mutex keeps the pool
  /// trivial and the frame protocol unconfused).
  struct Peer {
    std::mutex mu;
    serve::ServeClient client;
  };
  std::mutex peers_mu_;  // guards the map shape only
  std::unordered_map<std::string, std::unique_ptr<Peer>> peers_;

  std::mutex trace_mu_;  // serializes bus emissions
  const std::chrono::steady_clock::time_point epoch_;
};

/// Client-side owner routing over the same member list: picks each
/// request's daemon from the fingerprint's ring placement, walking the
/// rendezvous ranking past dead daemons. One pooled ServeClient per
/// endpoint. Not thread-safe (one TierClient per load-generator thread,
/// like ServeClient).
class TierClient {
 public:
  /// Shed-retry policy: how many load-shed (in-band ResourceExhausted)
  /// responses Plan() absorbs before surfacing one, and the backoff curve
  /// under the server's retry-after floor — the same shape
  /// ServeClient::PlanWithRetry uses, shared via common/backoff.h.
  struct RetryOptions {
    int max_shed_retries = 3;
    common::BackoffPolicy backoff = common::kPlanRetryBackoff;
    uint64_t seed = 0;  // jitter seed (fix it for deterministic tests)
  };

  TierClient(std::vector<std::string> members, int vnodes_per_node = 64);
  TierClient(std::vector<std::string> members, int vnodes_per_node,
             RetryOptions retry);

  /// Owner-routed plan: sends to the fingerprint's owner, failing over down
  /// the rendezvous ranking on transport errors (each candidate dialed at
  /// most once per call). A load-shed response is retried against the same
  /// member after max(backoff, the server's retry-after hint) until the shed
  /// budget runs out; other in-band planning failures are returned as-is —
  /// only a dead daemon triggers failover. Dead-member errors are annotated
  /// with the member endpoint, so a multi-daemon deployment's failures name
  /// which daemon was unreachable.
  Result<serve::PlanResponse> Plan(const serve::PlanRequest& request);

  /// The member Plan() would try first for this request.
  std::string OwnerOf(const serve::PlanRequest& request) const;

  /// Stats envelope from one named member.
  Result<json::Value> StatsFrom(const std::string& member);

  /// Asks every reachable member to shut down; returns the count reached.
  int ShutdownAll();

 private:
  Result<serve::ServeClient*> ClientFor(const std::string& member);

  std::vector<std::string> members_;
  HashRing ring_;
  RetryOptions retry_;
  std::unordered_map<std::string, std::unique_ptr<serve::ServeClient>> clients_;
};

}  // namespace harmony::cluster

#endif  // HARMONY_CLUSTER_CLUSTER_H_
