#ifndef HARMONY_TENSOR_LAYERS_H_
#define HARMONY_TENSOR_LAYERS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace harmony::tensor {

/// Activations a layer saves in its forward pass for use by its backward
/// pass. Under Harmony's recomputation these are rebuilt from the pack-input
/// checkpoint; either way the values are bit-identical because forward is
/// deterministic.
struct Stash {
  std::vector<Tensor> t;
};

/// A differentiable layer with explicit, stateless forward/backward: the
/// layer-granularity unit the correctness experiments schedule in different
/// orders. Parameters are owned by the layer; gradients are accumulated into
/// caller-provided buffers so the *accumulation order* is under the
/// scheduler's control (and can be shown not to matter bit-wise when it
/// follows microbatch order).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Computes the layer output; records what backward needs into `stash`.
  virtual Tensor Forward(const Tensor& x, Stash* stash) const = 0;

  /// Given the stash from (re)computation and the output gradient, returns
  /// the input gradient and accumulates parameter gradients into `grads`
  /// (same order/shapes as Params(); buffers must be pre-sized or empty —
  /// empty buffers are initialized to zeros).
  virtual Tensor Backward(const Stash& stash, const Tensor& dy,
                          std::vector<Tensor>* grads) const = 0;

  virtual std::vector<Tensor*> Params() = 0;
  std::vector<const Tensor*> Params() const {
    auto ps = const_cast<Layer*>(this)->Params();
    return {ps.begin(), ps.end()};
  }

 protected:
  /// Ensures `grads` has zero-initialized buffers matching Params().
  void EnsureGradBuffers(std::vector<Tensor>* grads) const;
};

/// Token + learned positional embedding: [B, S] int tokens -> [B*S, H].
class Embedding final : public Layer {
 public:
  Embedding(int vocab, int hidden, int seq, Rng* rng);
  std::string name() const override { return "embedding"; }
  Tensor Forward(const Tensor& x, Stash* stash) const override;
  Tensor Backward(const Stash& stash, const Tensor& dy,
                  std::vector<Tensor>* grads) const override;
  std::vector<Tensor*> Params() override { return {&tok_, &pos_}; }

 private:
  int vocab_, hidden_, seq_;
  Tensor tok_, pos_;
};

/// Pre-LN multi-head self-attention block with residual connection.
class AttentionBlock final : public Layer {
 public:
  AttentionBlock(int hidden, int heads, int seq, bool causal, Rng* rng);
  std::string name() const override { return "attention"; }
  Tensor Forward(const Tensor& x, Stash* stash) const override;
  Tensor Backward(const Stash& stash, const Tensor& dy,
                  std::vector<Tensor>* grads) const override;
  std::vector<Tensor*> Params() override {
    return {&ln_g_, &ln_b_, &w_qkv_, &b_qkv_, &w_o_, &b_o_};
  }

 private:
  int hidden_, heads_, seq_, dk_;
  bool causal_;
  Tensor ln_g_, ln_b_, w_qkv_, b_qkv_, w_o_, b_o_;
};

/// Pre-LN 2-layer GELU MLP block with residual connection.
class MlpBlock final : public Layer {
 public:
  MlpBlock(int hidden, int ffn, Rng* rng);
  std::string name() const override { return "mlp"; }
  Tensor Forward(const Tensor& x, Stash* stash) const override;
  Tensor Backward(const Stash& stash, const Tensor& dy,
                  std::vector<Tensor>* grads) const override;
  std::vector<Tensor*> Params() override {
    return {&ln_g_, &ln_b_, &w1_, &b1_, &w2_, &b2_};
  }

 private:
  int hidden_, ffn_;
  Tensor ln_g_, ln_b_, w1_, b1_, w2_, b2_;
};

/// Final norm + linear head over the first token ([CLS]) of each sequence:
/// [B*S, H] -> [B, classes].
class Classifier final : public Layer {
 public:
  Classifier(int hidden, int classes, int seq, Rng* rng);
  std::string name() const override { return "classifier"; }
  Tensor Forward(const Tensor& x, Stash* stash) const override;
  Tensor Backward(const Stash& stash, const Tensor& dy,
                  std::vector<Tensor>* grads) const override;
  std::vector<Tensor*> Params() override { return {&ln_g_, &ln_b_, &w_, &b_}; }

 private:
  int hidden_, classes_, seq_;
  Tensor ln_g_, ln_b_, w_, b_;
};

/// Softmax cross-entropy, returned as the *sum* over samples (the trainer
/// divides by the global minibatch once, so microbatch grouping cannot
/// change the arithmetic). Returns {loss_sum, dlogits}.
std::pair<float, Tensor> SoftmaxCrossEntropySum(const Tensor& logits,
                                                const std::vector<int>& labels);

/// Row-wise layer norm over the last dim of a 2D tensor (helper shared by
/// layers; exposed for unit tests). Saves mean/rstd per row into the outputs.
Tensor LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                        Tensor* mean, Tensor* rstd);
Tensor LayerNormBackward(const Tensor& x, const Tensor& gamma,
                         const Tensor& mean, const Tensor& rstd,
                         const Tensor& dy, Tensor* dgamma, Tensor* dbeta);

float Gelu(float x);
float GeluGrad(float x);

}  // namespace harmony::tensor

#endif  // HARMONY_TENSOR_LAYERS_H_
