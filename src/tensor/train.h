#ifndef HARMONY_TENSOR_TRAIN_H_
#define HARMONY_TENSOR_TRAIN_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "tensor/layers.h"
#include "tensor/optim.h"

namespace harmony::tensor {

/// A small but real transformer used by the correctness experiments
/// (Sec 5.4): Embedding + (Attention, MLP) x blocks + Classifier, trained
/// with actual FP32 arithmetic so execution-order claims are testable
/// bit-for-bit.
struct TinyModelConfig {
  int vocab = 64;
  int hidden = 32;
  int heads = 4;
  int seq = 8;
  int blocks = 3;
  int classes = 2;
  bool causal = false;
  uint64_t seed = 42;
};

class TinyModel {
 public:
  explicit TinyModel(const TinyModelConfig& config);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_.at(i); }
  const Layer& layer(int i) const { return *layers_.at(i); }
  const TinyModelConfig& config() const { return config_; }

 private:
  TinyModelConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Deterministic synthetic dataset: the label of a sequence is derived from
/// its first token, so the model can actually learn (losses fall, accuracy
/// rises — the Fig 12 curves are real training curves).
class SyntheticDataset {
 public:
  SyntheticDataset(const TinyModelConfig& config, uint64_t seed, int size = 512);

  /// `iteration`-th training minibatch of `minibatch` sequences (wraps).
  void GetBatch(int iteration, int minibatch, Tensor* tokens,
                std::vector<int>* labels) const;
  void EvalBatch(Tensor* tokens, std::vector<int>* labels) const;

 private:
  TinyModelConfig config_;
  Tensor all_tokens_;           // [size, seq]
  std::vector<int> all_labels_;
  int size_;
};

/// How one training run schedules its computation. All schemes compute the
/// same synchronous-SGD iteration; they differ only in execution order —
/// which is exactly what the correctness experiment validates.
enum class ExecutionScheme {
  kBaseline1Gpu,  // per-microbatch fwd+bwd, update at end (vanilla PyTorch)
  kHarmony1Gpu,   // packs + input-batch grouping + recompute + jit updates
  kHarmonyPp,     // wrap-around pipeline order (numerically == kHarmony1Gpu)
  kBaselineDp,    // replicas accumulate, reduce in replica order, update
  kHarmonyDp,     // replica-local Harmony order + same reduction
};

const char* ExecutionSchemeName(ExecutionScheme scheme);

struct TrainOptions {
  int iterations = 20;
  int minibatch = 16;
  /// Backward/accumulation microbatch U_B (all schemes accumulate gradients
  /// in this granularity and order, which is what makes them comparable
  /// bit-for-bit; see Sec 5.4).
  int microbatch = 4;
  /// Forward microbatch U_F for the Harmony schemes (may differ from U_B).
  int fwd_microbatch = 8;
  /// Backward layer packs for the Harmony schemes; empty = every layer its
  /// own pack. The last pack is the fused jit-compute pack.
  core::PackList packs;
  int num_replicas = 2;  // DP schemes
  bool use_adam = true;
  float lr = 1e-3f;
  uint64_t data_seed = 7;
};

struct TrainResult {
  std::vector<float> losses;  // mean loss per iteration
  double eval_accuracy = 0.0;
};

/// Trains a fresh TinyModel under the given scheme and returns the loss
/// curve + final evaluation accuracy. Two runs with the same model seed and
/// equivalent schemes produce bit-identical losses.
TrainResult Train(const TinyModelConfig& model_config, ExecutionScheme scheme,
                  const TrainOptions& options);

}  // namespace harmony::tensor

#endif  // HARMONY_TENSOR_TRAIN_H_
