#include "tensor/layers.h"

#include <cmath>

namespace harmony::tensor {

void Layer::EnsureGradBuffers(std::vector<Tensor>* grads) const {
  const auto params = Params();
  if (grads->size() == params.size()) return;
  HARMONY_CHECK(grads->empty()) << "grad buffer size mismatch";
  for (const Tensor* p : params) grads->push_back(Tensor::Zeros(p->shape()));
}

// ---------------------------------------------------------------------------
// Shared math
// ---------------------------------------------------------------------------

float Gelu(float x) {
  // tanh approximation (GPT-2 convention); fully deterministic.
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  const float t = std::tanh(c * (x + 0.044715f * x * x * x));
  return 0.5f * x * (1.0f + t);
}

float GeluGrad(float x) {
  const float c = 0.7978845608028654f;
  const float u = c * (x + 0.044715f * x * x * x);
  const float t = std::tanh(u);
  const float du = c * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

Tensor LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                        Tensor* mean, Tensor* rstd) {
  const int rows = x.dim(0), cols = x.dim(1);
  *mean = Tensor({rows});
  *rstd = Tensor({rows});
  Tensor y({rows, cols});
  for (int r = 0; r < rows; ++r) {
    float m = 0.0f;
    for (int c = 0; c < cols; ++c) m += x.at2(r, c);
    m /= cols;
    float v = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float d = x.at2(r, c) - m;
      v += d * d;
    }
    v /= cols;
    const float rs = 1.0f / std::sqrt(v + 1e-5f);
    mean->at(r) = m;
    rstd->at(r) = rs;
    for (int c = 0; c < cols; ++c) {
      y.at2(r, c) = (x.at2(r, c) - m) * rs * gamma.at(c) + beta.at(c);
    }
  }
  return y;
}

Tensor LayerNormBackward(const Tensor& x, const Tensor& gamma,
                         const Tensor& mean, const Tensor& rstd,
                         const Tensor& dy, Tensor* dgamma, Tensor* dbeta) {
  const int rows = x.dim(0), cols = x.dim(1);
  Tensor dx({rows, cols});
  for (int r = 0; r < rows; ++r) {
    const float m = mean.at(r), rs = rstd.at(r);
    float sum_dyg = 0.0f, sum_dyg_xhat = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float xhat = (x.at2(r, c) - m) * rs;
      const float dyg = dy.at2(r, c) * gamma.at(c);
      sum_dyg += dyg;
      sum_dyg_xhat += dyg * xhat;
      dgamma->at(c) += dy.at2(r, c) * xhat;
      dbeta->at(c) += dy.at2(r, c);
    }
    for (int c = 0; c < cols; ++c) {
      const float xhat = (x.at2(r, c) - m) * rs;
      const float dyg = dy.at2(r, c) * gamma.at(c);
      dx.at2(r, c) =
          rs * (dyg - sum_dyg / cols - xhat * sum_dyg_xhat / cols);
    }
  }
  return dx;
}

std::pair<float, Tensor> SoftmaxCrossEntropySum(const Tensor& logits,
                                                const std::vector<int>& labels) {
  const int rows = logits.dim(0), cols = logits.dim(1);
  HARMONY_CHECK_EQ(rows, static_cast<int>(labels.size()));
  Tensor dlogits({rows, cols});
  float loss = 0.0f;
  for (int r = 0; r < rows; ++r) {
    float mx = logits.at2(r, 0);
    for (int c = 1; c < cols; ++c) mx = std::max(mx, logits.at2(r, c));
    float z = 0.0f;
    for (int c = 0; c < cols; ++c) z += std::exp(logits.at2(r, c) - mx);
    const float logz = std::log(z) + mx;
    loss += logz - logits.at2(r, labels[r]);
    for (int c = 0; c < cols; ++c) {
      const float p = std::exp(logits.at2(r, c) - logz);
      dlogits.at2(r, c) = p - (c == labels[r] ? 1.0f : 0.0f);
    }
  }
  return {loss, dlogits};
}

namespace {
/// out-of-line column-sum into a bias gradient.
void AccumulateBiasGrad(const Tensor& dy, Tensor* db) {
  for (int r = 0; r < dy.dim(0); ++r) {
    for (int c = 0; c < dy.dim(1); ++c) db->at(c) += dy.at2(r, c);
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

Embedding::Embedding(int vocab, int hidden, int seq, Rng* rng)
    : vocab_(vocab),
      hidden_(hidden),
      seq_(seq),
      tok_(Tensor::Randn({vocab, hidden}, rng, 0.02f)),
      pos_(Tensor::Randn({seq, hidden}, rng, 0.02f)) {}

Tensor Embedding::Forward(const Tensor& x, Stash* stash) const {
  const int batch = x.dim(0);
  HARMONY_CHECK_EQ(x.dim(1), seq_);
  Tensor y({batch * seq_, hidden_});
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq_; ++s) {
      const int token = static_cast<int>(x.at2(b, s));
      HARMONY_CHECK_GE(token, 0);
      HARMONY_CHECK_LT(token, vocab_);
      for (int h = 0; h < hidden_; ++h) {
        y.at2(b * seq_ + s, h) = tok_.at2(token, h) + pos_.at2(s, h);
      }
    }
  }
  if (stash) stash->t = {x};
  return y;
}

Tensor Embedding::Backward(const Stash& stash, const Tensor& dy,
                           std::vector<Tensor>* grads) const {
  EnsureGradBuffers(grads);
  const Tensor& x = stash.t[0];
  const int batch = x.dim(0);
  Tensor& dtok = (*grads)[0];
  Tensor& dpos = (*grads)[1];
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq_; ++s) {
      const int token = static_cast<int>(x.at2(b, s));
      for (int h = 0; h < hidden_; ++h) {
        const float g = dy.at2(b * seq_ + s, h);
        dtok.at2(token, h) += g;
        dpos.at2(s, h) += g;
      }
    }
  }
  return Tensor::Zeros(x.shape());  // no gradient for integer tokens
}

// ---------------------------------------------------------------------------
// AttentionBlock
// ---------------------------------------------------------------------------

AttentionBlock::AttentionBlock(int hidden, int heads, int seq, bool causal,
                               Rng* rng)
    : hidden_(hidden),
      heads_(heads),
      seq_(seq),
      dk_(hidden / heads),
      causal_(causal),
      ln_g_(Tensor::Zeros({hidden})),
      ln_b_(Tensor::Zeros({hidden})),
      w_qkv_(Tensor::Randn({hidden, 3 * hidden}, rng, 0.02f)),
      b_qkv_(Tensor::Zeros({3 * hidden})),
      w_o_(Tensor::Randn({hidden, hidden}, rng, 0.02f)),
      b_o_(Tensor::Zeros({hidden})) {
  HARMONY_CHECK_EQ(hidden % heads, 0);
  for (int h = 0; h < hidden; ++h) ln_g_.at(h) = 1.0f;
}

Tensor AttentionBlock::Forward(const Tensor& x, Stash* stash) const {
  const int rows = x.dim(0);
  HARMONY_CHECK_EQ(rows % seq_, 0);
  const int batch = rows / seq_;
  Tensor mean, rstd;
  const Tensor ln = LayerNormForward(x, ln_g_, ln_b_, &mean, &rstd);
  const Tensor qkv = AddBias(MatMul(ln, w_qkv_), b_qkv_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));

  Tensor ctx({rows, hidden_});
  Tensor probs_all({batch * heads_, seq_ * seq_});
  for (int b = 0; b < batch; ++b) {
    for (int hd = 0; hd < heads_; ++hd) {
      // scores[i][j] = q_i . k_j * scale  (+ causal mask)
      for (int i = 0; i < seq_; ++i) {
        float mx = -1e30f;
        std::vector<float> row(seq_);
        for (int j = 0; j < seq_; ++j) {
          if (causal_ && j > i) {
            row[j] = -1e30f;
            continue;
          }
          float acc = 0.0f;
          for (int d = 0; d < dk_; ++d) {
            acc += qkv.at2(b * seq_ + i, hd * dk_ + d) *
                   qkv.at2(b * seq_ + j, hidden_ + hd * dk_ + d);
          }
          row[j] = acc * scale;
          mx = std::max(mx, row[j]);
        }
        float z = 0.0f;
        for (int j = 0; j < seq_; ++j) {
          row[j] = (causal_ && j > i) ? 0.0f : std::exp(row[j] - mx);
          z += row[j];
        }
        for (int j = 0; j < seq_; ++j) {
          probs_all.at2(b * heads_ + hd, i * seq_ + j) = row[j] / z;
        }
        for (int d = 0; d < dk_; ++d) {
          float acc = 0.0f;
          for (int j = 0; j < seq_; ++j) {
            acc += (row[j] / z) *
                   qkv.at2(b * seq_ + j, 2 * hidden_ + hd * dk_ + d);
          }
          ctx.at2(b * seq_ + i, hd * dk_ + d) = acc;
        }
      }
    }
  }
  const Tensor out = AddBias(MatMul(ctx, w_o_), b_o_);
  Tensor y = Add(x, out);
  if (stash) stash->t = {x, mean, rstd, ln, qkv, probs_all, ctx};
  return y;
}

Tensor AttentionBlock::Backward(const Stash& stash, const Tensor& dy,
                                std::vector<Tensor>* grads) const {
  EnsureGradBuffers(grads);
  const Tensor& x = stash.t[0];
  const Tensor& mean = stash.t[1];
  const Tensor& rstd = stash.t[2];
  const Tensor& ln = stash.t[3];
  const Tensor& qkv = stash.t[4];
  const Tensor& probs = stash.t[5];
  const Tensor& ctx = stash.t[6];
  const int rows = x.dim(0);
  const int batch = rows / seq_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  Tensor& dln_g = (*grads)[0];
  Tensor& dln_b = (*grads)[1];
  Tensor& dw_qkv = (*grads)[2];
  Tensor& db_qkv = (*grads)[3];
  Tensor& dw_o = (*grads)[4];
  Tensor& db_o = (*grads)[5];

  // y = x + ctx @ Wo + bo
  const Tensor& dout = dy;
  AddInPlace(&dw_o, MatMulAt(ctx, dout));
  AccumulateBiasGrad(dout, &db_o);
  const Tensor dctx = MatMulBt(dout, w_o_);

  Tensor dqkv({rows, 3 * hidden_});
  for (int b = 0; b < batch; ++b) {
    for (int hd = 0; hd < heads_; ++hd) {
      for (int i = 0; i < seq_; ++i) {
        // dprobs[i][j] = dctx_i . v_j ; dv_j += probs[i][j] * dctx_i
        std::vector<float> dprob(seq_, 0.0f);
        for (int j = 0; j < seq_; ++j) {
          float acc = 0.0f;
          for (int d = 0; d < dk_; ++d) {
            acc += dctx.at2(b * seq_ + i, hd * dk_ + d) *
                   qkv.at2(b * seq_ + j, 2 * hidden_ + hd * dk_ + d);
          }
          dprob[j] = acc;
        }
        for (int j = 0; j < seq_; ++j) {
          const float p = probs.at2(b * heads_ + hd, i * seq_ + j);
          for (int d = 0; d < dk_; ++d) {
            dqkv.at2(b * seq_ + j, 2 * hidden_ + hd * dk_ + d) +=
                p * dctx.at2(b * seq_ + i, hd * dk_ + d);
          }
        }
        // softmax backward
        float dot = 0.0f;
        for (int j = 0; j < seq_; ++j) {
          dot += dprob[j] * probs.at2(b * heads_ + hd, i * seq_ + j);
        }
        for (int j = 0; j < seq_; ++j) {
          const float p = probs.at2(b * heads_ + hd, i * seq_ + j);
          const float ds = p * (dprob[j] - dot) * scale;
          // scores[i][j] = scale * q_i . k_j
          for (int d = 0; d < dk_; ++d) {
            dqkv.at2(b * seq_ + i, hd * dk_ + d) +=
                ds * qkv.at2(b * seq_ + j, hidden_ + hd * dk_ + d);
            dqkv.at2(b * seq_ + j, hidden_ + hd * dk_ + d) +=
                ds * qkv.at2(b * seq_ + i, hd * dk_ + d);
          }
        }
      }
    }
  }

  AddInPlace(&dw_qkv, MatMulAt(ln, dqkv));
  AccumulateBiasGrad(dqkv, &db_qkv);
  const Tensor dln = MatMulBt(dqkv, w_qkv_);
  Tensor dx = LayerNormBackward(x, ln_g_, mean, rstd, dln, &dln_g, &dln_b);
  AddInPlace(&dx, dy);  // residual
  return dx;
}

// ---------------------------------------------------------------------------
// MlpBlock
// ---------------------------------------------------------------------------

MlpBlock::MlpBlock(int hidden, int ffn, Rng* rng)
    : hidden_(hidden),
      ffn_(ffn),
      ln_g_(Tensor::Zeros({hidden})),
      ln_b_(Tensor::Zeros({hidden})),
      w1_(Tensor::Randn({hidden, ffn}, rng, 0.02f)),
      b1_(Tensor::Zeros({ffn})),
      w2_(Tensor::Randn({ffn, hidden}, rng, 0.02f)),
      b2_(Tensor::Zeros({hidden})) {
  for (int h = 0; h < hidden; ++h) ln_g_.at(h) = 1.0f;
}

Tensor MlpBlock::Forward(const Tensor& x, Stash* stash) const {
  Tensor mean, rstd;
  const Tensor ln = LayerNormForward(x, ln_g_, ln_b_, &mean, &rstd);
  const Tensor pre = AddBias(MatMul(ln, w1_), b1_);
  Tensor act({pre.dim(0), pre.dim(1)});
  for (int64_t i = 0; i < pre.size(); ++i) act.at(i) = Gelu(pre.at(i));
  const Tensor out = AddBias(MatMul(act, w2_), b2_);
  Tensor y = Add(x, out);
  if (stash) stash->t = {x, mean, rstd, ln, pre, act};
  return y;
}

Tensor MlpBlock::Backward(const Stash& stash, const Tensor& dy,
                          std::vector<Tensor>* grads) const {
  EnsureGradBuffers(grads);
  const Tensor& x = stash.t[0];
  const Tensor& mean = stash.t[1];
  const Tensor& rstd = stash.t[2];
  const Tensor& ln = stash.t[3];
  const Tensor& pre = stash.t[4];
  const Tensor& act = stash.t[5];
  Tensor& dln_g = (*grads)[0];
  Tensor& dln_b = (*grads)[1];
  Tensor& dw1 = (*grads)[2];
  Tensor& db1 = (*grads)[3];
  Tensor& dw2 = (*grads)[4];
  Tensor& db2 = (*grads)[5];

  AddInPlace(&dw2, MatMulAt(act, dy));
  AccumulateBiasGrad(dy, &db2);
  Tensor dact = MatMulBt(dy, w2_);
  for (int64_t i = 0; i < dact.size(); ++i) {
    dact.at(i) *= GeluGrad(pre.at(i));
  }
  AddInPlace(&dw1, MatMulAt(ln, dact));
  AccumulateBiasGrad(dact, &db1);
  const Tensor dln = MatMulBt(dact, w1_);
  Tensor dx = LayerNormBackward(x, ln_g_, mean, rstd, dln, &dln_g, &dln_b);
  AddInPlace(&dx, dy);  // residual
  return dx;
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

Classifier::Classifier(int hidden, int classes, int seq, Rng* rng)
    : hidden_(hidden),
      classes_(classes),
      seq_(seq),
      ln_g_(Tensor::Zeros({hidden})),
      ln_b_(Tensor::Zeros({hidden})),
      w_(Tensor::Randn({hidden, classes}, rng, 0.02f)),
      b_(Tensor::Zeros({classes})) {
  for (int h = 0; h < hidden; ++h) ln_g_.at(h) = 1.0f;
}

Tensor Classifier::Forward(const Tensor& x, Stash* stash) const {
  const int rows = x.dim(0);
  HARMONY_CHECK_EQ(rows % seq_, 0);
  const int batch = rows / seq_;
  // Gather the first token of each sequence.
  Tensor cls({batch, hidden_});
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < hidden_; ++h) cls.at2(b, h) = x.at2(b * seq_, h);
  }
  Tensor mean, rstd;
  const Tensor ln = LayerNormForward(cls, ln_g_, ln_b_, &mean, &rstd);
  Tensor logits = AddBias(MatMul(ln, w_), b_);
  if (stash) stash->t = {cls, mean, rstd, ln};
  return logits;
}

Tensor Classifier::Backward(const Stash& stash, const Tensor& dy,
                            std::vector<Tensor>* grads) const {
  EnsureGradBuffers(grads);
  const Tensor& cls = stash.t[0];
  const Tensor& mean = stash.t[1];
  const Tensor& rstd = stash.t[2];
  const Tensor& ln = stash.t[3];
  Tensor& dln_g = (*grads)[0];
  Tensor& dln_b = (*grads)[1];
  Tensor& dw = (*grads)[2];
  Tensor& db = (*grads)[3];

  AddInPlace(&dw, MatMulAt(ln, dy));
  AccumulateBiasGrad(dy, &db);
  const Tensor dln = MatMulBt(dy, w_);
  const Tensor dcls = LayerNormBackward(cls, ln_g_, mean, rstd, dln, &dln_g, &dln_b);
  const int batch = cls.dim(0);
  Tensor dx({batch * seq_, hidden_});
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < hidden_; ++h) dx.at2(b * seq_, h) = dcls.at2(b, h);
  }
  return dx;
}

}  // namespace harmony::tensor
