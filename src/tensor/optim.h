#ifndef HARMONY_TENSOR_OPTIM_H_
#define HARMONY_TENSOR_OPTIM_H_

#include <map>
#include <vector>

#include "tensor/tensor.h"

namespace harmony::tensor {

/// Per-layer optimizer: state is keyed by layer index so Harmony's jit
/// updates (which step layer packs as soon as their gradients are ready) use
/// exactly the same state and arithmetic as an end-of-iteration update —
/// parameter updates are independent across layers, which is what makes jit
/// scheduling semantics-preserving.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step to `params` of layer `layer` given accumulated
  /// gradient sums; `scale` (1/minibatch) converts sums to means.
  virtual void Step(int layer, const std::vector<Tensor*>& params,
                    const std::vector<Tensor>& grad_sums, float scale) = 0;
};

class SgdMomentum final : public Optimizer {
 public:
  SgdMomentum(float lr, float momentum) : lr_(lr), momentum_(momentum) {}
  void Step(int layer, const std::vector<Tensor*>& params,
            const std::vector<Tensor>& grad_sums, float scale) override;

 private:
  float lr_, momentum_;
  std::map<int, std::vector<Tensor>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(int layer, const std::vector<Tensor*>& params,
            const std::vector<Tensor>& grad_sums, float scale) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::map<int, std::vector<Tensor>> m_, v_;
  std::map<int, int> t_;
};

}  // namespace harmony::tensor

#endif  // HARMONY_TENSOR_OPTIM_H_
