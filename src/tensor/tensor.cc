#include "tensor/tensor.h"

#include <cstring>

namespace harmony::tensor {

namespace {
int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    HARMONY_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor Tensor::Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

bool Tensor::BitEquals(const Tensor& o) const {
  if (shape_ != o.shape_) return false;
  return std::memcmp(data_.data(), o.data_.data(),
                     data_.size() * sizeof(float)) == 0;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HARMONY_CHECK_EQ(a.rank(), 2);
  HARMONY_CHECK_EQ(b.rank(), 2);
  HARMONY_CHECK_EQ(a.dim(1), b.dim(0));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(p, j);
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor MatMulBt(const Tensor& a, const Tensor& b) {
  HARMONY_CHECK_EQ(a.dim(1), b.dim(1));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(j, p);
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor MatMulAt(const Tensor& a, const Tensor& b) {
  HARMONY_CHECK_EQ(a.dim(0), b.dim(0));
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a.at2(p, i) * b.at2(p, j);
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  HARMONY_CHECK(a.SameShape(b));
  Tensor out = a;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) += b.at(i);
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  HARMONY_CHECK(a->SameShape(b));
  for (int64_t i = 0; i < a->size(); ++i) a->at(i) += b.at(i);
}

void Axpy(Tensor* a, float s, const Tensor& b) {
  HARMONY_CHECK(a->SameShape(b));
  for (int64_t i = 0; i < a->size(); ++i) a->at(i) += s * b.at(i);
}

Tensor AddBias(const Tensor& a, const Tensor& bias) {
  HARMONY_CHECK_EQ(a.rank(), 2);
  HARMONY_CHECK_EQ(bias.rank(), 1);
  HARMONY_CHECK_EQ(a.dim(1), bias.dim(0));
  Tensor out = a;
  for (int r = 0; r < a.dim(0); ++r) {
    for (int c = 0; c < a.dim(1); ++c) out.at2(r, c) += bias.at(c);
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= s;
  return out;
}

}  // namespace harmony::tensor
