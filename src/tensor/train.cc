#include "tensor/train.h"

#include <algorithm>
#include <functional>
#include <map>

namespace harmony::tensor {

using core::Pack;
using core::PackList;

TinyModel::TinyModel(const TinyModelConfig& c) : config_(c) {
  Rng rng(c.seed);
  layers_.push_back(std::make_unique<Embedding>(c.vocab, c.hidden, c.seq, &rng));
  for (int b = 0; b < c.blocks; ++b) {
    layers_.push_back(
        std::make_unique<AttentionBlock>(c.hidden, c.heads, c.seq, c.causal, &rng));
    layers_.push_back(std::make_unique<MlpBlock>(c.hidden, 4 * c.hidden, &rng));
  }
  layers_.push_back(
      std::make_unique<Classifier>(c.hidden, c.classes, c.seq, &rng));
}

SyntheticDataset::SyntheticDataset(const TinyModelConfig& c, uint64_t seed,
                                   int size)
    : config_(c), all_tokens_({size, c.seq}), size_(size) {
  Rng rng(seed);
  all_labels_.resize(size);
  for (int i = 0; i < size; ++i) {
    for (int s = 0; s < c.seq; ++s) {
      all_tokens_.at2(i, s) =
          static_cast<float>(rng.NextBounded(static_cast<uint64_t>(c.vocab)));
    }
    // Learnable signal: the label is a function of the first token.
    all_labels_[i] = static_cast<int>(all_tokens_.at2(i, 0)) % c.classes;
  }
}

void SyntheticDataset::GetBatch(int iteration, int minibatch, Tensor* tokens,
                                std::vector<int>* labels) const {
  *tokens = Tensor({minibatch, config_.seq});
  labels->resize(minibatch);
  for (int i = 0; i < minibatch; ++i) {
    const int idx = (iteration * minibatch + i) % size_;
    for (int s = 0; s < config_.seq; ++s) {
      tokens->at2(i, s) = all_tokens_.at2(idx, s);
    }
    (*labels)[i] = all_labels_[idx];
  }
}

void SyntheticDataset::EvalBatch(Tensor* tokens, std::vector<int>* labels) const {
  const int n = std::min(128, size_);
  *tokens = Tensor({n, config_.seq});
  labels->resize(n);
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < config_.seq; ++s) {
      tokens->at2(i, s) = all_tokens_.at2(i, s);
    }
    (*labels)[i] = all_labels_[i];
  }
}

const char* ExecutionSchemeName(ExecutionScheme scheme) {
  switch (scheme) {
    case ExecutionScheme::kBaseline1Gpu: return "Baseline (1 GPU)";
    case ExecutionScheme::kHarmony1Gpu: return "Harmony (1 GPU)";
    case ExecutionScheme::kHarmonyPp: return "Harmony PP";
    case ExecutionScheme::kBaselineDp: return "Baseline DP";
    case ExecutionScheme::kHarmonyDp: return "Harmony DP";
  }
  return "?";
}

namespace {

Tensor SliceRows(const Tensor& t, int row_begin, int row_count) {
  HARMONY_CHECK_EQ(t.rank(), 2);
  HARMONY_CHECK_LE(row_begin + row_count, t.dim(0));
  Tensor out({row_count, t.dim(1)});
  for (int r = 0; r < row_count; ++r) {
    for (int c = 0; c < t.dim(1); ++c) out.at2(r, c) = t.at2(row_begin + r, c);
  }
  return out;
}

/// Boundary tensor storage at producer-piece granularity with arbitrary
/// sample-range extraction (the in-memory analogue of the Runtime's
/// checkpoint store + cross-granularity piece matching).
class BoundaryStore {
 public:
  explicit BoundaryStore(int rows_per_sample) : rows_(rows_per_sample) {}

  void Put(int sample_begin, Tensor t) { pieces_[sample_begin] = std::move(t); }

  Tensor Get(int sample_begin, int sample_count) const {
    // Fast path: exact piece.
    auto it = pieces_.find(sample_begin);
    if (it != pieces_.end() && it->second.dim(0) == sample_count * rows_) {
      return it->second;
    }
    // Assemble from overlapping pieces.
    Tensor out;
    int filled = 0;
    for (const auto& [begin, piece] : pieces_) {
      const int count = piece.dim(0) / rows_;
      const int lo = std::max(begin, sample_begin);
      const int hi = std::min(begin + count, sample_begin + sample_count);
      if (lo >= hi) continue;
      Tensor part = SliceRows(piece, (lo - begin) * rows_, (hi - lo) * rows_);
      if (out.size() == 0) {
        out = Tensor({sample_count * rows_, part.dim(1)});
      }
      for (int r = 0; r < part.dim(0); ++r) {
        for (int c = 0; c < part.dim(1); ++c) {
          out.at2((lo - sample_begin) * rows_ + r, c) = part.at2(r, c);
        }
      }
      filled += hi - lo;
    }
    HARMONY_CHECK_EQ(filled, sample_count) << "boundary store gap";
    return out;
  }

 private:
  int rows_;
  std::map<int, Tensor> pieces_;
};

struct GradAccumulator {
  std::vector<std::vector<Tensor>> per_layer;  // [layer][param]
  float loss_sum = 0.0f;

  explicit GradAccumulator(int layers) : per_layer(layers) {}

  void Merge(const GradAccumulator& other) {
    loss_sum += other.loss_sum;
    for (size_t l = 0; l < per_layer.size(); ++l) {
      if (other.per_layer[l].empty()) continue;
      if (per_layer[l].empty()) {
        per_layer[l] = other.per_layer[l];
        continue;
      }
      for (size_t p = 0; p < per_layer[l].size(); ++p) {
        AddInPlace(&per_layer[l][p], other.per_layer[l][p]);
      }
    }
  }
};

/// Baseline order: for each microbatch, forward all layers then backward all
/// layers (vanilla autograd with gradient accumulation). Operates on samples
/// [begin, begin+count) of the batch.
void AccumulateBaseline(TinyModel* model, const Tensor& tokens,
                        const std::vector<int>& labels, int begin, int count,
                        int microbatch, GradAccumulator* acc) {
  const int R = model->num_layers();
  for (int mb = begin; mb < begin + count; mb += microbatch) {
    const int u = std::min(microbatch, begin + count - mb);
    Tensor x = SliceRows(tokens, mb, u);
    std::vector<int> y(labels.begin() + mb, labels.begin() + mb + u);
    std::vector<Stash> stashes(R);
    Tensor act = x;
    for (int l = 0; l < R; ++l) act = model->layer(l).Forward(act, &stashes[l]);
    auto [loss, dy] = SoftmaxCrossEntropySum(act, y);
    acc->loss_sum += loss;
    Tensor grad = dy;
    for (int l = R - 1; l >= 0; --l) {
      grad = model->layer(l).Backward(stashes[l], grad, &acc->per_layer[l]);
    }
  }
}

/// Harmony order: grouped forward over packs (checkpointing pack inputs),
/// then fused + reverse backward packs with rematerialization; `updated`
/// reports which packs finished so the caller can jit-update. Operates on
/// samples [begin, begin+count).
void AccumulateHarmony(TinyModel* model, const Tensor& tokens,
                       const std::vector<int>& labels, int begin, int count,
                       int u_fwd, int u_bwd, const PackList& packs,
                       GradAccumulator* acc,
                       const std::function<void(const Pack&)>& pack_done) {
  const int R = model->num_layers();
  const int seq = model->config().seq;
  HARMONY_CHECK(!packs.empty());
  HARMONY_CHECK_EQ(packs.front().lo, 0);
  HARMONY_CHECK_EQ(packs.back().hi, R - 1);
  const Pack fused = packs.back();

  // Boundary stores. Boundary 0 is the token input (1 row of seq per
  // sample); interior boundaries carry hidden states (seq rows per sample).
  std::map<int, BoundaryStore> stores;
  stores.emplace(0, BoundaryStore(1));
  for (int b = 1; b < R; ++b) stores.emplace(b, BoundaryStore(seq));
  {
    BoundaryStore& s0 = stores.at(0);
    s0.Put(0, SliceRows(tokens, begin, count));
  }

  // Forward packs (all but the fused one), input-batch grouped at U_F.
  for (size_t pi = 0; pi + 1 < packs.size(); ++pi) {
    const Pack& p = packs[pi];
    for (int mb = 0; mb < count; mb += u_fwd) {
      const int u = std::min(u_fwd, count - mb);
      Tensor act = stores.at(p.lo).Get(mb, u);
      for (int l = p.lo; l <= p.hi; ++l) {
        act = model->layer(l).Forward(act, /*stash=*/nullptr);
      }
      stores.at(p.hi + 1).Put(mb, std::move(act));
    }
  }

  // Backward packs in reverse, grouped at U_B; the last pack's forward runs
  // fused (jit-compute), others rematerialize from their checkpoint.
  std::map<int, BoundaryStore> grad_stores;  // gradient at boundary b
  for (int b = 1; b < R; ++b) grad_stores.emplace(b, BoundaryStore(seq));
  for (int pi = static_cast<int>(packs.size()) - 1; pi >= 0; --pi) {
    const Pack& p = packs[pi];
    for (int mb = 0; mb < count; mb += u_bwd) {
      const int u = std::min(u_bwd, count - mb);
      Tensor act = stores.at(p.lo).Get(mb, u);
      std::vector<Stash> stashes(p.num_layers());
      for (int l = p.lo; l <= p.hi; ++l) {
        act = model->layer(l).Forward(act, &stashes[l - p.lo]);
      }
      Tensor grad;
      if (p.hi == R - 1) {
        std::vector<int> y(labels.begin() + begin + mb,
                           labels.begin() + begin + mb + u);
        auto [loss, dlogits] = SoftmaxCrossEntropySum(act, y);
        acc->loss_sum += loss;
        grad = std::move(dlogits);
      } else {
        grad = grad_stores.at(p.hi + 1).Get(mb, u);
      }
      for (int l = p.hi; l >= p.lo; --l) {
        grad = model->layer(l).Backward(stashes[l - p.lo], grad,
                                        &acc->per_layer[l]);
      }
      if (p.lo > 0) grad_stores.at(p.lo).Put(mb, std::move(grad));
    }
    pack_done(p);
  }
  (void)fused;
}

std::vector<std::pair<int, int>> ReplicaShares(int minibatch, int replicas) {
  std::vector<std::pair<int, int>> shares;
  int begin = 0;
  for (int r = 0; r < replicas; ++r) {
    int count = minibatch / replicas + (r < minibatch % replicas ? 1 : 0);
    shares.emplace_back(begin, count);
    begin += count;
  }
  return shares;
}

}  // namespace

TrainResult Train(const TinyModelConfig& model_config, ExecutionScheme scheme,
                  const TrainOptions& options) {
  TinyModel model(model_config);
  const int R = model.num_layers();
  SyntheticDataset data(model_config, options.data_seed);

  PackList packs = options.packs;
  if (packs.empty()) {
    for (int l = 0; l < R; ++l) packs.push_back(Pack{l, l});
  }

  std::unique_ptr<Optimizer> opt;
  if (options.use_adam) {
    opt = std::make_unique<Adam>(options.lr);
  } else {
    opt = std::make_unique<SgdMomentum>(options.lr, 0.9f);
  }

  auto update_pack = [&](const Pack& p, GradAccumulator* acc) {
    for (int l = p.lo; l <= p.hi; ++l) {
      opt->Step(l, model.layer(l).Params(), acc->per_layer[l],
                1.0f / options.minibatch);
    }
  };

  TrainResult result;
  for (int iter = 0; iter < options.iterations; ++iter) {
    Tensor tokens;
    std::vector<int> labels;
    data.GetBatch(iter, options.minibatch, &tokens, &labels);
    GradAccumulator acc(R);

    switch (scheme) {
      case ExecutionScheme::kBaseline1Gpu:
        AccumulateBaseline(&model, tokens, labels, 0, options.minibatch,
                           options.microbatch, &acc);
        for (const Pack& p : packs) update_pack(p, &acc);
        break;
      case ExecutionScheme::kHarmony1Gpu:
      case ExecutionScheme::kHarmonyPp:
        // The wrap-around pipeline reorders *where* tasks run, not their
        // arithmetic; both schemes execute the Harmony order with jit
        // updates as each pack's gradients complete.
        AccumulateHarmony(&model, tokens, labels, 0, options.minibatch,
                          options.fwd_microbatch, options.microbatch, packs,
                          &acc, [&](const Pack& p) { update_pack(p, &acc); });
        break;
      case ExecutionScheme::kBaselineDp:
      case ExecutionScheme::kHarmonyDp: {
        GradAccumulator total(R);
        for (const auto& [begin, count] :
             ReplicaShares(options.minibatch, options.num_replicas)) {
          GradAccumulator replica(R);
          if (scheme == ExecutionScheme::kBaselineDp) {
            AccumulateBaseline(&model, tokens, labels, begin, count,
                               options.microbatch, &replica);
          } else {
            AccumulateHarmony(&model, tokens, labels, begin, count,
                              options.fwd_microbatch, options.microbatch, packs,
                              &replica, [](const Pack&) {});
          }
          total.Merge(replica);  // reduction in replica order
        }
        for (const Pack& p : packs) update_pack(p, &total);
        acc.loss_sum = total.loss_sum;
        break;
      }
    }
    result.losses.push_back(acc.loss_sum / options.minibatch);
  }

  // Final evaluation accuracy.
  Tensor eval_tokens;
  std::vector<int> eval_labels;
  data.EvalBatch(&eval_tokens, &eval_labels);
  Tensor act = eval_tokens;
  for (int l = 0; l < R; ++l) act = model.layer(l).Forward(act, nullptr);
  int correct = 0;
  for (int r = 0; r < act.dim(0); ++r) {
    int best = 0;
    for (int c = 1; c < act.dim(1); ++c) {
      if (act.at2(r, c) > act.at2(r, best)) best = c;
    }
    if (best == eval_labels[r]) ++correct;
  }
  result.eval_accuracy = static_cast<double>(correct) / act.dim(0);
  return result;
}

}  // namespace harmony::tensor
