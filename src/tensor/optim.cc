#include "tensor/optim.h"

#include <cmath>

namespace harmony::tensor {

void SgdMomentum::Step(int layer, const std::vector<Tensor*>& params,
                       const std::vector<Tensor>& grad_sums, float scale) {
  HARMONY_CHECK_EQ(params.size(), grad_sums.size());
  auto& vel = velocity_[layer];
  if (vel.empty()) {
    for (const Tensor* p : params) vel.push_back(Tensor::Zeros(p->shape()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& v = vel[i];
    Tensor& p = *params[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      const float g = grad_sums[i].at(j) * scale;
      v.at(j) = momentum_ * v.at(j) + g;
      p.at(j) -= lr_ * v.at(j);
    }
  }
}

void Adam::Step(int layer, const std::vector<Tensor*>& params,
                const std::vector<Tensor>& grad_sums, float scale) {
  HARMONY_CHECK_EQ(params.size(), grad_sums.size());
  auto& m = m_[layer];
  auto& v = v_[layer];
  if (m.empty()) {
    for (const Tensor* p : params) {
      m.push_back(Tensor::Zeros(p->shape()));
      v.push_back(Tensor::Zeros(p->shape()));
    }
  }
  const int t = ++t_[layer];
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t));
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      const float g = grad_sums[i].at(j) * scale;
      m[i].at(j) = beta1_ * m[i].at(j) + (1.0f - beta1_) * g;
      v[i].at(j) = beta2_ * v[i].at(j) + (1.0f - beta2_) * g * g;
      const float mhat = m[i].at(j) / bc1;
      const float vhat = v[i].at(j) / bc2;
      p.at(j) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace harmony::tensor
