#ifndef HARMONY_TENSOR_TENSOR_H_
#define HARMONY_TENSOR_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace harmony::tensor {

/// Dense row-major FP32 tensor for the correctness experiments (Sec 5.4):
/// small, deterministic, and completely self-contained. Performance is not a
/// goal — bit-exact reproducibility across execution orders is.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor Zeros(std::vector<int> shape);
  /// Gaussian init scaled by `stddev`, deterministic from `rng`.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_.at(i); }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(int64_t i) { return data_[i]; }
  float at(int64_t i) const { return data_[i]; }

  /// 2D accessors (row-major).
  float& at2(int r, int c) { return data_[static_cast<int64_t>(r) * shape_[1] + c]; }
  float at2(int r, int c) const {
    return data_[static_cast<int64_t>(r) * shape_[1] + c];
  }

  bool SameShape(const Tensor& o) const { return shape_ == o.shape_; }

  /// Exact bitwise equality (the Fig 12 correctness criterion).
  bool BitEquals(const Tensor& o) const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// out = a @ b for 2D tensors [m,k] x [k,n]. Deterministic accumulation
/// order (k ascending).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// out = a @ b^T for 2D tensors [m,k] x [n,k].
Tensor MatMulBt(const Tensor& a, const Tensor& b);
/// out = a^T @ b for 2D tensors [k,m] x [k,n].
Tensor MatMulAt(const Tensor& a, const Tensor& b);

/// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// a += b.
void AddInPlace(Tensor* a, const Tensor& b);
/// a += s * b.
void Axpy(Tensor* a, float s, const Tensor& b);
/// c = a + row-broadcast bias [n] over [m,n].
Tensor AddBias(const Tensor& a, const Tensor& bias);
Tensor Scale(const Tensor& a, float s);

}  // namespace harmony::tensor

#endif  // HARMONY_TENSOR_TENSOR_H_
