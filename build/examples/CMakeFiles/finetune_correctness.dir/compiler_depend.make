# Empty compiler generated dependencies file for finetune_correctness.
# This may be replaced when dependencies are built.
