file(REMOVE_RECURSE
  "CMakeFiles/finetune_correctness.dir/finetune_correctness.cpp.o"
  "CMakeFiles/finetune_correctness.dir/finetune_correctness.cpp.o.d"
  "finetune_correctness"
  "finetune_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
