file(REMOVE_RECURSE
  "CMakeFiles/compare_schedules.dir/compare_schedules.cpp.o"
  "CMakeFiles/compare_schedules.dir/compare_schedules.cpp.o.d"
  "compare_schedules"
  "compare_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
