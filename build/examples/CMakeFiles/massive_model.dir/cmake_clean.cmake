file(REMOVE_RECURSE
  "CMakeFiles/massive_model.dir/massive_model.cpp.o"
  "CMakeFiles/massive_model.dir/massive_model.cpp.o.d"
  "massive_model"
  "massive_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massive_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
