# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for massive_model.
