# Empty compiler generated dependencies file for massive_model.
# This may be replaced when dependencies are built.
