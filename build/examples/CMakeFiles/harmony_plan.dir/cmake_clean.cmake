file(REMOVE_RECURSE
  "CMakeFiles/harmony_plan.dir/harmony_plan.cpp.o"
  "CMakeFiles/harmony_plan.dir/harmony_plan.cpp.o.d"
  "harmony_plan"
  "harmony_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
