# Empty dependencies file for harmony_plan.
# This may be replaced when dependencies are built.
