file(REMOVE_RECURSE
  "CMakeFiles/harmony_common.dir/common.cc.o"
  "CMakeFiles/harmony_common.dir/common.cc.o.d"
  "libharmony_common.a"
  "libharmony_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
