file(REMOVE_RECURSE
  "CMakeFiles/harmony_nphard.dir/reduction.cc.o"
  "CMakeFiles/harmony_nphard.dir/reduction.cc.o.d"
  "libharmony_nphard.a"
  "libharmony_nphard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_nphard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
