file(REMOVE_RECURSE
  "libharmony_nphard.a"
)
