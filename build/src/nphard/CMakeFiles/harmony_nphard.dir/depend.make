# Empty dependencies file for harmony_nphard.
# This may be replaced when dependencies are built.
