# Empty dependencies file for harmony_runtime.
# This may be replaced when dependencies are built.
