file(REMOVE_RECURSE
  "CMakeFiles/harmony_runtime.dir/memory_manager.cc.o"
  "CMakeFiles/harmony_runtime.dir/memory_manager.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/runtime.cc.o"
  "CMakeFiles/harmony_runtime.dir/runtime.cc.o.d"
  "libharmony_runtime.a"
  "libharmony_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
