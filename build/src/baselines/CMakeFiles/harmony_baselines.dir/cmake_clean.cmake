file(REMOVE_RECURSE
  "CMakeFiles/harmony_baselines.dir/baselines.cc.o"
  "CMakeFiles/harmony_baselines.dir/baselines.cc.o.d"
  "libharmony_baselines.a"
  "libharmony_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
