
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/harmony_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/config.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/harmony_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/packing.cc" "src/core/CMakeFiles/harmony_core.dir/packing.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/packing.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/harmony_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/harmony_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/search.cc.o.d"
  "/root/repo/src/core/task_graph.cc" "src/core/CMakeFiles/harmony_core.dir/task_graph.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/task_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/harmony_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/harmony_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
