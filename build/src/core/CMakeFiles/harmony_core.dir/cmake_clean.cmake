file(REMOVE_RECURSE
  "CMakeFiles/harmony_core.dir/config.cc.o"
  "CMakeFiles/harmony_core.dir/config.cc.o.d"
  "CMakeFiles/harmony_core.dir/estimator.cc.o"
  "CMakeFiles/harmony_core.dir/estimator.cc.o.d"
  "CMakeFiles/harmony_core.dir/packing.cc.o"
  "CMakeFiles/harmony_core.dir/packing.cc.o.d"
  "CMakeFiles/harmony_core.dir/scheduler.cc.o"
  "CMakeFiles/harmony_core.dir/scheduler.cc.o.d"
  "CMakeFiles/harmony_core.dir/search.cc.o"
  "CMakeFiles/harmony_core.dir/search.cc.o.d"
  "CMakeFiles/harmony_core.dir/task_graph.cc.o"
  "CMakeFiles/harmony_core.dir/task_graph.cc.o.d"
  "libharmony_core.a"
  "libharmony_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
