file(REMOVE_RECURSE
  "libharmony_profile.a"
)
