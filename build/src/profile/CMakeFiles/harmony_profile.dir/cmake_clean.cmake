file(REMOVE_RECURSE
  "CMakeFiles/harmony_profile.dir/profiler.cc.o"
  "CMakeFiles/harmony_profile.dir/profiler.cc.o.d"
  "libharmony_profile.a"
  "libharmony_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
