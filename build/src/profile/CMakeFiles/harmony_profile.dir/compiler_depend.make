# Empty compiler generated dependencies file for harmony_profile.
# This may be replaced when dependencies are built.
