file(REMOVE_RECURSE
  "libharmony_model.a"
)
