
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cost_model.cc" "src/model/CMakeFiles/harmony_model.dir/cost_model.cc.o" "gcc" "src/model/CMakeFiles/harmony_model.dir/cost_model.cc.o.d"
  "/root/repo/src/model/layer.cc" "src/model/CMakeFiles/harmony_model.dir/layer.cc.o" "gcc" "src/model/CMakeFiles/harmony_model.dir/layer.cc.o.d"
  "/root/repo/src/model/memory.cc" "src/model/CMakeFiles/harmony_model.dir/memory.cc.o" "gcc" "src/model/CMakeFiles/harmony_model.dir/memory.cc.o.d"
  "/root/repo/src/model/models.cc" "src/model/CMakeFiles/harmony_model.dir/models.cc.o" "gcc" "src/model/CMakeFiles/harmony_model.dir/models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
