file(REMOVE_RECURSE
  "CMakeFiles/harmony_model.dir/cost_model.cc.o"
  "CMakeFiles/harmony_model.dir/cost_model.cc.o.d"
  "CMakeFiles/harmony_model.dir/layer.cc.o"
  "CMakeFiles/harmony_model.dir/layer.cc.o.d"
  "CMakeFiles/harmony_model.dir/memory.cc.o"
  "CMakeFiles/harmony_model.dir/memory.cc.o.d"
  "CMakeFiles/harmony_model.dir/models.cc.o"
  "CMakeFiles/harmony_model.dir/models.cc.o.d"
  "libharmony_model.a"
  "libharmony_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
