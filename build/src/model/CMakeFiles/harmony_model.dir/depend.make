# Empty dependencies file for harmony_model.
# This may be replaced when dependencies are built.
