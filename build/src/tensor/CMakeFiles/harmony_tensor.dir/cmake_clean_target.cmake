file(REMOVE_RECURSE
  "libharmony_tensor.a"
)
