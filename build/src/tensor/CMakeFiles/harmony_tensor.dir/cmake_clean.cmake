file(REMOVE_RECURSE
  "CMakeFiles/harmony_tensor.dir/layers.cc.o"
  "CMakeFiles/harmony_tensor.dir/layers.cc.o.d"
  "CMakeFiles/harmony_tensor.dir/optim.cc.o"
  "CMakeFiles/harmony_tensor.dir/optim.cc.o.d"
  "CMakeFiles/harmony_tensor.dir/tensor.cc.o"
  "CMakeFiles/harmony_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/harmony_tensor.dir/train.cc.o"
  "CMakeFiles/harmony_tensor.dir/train.cc.o.d"
  "libharmony_tensor.a"
  "libharmony_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
