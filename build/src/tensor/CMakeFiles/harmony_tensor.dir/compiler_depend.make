# Empty compiler generated dependencies file for harmony_tensor.
# This may be replaced when dependencies are built.
