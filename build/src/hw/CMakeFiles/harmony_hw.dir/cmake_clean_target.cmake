file(REMOVE_RECURSE
  "libharmony_hw.a"
)
