# Empty compiler generated dependencies file for harmony_hw.
# This may be replaced when dependencies are built.
