
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/harmony_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/harmony_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/harmony_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/harmony_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/stream.cc" "src/sim/CMakeFiles/harmony_sim.dir/stream.cc.o" "gcc" "src/sim/CMakeFiles/harmony_sim.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
