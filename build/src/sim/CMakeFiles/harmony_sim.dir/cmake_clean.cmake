file(REMOVE_RECURSE
  "CMakeFiles/harmony_sim.dir/engine.cc.o"
  "CMakeFiles/harmony_sim.dir/engine.cc.o.d"
  "CMakeFiles/harmony_sim.dir/network.cc.o"
  "CMakeFiles/harmony_sim.dir/network.cc.o.d"
  "CMakeFiles/harmony_sim.dir/stream.cc.o"
  "CMakeFiles/harmony_sim.dir/stream.cc.o.d"
  "libharmony_sim.a"
  "libharmony_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
