# Empty dependencies file for bench_fig11_zero_infinity.
# This may be replaced when dependencies are built.
