file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_zero_infinity.dir/bench_fig11_zero_infinity.cc.o"
  "CMakeFiles/bench_fig11_zero_infinity.dir/bench_fig11_zero_infinity.cc.o.d"
  "bench_fig11_zero_infinity"
  "bench_fig11_zero_infinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_zero_infinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
