file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_config_search.dir/bench_table1_config_search.cc.o"
  "CMakeFiles/bench_table1_config_search.dir/bench_table1_config_search.cc.o.d"
  "bench_table1_config_search"
  "bench_table1_config_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_config_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
