file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_estimator.dir/bench_fig14_estimator.cc.o"
  "CMakeFiles/bench_fig14_estimator.dir/bench_fig14_estimator.cc.o.d"
  "bench_fig14_estimator"
  "bench_fig14_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
