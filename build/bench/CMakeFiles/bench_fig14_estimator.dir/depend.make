# Empty dependencies file for bench_fig14_estimator.
# This may be replaced when dependencies are built.
