file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_equi_fb.dir/bench_table4_equi_fb.cc.o"
  "CMakeFiles/bench_table4_equi_fb.dir/bench_table4_equi_fb.cc.o.d"
  "bench_table4_equi_fb"
  "bench_table4_equi_fb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_equi_fb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
