# Empty compiler generated dependencies file for bench_table4_equi_fb.
# This may be replaced when dependencies are built.
