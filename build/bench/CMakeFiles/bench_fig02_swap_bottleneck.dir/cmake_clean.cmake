file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_swap_bottleneck.dir/bench_fig02_swap_bottleneck.cc.o"
  "CMakeFiles/bench_fig02_swap_bottleneck.dir/bench_fig02_swap_bottleneck.cc.o.d"
  "bench_fig02_swap_bottleneck"
  "bench_fig02_swap_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_swap_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
