file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_memory_footprint.dir/bench_fig08_memory_footprint.cc.o"
  "CMakeFiles/bench_fig08_memory_footprint.dir/bench_fig08_memory_footprint.cc.o.d"
  "bench_fig08_memory_footprint"
  "bench_fig08_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
