# Empty dependencies file for bench_fig08_memory_footprint.
# This may be replaced when dependencies are built.
