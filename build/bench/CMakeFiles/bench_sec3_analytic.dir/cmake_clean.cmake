file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_analytic.dir/bench_sec3_analytic.cc.o"
  "CMakeFiles/bench_sec3_analytic.dir/bench_sec3_analytic.cc.o.d"
  "bench_sec3_analytic"
  "bench_sec3_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
