# Empty compiler generated dependencies file for bench_sec3_analytic.
# This may be replaced when dependencies are built.
