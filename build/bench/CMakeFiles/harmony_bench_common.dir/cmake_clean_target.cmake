file(REMOVE_RECURSE
  "libharmony_bench_common.a"
)
