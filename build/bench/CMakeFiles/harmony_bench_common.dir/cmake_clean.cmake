file(REMOVE_RECURSE
  "CMakeFiles/harmony_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/harmony_bench_common.dir/bench_common.cc.o.d"
  "libharmony_bench_common.a"
  "libharmony_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
