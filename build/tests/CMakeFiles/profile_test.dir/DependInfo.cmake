
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profile_test.cc" "tests/CMakeFiles/profile_test.dir/profile_test.cc.o" "gcc" "tests/CMakeFiles/profile_test.dir/profile_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/harmony_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/harmony_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/harmony_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nphard/CMakeFiles/harmony_nphard.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harmony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/harmony_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/harmony_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
