# Empty dependencies file for nphard_test.
# This may be replaced when dependencies are built.
