file(REMOVE_RECURSE
  "CMakeFiles/nphard_test.dir/nphard_test.cc.o"
  "CMakeFiles/nphard_test.dir/nphard_test.cc.o.d"
  "nphard_test"
  "nphard_test.pdb"
  "nphard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nphard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
