# Empty compiler generated dependencies file for nvlink_test.
# This may be replaced when dependencies are built.
