file(REMOVE_RECURSE
  "CMakeFiles/nvlink_test.dir/nvlink_test.cc.o"
  "CMakeFiles/nvlink_test.dir/nvlink_test.cc.o.d"
  "nvlink_test"
  "nvlink_test.pdb"
  "nvlink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvlink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
