# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/packing_test[1]_include.cmake")
include("/root/repo/build/tests/task_graph_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/nphard_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nvlink_test[1]_include.cmake")
