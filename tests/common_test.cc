#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/regression.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace harmony {
namespace {

TEST(Units, Constructors) {
  EXPECT_EQ(GiB(1), 1024LL * 1024 * 1024);
  EXPECT_EQ(MiB(2), 2LL * 1024 * 1024);
  EXPECT_EQ(KiB(3), 3LL * 1024);
  EXPECT_EQ(GiB(11.0), 11LL * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(GiBps(16.0), 16.0 * 1024 * 1024 * 1024);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(GiB(11)), "11.00 GiB");
  EXPECT_EQ(FormatBytes(MiB(1.5)), "1.50 MiB");
  EXPECT_EQ(FormatBytes(KiB(4)), "4.00 KiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(FormatTime(1.5), "1.500 s");
  EXPECT_EQ(FormatTime(0.012), "12.000 ms");
  EXPECT_EQ(FormatTime(42e-6), "42.000 us");
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
}

TEST(Result, ValueAndStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitIndependence) {
  Rng parent(5);
  Rng c1 = parent.Split(1);
  Rng c2 = parent.Split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += c1.NextU64() == c2.NextU64();
  EXPECT_LT(equal, 2);
}

TEST(Regression, ExactLinearFit) {
  const std::vector<double> x = {1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * xi);
  const auto fit = LinearRegression::Fit(x, y);
  EXPECT_NEAR(fit.slope(), 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept(), 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(fit.Predict(32), 67.0, 1e-9);
}

TEST(Regression, SinglePointIsConstant) {
  const auto fit = LinearRegression::Fit({4}, {7});
  EXPECT_DOUBLE_EQ(fit.Predict(100), 7.0);
}

TEST(Regression, ClampsNegativePredictions) {
  const auto fit = LinearRegression::Fit({1, 2}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(fit.Predict(-10), 0.0);
}

TEST(Regression, NoisyFitHasReasonableR2) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 1; i <= 32; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i + 10 + rng.NextGaussian() * 0.5);
  }
  const auto fit = LinearRegression::Fit(x, y);
  EXPECT_GT(fit.r_squared(), 0.99);
  EXPECT_NEAR(fit.slope(), 5.0, 0.1);
}

TEST(ThreadPool, TaskExceptionPropagatesToSubmitter) {
  common::ThreadPool pool(2);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the throw; later tasks run normally.
  auto good = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, SubmitAfterShutdownReturnsShutdownError) {
  common::ThreadPool pool(1);
  pool.Shutdown();
  auto rejected = pool.Submit([]() { return 1; });
  EXPECT_THROW(rejected.get(), common::ThreadPool::ShutdownError);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksAndIsIdempotent) {
  common::ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&ran]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);  // nothing already queued was dropped
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  pool.Shutdown();  // second call is a no-op, not a crash
}

TEST(ThreadPool, ConcurrentShutdownCallersAllBlockUntilDrained) {
  common::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1);
    });
  }
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&pool, &ran]() {
      pool.Shutdown();
      // Any caller that returns must observe the fully drained queue.
      EXPECT_EQ(ran.load(), 8);
    });
  }
  for (std::thread& t : callers) t.join();
}

TEST(CancelToken, CancelReportsFirstTripperExactlyOnce) {
  // The first-tripper contract: exactly one caller — across any number of
  // threads — learns it tripped the token. The executor's watchdog leans on
  // this to tell "I am cancelling a wedged run" from "someone already
  // cancelled gracefully" and to report kInternal vs kCancelled accordingly.
  common::CancelToken token;
  EXPECT_TRUE(token.Cancel());
  EXPECT_FALSE(token.Cancel());
  EXPECT_FALSE(token.Cancel());
  EXPECT_TRUE(token.Cancelled());

  common::CancelToken contended;
  std::atomic<int> trippers{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < 8; ++i) {
    callers.emplace_back([&]() {
      if (contended.Cancel()) ++trippers;
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(trippers.load(), 1);
}

TEST(CancelToken, ExplicitCancelAndDeadline) {
  common::CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_FALSE(token.DeadlinePassed());

  common::CancelToken deadline;
  deadline.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(deadline.Cancelled());
  deadline.SetDeadlineAfter(std::chrono::nanoseconds(-1));  // already passed
  EXPECT_TRUE(deadline.Cancelled());
  EXPECT_TRUE(deadline.DeadlinePassed());
}

TEST(Table, AsciiAndCsv) {
  Table t({"model", "time"});
  t.AddRow({"GPT2", Table::Cell(1.5)});
  t.AddRow({"BERT96", Table::Cell(int64_t{42})});
  EXPECT_EQ(t.num_rows(), 2);
  std::ostringstream ascii, csv;
  t.PrintAscii(&ascii);
  t.PrintCsv(&csv);
  EXPECT_NE(ascii.str().find("GPT2"), std::string::npos);
  EXPECT_EQ(csv.str(), "model,time\nGPT2,1.50\nBERT96,42\n");
}

}  // namespace
}  // namespace harmony
