// The parallel configuration search must be a pure wall-time optimization:
// for any worker count it returns bit-identical results to the serial
// reference — same best configuration, same estimate, same explored /
// feasible counts (DESIGN.md "Threading model").

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "core/search.h"
#include "model/models.h"
#include "profile/profiler.h"

namespace harmony::core {
namespace {

class SearchParallelTest : public ::testing::TestWithParam<const char*> {
 protected:
  SearchParallelTest() : machine_(hw::MachineSpec::Commodity4Gpu()) {}

  profile::ProfileDb Profiles() const {
    model::LayerGraph graph = std::string(GetParam()) == "BERT96"
                                  ? model::Bert96()
                                  : model::Gpt2();
    const model::SequentialModel seq = model::Sequentialize(graph);
    return profile::Profiler(machine_.gpu, {}).Profile(seq);
  }

  SearchResult Search(const profile::ProfileDb& db, HarmonyMode mode,
                      int num_threads) const {
    SearchOptions opts;
    opts.u_fwd_max = 16;
    opts.u_bwd_max = 16;
    opts.num_threads = num_threads;
    const auto result =
        SearchConfiguration(db, machine_, mode, 64, OptimizationFlags{}, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.value();
  }

  hw::MachineSpec machine_;
};

TEST_P(SearchParallelTest, ThreadCountInvariantPipelineParallel) {
  const profile::ProfileDb db = Profiles();
  const SearchResult serial = Search(db, HarmonyMode::kPipelineParallel, 1);
  for (int threads : {2, 8}) {
    const SearchResult par = Search(db, HarmonyMode::kPipelineParallel, threads);
    EXPECT_EQ(par.best.u_fwd, serial.best.u_fwd) << threads << " threads";
    EXPECT_EQ(par.best.u_bwd, serial.best.u_bwd) << threads << " threads";
    EXPECT_EQ(par.best.fwd_packs, serial.best.fwd_packs);
    EXPECT_EQ(par.best.bwd_packs, serial.best.bwd_packs);
    // Bit-identical, not just close: the same pure evaluations are merged by
    // the same deterministic rule regardless of which worker ran them.
    EXPECT_EQ(par.best_estimate.iteration_time,
              serial.best_estimate.iteration_time);
    EXPECT_EQ(par.best_estimate.swap_bytes, serial.best_estimate.swap_bytes);
    EXPECT_EQ(par.best_estimate.p2p_bytes, serial.best_estimate.p2p_bytes);
    EXPECT_EQ(par.configs_explored, serial.configs_explored);
    EXPECT_EQ(par.configs_feasible, serial.configs_feasible);
  }
}

TEST_P(SearchParallelTest, ThreadCountInvariantDataParallel) {
  const profile::ProfileDb db = Profiles();
  const SearchResult serial = Search(db, HarmonyMode::kDataParallel, 1);
  const SearchResult par = Search(db, HarmonyMode::kDataParallel, 4);
  EXPECT_EQ(par.best.u_fwd, serial.best.u_fwd);
  EXPECT_EQ(par.best.u_bwd, serial.best.u_bwd);
  EXPECT_EQ(par.best.fwd_packs, serial.best.fwd_packs);
  EXPECT_EQ(par.best.bwd_packs, serial.best.bwd_packs);
  EXPECT_EQ(par.best_estimate.iteration_time,
            serial.best_estimate.iteration_time);
  EXPECT_EQ(par.configs_explored, serial.configs_explored);
  EXPECT_EQ(par.configs_feasible, serial.configs_feasible);
}

INSTANTIATE_TEST_SUITE_P(Table1Models, SearchParallelTest,
                         ::testing::Values("BERT96", "GPT2"),
                         [](const auto& info) { return info.param; });

TEST(SearchExplored, DroppedByDefaultKeptOnRequest) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel seq =
      model::Sequentialize(model::TinyTransformer(16, 512, 128));
  const profile::ProfileDb db = profile::Profiler(machine.gpu, {}).Profile(seq);
  hw::MachineSpec small = machine;
  small.gpu.memory_capacity = MiB(512);

  SearchOptions opts;
  opts.u_fwd_max = 4;
  opts.u_bwd_max = 4;
  opts.num_threads = 2;
  const auto dropped = SearchConfiguration(
      db, small, HarmonyMode::kPipelineParallel, 8, OptimizationFlags{}, opts);
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped.value().explored.empty());

  opts.keep_explored = true;
  const auto kept = SearchConfiguration(
      db, small, HarmonyMode::kPipelineParallel, 8, OptimizationFlags{}, opts);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(static_cast<int>(kept.value().explored.size()),
            kept.value().configs_feasible);
  EXPECT_EQ(kept.value().configs_feasible, dropped.value().configs_feasible);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    common::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must satisfy every future before joining.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  common::ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([]() { return 42; }).get(), 42);
}

}  // namespace
}  // namespace harmony::core
