// Reactor frontend tests: the frame state machines (length prefixes split at
// arbitrary byte boundaries, payloads spread over many reads, oversized
// frames rejected before a byte of payload is buffered), pipelining's
// in-order response guarantee, the idle and partial-frame ("slow loris")
// reapers, the frontend counters in the stats envelope, and the warm-path
// byte memo. Server-level sections drive a real PlanServer over a
// Unix-domain socket — some with ServeClient, some with raw frames where the
// point is a malformed or partial byte stream a well-behaved client would
// never produce.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "serve/client.h"
#include "serve/plan_service.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace harmony {
namespace {

using serve::ModelSpec;
using serve::PlanRequest;
using serve::PlanResponse;
using serve::PlanServer;
using serve::PlanService;
using serve::ServeClient;
using serve::ServeOptions;
using serve::ServerOptions;

/// A request small enough that its cold search takes milliseconds: these
/// tests exercise the frontend, not Algorithm 1.
PlanRequest TinyRequest(int minibatch = 4) {
  PlanRequest request;
  request.model.kind = ModelSpec::Kind::kTransformer;
  request.model.name = "tiny";
  request.model.transformer.name = "tiny";
  request.model.transformer.num_blocks = 4;
  request.model.transformer.hidden = 256;
  request.model.transformer.seq_len = 64;
  request.model.transformer.heads = 4;
  request.model.transformer.vocab = 512;
  request.minibatch = minibatch;
  request.options.u_fwd_max = 4;
  request.options.u_bwd_max = 4;
  return request;
}

std::string SockPath(const std::string& name) {
  return "/tmp/harmony_reactor_" + name + "_" + std::to_string(::getpid()) +
         ".sock";
}

/// Feeds `bytes` to a decoder in `chunk`-sized slices.
Status FeedInChunks(net::FrameDecoder* decoder, const std::string& bytes,
                    size_t chunk) {
  for (size_t i = 0; i < bytes.size(); i += chunk) {
    const size_t n = std::min(chunk, bytes.size() - i);
    HARMONY_RETURN_IF_ERROR(decoder->Feed(bytes.data() + i, n));
  }
  return Status::Ok();
}

std::string EncodeFrame(const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out += payload;
  return out;
}

TEST(FrameDecoder, PrefixSplitAtByteThree) {
  net::FrameDecoder decoder;
  const std::string bytes = EncodeFrame("{\"type\":\"ping\"}");
  ASSERT_TRUE(decoder.Feed(bytes.data(), 3).ok());
  EXPECT_FALSE(decoder.HasFrame());
  EXPECT_TRUE(decoder.mid_frame());
  ASSERT_TRUE(decoder.Feed(bytes.data() + 3, bytes.size() - 3).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.PopFrame(), "{\"type\":\"ping\"}");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameDecoder, PayloadSpreadAcrossManyReads) {
  net::FrameDecoder decoder;
  const std::string payload(1000, 'x');
  ASSERT_TRUE(FeedInChunks(&decoder, EncodeFrame(payload), 1).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.PopFrame(), payload);
}

TEST(FrameDecoder, ZeroLengthPayload) {
  net::FrameDecoder decoder;
  const std::string bytes = EncodeFrame("");
  ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.PopFrame(), "");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameDecoder, SeveralFramesInOneRead) {
  net::FrameDecoder decoder;
  const std::string bytes =
      EncodeFrame("one") + EncodeFrame("") + EncodeFrame("three");
  ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.PopFrame(), "one");
  EXPECT_EQ(decoder.PopFrame(), "");
  EXPECT_EQ(decoder.PopFrame(), "three");
  EXPECT_FALSE(decoder.HasFrame());
}

TEST(FrameDecoder, OversizedFrameRejectedBeforeBufferingPayload) {
  net::FrameDecoder decoder(/*max_payload=*/1024);
  // Prefix declares 1 MiB, followed by bytes that must never be buffered.
  std::string bytes = EncodeFrame(std::string(16, 'y'));
  bytes[1] = 0x10;  // length becomes 0x00100010
  const Status rejected = decoder.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoder.oversized_length(), 0x00100010u);
  EXPECT_EQ(decoder.partial_bytes(), 0u) << "payload of a rejected frame "
                                            "must not be buffered";
  // The stream is unframeable from here: the decoder stays poisoned.
  const std::string good = EncodeFrame("ok");
  EXPECT_EQ(decoder.Feed(good.data(), good.size()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(decoder.HasFrame());
}

TEST(FrameDecoder, GarbagePayloadIsStillAWellFramedFrame) {
  // Framing doesn't care that the payload is not JSON: garbage-then-valid on
  // one stream decodes as two clean frames (the server answers the first
  // with an error frame and keeps the connection).
  net::FrameDecoder decoder;
  const std::string bytes =
      EncodeFrame("!!not json!!") + EncodeFrame("{\"type\":\"ping\"}");
  ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
  EXPECT_EQ(decoder.PopFrame(), "!!not json!!");
  EXPECT_EQ(decoder.PopFrame(), "{\"type\":\"ping\"}");
}

TEST(FrameWriter, QueuedFramesRoundTripThroughASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::FrameWriter writer;
  writer.QueueFrame("alpha");
  writer.QueueFrame("");
  writer.QueueFrame("gamma");
  EXPECT_EQ(writer.pending_bytes(), 5u + 0u + 5u + 3 * 4u);
  ASSERT_TRUE(writer.Flush(fds[0]).ok());
  EXPECT_EQ(writer.pending_bytes(), 0u);
  auto one = net::RecvFrame(fds[1]);
  auto two = net::RecvFrame(fds[1]);
  auto three = net::RecvFrame(fds[1]);
  ASSERT_TRUE(one.ok() && two.ok() && three.ok());
  EXPECT_EQ(one.value(), "alpha");
  EXPECT_EQ(two.value(), "");
  EXPECT_EQ(three.value(), "gamma");
  net::CloseFd(fds[0]);
  net::CloseFd(fds[1]);
}

// --- server-level: a real PlanServer over a Unix socket -------------------

struct TestServer {
  explicit TestServer(const std::string& name,
                      ServerOptions options = ServerOptions{})
      : service(ServeOptions{}) {
    options.unix_path = SockPath(name);
    path = options.unix_path;
    server = std::make_unique<PlanServer>(&service, options);
    const Status listening = server->Listen();
    HARMONY_CHECK(listening.ok()) << listening;
    server->Start();
  }
  ~TestServer() {
    server->Stop();
    ::unlink(path.c_str());
  }

  /// Frontend counters observed through the wire, like any client would.
  json::Value Frontend() {
    ServeClient probe;
    HARMONY_CHECK(probe.ConnectUnix(path).ok());
    auto stats = probe.Stats();
    HARMONY_CHECK(stats.ok()) << stats.status();
    const json::Value* frontend = stats.value().Find("frontend");
    HARMONY_CHECK(frontend != nullptr) << "stats envelope lost \"frontend\"";
    return *frontend;
  }

  PlanService service;
  std::unique_ptr<PlanServer> server;
  std::string path;
};

int64_t ReadCounter(const json::Value& frontend, const std::string& key) {
  int64_t value = -1;
  HARMONY_CHECK(json::ReadInt64(frontend, key, &value).ok())
      << "frontend counter missing: " << key;
  return value;
}

TEST(Reactor, GarbageThenValidFrameOnTheSameConnection) {
  TestServer ts("garbage");
  auto fd = net::ConnectUnix(ts.path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SendFrame(fd.value(), "!!not json!!").ok());
  auto error = net::RecvFrame(fd.value());
  ASSERT_TRUE(error.ok());
  auto parsed = json::Parse(error.value());
  ASSERT_TRUE(parsed.ok());
  std::string type;
  ASSERT_TRUE(json::ReadString(parsed.value(), "type", &type).ok());
  EXPECT_EQ(type, "error");
  // Framing was never violated, so the connection must still be usable.
  ASSERT_TRUE(net::SendFrame(fd.value(), "{\"type\":\"ping\"}").ok());
  auto pong = net::RecvFrame(fd.value());
  ASSERT_TRUE(pong.ok());
  EXPECT_NE(pong.value().find("pong"), std::string::npos);
  net::CloseFd(fd.value());
}

TEST(Reactor, OversizedFrameGetsAnErrorFrameThenTheConnectionCloses) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  TestServer ts("oversized", options);
  auto fd = net::ConnectUnix(ts.path);
  ASSERT_TRUE(fd.ok());
  // A length prefix declaring 1 MiB against a 4 KiB cap.
  const unsigned char prefix[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_EQ(::send(fd.value(), prefix, 4, MSG_NOSIGNAL), 4);
  auto error = net::RecvFrame(fd.value());
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_NE(error.value().find("error"), std::string::npos);
  EXPECT_NE(error.value().find("exceeds"), std::string::npos);
  // The stream is unframeable: the server closes after flushing the error.
  auto eof = net::RecvFrame(fd.value());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  net::CloseFd(fd.value());
}

TEST(Reactor, PipelinedResponsesArriveInRequestOrder) {
  TestServer ts("pipeline");
  ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(ts.path).ok());
  // Distinct minibatches -> distinct searches racing in the worker pool; the
  // k-th response must still answer the k-th request.
  const std::vector<int> minibatches = {1, 2, 4, 8};
  for (const int mb : minibatches) {
    ASSERT_TRUE(client.SendNowait(TinyRequest(mb)).ok());
  }
  EXPECT_EQ(client.in_flight(), 4);
  for (const int mb : minibatches) {
    auto response = client.Collect();
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response.value().status.ok()) << response.value().status;
    EXPECT_EQ(response.value().fingerprint,
              serve::RequestFingerprint(TinyRequest(mb)))
        << "response out of order for minibatch " << mb;
  }
  EXPECT_EQ(client.in_flight(), 0);

  // Warm pass over the same connection: pipelined cache hits must be
  // bit-identical to the cold answers.
  std::vector<std::string> cold_configs;
  for (const int mb : minibatches) {
    auto cold = client.Plan(TinyRequest(mb));
    ASSERT_TRUE(cold.ok());
    cold_configs.push_back(
        serve::ConfigurationToJson(cold.value().config).Dump());
  }
  for (const int mb : minibatches) {
    ASSERT_TRUE(client.SendNowait(TinyRequest(mb)).ok());
  }
  for (size_t i = 0; i < minibatches.size(); ++i) {
    auto warm = client.Collect();
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.value().cache_hit);
    EXPECT_EQ(serve::ConfigurationToJson(warm.value().config).Dump(),
              cold_configs[i]);
  }
}

TEST(Reactor, InlineRepliesDoNotOvertakeASlowSearch) {
  TestServer ts("ordering");
  auto fd = net::ConnectUnix(ts.path);
  ASSERT_TRUE(fd.ok());
  // A plan (handled by a worker thread) pipelined ahead of a ping (handled
  // inline on the loop): the pong must wait for the plan response.
  const std::string plan = ServeClient::EncodePlanEnvelope(TinyRequest());
  ASSERT_TRUE(net::SendFrame(fd.value(), plan).ok());
  ASSERT_TRUE(net::SendFrame(fd.value(), "{\"type\":\"ping\"}").ok());
  auto first = net::RecvFrame(fd.value());
  auto second = net::RecvFrame(fd.value());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first.value().find("\"plan\""), std::string::npos);
  EXPECT_NE(second.value().find("pong"), std::string::npos);
  net::CloseFd(fd.value());
}

TEST(Reactor, IdleConnectionIsReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts("idle", options);
  auto fd = net::ConnectUnix(ts.path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SendFrame(fd.value(), "{\"type\":\"ping\"}").ok());
  ASSERT_TRUE(net::RecvFrame(fd.value()).ok());
  // Go quiet. The reaper closes the connection; this blocking read observes
  // the EOF (NotFound) instead of hanging forever.
  auto eof = net::RecvFrame(fd.value());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  net::CloseFd(fd.value());
  EXPECT_GE(ReadCounter(ts.Frontend(), "connections_reaped_idle"), 1);
}

TEST(Reactor, SlowLorisPartialFrameIsReapedOthersUnaffected) {
  ServerOptions options;
  options.frame_deadline_ms = 100;
  TestServer ts("loris", options);

  // The attacker: two bytes of a length prefix, then silence.
  auto loris = net::ConnectUnix(ts.path);
  ASSERT_TRUE(loris.ok());
  const unsigned char half_prefix[2] = {0x00, 0x00};
  ASSERT_EQ(::send(loris.value(), half_prefix, 2, MSG_NOSIGNAL), 2);

  // A well-behaved neighbor keeps getting service while the loris stalls.
  ServeClient neighbor;
  ASSERT_TRUE(neighbor.ConnectUnix(ts.path).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(neighbor.Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  auto eof = net::RecvFrame(loris.value());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound)
      << "stalled mid-frame connection was not reaped";
  net::CloseFd(loris.value());
  EXPECT_GE(ReadCounter(ts.Frontend(), "connections_reaped_deadline"), 1);
  EXPECT_TRUE(neighbor.Ping().ok());
}

TEST(Reactor, StatsEnvelopeCarriesFrontendCounters) {
  TestServer ts("stats");
  ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(ts.path).ok());
  // Cold search, then a cache hit (fills the byte memo), then a memo hit.
  ASSERT_TRUE(client.Plan(TinyRequest()).ok());
  ASSERT_TRUE(client.Plan(TinyRequest()).ok());
  ASSERT_TRUE(client.Plan(TinyRequest()).ok());

  const json::Value frontend = ts.Frontend();
  EXPECT_GE(ReadCounter(frontend, "connections_live"), 1);
  EXPECT_GE(ReadCounter(frontend, "connections_accepted"), 1);
  EXPECT_GE(ReadCounter(frontend, "frames_received"), 3);
  EXPECT_GE(ReadCounter(frontend, "epoll_wakeups"), 1);
  EXPECT_GE(ReadCounter(frontend, "fastpath_hits"), 1)
      << "a byte-identical warm request should skip JSON parsing";
  EXPECT_EQ(ReadCounter(frontend, "frames_in_flight"), 0);
  EXPECT_EQ(ReadCounter(frontend, "bytes_buffered"), 0);
  // Every counter the struct defines must survive the wire round trip.
  for (const char* key :
       {"connections_rejected", "connections_reaped_idle",
        "connections_reaped_deadline", "connections_closed"}) {
    EXPECT_GE(ReadCounter(frontend, key), 0);
  }
}

TEST(Reactor, OverCapacityConnectionIsRefusedWithAnErrorFrame) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer ts("capacity", options);
  ServeClient first;
  ASSERT_TRUE(first.ConnectUnix(ts.path).ok());
  ASSERT_TRUE(first.Ping().ok());

  auto second = net::ConnectUnix(ts.path);
  ASSERT_TRUE(second.ok());
  auto refusal = net::RecvFrame(second.value());
  ASSERT_TRUE(refusal.ok()) << refusal.status();
  EXPECT_NE(refusal.value().find("capacity"), std::string::npos);
  auto eof = net::RecvFrame(second.value());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  net::CloseFd(second.value());

  // The admitted connection was never disturbed; freeing it readmits.
  EXPECT_TRUE(first.Ping().ok());
  first.Close();
  for (int i = 0; i < 100; ++i) {  // the acceptor sees the close on its tick
    ServeClient retry;
    if (retry.ConnectUnix(ts.path).ok() && retry.Ping().ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "capacity never freed after the first connection closed";
}

TEST(Reactor, ShutdownFramePipelinedBehindRequestsStillAnswersThemAll) {
  TestServer ts("shutdown");
  ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(ts.path).ok());
  // Two plans then a shutdown, all pipelined: both plans must be answered
  // (in order) before the "ok", then the server stops.
  ASSERT_TRUE(client.SendNowait(TinyRequest(1)).ok());
  ASSERT_TRUE(client.SendNowait(TinyRequest(2)).ok());
  auto a = client.Collect();
  auto b = client.Collect();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().fingerprint, serve::RequestFingerprint(TinyRequest(1)));
  EXPECT_EQ(b.value().fingerprint, serve::RequestFingerprint(TinyRequest(2)));
  ASSERT_TRUE(client.Shutdown().ok());
  ts.server->Wait();
  EXPECT_TRUE(ts.server->stopped());
}

TEST(Reactor, MultiLoopServerServesManyConnections) {
  ServerOptions options;
  options.loop_threads = 2;
  TestServer ts("multiloop", options);
  // More connections than loops: round-robin assignment puts traffic on
  // both, and every connection gets correct in-order service.
  std::vector<std::unique_ptr<ServeClient>> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<ServeClient>());
    ASSERT_TRUE(clients.back()->ConnectUnix(ts.path).ok());
  }
  for (auto& c : clients) ASSERT_TRUE(c->SendNowait(TinyRequest()).ok());
  for (auto& c : clients) {
    auto r = c->Collect();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r.value().status.ok());
  }
  EXPECT_GE(ReadCounter(ts.Frontend(), "connections_accepted"), 6);
}

}  // namespace
}  // namespace harmony
