// Golden parity tests for the execution pipeline's hot-path data structures.
//
// These goldens were recorded before the interned-tensor-id / incremental
// flow-network rewrite and pin the observable behaviour bit-for-bit: the
// exact RunMetrics doubles and an FNV-1a hash over the full trace-event
// sequence (kind, lane, device, time bits, bytes, task) of a BERT96 and a
// GPT2 run. Any change to eviction order, fair-share rates, or tensor
// lifetime decisions shifts at least one event and fails the hash — so the
// optimizations are provably semantics-preserving, not just "close enough".

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/packing.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

namespace harmony::runtime {
namespace {

using core::Configuration;
using core::HarmonyMode;
using core::OptimizationFlags;

/// Records every event into an order-sensitive FNV-1a hash. Doubles are
/// hashed by bit pattern, so even 1-ulp timing drift is caught.
class HashSink : public trace::TraceSink {
 public:
  void OnEvent(const trace::Event& e) override {
    ++count_;
    Mix(static_cast<uint64_t>(e.kind));
    Mix(static_cast<uint64_t>(e.lane));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.device)));
    Mix(Bits(e.time));
    Mix(static_cast<uint64_t>(e.bytes));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.task)));
  }

  uint64_t hash() const { return hash_; }
  int64_t count() const { return count_; }

 private:
  static uint64_t Bits(double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  }
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }

  uint64_t hash_ = 0xcbf29ce484222325ull;
  int64_t count_ = 0;
};

struct GoldenRun {
  RunMetrics metrics;
  uint64_t trace_hash = 0;
  int64_t trace_events = 0;
};

GoldenRun RunModel(const model::LayerGraph& layer_graph, int minibatch,
                   int u, int fwd_min_packs,
                   const OptimizationFlags& flags = OptimizationFlags{},
                   const core::PolicyTable* policy = nullptr) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel model = model::Sequentialize(layer_graph);
  const profile::ProfileDb db =
      profile::Profiler(machine.gpu, {}).Profile(model);

  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(machine.gpu.usable_memory() * 0.85);
  Configuration c;
  c.u_fwd = c.u_bwd = u;
  c.bwd_packs = core::BackwardPacks(u, db, opts).value();
  opts.min_packs = fwd_min_packs;
  c.fwd_packs = core::ForwardPacks(u, c.bwd_packs, db, opts).value();
  if (policy != nullptr) c.policy = *policy;

  const core::TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, minibatch, flags, db);

  HashSink sink;
  RuntimeOptions run_opts;
  run_opts.trace_sinks.push_back(&sink);
  const Runtime rt(machine, model);
  auto result = rt.Execute(g, run_opts);
  HARMONY_CHECK(result.ok()) << result.status();

  GoldenRun out;
  out.metrics = std::move(result).value();
  out.trace_hash = sink.hash();
  out.trace_events = sink.count();
  return out;
}

/// Renders the observed values as copy-pastable golden assertions (printed on
/// mismatch to re-record after an intentional behaviour change).
void PrintGoldens(const char* tag, const GoldenRun& r) {
  std::printf("  // goldens for %s\n", tag);
  std::printf("  EXPECT_EQ(BitsOf(r.metrics.iteration_time), 0x%llxull);\n",
              static_cast<unsigned long long>([&] {
                uint64_t u;
                std::memcpy(&u, &r.metrics.iteration_time, sizeof(u));
                return u;
              }()));
  std::printf("  EXPECT_EQ(r.metrics.total_swap(), %lld);\n",
              static_cast<long long>(r.metrics.total_swap()));
  std::printf("  EXPECT_EQ(r.metrics.evictions, %lld);\n",
              static_cast<long long>(r.metrics.evictions));
  std::printf("  EXPECT_EQ(r.metrics.clean_drops, %lld);\n",
              static_cast<long long>(r.metrics.clean_drops));
  std::printf("  EXPECT_EQ(r.trace_events, %lld);\n",
              static_cast<long long>(r.trace_events));
  std::printf("  EXPECT_EQ(r.trace_hash, 0x%llxull);\n",
              static_cast<unsigned long long>(r.trace_hash));
}

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(GoldenParity, Bert96PipelineParallel) {
  const GoldenRun r = RunModel(model::Bert96(), 16, 4, 4);
  // Recorded from the pre-rewrite (std::map keys, from-scratch progressive
  // filling) pipeline; any drift means the rewrite changed behaviour.
  EXPECT_EQ(BitsOf(r.metrics.iteration_time), 0x401e52e4d6c655d1ull);
  EXPECT_EQ(r.metrics.total_swap(), 13321912336);
  EXPECT_EQ(r.metrics.evictions, 0);
  EXPECT_EQ(r.metrics.clean_drops, 0);
  EXPECT_EQ(r.trace_events, 5187);
  EXPECT_EQ(r.trace_hash, 0xc38e73c5bec9e999ull);
  if (HasFailure()) PrintGoldens("BERT96 pp mb16 u4", r);
}

TEST(GoldenParity, Gpt2PipelineParallel) {
  const GoldenRun r = RunModel(model::Gpt2(), 16, 4, 4);
  EXPECT_EQ(BitsOf(r.metrics.iteration_time), 0x4030e7336f16c287ull);
  EXPECT_EQ(r.metrics.total_swap(), 17599113472);
  EXPECT_EQ(r.metrics.evictions, 0);
  EXPECT_EQ(r.metrics.clean_drops, 0);
  EXPECT_EQ(r.trace_events, 3115);
  EXPECT_EQ(r.trace_hash, 0xa1371ea9955932abull);
  if (HasFailure()) PrintGoldens("GPT2 pp mb16 u4", r);
}

// ---------------------------------------------------------------------------
// Residency-policy parity: the legacy coarse knob (use_recompute) and its
// explicit uniform PolicyTable equivalents must lower to bit-identical
// executions. These cases prove the {keep, swap, recompute} refactor is a
// pure generalization — same goldens, no re-record.
// ---------------------------------------------------------------------------

TEST(GoldenParity, ExplicitRecomputeTableMatchesLegacyGoldens) {
  // An all-recompute table is the legacy default (use_recompute=true): the
  // run must reproduce the exact pinned goldens above.
  const core::PolicyTable policy = core::PolicyTable::Uniform(
      model::Sequentialize(model::Bert96()).num_layers(),
      core::StashPolicy::kRecompute);
  const GoldenRun r =
      RunModel(model::Bert96(), 16, 4, 4, OptimizationFlags{}, &policy);
  EXPECT_EQ(BitsOf(r.metrics.iteration_time), 0x401e52e4d6c655d1ull);
  EXPECT_EQ(r.metrics.total_swap(), 13321912336);
  EXPECT_EQ(r.metrics.evictions, 0);
  EXPECT_EQ(r.metrics.clean_drops, 0);
  EXPECT_EQ(r.trace_events, 5187);
  EXPECT_EQ(r.trace_hash, 0xc38e73c5bec9e999ull);
  if (HasFailure()) PrintGoldens("BERT96 pp mb16 u4 recompute-all", r);
}

TEST(GoldenParity, ExplicitKeepTableMatchesLegacyNoRecompute) {
  // An all-keep table is exactly use_recompute=false; compare the two runs
  // field by field (no pinned constants needed — both run in-test).
  OptimizationFlags legacy_flags;
  legacy_flags.use_recompute = false;
  const GoldenRun legacy = RunModel(model::Gpt2(), 16, 4, 4, legacy_flags);

  const core::PolicyTable policy = core::PolicyTable::Uniform(
      model::Sequentialize(model::Gpt2()).num_layers(),
      core::StashPolicy::kKeep);
  const GoldenRun expl =
      RunModel(model::Gpt2(), 16, 4, 4, legacy_flags, &policy);

  EXPECT_EQ(BitsOf(expl.metrics.iteration_time),
            BitsOf(legacy.metrics.iteration_time));
  EXPECT_EQ(expl.metrics.total_swap(), legacy.metrics.total_swap());
  EXPECT_EQ(expl.metrics.evictions, legacy.metrics.evictions);
  EXPECT_EQ(expl.metrics.clean_drops, legacy.metrics.clean_drops);
  EXPECT_EQ(expl.trace_events, legacy.trace_events);
  EXPECT_EQ(expl.trace_hash, legacy.trace_hash);
  if (HasFailure()) {
    PrintGoldens("GPT2 legacy no-recompute", legacy);
    PrintGoldens("GPT2 explicit keep-all", expl);
  }
}

}  // namespace
}  // namespace harmony::runtime
