#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "sim/multirun.h"
#include "sim/network.h"
#include "sim/stream.h"

namespace harmony::sim {
namespace {

TEST(Engine, RunsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.After(2.0, [&] { order.push_back(2); });
  e.After(1.0, [&] { order.push_back(1); });
  e.After(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(e.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, FifoTieBreakAtEqualTime) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) e.After(1.0, [&order, i] { order.push_back(i); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  double fired_at = -1;
  e.After(1.0, [&] { e.After(1.5, [&] { fired_at = e.now(); }); });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Condition, FireReleasesWaiters) {
  Condition c;
  int calls = 0;
  c.OnFire([&] { ++calls; });
  c.OnFire([&] { ++calls; });
  EXPECT_EQ(calls, 0);
  c.Fire();
  EXPECT_EQ(calls, 2);
  c.OnFire([&] { ++calls; });  // post-fire waiters run immediately
  EXPECT_EQ(calls, 3);
}

TEST(Condition, WhenAllWaitsForEveryDep) {
  Condition a, b;
  int done = 0;
  WhenAll({&a, nullptr, &b}, [&] { ++done; });
  a.Fire();
  EXPECT_EQ(done, 0);
  b.Fire();
  EXPECT_EQ(done, 1);
}

TEST(Condition, WhenAllEmptyRunsImmediately) {
  int done = 0;
  WhenAll({}, [&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(Stream, ExecutesInOrder) {
  Engine e;
  Stream s(&e, "t");
  std::vector<int> order;
  s.Push({}, [&](std::function<void()> done) {
    order.push_back(1);
    e.After(2.0, std::move(done));
  });
  s.Push({}, [&](std::function<void()> done) {
    order.push_back(2);
    EXPECT_DOUBLE_EQ(e.now(), 2.0);  // waited for op 1
    e.After(1.0, std::move(done));
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s.busy_time(), 3.0);
  EXPECT_EQ(s.ops_completed(), 2);
}

TEST(Stream, WaitsForDependencies) {
  Engine e;
  Stream s(&e, "t");
  Condition gate;
  double started = -1;
  s.Push({&gate}, [&](std::function<void()> done) {
    started = e.now();
    done();
  });
  e.After(5.0, [&] { gate.Fire(); });
  e.Run();
  EXPECT_DOUBLE_EQ(started, 5.0);
}

TEST(Stream, PushDelayOccupiesStream) {
  Engine e;
  Stream s(&e, "t");
  s.PushDelay({}, 1.0);
  Condition* done = s.PushDelay({}, 2.0);
  e.Run();
  EXPECT_TRUE(done->fired());
  EXPECT_DOUBLE_EQ(s.busy_time(), 3.0);
}

// ---------------------------------------------------------------------------
// FlowNetwork
// ---------------------------------------------------------------------------

TEST(FlowNetwork, SingleFlowTakesBytesOverBandwidth) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double done_at = -1;
  net.StartFlow({0}, GiB(5), [&] { done_at = e.now(); });
  e.Run();
  EXPECT_NEAR(done_at, 0.5, 1e-6);
}

TEST(FlowNetwork, FairSharingDoublesTime) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double a = -1, b = -1;
  net.StartFlow({0}, GiB(5), [&] { a = e.now(); });
  net.StartFlow({0}, GiB(5), [&] { b = e.now(); });
  e.Run();
  // Both share the link: each runs at 5 GiB/s, finishing together at 1s.
  EXPECT_NEAR(a, 1.0, 1e-6);
  EXPECT_NEAR(b, 1.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowReleasesBandwidth) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double small = -1, big = -1;
  net.StartFlow({0}, GiB(1), [&] { small = e.now(); });
  net.StartFlow({0}, GiB(9), [&] { big = e.now(); });
  e.Run();
  // Shared until the small flow drains at 0.2s; big then gets full bandwidth:
  // 9 - 1 = 8 GiB remaining at 10 GiB/s => 0.2 + 0.8 = 1.0s.
  EXPECT_NEAR(small, 0.2, 1e-6);
  EXPECT_NEAR(big, 1.0, 1e-6);
}

TEST(FlowNetwork, MultiLinkPathBottleneck) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10), GiBps(2)});
  double done = -1;
  net.StartFlow({0, 1}, GiB(4), [&] { done = e.now(); });
  e.Run();
  EXPECT_NEAR(done, 2.0, 1e-6);  // limited by the 2 GiB/s hop
}

TEST(FlowNetwork, ZeroByteFlowCompletesAsync) {
  Engine e;
  FlowNetwork net(&e, {GiBps(1)});
  bool done = false;
  net.StartFlow({0}, 0, [&] { done = true; });
  EXPECT_FALSE(done);  // asynchronous even when empty
  e.Run();
  EXPECT_TRUE(done);
}

TEST(FlowNetwork, LargeFlowNoSpin) {
  // Regression test: GB-scale flows must complete in O(1) events despite
  // floating-point residue (sub-byte epsilon).
  Engine e;
  FlowNetwork net(&e, {GiBps(13.6), GiBps(13.6), GiBps(16)});
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    net.StartFlow({0, 1, 2}, GiB(1.37), [&] { ++completed; });
  }
  e.Run();
  EXPECT_EQ(completed, 8);
  EXPECT_LT(e.events_processed(), 200);
}

TEST(FlowNetwork, TracksLinkBytes) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  net.StartFlow({0}, GiB(3), [] {});
  e.Run();
  EXPECT_NEAR(net.link_bytes(0), static_cast<double>(GiB(3)), 16.0);
}

// ---------------------------------------------------------------------------
// Interconnect topology
// ---------------------------------------------------------------------------

TEST(Interconnect, SwapContentionOnSharedHost) {
  // Four GPUs swapping in simultaneously share the host memory port: total
  // throughput is host_mem_bw, so each 4 GiB transfer takes 4*4/16 = 1s
  // instead of 4/13.6 = 0.29s alone.
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  std::vector<double> done(4, -1);
  for (int g = 0; g < 4; ++g) {
    flows.StartFlow(net.SwapInPath(g), GiB(4), [&, g] { done[g] = e.now(); });
  }
  e.Run();
  const double expected = 4.0 * static_cast<double>(GiB(4)) / m.host_mem_bw;
  for (int g = 0; g < 4; ++g) EXPECT_NEAR(done[g], expected, 1e-3);
}

TEST(Interconnect, SingleSwapLimitedByPcie) {
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  double done = -1;
  flows.StartFlow(net.SwapInPath(0), GiB(4), [&] { done = e.now(); });
  e.Run();
  EXPECT_NEAR(done, static_cast<double>(GiB(4)) / m.pcie_bw, 1e-3);
}

TEST(Interconnect, SameSwitchP2pBypassesHost) {
  // GPUs 0 and 1 share a switch: their p2p does not touch the host memory
  // port, so it can run at full PCIe speed while other GPUs swap.
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  ASSERT_TRUE(m.SameSwitch(0, 1));
  ASSERT_FALSE(m.SameSwitch(0, 2));
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  double p2p_done = -1;
  flows.StartFlow(net.P2pPath(0, 1), GiB(4), [&] { p2p_done = e.now(); });
  flows.StartFlow(net.SwapInPath(2), GiB(100), [] {});
  flows.StartFlow(net.SwapInPath(3), GiB(100), [] {});
  e.Run();
  EXPECT_NEAR(p2p_done, static_cast<double>(GiB(4)) / m.pcie_bw, 1e-3);
}

TEST(Interconnect, CrossSwitchP2pUsesUplinks) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  EXPECT_EQ(net.P2pPath(0, 1).size(), 2u);  // gpu.up, gpu.down
  EXPECT_EQ(net.P2pPath(0, 2).size(), 4u);  // + both uplinks
  EXPECT_EQ(net.SwapInPath(0).size(), 3u);  // hostmem, uplink, gpu.down
}

TEST(Interconnect, EightGpuMachineOversubscription) {
  // Four GPUs per switch: concurrent swap-ins on one switch are bounded by
  // the single uplink (4:1 oversubscription, Sec 2).
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  std::vector<double> done(4, -1);
  for (int g = 0; g < 4; ++g) {  // all on switch 0
    flows.StartFlow(net.SwapInPath(g), GiB(4), [&, g] { done[g] = e.now(); });
  }
  e.Run();
  const double expected = 4.0 * static_cast<double>(GiB(4)) / m.uplink_bw;
  for (int g = 0; g < 4; ++g) EXPECT_NEAR(done[g], expected, 1e-2);
}

TEST(Machine, WithNumGpusRestricts) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu().WithNumGpus(3);
  EXPECT_EQ(m.num_gpus, 3);
  EXPECT_EQ(m.gpu_to_switch.size(), 3u);
  EXPECT_EQ(m.num_switches, 1);
}

// ---------------------------------------------------------------------------
// Engine causality + calendar queue
// ---------------------------------------------------------------------------

#ifdef NDEBUG
// Debug builds abort on a past-scheduled event (HARMONY_DCHECK); the clamp
// semantics below are the release-build contract.
TEST(Engine, PastScheduleClampsToNowAndCounts) {
  Engine e;
  std::vector<int> order;
  e.After(1.0, [&] {
    // now() == 1.0; scheduling at 0.5 is a causality violation. The event
    // must still run — clamped to now(), after everything already pending
    // at this timestamp — and the violation must be counted.
    e.At(0.5, [&] { order.push_back(99); });
    e.At(1.0, [&] { order.push_back(1); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{99, 1}));  // FIFO at the clamped time
  EXPECT_EQ(e.causality_clamps(), 1);
  EXPECT_DOUBLE_EQ(e.Run(), 1.0);  // clamp did not move the clock backwards
}
#endif

TEST(Engine, CalendarMatchesReferenceOrderUnderStress) {
  // Adversarial mix for the calendar queue: uniform spread, dense bursts of
  // exact ties, and far-future outliers that must route through the overflow
  // heap. The contract is total order by (time, insertion seq); the
  // reference is a stable sort of the schedule by time.
  std::mt19937_64 rng(0xbadc0ffee);
  std::uniform_real_distribution<double> uniform(0.0, 50.0);
  std::uniform_int_distribution<int> coin(0, 9);
  std::vector<double> times;
  for (int i = 0; i < 5000; ++i) {
    const int kind = coin(rng);
    if (kind < 6) {
      times.push_back(uniform(rng));
    } else if (kind < 9) {
      // Burst: 1-8 events at the exact same double.
      const double t = uniform(rng);
      const int burst = 1 + static_cast<int>(rng() % 8);
      for (int b = 0; b < burst && static_cast<int>(times.size()) < 5000; ++b) {
        times.push_back(t);
      }
    } else {
      times.push_back(1.0e8 + uniform(rng));  // > one year: overflow heap
    }
  }
  std::vector<int> expected(times.size());
  for (size_t i = 0; i < times.size(); ++i) expected[i] = static_cast<int>(i);
  std::stable_sort(expected.begin(), expected.end(),
                   [&](int a, int b) { return times[a] < times[b]; });

  Engine e;
  std::vector<int> observed;
  observed.reserve(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    e.At(times[i], [&observed, i] { observed.push_back(static_cast<int>(i)); });
  }
  e.Run();
  ASSERT_EQ(observed.size(), expected.size());
  EXPECT_EQ(observed, expected);
  // The stress mix must actually exercise the paths it claims to cover.
  EXPECT_GT(e.queue().overflow_pushes(), 0);
  EXPECT_GT(e.queue().rebuilds(), 0);
}

TEST(Engine, EventsScheduledMidRunKeepFifoOrder) {
  // Events spawned from running events must interleave with pre-scheduled
  // ones in global (time, seq) order: an event scheduled later for the same
  // timestamp runs after every event already pending there.
  Engine e;
  std::vector<std::pair<double, int>> log;
  int insert_counter = 2;  // two events scheduled up front
  e.After(1.0, [&] {
    for (int k = 0; k < 3; ++k) {
      const int id = ++insert_counter;
      e.At(2.0, [&log, &e, id] { log.push_back({e.now(), id}); });
    }
  });
  e.At(2.0, [&log, &e] { log.push_back({e.now(), 2}); });  // pre-scheduled
  e.Run();
  ASSERT_EQ(log.size(), 4u);
  for (const auto& [t, id] : log) EXPECT_DOUBLE_EQ(t, 2.0);
  // Pre-scheduled event first (lower seq), then the mid-run ones in order.
  EXPECT_EQ(log[0].second, 2);
  EXPECT_EQ(log[1].second, 3);
  EXPECT_EQ(log[2].second, 4);
  EXPECT_EQ(log[3].second, 5);
}

// ---------------------------------------------------------------------------
// Condition / WhenAll edge cases
// ---------------------------------------------------------------------------

TEST(Condition, WhenAllNullOnlyDepsRunsImmediately) {
  int done = 0;
  WhenAll({nullptr, nullptr, nullptr}, [&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(Condition, WhenAllAllPreFiredRunsImmediately) {
  Condition a, b;
  a.Fire();
  b.Fire();
  int done = 0;
  WhenAll({&a, &b}, [&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(Condition, WhenAllSingleUnfiredDepFastPath) {
  Condition a, b, c;
  a.Fire();
  c.Fire();
  int done = 0;
  WhenAll({&a, &b, &c}, [&] { ++done; });
  EXPECT_EQ(done, 0);
  b.Fire();
  EXPECT_EQ(done, 1);
}

TEST(Condition, ReentrantFireFromWaiter) {
  // A waiter of `a` fires `b`; a WhenAll joins both. The join's completion
  // runs inside a.Fire()'s waiter loop and must run exactly once, with both
  // conditions observably fired.
  Condition a, b;
  int done = 0;
  a.OnFire([&] { b.Fire(); });
  WhenAll({&a, &b}, [&] {
    EXPECT_TRUE(a.fired());
    EXPECT_TRUE(b.fired());
    ++done;
  });
  a.Fire();
  EXPECT_EQ(done, 1);
}

TEST(Condition, WaiterRegisteredDuringFireRunsImmediately) {
  // OnFire called from within a waiter (the condition is mid-Fire, fired_
  // already set) must run synchronously, not be lost.
  Condition a;
  int inner = 0;
  a.OnFire([&] { a.OnFire([&] { ++inner; }); });
  a.Fire();
  EXPECT_EQ(inner, 1);
}

TEST(Condition, WhenAllGuardOutlivesImmediateCompletion) {
  // Guard-lifetime regression: when the last dependency fires synchronously
  // inside WhenAll's own registration pass, the internal barrier must stay
  // alive until the callback finishes (self-deletion, no use-after-free;
  // fails under ASan if the guard dies early).
  Condition a;
  Condition* pa = &a;
  int done = 0;
  a.Fire();
  WhenAll({pa, pa}, [&] { ++done; });  // duplicate, both already fired
  EXPECT_EQ(done, 1);
}

// ---------------------------------------------------------------------------
// MultiRunDriver
// ---------------------------------------------------------------------------

namespace {

/// A small but non-trivial per-run simulation whose result is sensitive to
/// event order: hash of the completion sequence of contended flows.
uint64_t ScenarioFingerprint(int run) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10), GiBps(4)});
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (int i = 0; i < 6; ++i) {
    const Bytes bytes = GiB(1 + ((run + i) % 5));
    const std::vector<int> path = (run + i) % 2 ? std::vector<int>{0, 1}
                                                : std::vector<int>{0};
    net.StartFlow(path, bytes, [&mix, &e, i] {
      mix(static_cast<uint64_t>(i));
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      const double t = e.now();
      std::memcpy(&bits, &t, sizeof(bits));
      mix(bits);
    });
  }
  e.Run();
  return h;
}

}  // namespace

TEST(MultiRunDriver, BitIdenticalAcrossThreadCounts) {
  constexpr int kRuns = 24;
  MultiRunDriver serial(1);
  const std::vector<uint64_t> base = serial.Map<uint64_t>(
      kRuns, [](int run, int) { return ScenarioFingerprint(run); });
  EXPECT_EQ(serial.steals(), 0);
  for (int threads : {2, 4, 8}) {
    MultiRunDriver driver(threads);
    const std::vector<uint64_t> got = driver.Map<uint64_t>(
        kRuns, [](int run, int) { return ScenarioFingerprint(run); });
    EXPECT_EQ(got, base) << "diverged at " << threads << " threads";
  }
}

TEST(MultiRunDriver, SerialRunsInOrderWithWorkerZero) {
  MultiRunDriver driver(1);
  std::vector<int> order;
  driver.Run(5, [&](int run, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(run);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MultiRunDriver, WorkerIndexStaysInRange) {
  MultiRunDriver driver(4);
  std::vector<std::atomic<int>> hits(4);
  driver.Run(64, [&](int, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, driver.num_threads());
    hits[worker].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 64);
}

// ---------------------------------------------------------------------------
// FlowNetwork wakeup suppression
// ---------------------------------------------------------------------------

TEST(FlowNetwork, SuppressesWakeupsCoveredByEarlierArm) {
  // Flow 1 on link 0 completes at t=0.9. Flow 2, started at t=0.1 on link 1,
  // finishes later (t=2.1) and does not change flow 1's rate — so the
  // recompute it triggers projects the same earliest completion (0.9) that
  // is already armed, and must not enqueue a second wakeup.
  Engine e;
  FlowNetwork net(&e, {GiBps(10), GiBps(10)});
  double first = -1, second = -1;
  net.StartFlow({0}, GiB(9), [&] { first = e.now(); });
  e.After(0.1, [&] { net.StartFlow({1}, GiB(20), [&] { second = e.now(); }); });
  e.Run();
  EXPECT_NEAR(first, 0.9, 1e-6);
  EXPECT_NEAR(second, 2.1, 1e-6);
  EXPECT_GE(net.wakeups_suppressed(), 1);
}

TEST(FlowNetwork, SuppressionPreservesCompletionTimes) {
  // The suppressed-wakeup path must be timing-neutral: a rate change that
  // *advances* the earliest completion still fires on time.
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double small = -1, big = -1;
  net.StartFlow({0}, GiB(8), [&] { big = e.now(); });
  // At t=0.2 a second flow joins the same link: the shared rate halves, the
  // first flow's completion moves out, and the new earliest completion must
  // override the stale 0.8s arm (early wakeup re-arms, never mis-fires).
  e.After(0.2, [&] { net.StartFlow({0}, GiB(2), [&] { small = e.now(); }); });
  e.Run();
  // t=0.2: big has 6 GiB left. Shared at 5 GiB/s each: small (2 GiB) drains
  // at t=0.6; big's remaining 4 GiB then runs at full 10 GiB/s: t=1.0.
  EXPECT_NEAR(small, 0.6, 1e-6);
  EXPECT_NEAR(big, 1.0, 1e-6);
}

}  // namespace
}  // namespace harmony::sim
