#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/stream.h"

namespace harmony::sim {
namespace {

TEST(Engine, RunsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.After(2.0, [&] { order.push_back(2); });
  e.After(1.0, [&] { order.push_back(1); });
  e.After(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(e.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, FifoTieBreakAtEqualTime) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) e.After(1.0, [&order, i] { order.push_back(i); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  double fired_at = -1;
  e.After(1.0, [&] { e.After(1.5, [&] { fired_at = e.now(); }); });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Condition, FireReleasesWaiters) {
  Condition c;
  int calls = 0;
  c.OnFire([&] { ++calls; });
  c.OnFire([&] { ++calls; });
  EXPECT_EQ(calls, 0);
  c.Fire();
  EXPECT_EQ(calls, 2);
  c.OnFire([&] { ++calls; });  // post-fire waiters run immediately
  EXPECT_EQ(calls, 3);
}

TEST(Condition, WhenAllWaitsForEveryDep) {
  Condition a, b;
  int done = 0;
  WhenAll({&a, nullptr, &b}, [&] { ++done; });
  a.Fire();
  EXPECT_EQ(done, 0);
  b.Fire();
  EXPECT_EQ(done, 1);
}

TEST(Condition, WhenAllEmptyRunsImmediately) {
  int done = 0;
  WhenAll({}, [&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(Stream, ExecutesInOrder) {
  Engine e;
  Stream s(&e, "t");
  std::vector<int> order;
  s.Push({}, [&](std::function<void()> done) {
    order.push_back(1);
    e.After(2.0, std::move(done));
  });
  s.Push({}, [&](std::function<void()> done) {
    order.push_back(2);
    EXPECT_DOUBLE_EQ(e.now(), 2.0);  // waited for op 1
    e.After(1.0, std::move(done));
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s.busy_time(), 3.0);
  EXPECT_EQ(s.ops_completed(), 2);
}

TEST(Stream, WaitsForDependencies) {
  Engine e;
  Stream s(&e, "t");
  Condition gate;
  double started = -1;
  s.Push({&gate}, [&](std::function<void()> done) {
    started = e.now();
    done();
  });
  e.After(5.0, [&] { gate.Fire(); });
  e.Run();
  EXPECT_DOUBLE_EQ(started, 5.0);
}

TEST(Stream, PushDelayOccupiesStream) {
  Engine e;
  Stream s(&e, "t");
  s.PushDelay({}, 1.0);
  Condition* done = s.PushDelay({}, 2.0);
  e.Run();
  EXPECT_TRUE(done->fired());
  EXPECT_DOUBLE_EQ(s.busy_time(), 3.0);
}

// ---------------------------------------------------------------------------
// FlowNetwork
// ---------------------------------------------------------------------------

TEST(FlowNetwork, SingleFlowTakesBytesOverBandwidth) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double done_at = -1;
  net.StartFlow({0}, GiB(5), [&] { done_at = e.now(); });
  e.Run();
  EXPECT_NEAR(done_at, 0.5, 1e-6);
}

TEST(FlowNetwork, FairSharingDoublesTime) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double a = -1, b = -1;
  net.StartFlow({0}, GiB(5), [&] { a = e.now(); });
  net.StartFlow({0}, GiB(5), [&] { b = e.now(); });
  e.Run();
  // Both share the link: each runs at 5 GiB/s, finishing together at 1s.
  EXPECT_NEAR(a, 1.0, 1e-6);
  EXPECT_NEAR(b, 1.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowReleasesBandwidth) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  double small = -1, big = -1;
  net.StartFlow({0}, GiB(1), [&] { small = e.now(); });
  net.StartFlow({0}, GiB(9), [&] { big = e.now(); });
  e.Run();
  // Shared until the small flow drains at 0.2s; big then gets full bandwidth:
  // 9 - 1 = 8 GiB remaining at 10 GiB/s => 0.2 + 0.8 = 1.0s.
  EXPECT_NEAR(small, 0.2, 1e-6);
  EXPECT_NEAR(big, 1.0, 1e-6);
}

TEST(FlowNetwork, MultiLinkPathBottleneck) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10), GiBps(2)});
  double done = -1;
  net.StartFlow({0, 1}, GiB(4), [&] { done = e.now(); });
  e.Run();
  EXPECT_NEAR(done, 2.0, 1e-6);  // limited by the 2 GiB/s hop
}

TEST(FlowNetwork, ZeroByteFlowCompletesAsync) {
  Engine e;
  FlowNetwork net(&e, {GiBps(1)});
  bool done = false;
  net.StartFlow({0}, 0, [&] { done = true; });
  EXPECT_FALSE(done);  // asynchronous even when empty
  e.Run();
  EXPECT_TRUE(done);
}

TEST(FlowNetwork, LargeFlowNoSpin) {
  // Regression test: GB-scale flows must complete in O(1) events despite
  // floating-point residue (sub-byte epsilon).
  Engine e;
  FlowNetwork net(&e, {GiBps(13.6), GiBps(13.6), GiBps(16)});
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    net.StartFlow({0, 1, 2}, GiB(1.37), [&] { ++completed; });
  }
  e.Run();
  EXPECT_EQ(completed, 8);
  EXPECT_LT(e.events_processed(), 200);
}

TEST(FlowNetwork, TracksLinkBytes) {
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  net.StartFlow({0}, GiB(3), [] {});
  e.Run();
  EXPECT_NEAR(net.link_bytes(0), static_cast<double>(GiB(3)), 16.0);
}

// ---------------------------------------------------------------------------
// Interconnect topology
// ---------------------------------------------------------------------------

TEST(Interconnect, SwapContentionOnSharedHost) {
  // Four GPUs swapping in simultaneously share the host memory port: total
  // throughput is host_mem_bw, so each 4 GiB transfer takes 4*4/16 = 1s
  // instead of 4/13.6 = 0.29s alone.
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  std::vector<double> done(4, -1);
  for (int g = 0; g < 4; ++g) {
    flows.StartFlow(net.SwapInPath(g), GiB(4), [&, g] { done[g] = e.now(); });
  }
  e.Run();
  const double expected = 4.0 * static_cast<double>(GiB(4)) / m.host_mem_bw;
  for (int g = 0; g < 4; ++g) EXPECT_NEAR(done[g], expected, 1e-3);
}

TEST(Interconnect, SingleSwapLimitedByPcie) {
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  double done = -1;
  flows.StartFlow(net.SwapInPath(0), GiB(4), [&] { done = e.now(); });
  e.Run();
  EXPECT_NEAR(done, static_cast<double>(GiB(4)) / m.pcie_bw, 1e-3);
}

TEST(Interconnect, SameSwitchP2pBypassesHost) {
  // GPUs 0 and 1 share a switch: their p2p does not touch the host memory
  // port, so it can run at full PCIe speed while other GPUs swap.
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  ASSERT_TRUE(m.SameSwitch(0, 1));
  ASSERT_FALSE(m.SameSwitch(0, 2));
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  double p2p_done = -1;
  flows.StartFlow(net.P2pPath(0, 1), GiB(4), [&] { p2p_done = e.now(); });
  flows.StartFlow(net.SwapInPath(2), GiB(100), [] {});
  flows.StartFlow(net.SwapInPath(3), GiB(100), [] {});
  e.Run();
  EXPECT_NEAR(p2p_done, static_cast<double>(GiB(4)) / m.pcie_bw, 1e-3);
}

TEST(Interconnect, CrossSwitchP2pUsesUplinks) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  Interconnect net(m);
  EXPECT_EQ(net.P2pPath(0, 1).size(), 2u);  // gpu.up, gpu.down
  EXPECT_EQ(net.P2pPath(0, 2).size(), 4u);  // + both uplinks
  EXPECT_EQ(net.SwapInPath(0).size(), 3u);  // hostmem, uplink, gpu.down
}

TEST(Interconnect, EightGpuMachineOversubscription) {
  // Four GPUs per switch: concurrent swap-ins on one switch are bounded by
  // the single uplink (4:1 oversubscription, Sec 2).
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  std::vector<double> done(4, -1);
  for (int g = 0; g < 4; ++g) {  // all on switch 0
    flows.StartFlow(net.SwapInPath(g), GiB(4), [&, g] { done[g] = e.now(); });
  }
  e.Run();
  const double expected = 4.0 * static_cast<double>(GiB(4)) / m.uplink_bw;
  for (int g = 0; g < 4; ++g) EXPECT_NEAR(done[g], expected, 1e-2);
}

TEST(Machine, WithNumGpusRestricts) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu().WithNumGpus(3);
  EXPECT_EQ(m.num_gpus, 3);
  EXPECT_EQ(m.gpu_to_switch.size(), 3u);
  EXPECT_EQ(m.num_switches, 1);
}

}  // namespace
}  // namespace harmony::sim
