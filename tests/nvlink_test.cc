// NVLink extension tests: the paper's footnote 3 claims "NVLink will only
// enhance Harmony's advantages due to p2p transfers". These tests check the
// interconnect model and the end-to-end consequence.

#include <gtest/gtest.h>

#include "core/packing.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "runtime/runtime.h"
#include "sim/network.h"

namespace harmony {
namespace {

TEST(Nvlink, P2pBypassesPcieTree) {
  const hw::MachineSpec m =
      hw::MachineSpec::Commodity4Gpu().WithNvlink(GiBps(22));
  sim::Interconnect net(m);
  // NVLink p2p uses dedicated ports (2 hops) even across switches.
  EXPECT_EQ(net.P2pPath(0, 2).size(), 2u);
  // Swaps still traverse the PCIe tree.
  EXPECT_EQ(net.SwapInPath(0).size(), 3u);
}

TEST(Nvlink, P2pDoesNotContendWithSwaps) {
  sim::Engine e;
  const hw::MachineSpec m =
      hw::MachineSpec::Commodity4Gpu().WithNvlink(GiBps(22));
  sim::Interconnect net(m);
  sim::FlowNetwork flows(&e, net.capacities());
  double p2p_done = -1;
  flows.StartFlow(net.P2pPath(0, 1), GiB(11), [&] { p2p_done = e.now(); });
  for (int g = 0; g < 4; ++g) flows.StartFlow(net.SwapInPath(g), GiB(50), [] {});
  e.Run();
  EXPECT_NEAR(p2p_done, static_cast<double>(GiB(11)) / GiBps(22), 1e-3);
}

TEST(Nvlink, HarmonyPpNoSlowerWithNvlink) {
  hw::MachineSpec pcie = hw::MachineSpec::Commodity4Gpu();
  pcie.gpu.memory_capacity = MiB(512);
  const hw::MachineSpec nvlink = pcie.WithNvlink(GiBps(22));
  const model::SequentialModel model =
      model::Sequentialize(model::TinyTransformer(16, 512, 128));
  const core::Scheduler scheduler(pcie);
  core::SearchOptions search;
  search.u_fwd_max = 2;
  search.u_bwd_max = 2;
  const auto outcome = scheduler.Schedule(
      model, core::HarmonyMode::kPipelineParallel, 16, {}, search);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const auto run = [&](const hw::MachineSpec& machine) {
    const runtime::Runtime rt(machine, model);
    auto metrics = rt.Execute(outcome.value().graph);
    HARMONY_CHECK(metrics.ok()) << metrics.status();
    return metrics.value();
  };
  const auto on_pcie = run(pcie);
  const auto on_nvlink = run(nvlink);
  EXPECT_LE(on_nvlink.iteration_time, on_pcie.iteration_time + 1e-9);
  // Same schedule, near-identical traffic — faster p2p can shift eviction
  // timing slightly, but not the order of magnitude.
  EXPECT_NEAR(static_cast<double>(on_nvlink.total_swap()),
              static_cast<double>(on_pcie.total_swap()),
              0.1 * static_cast<double>(on_pcie.total_swap()));
}

}  // namespace
}  // namespace harmony
