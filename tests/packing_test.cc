#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/packing.h"
#include "model/models.h"
#include "profile/profiler.h"

namespace harmony::core {
namespace {

profile::ProfileDb MakeDb(const model::LayerGraph& graph) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const profile::Profiler profiler(machine.gpu, profile::ProfilerOptions{});
  return profiler.Profile(model::Sequentialize(graph));
}

void CheckPartition(const PackList& packs, int num_layers) {
  ASSERT_FALSE(packs.empty());
  EXPECT_EQ(packs.front().lo, 0);
  EXPECT_EQ(packs.back().hi, num_layers - 1);
  for (size_t i = 0; i + 1 < packs.size(); ++i) {
    EXPECT_EQ(packs[i].hi + 1, packs[i + 1].lo) << "gap/overlap at pack " << i;
    EXPECT_LE(packs[i].lo, packs[i].hi);
  }
}

TEST(Packing, CoversAllLayersContiguously) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = GiB(9);
  for (int u : {1, 2, 4}) {
    const auto packs = BackwardPacks(u, db, opts);
    ASSERT_TRUE(packs.ok()) << "u=" << u;
    CheckPartition(packs.value(), db.num_layers());
  }
}

TEST(Packing, RespectsCapacity) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = GiB(9);
  const auto packs = BackwardPacks(2, db, opts);
  ASSERT_TRUE(packs.ok());
  for (const Pack& p : packs.value()) {
    EXPECT_LE(PackTaskBytes(PassType::kBackward, p, 2, db), opts.capacity);
  }
}

TEST(Packing, SmallerCapacityMeansMorePacks) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions big, small;
  big.capacity = GiB(9);
  small.capacity = GiB(5);
  const auto pb = BackwardPacks(1, db, big);
  const auto ps = BackwardPacks(1, db, small);
  ASSERT_TRUE(pb.ok());
  ASSERT_TRUE(ps.ok());
  EXPECT_GT(ps.value().size(), pb.value().size());
}

TEST(Packing, LargerMicrobatchMeansMorePacks) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = GiB(9);
  const auto p1 = BackwardPacks(1, db, opts);
  const auto p3 = BackwardPacks(3, db, opts);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p3.ok());
  EXPECT_GE(p3.value().size(), p1.value().size());
}

TEST(Packing, BalancedTimesForUniformLayers) {
  const auto db = MakeDb(model::TinyTransformer(32, 512, 128));
  PackingOptions opts;
  opts.capacity = GiB(9);
  opts.min_packs = 8;
  const auto packs = BalancedTimePacking(PassType::kForward, 4, 32, db, opts);
  ASSERT_TRUE(packs.ok());
  double mn = 1e9, mx = 0;
  for (const Pack& p : packs.value()) {
    // Skip the first pack: it holds the cheap embedding layer.
    if (p.lo == 0) continue;
    const double t = PackTaskTime(PassType::kForward, p, 4, db);
    mn = std::min(mn, t);
    mx = std::max(mx, t);
  }
  EXPECT_LT(mx / mn, 1.8) << "uniform layers should pack near-evenly";
}

TEST(Packing, MinPacksHonored) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = GiB(9);
  opts.min_packs = 10;
  const auto packs =
      BalancedTimePacking(PassType::kForward, 4, db.num_layers(), db, opts);
  ASSERT_TRUE(packs.ok());
  EXPECT_GE(static_cast<int>(packs.value().size()), 10);
}

TEST(Packing, InfeasibleWhenLayerExceedsCapacity) {
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = MiB(100);  // smaller than one transformer block's task
  const auto packs = BackwardPacks(1, db, opts);
  EXPECT_FALSE(packs.ok());
  EXPECT_EQ(packs.status().code(), StatusCode::kInvalidArgument);
}

TEST(Packing, ForwardPacksExcludeFusedPack) {
  // jit-compute: P_F covers only the layers before the last backward pack.
  const auto db = MakeDb(model::Gpt2());
  PackingOptions opts;
  opts.capacity = GiB(9);
  const auto bwd = BackwardPacks(1, db, opts);
  ASSERT_TRUE(bwd.ok());
  const auto fwd = ForwardPacks(4, bwd.value(), db, opts);
  ASSERT_TRUE(fwd.ok());
  ASSERT_FALSE(fwd.value().empty());
  EXPECT_EQ(fwd.value().back().hi + 1, bwd.value().back().lo);
  CheckPartition(fwd.value(), bwd.value().back().lo);
}

TEST(Packing, SingleLayerModel) {
  const auto db = MakeDb(model::TinyTransformer(1, 128, 32));
  PackingOptions opts;
  opts.capacity = GiB(9);
  const auto packs = BackwardPacks(1, db, opts);
  ASSERT_TRUE(packs.ok());
  CheckPartition(packs.value(), db.num_layers());
}

// Property test: random capacities and microbatch sizes across models — the
// result is always a valid partition within capacity, or a clean error.
class PackingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PackingPropertyTest, AlwaysValidOrInfeasible) {
  Rng rng(GetParam());
  static const auto db_gpt = MakeDb(model::Gpt2());
  static const auto db_cnn = MakeDb(model::Vgg416());
  const auto& db = rng.NextBounded(2) == 0 ? db_gpt : db_cnn;
  PackingOptions opts;
  opts.capacity = GiB(2) + static_cast<Bytes>(rng.NextBounded(GiB(8)));
  opts.min_packs = 1 + static_cast<int>(rng.NextBounded(12));
  const int u = 1 + static_cast<int>(rng.NextBounded(8));
  const PassType pass =
      rng.NextBounded(2) == 0 ? PassType::kForward : PassType::kBackward;
  const auto packs =
      BalancedTimePacking(pass, u, db.num_layers(), db, opts);
  if (!packs.ok()) return;  // infeasible is a legal outcome
  CheckPartition(packs.value(), db.num_layers());
  for (const Pack& p : packs.value()) {
    EXPECT_LE(PackTaskBytes(pass, p, u, db), opts.capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PackingPropertyTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace harmony::core
