#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/runtime.h"

namespace harmony::baselines {
namespace {

using core::TaskGraph;
using core::TaskType;

struct Fixture {
  Fixture()
      : machine(hw::MachineSpec::Commodity4Gpu()),
        model(model::Sequentialize(model::TinyTransformer(16, 512, 128))) {
    machine.gpu.memory_capacity = MiB(512);
    db = std::make_unique<profile::ProfileDb>(
        profile::Profiler(machine.gpu, {}).Profile(model));
  }

  runtime::RunMetrics Run(const TaskGraph& g) const {
    const runtime::Runtime rt(machine, model);
    auto result = rt.Execute(g);
    HARMONY_CHECK(result.ok()) << g.name << ": " << result.status();
    return result.value();
  }

  hw::MachineSpec machine;
  model::SequentialModel model;
  std::unique_ptr<profile::ProfileDb> db;
};

TEST(BalancedStages, ExactCountAndCoverage) {
  const Fixture f;
  for (int n : {1, 2, 3, 4, 7}) {
    const auto stages = BalancedStages(n, 2, *f.db);
    ASSERT_EQ(static_cast<int>(stages.size()), n);
    EXPECT_EQ(stages.front().lo, 0);
    EXPECT_EQ(stages.back().hi, f.db->num_layers() - 1);
    for (size_t i = 0; i + 1 < stages.size(); ++i) {
      EXPECT_EQ(stages[i].hi + 1, stages[i + 1].lo);
    }
  }
}

TEST(BalancedStages, MinimizesMaxStageTime) {
  const Fixture f;
  const auto stages = BalancedStages(4, 2, *f.db);
  auto stage_time = [&](const core::Pack& p) {
    return f.db->PackFwdTime(p.lo, p.hi, 2) + f.db->PackBwdTime(p.lo, p.hi, 2);
  };
  double total = 0, mx = 0;
  for (const auto& s : stages) {
    total += stage_time(s);
    mx = std::max(mx, stage_time(s));
  }
  // Near-uniform layers: the max stage is within 1.5x of the ideal quarter.
  EXPECT_LT(mx, 1.5 * total / 4);
}

TEST(Baselines, GraphsValidateAndName) {
  const Fixture f;
  EXPECT_EQ(DpSwap(*f.db, 4, 8, 2).name, "DP Swap");
  EXPECT_EQ(GpipeSwap(*f.db, 4, 8, 2, false).name, "GP Swap");
  EXPECT_EQ(GpipeSwap(*f.db, 4, 8, 2, true).name, "GP Swap (R)");
  EXPECT_EQ(PipeDream2bwSwap(*f.db, 4, 8, 2, false).name, "2BW Swap");
  EXPECT_EQ(PipeDream2bwSwap(*f.db, 4, 8, 2, true).name, "2BW Swap (R)");
}

TEST(Baselines, DpSwapIsPerMicrobatchFusedExecution) {
  const Fixture f;
  const TaskGraph g = DpSwap(*f.db, 4, 16, 2);
  EXPECT_EQ(g.num_replicas, 4);
  EXPECT_FALSE(g.flags.smart_eviction);
  EXPECT_FALSE(g.flags.input_batch_grouping);
  for (const core::Task& t : g.tasks) {
    if (t.type == TaskType::kBackward) {
      EXPECT_TRUE(t.fused_forward);
      EXPECT_EQ(t.group.size(), 1u);  // one microbatch per task
      EXPECT_EQ(t.pack.num_layers(), g.num_layers);
    }
    if (t.type == TaskType::kUpdate) {
      EXPECT_FALSE(t.on_cpu);
    }
  }
}

TEST(Baselines, PipelineStagesPinnedToGpus) {
  const Fixture f;
  const TaskGraph g = GpipeSwap(*f.db, 4, 8, 2, false);
  for (const core::Task& t : g.tasks) {
    // Unlike Harmony's wrap-around, a stage's forward and backward live on
    // the same GPU.
    if (t.type == TaskType::kBackward) {
      for (const core::Task& o : g.tasks) {
        if (o.type == TaskType::kForward && o.pack == t.pack) {
          EXPECT_EQ(o.device, t.device);
        }
      }
    }
  }
}

TEST(Baselines, TwoBwReservesSecondWeightVersion) {
  const Fixture f;
  const TaskGraph gp = GpipeSwap(*f.db, 4, 8, 2, false);
  const TaskGraph bw = PipeDream2bwSwap(*f.db, 4, 8, 2, false);
  Bytes gp_reserved = 0, bw_reserved = 0;
  for (Bytes b : gp.device_reserved_bytes) gp_reserved += b;
  for (Bytes b : bw.device_reserved_bytes) bw_reserved += b;
  EXPECT_EQ(gp_reserved, 0);
  EXPECT_EQ(bw_reserved, f.model.total_param_bytes());
}

TEST(Baselines, OneFOneBInterleavesAfterWarmup) {
  const Fixture f;
  const TaskGraph g = PipeDream2bwSwap(*f.db, 4, 16, 2, false);  // m=8
  // Stage 0 warms up with 4 forwards, then strictly alternates B,F.
  const auto& order = g.device_order[0];
  int warmup = 0;
  while (warmup < static_cast<int>(order.size()) &&
         g.task(order[warmup]).type == TaskType::kForward) {
    ++warmup;
  }
  EXPECT_EQ(warmup, 4);
  EXPECT_EQ(g.task(order[warmup]).type, TaskType::kBackward);
  EXPECT_EQ(g.task(order[warmup + 1]).type, TaskType::kForward);
}

TEST(Baselines, MaxFeasibleMicrobatchShrinksWithMemory) {
  Fixture f;
  const int big = MaxFeasibleMicrobatch(*f.db, f.machine, true, 1);
  f.machine.gpu.memory_capacity = MiB(256);
  const int small = MaxFeasibleMicrobatch(*f.db, f.machine, true, 1);
  EXPECT_LE(small, big);
  EXPECT_GE(small, 1);
}

TEST(Baselines, MaxFeasibleMicrobatchHostConstrained) {
  Fixture f;
  const int loose = MaxFeasibleMicrobatch(*f.db, f.machine, false, 1);
  f.machine.host_memory = f.model.total_param_bytes() * 4 + GiB(1);
  const int tight = MaxFeasibleMicrobatch(*f.db, f.machine, false, 64);
  EXPECT_LE(tight, loose * 64);
  EXPECT_GE(tight, 1);
}

// ---------------------------------------------------------------------------
// The paper's qualitative swap/throughput relationships (Sec 5.2 takeaways)
// ---------------------------------------------------------------------------

class ComparisonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    f_ = new Fixture();
    // Squeeze the GPU so baseline stash/weight traffic actually spills — the
    // regime the paper's comparisons live in.
    f_->machine.gpu.memory_capacity = MiB(384);
    f_->db = std::make_unique<profile::ProfileDb>(
        profile::Profiler(f_->machine.gpu, {}).Profile(f_->model));
    const core::Scheduler scheduler(f_->machine);
    core::SearchOptions s;
    s.u_fwd_max = 4;
    s.u_bwd_max = 4;
    pp_ = new runtime::RunMetrics(f_->Run(
        scheduler
            .Schedule(f_->model, core::HarmonyMode::kPipelineParallel, 32,
                      core::OptimizationFlags{}, s)
            .value()
            .graph));
    dp_outcome_ = new core::ScheduleOutcome(
        scheduler
            .Schedule(f_->model, core::HarmonyMode::kDataParallel, 32,
                      core::OptimizationFlags{}, s)
            .value());
    dp_ = new runtime::RunMetrics(f_->Run(dp_outcome_->graph));
    const int u = MaxFeasibleMicrobatch(*f_->db, f_->machine, false, 4);
    dp_swap_ = new runtime::RunMetrics(f_->Run(DpSwap(*f_->db, 4, 32, u)));
    gp_swap_ = new runtime::RunMetrics(f_->Run(GpipeSwap(*f_->db, 4, 32, u, false)));
    gp_swap_r_ = new runtime::RunMetrics(f_->Run(GpipeSwap(*f_->db, 4, 32, u, true)));
    zero_ = new runtime::RunMetrics(
        f_->Run(ZeroInfinity(*f_->db, dp_outcome_->search.best, 4, 32)));
  }
  static void TearDownTestSuite() {
    delete pp_; delete dp_; delete dp_swap_; delete gp_swap_; delete gp_swap_r_;
    delete zero_; delete dp_outcome_; delete f_;
  }

  static Fixture* f_;
  static runtime::RunMetrics *pp_, *dp_, *dp_swap_, *gp_swap_, *gp_swap_r_, *zero_;
  static core::ScheduleOutcome* dp_outcome_;
};

Fixture* ComparisonTest::f_ = nullptr;
runtime::RunMetrics* ComparisonTest::pp_ = nullptr;
runtime::RunMetrics* ComparisonTest::dp_ = nullptr;
runtime::RunMetrics* ComparisonTest::dp_swap_ = nullptr;
runtime::RunMetrics* ComparisonTest::gp_swap_ = nullptr;
runtime::RunMetrics* ComparisonTest::gp_swap_r_ = nullptr;
runtime::RunMetrics* ComparisonTest::zero_ = nullptr;
core::ScheduleOutcome* ComparisonTest::dp_outcome_ = nullptr;

TEST_F(ComparisonTest, HarmonySwapsOrdersOfMagnitudeLess) {
  // Fig 10: baseline swap volumes dwarf Harmony's.
  EXPECT_GT(dp_swap_->total_swap(), 5 * dp_->total_swap());
  EXPECT_GT(dp_swap_->total_swap(), 10 * pp_->total_swap());
}

TEST_F(ComparisonTest, HarmonyPpHasLowestSwapLoad) {
  EXPECT_LT(pp_->total_swap(), dp_->total_swap());
  EXPECT_LT(pp_->total_swap(), gp_swap_->total_swap());
  EXPECT_LT(pp_->max_device_swap(), dp_swap_->max_device_swap());
}

TEST_F(ComparisonTest, RecomputeReducesBaselineSwap) {
  // GP Swap (R) swaps less than GP Swap (Sec 5.2 takeaway #2).
  EXPECT_LT(gp_swap_r_->total_swap(), gp_swap_->total_swap());
}

TEST_F(ComparisonTest, HarmonyFasterThanSwapBaselines) {
  EXPECT_LT(pp_->iteration_time, dp_swap_->iteration_time);
  EXPECT_LT(dp_->iteration_time, dp_swap_->iteration_time);
  EXPECT_LT(pp_->iteration_time, gp_swap_->iteration_time);
}

TEST_F(ComparisonTest, ZeroInfinitySwapsMoreThanHarmonyDp) {
  // Fig 11: ZeRO lacks input-batch grouping.
  EXPECT_GE(zero_->total_swap(), dp_->total_swap());
  EXPECT_LE(zero_->iteration_time, 1.5 * dp_swap_->iteration_time);
}

TEST_F(ComparisonTest, GpipeFlushSwapsMoreThanOneFOneB) {
  // Fig 2(c) / Sec 2 inefficiency #4: pipeline schedules determine stash
  // residency windows. GPipe's flush keeps every microbatch's stash alive
  // until the backward wave, spilling it all; 1F1B's bounded in-flight depth
  // keeps the stash resident. (At full-model scale the bench shows the
  // remaining per-stage imbalance too.)
  const auto bw2 = f_->Run(PipeDream2bwSwap(*f_->db, 4, 32, 2, false));
  const auto gp = f_->Run(GpipeSwap(*f_->db, 4, 32, 2, false));
  EXPECT_GT(gp.total_swap(), bw2.total_swap() * 3 / 2);
}

}  // namespace
}  // namespace harmony::baselines
