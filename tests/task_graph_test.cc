#include <gtest/gtest.h>

#include <set>

#include "core/packing.h"
#include "core/task_graph.h"
#include "model/models.h"
#include "profile/profiler.h"

namespace harmony::core {
namespace {

profile::ProfileDb MakeDb(int blocks = 16) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const profile::Profiler profiler(machine.gpu, profile::ProfilerOptions{});
  return profiler.Profile(
      model::Sequentialize(model::TinyTransformer(blocks, 512, 128)));
}

Configuration MakeConfig(const profile::ProfileDb& db, int u_fwd, int u_bwd,
                         Bytes capacity = MiB(512)) {
  PackingOptions opts;
  opts.capacity = capacity;
  Configuration c;
  c.u_fwd = u_fwd;
  c.u_bwd = u_bwd;
  c.bwd_packs = BackwardPacks(u_bwd, db, opts).value();
  opts.min_packs = 4;  // several forward packs so pipelines are non-trivial
  c.fwd_packs = ForwardPacks(u_fwd, c.bwd_packs, db, opts).value();
  return c;
}

TEST(SplitMicrobatches, EvenAndRagged) {
  const auto even = SplitMicrobatches(8, 4);
  ASSERT_EQ(even.size(), 2u);
  EXPECT_EQ(even[0].begin, 0);
  EXPECT_EQ(even[1].begin, 4);
  const auto ragged = SplitMicrobatches(10, 4);
  ASSERT_EQ(ragged.size(), 3u);
  EXPECT_EQ(ragged[2].size, 2);
}

TEST(SplitMicrobatches, MicrobatchLargerThanMinibatch) {
  // u > total collapses to one piece covering the whole minibatch.
  const auto pieces = SplitMicrobatches(3, 8);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].begin, 0);
  EXPECT_EQ(pieces[0].size, 3);
}

TEST(SplitMicrobatches, LastPieceCarriesRemainder) {
  const auto pieces = SplitMicrobatches(13, 5);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].size, 5);
  EXPECT_EQ(pieces[1].size, 5);
  EXPECT_EQ(pieces[2].begin, 10);
  EXPECT_EQ(pieces[2].size, 3);
  int total = 0;
  for (const MbPiece& p : pieces) total += p.size;
  EXPECT_EQ(total, 13);
}

TEST(SplitMicrobatchesDeathTest, ZeroMicrobatchIsAnInvariantViolation) {
  // u == 0 is a caller bug (division by zero downstream), guarded by a CHECK
  // rather than silently clamped.
  EXPECT_DEATH(SplitMicrobatches(8, 0), "Check failed");
  EXPECT_DEATH(SplitMicrobatches(0, 4), "Check failed");
}

TEST(MbPiece, Overlaps) {
  const MbPiece a{0, 4}, b{4, 4}, c{2, 4};
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(b));
}

TEST(MbPiece, AdjacentPiecesDoNotOverlap) {
  // [0,2) and [2,5) touch at 2 but share no sample; [4,6) does intersect.
  const MbPiece a{0, 2}, b{2, 3}, c{4, 2};
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_FALSE(b.Overlaps(a));
  EXPECT_TRUE(b.Overlaps(c));
  // A piece always overlaps itself.
  EXPECT_TRUE(b.Overlaps(b));
}

class TaskGraphTest : public ::testing::Test {
 protected:
  TaskGraphTest() : db_(MakeDb()) {}
  profile::ProfileDb db_;
};

TEST_F(TaskGraphTest, WrapAroundBinding) {
  // Algorithm 3: Task(P_FB[i]) -> GPU[i mod N].
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  int slot = 0;
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kUpdate) continue;
    EXPECT_EQ(t.device, slot % 4) << "task " << t.id;
    ++slot;
  }
  EXPECT_EQ(slot, static_cast<int>(c.fwd_packs.size() + c.bwd_packs.size()));
}

TEST_F(TaskGraphTest, FusedTaskProperties) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  int fused_count = 0;
  for (const Task& t : g.tasks) {
    if (!t.fused_forward) continue;
    ++fused_count;
    EXPECT_EQ(t.type, TaskType::kBackward);
    EXPECT_EQ(t.pack, c.bwd_packs.back());
    EXPECT_FALSE(t.reads_checkpoint); // input streams in from the last F task
  }
  EXPECT_EQ(fused_count, 1);
}

TEST_F(TaskGraphTest, CheckpointBoundariesMatchBackwardPackInputs) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  std::set<int> expected;
  for (size_t j = 0; j + 1 < c.bwd_packs.size(); ++j) {  // fused pack excluded
    if (c.bwd_packs[j].lo > 0) expected.insert(c.bwd_packs[j].lo);
  }
  std::set<int> saved;
  for (const Task& t : g.tasks) {
    for (int b : t.checkpoint_boundaries) {
      EXPECT_EQ(t.type, TaskType::kForward);
      EXPECT_GE(b - 1, t.pack.lo);
      EXPECT_LE(b - 1, t.pack.hi);
      saved.insert(b);
    }
  }
  EXPECT_EQ(saved, expected);
}

TEST_F(TaskGraphTest, GroupsCoverWholeMinibatch) {
  const Configuration c = MakeConfig(db_, 3, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 10, OptimizationFlags{}, db_);
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kUpdate) continue;
    int total = 0;
    for (const MbPiece& p : t.group) total += p.size;
    EXPECT_EQ(total, 10);
    const int u = t.type == TaskType::kForward && !t.fused_forward ? 3 : 2;
    EXPECT_EQ(t.group.front().size, u);
  }
}

TEST_F(TaskGraphTest, DataParallelReplication) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 16, OptimizationFlags{}, db_);
  EXPECT_EQ(g.num_replicas, 4);
  EXPECT_TRUE(g.grad_reduce_via_host);
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kUpdate) {
      EXPECT_EQ(t.replica, -1);  // one master update per pack
      EXPECT_TRUE(t.on_cpu);
    } else {
      EXPECT_EQ(t.device, t.replica);  // each replica owns one GPU
      int total = 0;
      for (const MbPiece& p : t.group) total += p.size;
      EXPECT_EQ(total, 4);  // 16 / 4 replicas
    }
  }
}

TEST_F(TaskGraphTest, UpdateTaskPerBackwardPack) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  int updates = 0;
  for (const Task& t : g.tasks) updates += t.type == TaskType::kUpdate;
  EXPECT_EQ(updates, static_cast<int>(c.bwd_packs.size()));
}

TEST_F(TaskGraphTest, CpuOffloadRoutesUpdatesToCpuOrder) {
  const Configuration c = MakeConfig(db_, 2, 2);
  OptimizationFlags flags;
  flags.cpu_optimizer = true;
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, flags, db_);
  int cpu_updates = 0;
  for (const auto& order : g.cpu_order) cpu_updates += order.size();
  EXPECT_EQ(cpu_updates, static_cast<int>(c.bwd_packs.size()));

  flags.cpu_optimizer = false;
  const TaskGraph g2 = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, flags, db_);
  for (const auto& order : g2.cpu_order) EXPECT_TRUE(order.empty());
}

TEST_F(TaskGraphTest, JitComputeOffUnfusesLastPack) {
  const Configuration c = MakeConfig(db_, 2, 2);
  OptimizationFlags flags;
  flags.jit_compute = false;
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, flags, db_);
  int fwd_layers = 0;
  for (const Task& t : g.tasks) {
    EXPECT_FALSE(t.fused_forward);
    if (t.type == TaskType::kForward) fwd_layers += t.pack.num_layers();
  }
  EXPECT_EQ(fwd_layers, g.num_layers);  // forward now covers everything
}

TEST_F(TaskGraphTest, NoRecomputeLowersToKeepEverywhere) {
  const Configuration c = MakeConfig(db_, 2, 2);
  OptimizationFlags flags;
  flags.use_recompute = false;
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, flags, db_);
  EXPECT_TRUE(g.stash_policy.IsUniform(StashPolicy::kKeep));
  for (int l = 0; l < g.num_layers; ++l) {
    EXPECT_EQ(g.policy_at(l), StashPolicy::kKeep);
  }
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kBackward && !t.fused_forward) {
      EXPECT_FALSE(t.reads_checkpoint);
    }
    EXPECT_TRUE(t.checkpoint_boundaries.empty());
  }
}

TEST_F(TaskGraphTest, ExplicitPolicyTableLowersCheckpointsPerLayer) {
  // A deeper model forces >= 3 backward packs at the default capacity so an
  // interior (non-first, non-fused) pack exists.
  const profile::ProfileDb db = MakeDb(48);
  const Configuration base = MakeConfig(db, 2, 2);
  const int R = db.num_layers();

  // An explicit all-recompute table matches the legacy use_recompute=true
  // lowering exactly.
  Configuration c = base;
  c.policy = PolicyTable::Uniform(R, StashPolicy::kRecompute);
  const TaskGraph legacy = GenerateHarmonyTaskGraph(
      base, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db);
  const TaskGraph expl = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db);
  ASSERT_EQ(legacy.num_tasks(), expl.num_tasks());
  for (int i = 0; i < legacy.num_tasks(); ++i) {
    EXPECT_EQ(legacy.task(i).reads_checkpoint, expl.task(i).reads_checkpoint);
    EXPECT_EQ(legacy.task(i).checkpoint_boundaries,
              expl.task(i).checkpoint_boundaries);
  }
  EXPECT_TRUE(expl.stash_policy.IsUniform(StashPolicy::kRecompute));

  // A mixed table checkpoints only the boundaries of recompute packs: turn
  // one interior backward pack to kSwap and its checkpoint must vanish.
  ASSERT_GE(base.bwd_packs.size(), 3u);
  const Pack swapped = base.bwd_packs[1];
  ASSERT_GT(swapped.lo, 0);
  Configuration mixed = base;
  mixed.policy = PolicyTable::Uniform(R, StashPolicy::kRecompute);
  for (int l = swapped.lo; l <= swapped.hi; ++l) {
    mixed.policy.Set(l, StashPolicy::kSwap);
  }
  const TaskGraph mg = GenerateHarmonyTaskGraph(
      mixed, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db);
  std::set<int> boundaries;
  for (const Task& t : mg.tasks) {
    for (int b : t.checkpoint_boundaries) boundaries.insert(b);
    if (t.type == TaskType::kBackward && t.pack == swapped) {
      EXPECT_FALSE(t.reads_checkpoint);
    }
  }
  EXPECT_EQ(boundaries.count(swapped.lo), 0u);
  ValidateTaskGraph(mg);
}

TEST_F(TaskGraphTest, GroupingOffSplitsTasksMicrobatchMajor) {
  const Configuration c = MakeConfig(db_, 2, 2);
  OptimizationFlags flags;
  flags.input_batch_grouping = false;
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, flags, db_);
  for (const Task& t : g.tasks) {
    if (t.type != TaskType::kUpdate) {
      EXPECT_EQ(t.group.size(), 1u);
    }
  }
  // Per device, piece begins must be non-decreasing (microbatch-major).
  for (const auto& order : g.device_order) {
    int prev_begin = -1;
    for (int id : order) {
      const Task& t = g.task(id);
      if (t.type == TaskType::kUpdate) continue;
      EXPECT_GE(t.group.front().begin, prev_begin);
      prev_begin = t.group.front().begin;
    }
  }
}

TEST_F(TaskGraphTest, DepResolverActivationChain) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  const DepResolver deps(g);
  // The second forward task's input boundary is produced by the first.
  const Task* second = nullptr;
  for (const Task& t : g.tasks) {
    if (t.type == TaskType::kForward && t.pack.lo > 0) {
      if (!second || t.pack.lo < second->pack.lo) second = &t;
    }
  }
  ASSERT_NE(second, nullptr);
  const auto producers =
      deps.ActivationProducers(second->pack.lo, second->group.front(), 0);
  ASSERT_EQ(producers.size(), 1u);
  EXPECT_EQ(g.task(producers[0].first).pack.hi + 1, second->pack.lo);
}

TEST_F(TaskGraphTest, DepResolverCrossGranularityOverlap) {
  const Configuration c = MakeConfig(db_, 4, 2);  // U_F=4, U_B=2
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  const DepResolver deps(g);
  const Task* fused = nullptr;
  for (const Task& t : g.tasks) {
    if (t.fused_forward) fused = &t;
  }
  ASSERT_NE(fused, nullptr);
  // Each U_B=2 piece overlaps exactly one U_F=4 producer piece.
  for (const MbPiece& piece : fused->group) {
    const auto producers = deps.ActivationProducers(fused->pack.lo, piece, 0);
    ASSERT_EQ(producers.size(), 1u);
    const Task& p = g.task(producers[0].first);
    EXPECT_TRUE(p.group[producers[0].second].Overlaps(piece));
  }
}

TEST_F(TaskGraphTest, GradientChainLinksBackwardTasks) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, db_);
  const DepResolver deps(g);
  for (const Task& t : g.tasks) {
    if (t.type != TaskType::kBackward || t.pack.hi == g.num_layers - 1) continue;
    const auto producers =
        deps.GradientProducers(t.pack.hi + 1, t.group.front(), 0);
    ASSERT_FALSE(producers.empty()) << "backward task " << t.id;
    EXPECT_EQ(g.task(producers[0].first).pack.lo, t.pack.hi + 1);
  }
}

TEST_F(TaskGraphTest, BackwardTasksForPackFindsAllReplicas) {
  const Configuration c = MakeConfig(db_, 2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 16, OptimizationFlags{}, db_);
  const DepResolver deps(g);
  const auto tasks = deps.BackwardTasksForPack(c.bwd_packs[0], -1);
  EXPECT_EQ(tasks.size(), 4u);  // one per replica
}

// Property sweep: every (U_F, U_B, mode, flags) combination yields a graph
// that passes structural validation (ValidateTaskGraph CHECK-fails on bugs).
struct GenParam {
  int u_fwd, u_bwd, minibatch;
  bool dp, grouping, jit_update, jit_compute, recompute;
};

class GenerateProperty : public ::testing::TestWithParam<GenParam> {};

TEST_P(GenerateProperty, ValidGraph) {
  static const profile::ProfileDb db = MakeDb();
  const GenParam p = GetParam();
  const Configuration c = MakeConfig(db, p.u_fwd, p.u_bwd);
  OptimizationFlags flags;
  flags.input_batch_grouping = p.grouping;
  flags.jit_update = p.jit_update;
  flags.jit_compute = p.jit_compute;
  flags.use_recompute = p.recompute;
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, p.dp ? HarmonyMode::kDataParallel : HarmonyMode::kPipelineParallel, 4,
      p.minibatch, flags, db);
  ValidateTaskGraph(g);  // CHECK-fails on structural bugs
  EXPECT_EQ(g.minibatch, p.minibatch);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, GenerateProperty,
    ::testing::Values(GenParam{1, 1, 8, false, true, true, true, true},
                      GenParam{2, 1, 8, false, true, true, true, true},
                      GenParam{1, 2, 9, false, true, true, true, true},
                      GenParam{4, 2, 12, false, true, true, true, true},
                      GenParam{2, 2, 8, true, true, true, true, true},
                      GenParam{3, 2, 13, true, true, true, true, true},
                      GenParam{2, 2, 8, false, false, true, true, true},
                      GenParam{2, 2, 8, true, false, true, true, true},
                      GenParam{2, 2, 8, false, true, false, true, true},
                      GenParam{2, 2, 8, false, true, true, false, true},
                      GenParam{2, 2, 8, false, true, true, true, false},
                      GenParam{2, 2, 8, false, false, false, false, false},
                      GenParam{2, 2, 8, true, false, false, false, false}));

}  // namespace
}  // namespace harmony::core
