// End-to-end integration tests: the full Profiler -> Scheduler -> Runtime
// pipeline on the paper's actual evaluation models (full parameter counts,
// simulated 4-GPU server), checking the qualitative relationships the
// evaluation section reports.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "runtime/runtime.h"

namespace harmony {
namespace {

struct ModelCase {
  const char* name;
  model::LayerGraph (*build)();
  model::Optimizer optimizer;
};

const ModelCase kModels[] = {
    {"BERT-Large", model::BertLarge, model::Optimizer::kAdam},
    {"BERT96", model::Bert96, model::Optimizer::kAdam},
    {"GPT2", model::Gpt2, model::Optimizer::kAdam},
    {"VGG416", model::Vgg416, model::Optimizer::kSgdMomentum},
    {"ResNet1K", model::ResNet1K, model::Optimizer::kSgdMomentum},
};

class FullModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(FullModelTest, ScheduleAndExecuteBothModes) {
  const ModelCase& mc = GetParam();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel m = model::Sequentialize(mc.build());
  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 8;
  search.u_bwd_max = 8;

  runtime::RunMetrics by_mode[2];
  int i = 0;
  for (auto mode : {core::HarmonyMode::kPipelineParallel,
                    core::HarmonyMode::kDataParallel}) {
    const auto outcome =
        scheduler.Schedule(m, mode, /*minibatch=*/16, {}, search);
    ASSERT_TRUE(outcome.ok()) << mc.name << ": " << outcome.status();
    core::ValidateTaskGraph(outcome.value().graph);

    const runtime::Runtime rt(machine, m);
    runtime::RuntimeOptions opts;
    opts.optimizer = mc.optimizer;
    const auto metrics = rt.Execute(outcome.value().graph, opts);
    ASSERT_TRUE(metrics.ok()) << mc.name << ": " << metrics.status();
    EXPECT_GT(metrics.value().iteration_time, 0) << mc.name;
    EXPECT_LE(metrics.value().peak_host_bytes, machine.host_memory);
    for (Bytes peak : metrics.value().peak_device_bytes) {
      EXPECT_LE(peak, machine.gpu.usable_memory()) << mc.name;
    }
    // Estimator and runtime agree within a factor (Fig 14's property).
    EXPECT_NEAR(outcome.value().search.best_estimate.iteration_time,
                metrics.value().iteration_time,
                0.6 * metrics.value().iteration_time)
        << mc.name;
    by_mode[i++] = metrics.value();
  }
  // PP's aggregate swap is well below DP's (3|W| vs 3N|W|, Sec 3).
  EXPECT_LT(by_mode[0].total_swap(), by_mode[1].total_swap()) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, FullModelTest, ::testing::ValuesIn(kModels),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Integration, HarmonyBeatsDpSwapOnEveryPaperModel) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  for (const ModelCase& mc : kModels) {
    const model::SequentialModel m = model::Sequentialize(mc.build());
    const profile::Profiler profiler(machine.gpu, {});
    const profile::ProfileDb db = profiler.Profile(m);
    const runtime::Runtime rt(machine, m);
    runtime::RuntimeOptions opts;
    opts.optimizer = mc.optimizer;

    const int u = baselines::MaxFeasibleMicrobatch(db, machine, false, 4, 8);
    const auto baseline = rt.Execute(baselines::DpSwap(db, 4, 16, u), opts);
    const core::Scheduler scheduler(machine);
    core::SearchOptions search;
    search.u_fwd_max = 8;
    search.u_bwd_max = 8;
    // Harmony picks the better of its two modes per deployment; compare the
    // winner (in Fig 9, Harmony DP leads at some small-minibatch CNN cells).
    TimeSec best_time = 1e30;
    Bytes pp_swap = 0;
    for (auto mode : {core::HarmonyMode::kPipelineParallel,
                      core::HarmonyMode::kDataParallel}) {
      const auto outcome = scheduler.Schedule(m, mode, 16, {}, search);
      ASSERT_TRUE(outcome.ok()) << mc.name;
      const auto harmony = rt.Execute(outcome.value().graph, opts);
      ASSERT_TRUE(harmony.ok()) << mc.name;
      best_time = std::min(best_time, harmony.value().iteration_time);
      if (mode == core::HarmonyMode::kPipelineParallel) {
        pp_swap = harmony.value().total_swap();
      }
    }
    if (!baseline.ok()) continue;  // host OOM for the baseline still counts
    EXPECT_LT(best_time, baseline.value().iteration_time) << mc.name;
    EXPECT_LT(10 * pp_swap, baseline.value().total_swap())
        << mc.name << ": expected >=10x swap reduction";
  }
}

TEST(Integration, EightGpuMachineTrainsTenBillionParams) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity8Gpu();
  const model::SequentialModel m =
      model::Sequentialize(model::Gpt2Custom(10.0));
  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 4;
  search.u_bwd_max = 4;
  const auto outcome = scheduler.Schedule(
      m, core::HarmonyMode::kPipelineParallel, 16, {}, search);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const runtime::Runtime rt(machine, m);
  const auto metrics = rt.Execute(outcome.value().graph);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  // Working set >> 88 GB of GPU memory, yet training proceeds.
  EXPECT_GT(m.total_param_bytes() * 4, 8 * machine.gpu.memory_capacity);
  EXPECT_GT(metrics.value().Throughput(16), 0.0);
}

TEST(Integration, ThroughputImprovesWithMoreGpus) {
  // Fig 16's property at test scale.
  const hw::MachineSpec base = hw::MachineSpec::Commodity8Gpu();
  const model::SequentialModel m =
      model::Sequentialize(model::TinyTransformer(24, 512, 128));
  double prev = 0;
  for (int n : {1, 2, 4}) {
    hw::MachineSpec machine = base.WithNumGpus(n);
    machine.gpu.memory_capacity = MiB(512);
    const core::Scheduler scheduler(machine);
    core::SearchOptions search;
    search.u_fwd_max = 4;
    search.u_bwd_max = 4;
    const auto outcome = scheduler.Schedule(
        m, core::HarmonyMode::kPipelineParallel, 8 * n, {}, search);
    ASSERT_TRUE(outcome.ok()) << n << " GPUs: " << outcome.status();
    const runtime::Runtime rt(machine, m);
    const auto metrics = rt.Execute(outcome.value().graph);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    const double tput = metrics.value().Throughput(8 * n);
    EXPECT_GT(tput, prev) << n << " GPUs";
    prev = tput;
  }
}

TEST(Integration, SchedulerHandlesCustomGptSizesOnFourGpus) {
  // Even a 10B model schedules on the 4-GPU box (it trains, slowly).
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel m =
      model::Sequentialize(model::Gpt2Custom(10.0));
  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 2;
  search.u_bwd_max = 2;
  const auto outcome = scheduler.Schedule(
      m, core::HarmonyMode::kPipelineParallel, 8, {}, search);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome.value().search.best.bwd_packs.size(), 8u);
}

}  // namespace
}  // namespace harmony
