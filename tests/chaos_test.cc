// Chaos harness for harmony::fault — the end-to-end proof that injected
// faults change *time, not results*.
//
// The invariant under test: a survivable fault schedule (transfer failures,
// link flaps, memory-pressure spikes, transient alloc failures, stream
// stalls) must leave the run's semantic accounting bit-identical to the
// fault-free run on the same workload — per-device swap/p2p byte vectors,
// eviction and clean-drop counts, and compute-stream busy time (hashed by
// double bit pattern, so even 1-ulp drift fails). Only simulated wall-clock,
// peak memory and the fault/recovery counters may differ. Unsurvivable
// schedules must fail with a precise Status naming the injected fault and
// carrying the chaos seed, and any schedule must replay bit-identically
// (including the full trace-event hash) from its seed alone.
//
// The CI matrix runs fixed seeds; one extra run draws a fresh seed (or takes
// HARMONY_CHAOS_SEED) and logs it, so a red run is reproducible by pasting
// the printed seed back into the env var.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "core/packing.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/runtime.h"
#include "sim/multirun.h"
#include "trace/trace.h"

namespace harmony::runtime {
namespace {

using core::Configuration;
using core::HarmonyMode;
using core::OptimizationFlags;

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Order-sensitive FNV-1a over every trace event (same scheme as the golden
/// parity test): the replay check uses it to pin the *entire* observable
/// behaviour of a chaos run, fault events and recovery timing included.
class HashSink : public trace::TraceSink {
 public:
  void OnEvent(const trace::Event& e) override {
    ++count_;
    Mix(static_cast<uint64_t>(e.kind));
    Mix(static_cast<uint64_t>(e.lane));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.device)));
    Mix(BitsOf(e.time));
    Mix(static_cast<uint64_t>(e.bytes));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.task)));
  }

  uint64_t hash() const { return hash_; }
  int64_t count() const { return count_; }

 private:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }

  uint64_t hash_ = 0xcbf29ce484222325ull;
  int64_t count_ = 0;
};

struct Workload {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  model::SequentialModel model;
  core::TaskGraph graph;
};

Workload BuildWorkload(const model::LayerGraph& layer_graph, int minibatch,
                       int u, int fwd_min_packs) {
  Workload w;
  w.model = model::Sequentialize(layer_graph);
  const profile::ProfileDb db =
      profile::Profiler(w.machine.gpu, {}).Profile(w.model);

  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(w.machine.gpu.usable_memory() * 0.85);
  Configuration c;
  c.u_fwd = c.u_bwd = u;
  c.bwd_packs = core::BackwardPacks(u, db, opts).value();
  opts.min_packs = fwd_min_packs;
  c.fwd_packs = core::ForwardPacks(u, c.bwd_packs, db, opts).value();

  w.graph = core::GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel,
                                           4, minibatch, OptimizationFlags{},
                                           db);
  return w;
}

// The two golden workloads (same parameters as golden_parity_test, whose
// fault-free goldens pin these exact runs): BERT96 and GPT2, pp, mb16, u4.
const Workload& Bert96() {
  static const Workload* w = new Workload(BuildWorkload(model::Bert96(), 16, 4, 4));
  return *w;
}
const Workload& Gpt2() {
  static const Workload* w = new Workload(BuildWorkload(model::Gpt2(), 16, 4, 4));
  return *w;
}

struct RunOutcome {
  Status status = Status::Ok();
  RunMetrics metrics;
  uint64_t trace_hash = 0;
  int64_t trace_events = 0;
};

RunOutcome RunWorkload(const Workload& w, const RuntimeOptions& base_opts) {
  HashSink sink;
  RuntimeOptions opts = base_opts;
  opts.trace_sinks.push_back(&sink);
  const Runtime rt(w.machine, w.model);
  auto result = rt.Execute(w.graph, opts);
  RunOutcome out;
  if (result.ok()) {
    out.metrics = std::move(result).value();
  } else {
    out.status = result.status();
  }
  out.trace_hash = sink.hash();
  out.trace_events = sink.count();
  return out;
}

RunOutcome RunWithPlan(const Workload& w, const fault::FaultPlan& plan) {
  RuntimeOptions opts;
  opts.fault_plan = plan;
  return RunWorkload(w, opts);
}

const RunOutcome& Baseline(const Workload& w) {
  static const RunOutcome* bert = new RunOutcome(RunWorkload(Bert96(), {}));
  static const RunOutcome* gpt2 = new RunOutcome(RunWorkload(Gpt2(), {}));
  return &w == &Bert96() ? *bert : *gpt2;
}

/// The chaos invariant: semantic accounting bit-identical, time free to vary.
void ExpectSemanticParity(const RunOutcome& base, const RunOutcome& chaos) {
  ASSERT_TRUE(chaos.status.ok()) << chaos.status;
  EXPECT_EQ(base.metrics.swap_in_bytes, chaos.metrics.swap_in_bytes);
  EXPECT_EQ(base.metrics.swap_out_bytes, chaos.metrics.swap_out_bytes);
  EXPECT_EQ(base.metrics.p2p_bytes, chaos.metrics.p2p_bytes);
  EXPECT_EQ(base.metrics.evictions, chaos.metrics.evictions);
  EXPECT_EQ(base.metrics.clean_drops, chaos.metrics.clean_drops);
  ASSERT_EQ(base.metrics.compute_busy.size(), chaos.metrics.compute_busy.size());
  for (size_t d = 0; d < base.metrics.compute_busy.size(); ++d) {
    EXPECT_EQ(BitsOf(base.metrics.compute_busy[d]),
              BitsOf(chaos.metrics.compute_busy[d]))
        << "compute busy time drifted on device " << d;
  }
  EXPECT_EQ(base.metrics.peak_host_bytes, chaos.metrics.peak_host_bytes);
}

/// Every fault kind armed at survivable rates. Intervals are sized against
/// the ~5-8 simulated seconds these iterations take, so each kind actually
/// fires many times per run.
fault::FaultPlan SurvivableChaos(uint64_t seed) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = seed;
  p.transfer_failure_rate = 0.03;
  p.link_flap_interval = 0.2;
  p.link_flap_duration = 0.05;
  p.link_degrade_factor = 0.25;
  p.mem_pressure_interval = 0.5;
  p.mem_pressure_duration = 0.1;
  p.mem_pressure_fraction = 0.2;
  p.alloc_failure_rate = 0.02;
  p.stream_stall_rate = 0.02;
  p.stream_stall_duration = 0.002;
  return p;
}

// ---------------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------------

TEST(ChaosInjector, ReplaysBitIdenticallyFromSeed) {
  const fault::FaultPlan plan = SurvivableChaos(0xDECAFBAD);
  fault::FaultInjector a(plan), b(plan);
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(a.TransferFails(), b.TransferFails()) << "draw " << i;
    EXPECT_EQ(a.AllocFails(), b.AllocFails()) << "draw " << i;
    EXPECT_EQ(BitsOf(a.StreamStall()), BitsOf(b.StreamStall())) << i;
    EXPECT_EQ(BitsOf(a.NextFlapDelay()), BitsOf(b.NextFlapDelay())) << i;
    EXPECT_EQ(BitsOf(a.NextPressureDelay()), BitsOf(b.NextPressureDelay())) << i;
    EXPECT_EQ(a.PickLink(12), b.PickLink(12)) << i;
    EXPECT_EQ(a.PickDevice(4), b.PickDevice(4)) << i;
    EXPECT_EQ(BitsOf(a.BackoffDelay(i & 7)), BitsOf(b.BackoffDelay(i & 7))) << i;
  }
  EXPECT_EQ(a.transfer_failures(), b.transfer_failures());
  EXPECT_GT(a.transfer_failures(), 0);
}

TEST(ChaosInjector, IntervalDrawsAreJitteredAroundTheMean) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 7;
  plan.link_flap_interval = 1.0;
  fault::FaultInjector inj(plan);
  for (int i = 0; i < 256; ++i) {
    const TimeSec d = inj.NextFlapDelay();
    EXPECT_GE(d, 0.5);
    EXPECT_LE(d, 1.5);
  }
}

// ---------------------------------------------------------------------------
// Per-fault-kind parity: each recovery policy alone preserves results
// ---------------------------------------------------------------------------

TEST(ChaosParity, TransferFailuresAreRetriedToTheSameResult) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xC0FFEE;
  p.transfer_failure_rate = 0.05;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ExpectSemanticParity(Baseline(Bert96()), r);
  EXPECT_GT(r.metrics.faults_injected, 0);
  EXPECT_GT(r.metrics.iteration_time, Baseline(Bert96()).metrics.iteration_time);
}

TEST(ChaosParity, LinkFlapsOnlyStretchTime) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xC0FFEE;
  p.link_flap_interval = 0.1;
  p.link_flap_duration = 0.05;
  p.link_degrade_factor = 0.1;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ExpectSemanticParity(Baseline(Bert96()), r);
  EXPECT_GT(r.metrics.faults_injected, 0);
  EXPECT_GT(r.metrics.iteration_time, Baseline(Bert96()).metrics.iteration_time);
}

TEST(ChaosParity, MemPressureEvictsAndRefetchesWithExactOnceAccounting) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xC0FFEE;
  p.mem_pressure_interval = 0.4;
  p.mem_pressure_duration = 0.15;
  p.mem_pressure_fraction = 0.25;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  // Exact-once: the emergency evictions and refetches the spikes forced moved
  // real bytes (recovery_bytes), yet none of it leaked into the semantic
  // swap/eviction accounting — which BERT96's golden pins at *zero*
  // evictions, so any double-count would show up as a hard diff.
  ExpectSemanticParity(Baseline(Bert96()), r);
  EXPECT_GT(r.metrics.faults_injected, 0);
  EXPECT_GT(r.metrics.faults_recovered, 0);
  EXPECT_GT(r.metrics.recovery_bytes, 0);
}

TEST(ChaosParity, StreamStallsLeaveBusyTimeInvariant) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xC0FFEE;
  p.stream_stall_rate = 0.05;
  p.stream_stall_duration = 0.003;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ExpectSemanticParity(Baseline(Bert96()), r);
  EXPECT_GT(r.metrics.faults_injected, 0);
}

TEST(ChaosParity, AllocFailuresAreRetriedToTheSameResult) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xC0FFEE;
  p.alloc_failure_rate = 0.05;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ExpectSemanticParity(Baseline(Bert96()), r);
  EXPECT_GT(r.metrics.faults_injected, 0);
  // One recovery per afflicted request, one injection per failed attempt —
  // a request that failed twice recovers once.
  EXPECT_GT(r.metrics.faults_recovered, 0);
  EXPECT_LE(r.metrics.faults_recovered, r.metrics.faults_injected);
}

// ---------------------------------------------------------------------------
// The matrix: all fault kinds at once, across seeds and workloads
// ---------------------------------------------------------------------------

/// The seed x workload matrix entries, flattened for MultiRunDriver fan-out.
struct MatrixEntry {
  const Workload* workload;
  uint64_t seed;
};

std::vector<MatrixEntry> ChaosMatrixEntries() {
  const uint64_t seeds[] = {1, 42, 0xC0FFEE};
  std::vector<MatrixEntry> entries;
  for (const Workload* w : {&Bert96(), &Gpt2()}) {
    for (const uint64_t seed : seeds) entries.push_back({w, seed});
  }
  return entries;
}

/// Thread count for matrix fan-out: HARMONY_CHAOS_THREADS, default hardware.
int ChaosThreads() {
  if (const char* env = std::getenv("HARMONY_CHAOS_THREADS")) {
    return static_cast<int>(std::strtol(env, nullptr, 0));
  }
  return 0;  // MultiRunDriver resolves 0 to hardware_concurrency
}

TEST(ChaosMatrix, SurvivableSchedulesPreserveResults) {
  const std::vector<MatrixEntry> entries = ChaosMatrixEntries();
  // Each run builds its own Runtime/Engine/sink from the entry alone;
  // baselines are forced up front so workers only read them.
  Baseline(Bert96());
  Baseline(Gpt2());
  sim::MultiRunDriver driver(ChaosThreads());
  const std::vector<RunOutcome> outcomes = driver.Map<RunOutcome>(
      static_cast<int>(entries.size()), [&](int run, int /*worker*/) {
        const MatrixEntry& e = entries[run];
        return RunWithPlan(*e.workload, SurvivableChaos(e.seed));
      });
  for (size_t i = 0; i < entries.size(); ++i) {
    const MatrixEntry& e = entries[i];
    SCOPED_TRACE(
        (e.workload == &Bert96() ? std::string("BERT96") : std::string("GPT2")) +
        " chaos seed=" + std::to_string(e.seed));
    ExpectSemanticParity(Baseline(*e.workload), outcomes[i]);
    EXPECT_GT(outcomes[i].metrics.faults_injected, 0);
  }
}

TEST(ChaosMatrix, ParallelMatrixIsBitIdenticalToSerial) {
  const std::vector<MatrixEntry> entries = ChaosMatrixEntries();
  auto run_all = [&](int threads) {
    sim::MultiRunDriver driver(threads);
    return driver.Map<RunOutcome>(
        static_cast<int>(entries.size()), [&](int run, int /*worker*/) {
          const MatrixEntry& e = entries[run];
          return RunWithPlan(*e.workload, SurvivableChaos(e.seed));
        });
  };
  const std::vector<RunOutcome> serial = run_all(1);
  const std::vector<RunOutcome> threaded = run_all(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("matrix entry " + std::to_string(i));
    EXPECT_EQ(BitsOf(serial[i].metrics.iteration_time),
              BitsOf(threaded[i].metrics.iteration_time));
    EXPECT_EQ(serial[i].trace_events, threaded[i].trace_events);
    EXPECT_EQ(serial[i].trace_hash, threaded[i].trace_hash);
    EXPECT_EQ(serial[i].metrics.faults_injected,
              threaded[i].metrics.faults_injected);
    EXPECT_EQ(serial[i].metrics.recovery_bytes,
              threaded[i].metrics.recovery_bytes);
  }
}

TEST(ChaosMatrix, SameSeedReplaysBitIdentically) {
  const fault::FaultPlan plan = SurvivableChaos(0xFEEDFACE);
  const RunOutcome a = RunWithPlan(Bert96(), plan);
  const RunOutcome b = RunWithPlan(Bert96(), plan);
  ASSERT_TRUE(a.status.ok()) << a.status;
  ASSERT_TRUE(b.status.ok()) << b.status;
  // Bit-identical *everything*: timing, fault events, recovery schedule.
  EXPECT_EQ(BitsOf(a.metrics.iteration_time), BitsOf(b.metrics.iteration_time));
  EXPECT_EQ(a.metrics.faults_injected, b.metrics.faults_injected);
  EXPECT_EQ(a.metrics.faults_recovered, b.metrics.faults_recovered);
  EXPECT_EQ(a.metrics.recovery_bytes, b.metrics.recovery_bytes);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

/// The log-the-seed run: CI executes this with a fresh seed every time (or a
/// pinned one via HARMONY_CHAOS_SEED); the seed is printed so any failure is
/// reproducible by exporting it and re-running.
TEST(ChaosMatrix, RandomizedSeedHoldsTheInvariant) {
  uint64_t seed;
  if (const char* env = std::getenv("HARMONY_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  } else {
    seed = std::random_device{}();
  }
  std::printf("chaos seed = %llu  (rerun: HARMONY_CHAOS_SEED=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  const RunOutcome r = RunWithPlan(Bert96(), SurvivableChaos(seed));
  ExpectSemanticParity(Baseline(Bert96()), r);
}

// ---------------------------------------------------------------------------
// Unsurvivable schedules fail precisely, naming the fault and the seed
// ---------------------------------------------------------------------------

TEST(ChaosFailure, UnsurvivableTransferFailureNamesTheFault) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 99;
  p.transfer_failure_rate = 1.0;  // every attempt fails: no retry can save it
  p.max_transfer_retries = 2;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable) << r.status;
  EXPECT_NE(r.status.message().find("injected transfer-failure"),
            std::string::npos)
      << r.status;
  EXPECT_NE(r.status.message().find("seed=99"), std::string::npos) << r.status;
}

TEST(ChaosFailure, UnsurvivableAllocFailureNamesTheFault) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 99;
  p.alloc_failure_rate = 1.0;
  p.max_alloc_retries = 1;
  const RunOutcome r = RunWithPlan(Bert96(), p);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfMemory) << r.status;
  EXPECT_NE(r.status.message().find("injected alloc-failure"),
            std::string::npos)
      << r.status;
  EXPECT_NE(r.status.message().find("seed=99"), std::string::npos) << r.status;
}

// ---------------------------------------------------------------------------
// Watchdog + cancellation
// ---------------------------------------------------------------------------

TEST(ChaosWatchdog, PermanentStallBecomesStuckDiagnostics) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 5;
  p.stream_stall_rate = 1.0;
  // Effectively wedged forever against a 5s watchdog. (Kept well under the
  // ~1e15s range where double resolution drops below transfer durations and
  // the post-failure drain could no longer advance simulated time.)
  p.stream_stall_duration = 1e6;

  common::CancelToken cancel;
  RuntimeOptions opts;
  opts.fault_plan = p;
  opts.cancel = &cancel;
  opts.watchdog_interval = 5.0;  // simulated seconds
  const RunOutcome r = RunWorkload(Bert96(), opts);

  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal) << r.status;
  const std::string& msg = r.status.message();
  EXPECT_NE(msg.find("watchdog: no progress"), std::string::npos) << msg;
  // DescribeStuck() names the wedged step and what it waits on.
  EXPECT_NE(msg.find("stuck at step"), std::string::npos) << msg;
  // Escalation: the watchdog cancels the shared token so cooperating layers
  // (search, serve) unwind too.
  EXPECT_TRUE(cancel.Cancelled());
}

TEST(ChaosWatchdog, CancelledTokenUnwindsTheRun) {
  common::CancelToken cancel;
  cancel.Cancel();
  RuntimeOptions opts;
  opts.cancel = &cancel;
  const RunOutcome r = RunWorkload(Bert96(), opts);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
  EXPECT_NE(r.status.message().find("run cancelled"), std::string::npos)
      << r.status;
}

// Regression: graceful shutdown racing watchdog escalation. A token already
// cancelled by another party must surface kCancelled — never an Internal
// "watchdog: no progress" dressed with DescribeStuck noise. The watchdog's
// escalation goes through CancelToken::Cancel()'s first-tripper contract, so
// only the party that actually tripped the token reports the wedge.
TEST(ChaosWatchdog, GracefulCancelDuringEscalationStaysCancelled) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 5;
  p.stream_stall_rate = 1.0;
  p.stream_stall_duration = 1e6;  // wedged against the watchdog

  common::CancelToken cancel;
  cancel.Cancel();  // graceful shutdown arrived first
  RuntimeOptions opts;
  opts.fault_plan = p;
  opts.cancel = &cancel;
  opts.watchdog_interval = 5.0;
  const RunOutcome r = RunWorkload(Bert96(), opts);

  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
  EXPECT_EQ(r.status.message().find("watchdog"), std::string::npos)
      << r.status;
  EXPECT_EQ(r.status.message().find("stuck at step"), std::string::npos)
      << r.status;
}

// The same race from a real second thread: a shutdown thread trips the token
// while the wedged run's watchdog escalates. Whatever the interleaving, the
// run must end either kCancelled (shutdown won) or kInternal naming the
// wedge (the watchdog tripped the token first) — and in both orders the
// token ends cancelled. TSan runs this variant under chaos_test_tsan.
TEST(ChaosWatchdog, ConcurrentShutdownAndWatchdogAgreeOnOneOwner) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 5;
  p.stream_stall_rate = 1.0;
  p.stream_stall_duration = 1e6;

  common::CancelToken cancel;
  RuntimeOptions opts;
  opts.fault_plan = p;
  opts.cancel = &cancel;
  opts.watchdog_interval = 5.0;
  std::thread shutdown([&cancel]() { cancel.Cancel(); });
  const RunOutcome r = RunWorkload(Bert96(), opts);
  shutdown.join();

  ASSERT_FALSE(r.status.ok());
  EXPECT_TRUE(cancel.Cancelled());
  if (r.status.code() == StatusCode::kInternal) {
    EXPECT_NE(r.status.message().find("watchdog: no progress"),
              std::string::npos)
        << r.status;
  } else {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
    EXPECT_EQ(r.status.message().find("watchdog"), std::string::npos)
        << r.status;
  }
}

TEST(ChaosWatchdog, PassedDeadlineSurfacesAsDeadlineExceeded) {
  common::CancelToken cancel;
  cancel.SetDeadlineAfter(std::chrono::milliseconds(0));
  RuntimeOptions opts;
  opts.cancel = &cancel;
  const RunOutcome r = RunWorkload(Bert96(), opts);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status;
}

// ---------------------------------------------------------------------------
// Overhead guard: a disabled plan must not change behaviour at all
// ---------------------------------------------------------------------------

TEST(ChaosDisabled, InertPlanIsExactlyTheFaultFreeRun) {
  fault::FaultPlan inert;  // enabled == false
  EXPECT_FALSE(inert.Any());
  const RunOutcome r = RunWithPlan(Bert96(), inert);
  ASSERT_TRUE(r.status.ok()) << r.status;
  const RunOutcome& base = Baseline(Bert96());
  EXPECT_EQ(BitsOf(r.metrics.iteration_time), BitsOf(base.metrics.iteration_time));
  EXPECT_EQ(r.trace_hash, base.trace_hash);
  EXPECT_EQ(r.trace_events, base.trace_events);
  EXPECT_EQ(r.metrics.faults_injected, 0);
  EXPECT_EQ(r.metrics.faults_recovered, 0);
  EXPECT_EQ(r.metrics.recovery_bytes, 0);
}

}  // namespace
}  // namespace harmony::runtime
