// FlowNetwork fair-share pinning tests. Two families:
//
//  * Hand-derived max-min schedules for contended swap/p2p mixes — the exact
//    completion times progressive filling must produce. These pin the
//    *semantics* of the incremental recompute against the textbook algorithm.
//  * Regression coverage for the rate-0 freeze: a saturated link whose
//    residual hits 0.0 through repeated floating-point subtraction used to
//    freeze a flow at rate 0 and abort in ScheduleNextCompletion; the binding
//    share is now clamped to a positive floor (monotone in the fill rounds).

#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace harmony::sim {
namespace {

TEST(FlowNetworkRates, TwoLinkContentionExactShares) {
  // L0 = 12 B/s shared by f1{L0} and f2{L0,L1}; L1 = 4 B/s also carries
  // f3{L1}. Progressive filling: L1 binds first (4/2 = 2 < 12/2 = 6), so
  // f2 = f3 = 2 B/s; then f1 takes L0's residual 12-2 = 10 B/s.
  Engine e;
  FlowNetwork net(&e, {12.0, 4.0});
  double f1 = -1, f2 = -1, f3 = -1;
  net.StartFlow({0}, 100, [&] { f1 = e.now(); });
  net.StartFlow({0, 1}, 100, [&] { f2 = e.now(); });
  net.StartFlow({1}, 100, [&] { f3 = e.now(); });
  e.Run();
  // f2, f3 run at 2 B/s -> drain together at t=50. f1 runs at 10 B/s and
  // drains at t=10 (f2's completion does not change f1's 10 B/s share until
  // after f1 is already done).
  EXPECT_NEAR(f1, 10.0, 1e-9);
  EXPECT_NEAR(f2, 50.0, 1e-9);
  EXPECT_NEAR(f3, 50.0, 1e-9);
}

TEST(FlowNetworkRates, ReleaseCascadeReassignsExactly) {
  // One 10 B/s link, flows of 10/20/40 bytes. Fair sharing gives each
  // 10/3 B/s; drains cascade and survivors absorb the freed share:
  //   t1 = 3.0   (10 bytes at 10/3)
  //   t2 = 3.0 + (20 - 10)/5 = 5.0
  //   t3 = 5.0 + (40 - 10 - 10)/10 = 7.0
  Engine e;
  FlowNetwork net(&e, {10.0});
  double t1 = -1, t2 = -1, t3 = -1;
  net.StartFlow({0}, 10, [&] { t1 = e.now(); });
  net.StartFlow({0}, 20, [&] { t2 = e.now(); });
  net.StartFlow({0}, 40, [&] { t3 = e.now(); });
  e.Run();
  EXPECT_NEAR(t1, 3.0, 1e-9);
  EXPECT_NEAR(t2, 5.0, 1e-9);
  EXPECT_NEAR(t3, 7.0, 1e-9);
}

TEST(FlowNetworkRates, SwapP2pMixOn8GpuMachine) {
  // A contended mix on the commodity 8-GPU PCIe tree: four swap-ins behind
  // one switch uplink (4:1 oversubscription) plus a cross-switch p2p that
  // shares only the destination's gpu.down link with nothing. Swap-ins split
  // the uplink four ways; the p2p stays at full PCIe rate.
  Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu();
  Interconnect net(m);
  FlowNetwork flows(&e, net.capacities());
  std::vector<double> swap_done(4, -1);
  double p2p_done = -1;
  for (int g = 0; g < 4; ++g) {  // all on switch 0
    flows.StartFlow(net.SwapInPath(g), GiB(2), [&, g] { swap_done[g] = e.now(); });
  }
  flows.StartFlow(net.P2pPath(4, 5), GiB(2), [&] { p2p_done = e.now(); });
  e.Run();
  const double swap_expected = 4.0 * static_cast<double>(GiB(2)) / m.uplink_bw;
  const double p2p_expected = static_cast<double>(GiB(2)) / m.pcie_bw;
  for (int g = 0; g < 4; ++g) EXPECT_NEAR(swap_done[g], swap_expected, 1e-6);
  EXPECT_NEAR(p2p_done, p2p_expected, 1e-6);
}

TEST(FlowNetworkRates, StaggeredStartExactIntegration) {
  // Rates must re-integrate exactly across a mid-flight recompute: f1 runs
  // alone at 10 B/s for 1s (10 bytes moved), then shares with f2 at 5 B/s.
  //   f1: 10 + remaining 30 at 5 B/s with f2 ... f1 has 40 bytes total:
  //       1s alone (10 moved) + 6s shared (30 at 5) -> t=7, f2 (20 bytes)
  //       drains at 1 + 4 = 5s, then f1's last 10 bytes at 10 B/s: recheck.
  //   Exact cascade: at t=5, f2 done (20 at 5 B/s); f1 moved 10 + 20 = 30,
  //   10 left at full 10 B/s -> t=6.
  Engine e;
  FlowNetwork net(&e, {10.0});
  double f1 = -1, f2 = -1;
  net.StartFlow({0}, 40, [&] { f1 = e.now(); });
  e.After(1.0, [&] {
    net.StartFlow({0}, 20, [&] { f2 = e.now(); });
  });
  e.Run();
  EXPECT_NEAR(f2, 5.0, 1e-9);
  EXPECT_NEAR(f1, 6.0, 1e-9);
}

TEST(FlowNetworkRates, SaturatedResidualDoesNotFreezeAtZero) {
  // Regression: L0 (cap 1.0) carries ten flows that also traverse L1
  // (cap 1.1). L0 binds at share 0.1; subtracting 0.1 ten times from 1.1
  // leaves a residual of ~1e-16 (not the exact 0.1 the algebra promises), so
  // the lone L1-only flow's share collapsed to ~0 — or to exactly 0.0 once
  // the negative-residual clamp rounded it — and ScheduleNextCompletion
  // aborted on HARMONY_CHECK_GT(rate, 0). The binding share is now clamped
  // to be monotone across fill rounds, so the L1 flow gets >= 0.1 B/s.
  Engine e;
  FlowNetwork net(&e, {1.0, 1.1});
  int drained = 0;
  double lone_done = -1;
  for (int i = 0; i < 10; ++i) {
    net.StartFlow({0, 1}, 100, [&] { ++drained; });
  }
  net.StartFlow({1}, 100, [&] { lone_done = e.now(); });
  e.Run();
  EXPECT_EQ(drained, 10);
  // The lone flow's true max-min rate is ~0.1 B/s (L1 residual after the
  // shared flows take 1.0). 100 bytes then drain in ~1000s; allow the fp
  // floor some slack but reject the runaway (rate ~1e-16 => ~1e18 s).
  EXPECT_GT(lone_done, 0.0);
  EXPECT_LT(lone_done, 2100.0);
}

TEST(FlowNetworkRates, ManyFlowsSaturatingOneLink) {
  // 49 equal flows on one link: share = cap/49 is not representable, and the
  // repeated-subtraction residual noise must neither abort nor spin. All
  // flows drain together at 49 * bytes / cap.
  Engine e;
  FlowNetwork net(&e, {GiBps(10)});
  int drained = 0;
  double last = -1;
  for (int i = 0; i < 49; ++i) {
    net.StartFlow({0}, MiB(64), [&] {
      ++drained;
      last = e.now();
    });
  }
  e.Run();
  EXPECT_EQ(drained, 49);
  const double expected = 49.0 * static_cast<double>(MiB(64)) / GiBps(10);
  EXPECT_NEAR(last, expected, 1e-6);
  EXPECT_LT(e.events_processed(), 300);
}

}  // namespace
}  // namespace harmony::sim
