// Golden tests for the serving wire format (serve/wire.h): canonical JSON
// round trips must be byte-identical, and the request fingerprints of the
// paper's evaluation models are pinned so any accidental change to a writer
// (which would silently split the plan cache across releases) fails loudly.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/cancel.h"
#include "common/json.h"
#include "serve/wire.h"

namespace harmony {
namespace {

using serve::ModelSpec;
using serve::PlanRequest;
using serve::PlanResponse;

// ---------------------------------------------------------------------------
// json::Value fundamentals
// ---------------------------------------------------------------------------

TEST(Json, CanonicalNumberRendering) {
  EXPECT_EQ(json::Value::Int(0).Dump(), "0");
  EXPECT_EQ(json::Value::Int(-7).Dump(), "-7");
  EXPECT_EQ(json::Value::Number(42.0).Dump(), "42");  // integral double
  EXPECT_EQ(json::Value::Number(0.5).Dump(), "0.5");
  EXPECT_EQ(json::Value::Int(int64_t{1} << 40).Dump(), "1099511627776");
}

TEST(Json, CanonicalObjectAndArray) {
  json::Value v = json::Value::Object();
  v.Set("b", 1);
  v.Set("a", "x\"y\n");
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Bool(true));
  arr.Append(json::Value::Null());
  v.Set("list", std::move(arr));
  // Insertion order, no whitespace, escapes for quote and newline.
  EXPECT_EQ(v.Dump(), "{\"b\":1,\"a\":\"x\\\"y\\n\",\"list\":[true,null]}");
}

TEST(Json, ParseDumpRoundTripIsByteIdentical) {
  const std::string doc =
      "{\"name\":\"GPT2\",\"n\":64,\"frac\":0.85,\"on\":true,"
      "\"packs\":[[0,9],[10,18]],\"nested\":{\"x\":null}}";
  const auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().Dump(), doc);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(json::Parse("{\"a\"").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

TEST(Json, Fnv1aMatchesReferenceVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(json::Fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(json::Fnv1a("a"), 12638187200555641996ull);
  EXPECT_EQ(json::FingerprintHex(0xdeadbeefull), "00000000deadbeef");
}

// ---------------------------------------------------------------------------
// Round trips: serialize -> parse -> serialize must be byte-identical
// ---------------------------------------------------------------------------

template <typename T, typename ToJson, typename FromJson>
void ExpectRoundTrip(const T& value, ToJson to_json, FromJson from_json) {
  const std::string first = to_json(value).Dump();
  const auto parsed = json::Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto back = from_json(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(to_json(back.value()).Dump(), first);
}

TEST(Wire, ModelSpecRoundTrips) {
  for (const char* name : {"BERT96", "GPT2", "GPT2-20B", "VGG416"}) {
    const auto spec = ModelSpec::FromName(name);
    ASSERT_TRUE(spec.ok()) << spec.status();
    ExpectRoundTrip(spec.value(), serve::ModelSpecToJson,
                    serve::ModelSpecFromJson);
  }
  ModelSpec custom;
  custom.kind = ModelSpec::Kind::kTransformer;
  custom.transformer.name = "tiny";
  custom.transformer.num_blocks = 4;
  custom.transformer.hidden = 256;
  custom.transformer.seq_len = 128;
  custom.transformer.heads = 4;
  custom.transformer.vocab = 1000;
  ExpectRoundTrip(custom, serve::ModelSpecToJson, serve::ModelSpecFromJson);
}

TEST(Wire, MachineSpecRoundTrips) {
  ExpectRoundTrip(hw::MachineSpec::Commodity4Gpu(), serve::MachineSpecToJson,
                  serve::MachineSpecFromJson);
  ExpectRoundTrip(hw::MachineSpec::Commodity8Gpu().WithNumGpus(8),
                  serve::MachineSpecToJson, serve::MachineSpecFromJson);
}

TEST(Wire, HeterogeneousMachineSpecRoundTrips) {
  hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  hw::GpuSpec shrunk = m.gpu;
  shrunk.name += "-shrunk";
  shrunk.memory_capacity = shrunk.usable_memory() - GiB(2.0);
  shrunk.usable_fraction = 1.0;
  m = m.WithGpuOverride(1, shrunk).WithLinkScale(m.LinkSwitchUp(0), 0.25);
  ExpectRoundTrip(m, serve::MachineSpecToJson, serve::MachineSpecFromJson);
  // A degraded daemon-side ingest sees exactly the synthesized fleet.
  const auto parsed = serve::MachineSpecFromJson(serve::MachineSpecToJson(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GpuAt(1).usable_memory(), shrunk.usable_memory());
  EXPECT_EQ(parsed.value().LinkScaleAt(m.LinkSwitchUp(0)), 0.25);
}

// The heterogeneous fields are emitted only when set: a homogeneous machine
// keeps its historical canonical bytes, so every fingerprint pinned before
// the fleet extension — and every deployed cache keyed by one — survives.
TEST(Wire, HomogeneousMachineCanonicalBytesOmitFleetFields) {
  const std::string dump =
      serve::MachineSpecToJson(hw::MachineSpec::Commodity4Gpu()).Dump();
  EXPECT_EQ(dump.find("per_gpu"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("link_bw_scale"), std::string::npos) << dump;
}

TEST(Wire, MachineSpecIngestValidatesFleetFields) {
  // Corrupt the scale vector: wrong length must be rejected at ingest, not
  // discovered as an out-of-bounds read inside the planner. The writer
  // serializes the struct verbatim, so a malformed struct yields exactly the
  // malformed document a broken or hostile peer would send.
  hw::MachineSpec short_vec = hw::MachineSpec::Commodity4Gpu();
  short_vec.link_bw_scale.assign(1, 0.5);
  EXPECT_FALSE(
      serve::MachineSpecFromJson(serve::MachineSpecToJson(short_vec)).ok());

  hw::MachineSpec negative = hw::MachineSpec::Commodity4Gpu();
  negative.link_bw_scale.assign(static_cast<size_t>(negative.NumLinks()), 1.0);
  negative.link_bw_scale[0] = -0.5;
  EXPECT_FALSE(
      serve::MachineSpecFromJson(serve::MachineSpecToJson(negative)).ok());

  hw::MachineSpec bad_gpu = hw::MachineSpec::Commodity4Gpu();
  bad_gpu.per_gpu.assign(static_cast<size_t>(bad_gpu.num_gpus), bad_gpu.gpu);
  bad_gpu.per_gpu[2].memory_capacity = 0;
  EXPECT_FALSE(
      serve::MachineSpecFromJson(serve::MachineSpecToJson(bad_gpu)).ok());
}

TEST(Wire, SearchOptionsAndFlagsRoundTrip) {
  core::SearchOptions options;
  options.u_fwd_max = 16;
  options.capacity_fraction = 0.7;
  options.equi_fb = true;
  options.num_threads = 4;
  options.policy_mode = core::PolicyMode::kSweep;
  ExpectRoundTrip(options, serve::SearchOptionsToJson,
                  serve::SearchOptionsFromJson);
  // A pre-policy peer omits the knob entirely: it must default to legacy.
  const auto parsed = json::Parse(
      "{\"u_fwd_max\":32,\"u_bwd_max\":32,\"capacity_fraction\":0.85,"
      "\"equi_fb\":false,\"num_threads\":1,\"keep_explored\":false}");
  ASSERT_TRUE(parsed.ok());
  const auto legacy = serve::SearchOptionsFromJson(parsed.value());
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy.value().policy_mode, core::PolicyMode::kLegacy);
  core::OptimizationFlags flags;
  flags.jit_compute = false;
  flags.use_recompute = true;
  ExpectRoundTrip(flags, serve::OptimizationFlagsToJson,
                  serve::OptimizationFlagsFromJson);
}

TEST(Wire, ConfigurationRoundTrips) {
  core::Configuration config;
  config.u_fwd = 4;
  config.u_bwd = 2;
  config.fwd_packs = {{0, 9}, {10, 18}, {19, 27}};
  config.bwd_packs = {{0, 13}, {14, 27}};
  ExpectRoundTrip(config, serve::ConfigurationToJson,
                  serve::ConfigurationFromJson);
  // Non-empty residency table rides along (RLE form).
  config.policy = model::PolicyTable::Uniform(28, model::StashPolicy::kRecompute);
  config.policy.Set(5, model::StashPolicy::kSwap);
  config.policy.Set(6, model::StashPolicy::kKeep);
  ExpectRoundTrip(config, serve::ConfigurationToJson,
                  serve::ConfigurationFromJson);
}

TEST(Wire, PlanRequestRoundTrips) {
  PlanRequest request;
  request.model = ModelSpec::FromName("BERT96").value();
  request.minibatch = 8;
  request.deadline_ms = 250;
  request.bypass_cache = true;
  ExpectRoundTrip(request, serve::PlanRequestToJson,
                  serve::PlanRequestFromJson);
}

TEST(Wire, PlanResponseRoundTrips) {
  PlanResponse ok;
  ok.fingerprint = 0x4a33fc51dbc2632cull;
  ok.cache_hit = true;
  ok.latency_seconds = 6.25e-05;
  ok.config.u_fwd = 2;
  ok.config.u_bwd = 1;
  ok.config.fwd_packs = {{0, 9}, {10, 18}};
  ok.config.bwd_packs = {{0, 18}};
  ok.estimate.iteration_time = 4.3;
  ok.estimate.swap_bytes = GiB(12);
  ok.configs_explored = 512;
  ExpectRoundTrip(ok, serve::PlanResponseToJson, serve::PlanResponseFromJson);

  PlanResponse rejected;
  rejected.status = Status::ResourceExhausted("admission queue full");
  rejected.retry_after_ms = 50;
  ExpectRoundTrip(rejected, serve::PlanResponseToJson,
                  serve::PlanResponseFromJson);

  // The cluster tier's fill provenance travels in-band; a pre-cluster peer
  // omitting it must still parse (filled_from stays "").
  PlanResponse filled = ok;
  filled.cache_hit = false;
  filled.filled_from = "disk";
  ExpectRoundTrip(filled, serve::PlanResponseToJson,
                  serve::PlanResponseFromJson);
}

TEST(Wire, CacheGetRequestRoundTrips) {
  serve::CacheGetRequest get;
  get.fingerprint = 0x5161815ad1542bc2ull;
  get.canonical_request = "{\"model\":\"GPT2\"}";
  auto parsed = serve::CacheGetRequestFromJson(serve::CacheGetRequestToJson(get));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().fingerprint, get.fingerprint);
  EXPECT_EQ(parsed.value().canonical_request, get.canonical_request);
  // Wrong envelope type must be rejected, not silently accepted.
  json::Value wrong = json::Value::Object();
  wrong.Set("type", "plan");
  wrong.Set("fingerprint", "5161815ad1542bc2");
  wrong.Set("canonical", "x");
  EXPECT_FALSE(serve::CacheGetRequestFromJson(wrong).ok());
}

// The peer-fill frame is part of the deployed wire surface the moment two
// daemon versions coexist in one tier: pin its canonical bytes the same way
// request fingerprints are pinned. If a deliberate protocol change lands,
// re-pin here and call out the mixed-tier implications in DESIGN.md §13.
TEST(Wire, CacheGetEnvelopeIsPinned) {
  serve::CacheGetRequest get;
  get.fingerprint = 0x5161815ad1542bc2ull;
  get.canonical_request = "canonical-bytes";
  const std::string envelope = serve::CacheGetRequestToJson(get).Dump();
  EXPECT_EQ(envelope,
            "{\"type\":\"cache_get\",\"fingerprint\":\"5161815ad1542bc2\","
            "\"canonical\":\"canonical-bytes\"}");
  EXPECT_EQ(json::FingerprintHex(json::Fnv1a(envelope)), "051f268a748bef0b");
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

PlanRequest Bert96Request() {
  PlanRequest request;
  request.model = ModelSpec::FromName("BERT96").value();
  request.machine = hw::MachineSpec::Commodity4Gpu();
  request.mode = core::HarmonyMode::kPipelineParallel;
  request.minibatch = 8;
  return request;
}

PlanRequest Gpt2Request() {
  PlanRequest request;
  request.model = ModelSpec::FromName("GPT2").value();
  request.machine = hw::MachineSpec::Commodity4Gpu();
  request.mode = core::HarmonyMode::kPipelineParallel;
  request.minibatch = 64;
  return request;
}

// Pinned goldens: these exact values are what deployed caches are keyed by.
// If a deliberate wire-format change lands, re-pin them in the same change
// and call out the cache invalidation in DESIGN.md §9.
//
// Re-pinned when policy_mode became the fifth canonical search knob (the
// residency-policy axis): every request now fingerprints differently from
// pre-policy builds, deliberately splitting the cache across that release
// (see DESIGN.md §9 / §12).
TEST(Fingerprint, PinnedGoldens) {
  EXPECT_EQ(json::FingerprintHex(serve::RequestFingerprint(Bert96Request())),
            "44e5f25ec89cd9e1");
  EXPECT_EQ(json::FingerprintHex(serve::RequestFingerprint(Gpt2Request())),
            "5161815ad1542bc2");
}

// A degraded (heterogeneous) machine must fingerprint distinctly from the
// nominal one — a re-plan served from the nominal cache entry would be the
// plan that is already failing. The degraded request's fingerprint is pinned
// alongside the nominal goldens: re-plans are cacheable tier-wide too.
TEST(Fingerprint, DegradedMachineSplitsTheCache) {
  const uint64_t base = serve::RequestFingerprint(Bert96Request());
  PlanRequest r = Bert96Request();
  r.machine = r.machine.WithLinkScale(r.machine.LinkSwitchUp(0), 0.25);
  EXPECT_NE(serve::RequestFingerprint(r), base);
  EXPECT_EQ(json::FingerprintHex(serve::RequestFingerprint(r)),
            "ab196806acb2b17e");

  PlanRequest s = Bert96Request();
  hw::GpuSpec shrunk = s.machine.gpu;
  shrunk.name += "-shrunk";
  shrunk.memory_capacity = shrunk.usable_memory() - GiB(2.0);
  shrunk.usable_fraction = 1.0;
  s.machine = s.machine.WithGpuOverride(1, shrunk);
  EXPECT_NE(serve::RequestFingerprint(s), base);
  EXPECT_EQ(json::FingerprintHex(serve::RequestFingerprint(s)),
            "e4cdf99f26c1ff79");
}

TEST(Fingerprint, ExecutionHintsDoNotChangeIt) {
  const uint64_t base = serve::RequestFingerprint(Bert96Request());
  PlanRequest hinted = Bert96Request();
  hinted.deadline_ms = 1000;
  hinted.bypass_cache = true;
  hinted.options.num_threads = 8;      // bit-identical result by contract
  hinted.options.keep_explored = true;
  EXPECT_EQ(serve::RequestFingerprint(hinted), base);
}

TEST(Fingerprint, SemanticFieldsChangeIt) {
  const uint64_t base = serve::RequestFingerprint(Bert96Request());
  PlanRequest r = Bert96Request();
  r.minibatch = 16;
  EXPECT_NE(serve::RequestFingerprint(r), base);
  r = Bert96Request();
  r.mode = core::HarmonyMode::kDataParallel;
  EXPECT_NE(serve::RequestFingerprint(r), base);
  r = Bert96Request();
  r.run_iteration = true;  // the response differs, so the key must too
  EXPECT_NE(serve::RequestFingerprint(r), base);
  r = Bert96Request();
  r.options.u_fwd_max = 16;
  EXPECT_NE(serve::RequestFingerprint(r), base);
  r = Bert96Request();
  r.machine = r.machine.WithNumGpus(2);
  EXPECT_NE(serve::RequestFingerprint(r), base);
}

// Field-by-field audit of SearchOptions: the canonical encoding keeps exactly
// the knobs that change the chosen plan and drops everything that only
// affects how the search runs. A knob drifting between the two camps either
// splits the cache for no reason or — worse — serves a stale plan for a
// semantically different request.
TEST(Fingerprint, SearchOptionsAudit) {
  const uint64_t base = serve::RequestFingerprint(Bert96Request());

  // Semantic knobs: each one alone must move the fingerprint.
  {
    PlanRequest r = Bert96Request();
    r.options.u_fwd_max = 16;
    EXPECT_NE(serve::RequestFingerprint(r), base) << "u_fwd_max";
  }
  {
    PlanRequest r = Bert96Request();
    r.options.u_bwd_max = 16;
    EXPECT_NE(serve::RequestFingerprint(r), base) << "u_bwd_max";
  }
  {
    PlanRequest r = Bert96Request();
    r.options.capacity_fraction = 0.5;
    EXPECT_NE(serve::RequestFingerprint(r), base) << "capacity_fraction";
  }
  {
    PlanRequest r = Bert96Request();
    r.options.equi_fb = true;
    EXPECT_NE(serve::RequestFingerprint(r), base) << "equi_fb";
  }
  // The residency-policy axis picks a different winner, so it must key the
  // cache; every mode maps to a distinct fingerprint.
  std::set<uint64_t> policy_prints;
  for (const core::PolicyMode mode :
       {core::PolicyMode::kLegacy, core::PolicyMode::kRecomputeAll,
        core::PolicyMode::kKeepAll, core::PolicyMode::kSwapAll,
        core::PolicyMode::kHybridGreedy, core::PolicyMode::kSweep}) {
    PlanRequest r = Bert96Request();
    r.options.policy_mode = mode;
    policy_prints.insert(serve::RequestFingerprint(r));
  }
  EXPECT_EQ(policy_prints.size(), 6u);
  EXPECT_EQ(policy_prints.count(base), 1u);  // kLegacy == the default request

  // Execution-shape knobs: bit-identical results by contract, so they must
  // NOT move the fingerprint.
  {
    PlanRequest r = Bert96Request();
    r.options.num_threads = 32;
    EXPECT_EQ(serve::RequestFingerprint(r), base) << "num_threads";
  }
  {
    PlanRequest r = Bert96Request();
    r.options.keep_explored = true;
    EXPECT_EQ(serve::RequestFingerprint(r), base) << "keep_explored";
  }
  {
    common::CancelToken cancel;
    PlanRequest r = Bert96Request();
    r.options.cancel = &cancel;
    EXPECT_EQ(serve::RequestFingerprint(r), base) << "cancel";
  }
}

TEST(Fingerprint, MatchesCanonicalJsonHash) {
  const PlanRequest request = Gpt2Request();
  EXPECT_EQ(serve::RequestFingerprint(request),
            json::Fnv1a(serve::CanonicalRequestJson(request)));
  // The canonical string itself round-trips through the parser unchanged.
  const std::string canonical = serve::CanonicalRequestJson(request);
  const auto parsed = json::Parse(canonical);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Dump(), canonical);
}

}  // namespace
}  // namespace harmony
