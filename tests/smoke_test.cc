#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "model/models.h"
#include "runtime/runtime.h"

namespace harmony {
namespace {

TEST(Smoke, TinyTransformerEndToEnd) {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  // Shrink the GPU so the tiny model still exercises packing & swapping.
  machine.gpu.memory_capacity = MiB(512);
  const model::SequentialModel m = model::Sequentialize(model::TinyTransformer(16, 512, 128));

  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 2;
  search.u_bwd_max = 2;
  auto outcome = scheduler.Schedule(m, core::HarmonyMode::kPipelineParallel,
                                    /*minibatch=*/8, core::OptimizationFlags{},
                                    search);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const auto& best = outcome.value().search.best;
  EXPECT_GE(best.bwd_packs.size(), 1u);
  EXPECT_GT(outcome.value().search.best_estimate.iteration_time, 0.0);

  const runtime::Runtime rt(machine, m);
  auto metrics = rt.Execute(outcome.value().graph);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics.value().iteration_time, 0.0);
  EXPECT_GT(metrics.value().total_swap(), 0);
}

TEST(Smoke, HarmonyDpEndToEnd) {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  machine.gpu.memory_capacity = MiB(512);
  const model::SequentialModel m = model::Sequentialize(model::TinyTransformer(16, 512, 128));

  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 2;
  search.u_bwd_max = 2;
  auto outcome = scheduler.Schedule(m, core::HarmonyMode::kDataParallel,
                                    /*minibatch=*/8, core::OptimizationFlags{},
                                    search);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const runtime::Runtime rt(machine, m);
  auto metrics = rt.Execute(outcome.value().graph);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics.value().iteration_time, 0.0);
}

}  // namespace
}  // namespace harmony
